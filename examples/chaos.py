#!/usr/bin/env python
"""Chaos demo: deterministic fault injection against simulated MySQL.

Runs the same contended TPC-C experiment three times — clean, under the
"full-chaos" plan, and under full-chaos *again* with the same seed — and
prints the headline latency metrics plus the injected-fault totals.  The
two chaos runs are byte-identical: faults draw from their own seeded RNG
streams, so a failure observed once can be replayed exactly.

Usage::

    PYTHONPATH=src python examples/chaos.py [n_txns]
"""

import sys

from repro.bench.runner import ExperimentConfig, run_experiment
from repro.faults import named_plan


def build(plan, n_txns):
    return ExperimentConfig(
        engine="mysql",
        workload="tpcc",
        workload_kwargs={"warehouses": 64},
        seed=42,
        n_txns=n_txns,
        rate_tps=500.0,
        warmup_fraction=0.0,
        fault_plan=plan,
    )


def describe(label, result):
    summary = result.summary
    print(
        "  %-12s mean=%8.0fus  p99=%8.0fus  variance=%10.3g  "
        "io_errors=%-3d crashes=%-2d aborts=%r"
        % (
            label,
            summary.mean,
            summary.p99,
            summary.variance,
            result.fault_counts.get("io_errors", 0),
            result.fault_counts.get("worker_crashes", 0),
            result.abort_counts,
        )
    )


def main():
    n_txns = int(sys.argv[1]) if len(sys.argv) > 1 else 1000
    print("Contended TPC-C on simulated MySQL, %d txns @ 500 tps" % n_txns)

    clean = run_experiment(build(None, n_txns))
    describe("clean", clean)

    chaos = run_experiment(build(named_plan("full-chaos"), n_txns))
    describe("full-chaos", chaos)

    replay = run_experiment(build(named_plan("full-chaos"), n_txns))
    describe("replay", replay)

    identical = (
        chaos.event_log_jsonl() == replay.event_log_jsonl()
        and chaos.latencies == replay.latencies
    )
    print("chaos replay byte-identical: %s" % identical)
    print(
        "variance amplification under chaos: %.2fx"
        % (chaos.summary.variance / clean.summary.variance)
    )


if __name__ == "__main__":
    main()
