#!/usr/bin/env python
"""Bring your own workload: define a benchmark and study its variance.

Shows the extension points a downstream user needs:

1. subclass :class:`repro.workloads.base.Workload` with a schema and a
   weighted transaction mix (here: a toy banking workload with a hot
   branch-summary row — a classic predictability hazard);
2. run it through any engine and scheduler with the standard harness;
3. profile it with TProfiler to see where its variance comes from.

Usage::

    python examples/custom_workload.py
"""

from repro.bench.profiled import EngineProfiledSystem
from repro.bench.runner import ExperimentConfig, run_experiment
from repro.core.profiler import TProfiler
from repro.core.report import render_profile
from repro.engines.mysql import MySQLConfig
from repro.workloads.base import Operation, Workload


class Banking(Workload):
    """Transfers between accounts plus branch-level reporting.

    Every transfer updates the (single) branch summary row after moving
    money between two uniformly chosen accounts, so the branch row is a
    structural hot spot exactly like TPC-C's warehouse row.
    """

    name = "banking"

    def __init__(self, n_accounts=50_000, n_branches=2):
        super().__init__()
        self.schema = {
            "account": n_accounts,
            "branch": n_branches,
            "audit_log": n_accounts,
        }
        self.mix = [
            ("Transfer", 60, self._transfer),
            ("CheckBalance", 30, self._check_balance),
            ("BranchReport", 10, self._branch_report),
        ]
        self.finalize()

    def _transfer(self, rng):
        src = rng.randrange(self.schema["account"])
        dst = rng.randrange(self.schema["account"])
        branch = rng.randrange(self.schema["branch"])
        return [
            Operation("select", "account", src, lock="X"),
            Operation("select", "account", dst, lock="X"),
            Operation("update", "account", src),
            Operation("update", "account", dst),
            Operation("update", "branch", branch),  # the hot row
            Operation("insert", "audit_log", self.fresh_key("audit_log")),
        ]

    def _check_balance(self, rng):
        return [Operation("select", "account", rng.randrange(self.schema["account"]))]

    def _branch_report(self, rng):
        branch = rng.randrange(self.schema["branch"])
        ops = [Operation("select", "branch", branch)]
        for _ in range(20):
            ops.append(
                Operation("select", "account", rng.randrange(self.schema["account"]))
            )
        return ops


def main():
    # Register the workload so ExperimentConfig can find it by name.
    from repro import workloads

    workloads.WORKLOADS["banking"] = Banking

    print("Banking workload on simulated MySQL, FCFS vs VATS:")
    results = {}
    for scheduler in ("FCFS", "VATS"):
        config = ExperimentConfig(
            engine="mysql",
            workload="banking",
            engine_config=MySQLConfig(scheduler=scheduler),
            seed=5,
            n_txns=3000,
            rate_tps=500.0,
        )
        result = run_experiment(config)
        results[scheduler] = result
        s = result.summary
        print(
            "  %-4s mean=%6.2f ms  std=%6.2f ms  p99=%6.2f ms  waits=%d"
            % (
                scheduler,
                s.mean / 1000.0,
                s.std / 1000.0,
                s.p99 / 1000.0,
                result.engine.lockmgr.total_waits,
            )
        )

    print()
    print("Where does the variance come from?  Ask TProfiler:")
    system = EngineProfiledSystem(
        ExperimentConfig(
            engine="mysql",
            workload="banking",
            engine_config=MySQLConfig(),
            seed=5,
            n_txns=2000,
            rate_tps=500.0,
        )
    )
    profile = TProfiler(system, k=4, max_iterations=8).profile()
    print(render_profile(profile, top=6, config_label="banking"))


if __name__ == "__main__":
    main()
