#!/usr/bin/env python
"""Quickstart: measure latency variance and fix it with VATS.

Runs the simulated MySQL server under contended TPC-C at a constant
500 tps — once with the stock FCFS lock scheduling and once with VATS —
and prints the paper's three headline metrics for each, plus the
improvement ratios (Figure 2's experiment in miniature).

Usage::

    python examples/quickstart.py [n_txns]
"""

import sys

from repro import ratios
from repro.bench import paperconfig
from repro.bench.runner import run_experiment


def main():
    # Scheduler comparisons measure differences between heavy-tailed
    # convoy distributions and need long runs to converge (this is
    # paperconfig.N_TXNS_SCHED, the same length Figure 2 uses); pass a
    # smaller count for a faster, noisier demo.
    n_txns = int(sys.argv[1]) if len(sys.argv) > 1 else 12_000

    print("Running contended TPC-C on simulated MySQL (%d txns @ 500 tps)" % n_txns)
    results = {}
    for scheduler in ("FCFS", "VATS"):
        config = paperconfig.mysql_128wh_experiment(scheduler, n_txns=n_txns)
        result = run_experiment(config)
        results[scheduler] = result
        summary = result.summary
        print(
            "  %-4s  mean=%7.2f ms  std=%7.2f ms  p99=%7.2f ms  "
            "throughput=%.0f tps  lock waits=%d"
            % (
                scheduler,
                summary.mean / 1000.0,
                summary.std / 1000.0,
                summary.p99 / 1000.0,
                result.throughput_tps,
                result.engine.lockmgr.total_waits,
            )
        )

    improvement = ratios(results["FCFS"].latencies, results["VATS"].latencies)
    print()
    print("FCFS / VATS ratios (>1 means VATS is better):")
    print(
        "  mean %.2fx   variance %.2fx   p99 %.2fx"
        % (improvement["mean"], improvement["variance"], improvement["p99"])
    )

    # Every run also carries a telemetry snapshot (see docs/telemetry.md).
    snapshot = results["VATS"].metrics_snapshot()
    counters = snapshot["counters"]
    wait_hist = snapshot["histograms"].get("lockmgr.wait_time.VATS", {})
    print()
    print("VATS run telemetry (excerpt of metrics_snapshot()):")
    print(
        "  lockmgr: requests=%d waits=%d deadlocks=%d"
        % (
            counters.get("lockmgr.requests", 0),
            counters.get("lockmgr.waits", 0),
            counters.get("lockmgr.deadlocks", 0),
        )
    )
    if wait_hist.get("count"):
        print(
            "  lock wait time: mean=%.0f us  p99=%.0f us  (n=%d, GK sketch)"
            % (wait_hist["mean"], wait_hist["p99"], wait_hist["count"])
        )
    print(
        "  buffer pool: hits=%d misses=%d   wal flush rounds=%d"
        % (
            counters.get("buf_pool.hits", 0),
            counters.get("buf_pool.misses", 0),
            counters.get("wal.redo.flush_rounds", 0),
        )
    )
    print()
    print(
        "The paper reports 6.3x / 5.6x / 2.0x on its hardware; the simulator"
        "\nreproduces the direction (VATS wins on every metric under"
        "\ncontention) at smaller magnitudes — see EXPERIMENTS.md."
    )


if __name__ == "__main__":
    main()
