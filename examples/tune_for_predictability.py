#!/usr/bin/env python
"""Variance-aware tuning (Section 6.3 / Appendix B), end to end.

For each engine, sweep the tuning parameter TProfiler's findings point
at and report how mean / variance / p99 respond:

- MySQL: buffer-pool size (33/66/100% of the database) and the redo
  flush policy (eager flush / lazy flush / lazy write);
- Postgres: the WAL block size (8K default -> 64K);
- VoltDB: the number of worker threads (2 default -> 24).

Usage::

    python examples/tune_for_predictability.py [mysql|postgres|voltdb|all]
"""

import sys

from repro import ratios
from repro.bench import paperconfig
from repro.bench.runner import run_experiment
from repro.wal.mysql_log import FlushPolicy

N = 3000


def show(label, base, candidate):
    r = ratios(base.latencies, candidate.latencies)
    print(
        "  %-26s mean %.2fx  variance %.2fx  p99 %.2fx"
        % (label, r["mean"], r["variance"], r["p99"])
    )


def tune_mysql():
    print("MySQL: buffer pool size (ratios vs 33% pool; Figure 3 center)")
    base = run_experiment(
        paperconfig.mysql_2wh_experiment(buffer_fraction=0.33, n_txns=N)
    )
    for label, fraction in (("66% pool", 0.66), ("100% pool", 1.2)):
        candidate = run_experiment(
            paperconfig.mysql_2wh_experiment(buffer_fraction=fraction, n_txns=N)
        )
        show(label, base, candidate)

    print("MySQL: redo flush policy (ratios vs eager flush; Figure 3 right)")
    eager = run_experiment(paperconfig.mysql_128wh_experiment("VATS", n_txns=N))
    for label, policy in (
        ("lazy flush", FlushPolicy.LAZY_FLUSH),
        ("lazy write", FlushPolicy.LAZY_WRITE),
    ):
        candidate = run_experiment(
            paperconfig.mysql_128wh_experiment("VATS", n_txns=N, flush_policy=policy)
        )
        show(label, eager, candidate)
        lost = candidate.engine.redo.lost_on_crash()
        print(
            "    (durability cost: %d commits exposed to a crash right now)"
            % len(lost)
        )


def tune_postgres():
    print("Postgres: WAL block size (ratios vs 4K; Figure 4 right)")
    base = run_experiment(paperconfig.postgres_experiment(block_size=4096, n_txns=N))
    for size in (8192, 16384, 32768, 65536):
        candidate = run_experiment(
            paperconfig.postgres_experiment(block_size=size, n_txns=N)
        )
        show("%dK blocks" % (size // 1024), base, candidate)


def tune_voltdb():
    print("VoltDB: worker threads (ratios vs 2 workers; Figure 7)")
    base = run_experiment(paperconfig.voltdb_experiment(n_workers=2, n_txns=N))
    for workers in (8, 12, 16, 24):
        candidate = run_experiment(
            paperconfig.voltdb_experiment(n_workers=workers, n_txns=N)
        )
        show("%d workers" % workers, base, candidate)


def main():
    which = sys.argv[1] if len(sys.argv) > 1 else "all"
    steps = {
        "mysql": tune_mysql,
        "postgres": tune_postgres,
        "voltdb": tune_voltdb,
    }
    if which == "all":
        for step in steps.values():
            step()
            print()
    else:
        steps[which]()


if __name__ == "__main__":
    main()
