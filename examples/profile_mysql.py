#!/usr/bin/env python
"""Profile a database with TProfiler and read the variance tree.

This walks the full Section 3 workflow on the simulated MySQL server:

1. iterative refinement — instrument the root, run the workload, build
   the variance tree, expand the top-scoring factors, repeat;
2. the final profile — each function's share of overall transaction
   latency variance, ranked by the specificity-weighted score (the
   Table 1 view);
3. a decomposition of one culprit — its body and children with
   variances and covariances (the Figure 1 variance-tree view).

Usage::

    python examples/profile_mysql.py [128wh|2wh]
"""

import sys

from repro.bench import paperconfig
from repro.bench.profiled import EngineProfiledSystem
from repro.core.profiler import TProfiler
from repro.core.report import render_profile


def main():
    which = sys.argv[1] if len(sys.argv) > 1 else "128wh"
    if which == "2wh":
        config = paperconfig.mysql_2wh_experiment(n_txns=2500)
        label = "2-WH"
    else:
        config = paperconfig.mysql_128wh_experiment(n_txns=2500)
        label = "128-WH"

    print("Profiling simulated MySQL (%s configuration)..." % label)
    system = EngineProfiledSystem(config)
    profiler = TProfiler(system, k=5, max_iterations=10)
    result = profiler.profile()

    print(
        "Converged after %d instrumented runs; %d functions instrumented."
        % (result.runs, len(result.instrumented))
    )
    print()
    print(render_profile(result, top=10, config_label=label))

    # Decompose the highest-scoring decomposable factor (Figure 1 view).
    print()
    tree = result.tree
    for row in result.factors:
        key = (row.name, row.site)
        try:
            decomposition = tree.decompose(key)
        except KeyError:
            continue
        if len(decomposition.components) < 2:
            continue
        print("Variance tree of %s [%s]:" % (row.name, row.site))
        print("  Var(parent) = %.1f" % decomposition.parent.variance)
        for node in decomposition.components:
            print("    Var(%s @ %s) = %.1f" % (node.key[0], node.key[1], node.variance))
        for (a, b), cov in sorted(
            decomposition.covariances().items(), key=lambda kv: -abs(kv[1])
        )[:3]:
            print("    Cov(%s, %s) = %.1f" % (a[0], b[0], cov))
        print(
            "  identity check: reconstructed = %.1f"
            % decomposition.reconstructed_variance()
        )
        break

    # Close the loop: turn the profile into tuning advice (Section 6.3).
    from repro.tuning import TuningAdvisor

    print()
    print("Variance-aware tuning advice:")
    print(TuningAdvisor().render(tree.name_shares()))


if __name__ == "__main__":
    main()
