#!/usr/bin/env python
"""Run a sharded cluster experiment and report the distributed picture.

Usage::

    PYTHONPATH=src python scripts/run_cluster.py --shards 4
    PYTHONPATH=src python scripts/run_cluster.py --shards 4 \\
        --remote-payment 0.15 --router range --check-determinism
    PYTHONPATH=src python scripts/run_cluster.py --shards 2 \\
        --engine postgres --plan net-delay --out events.jsonl

Prints the single-home/cross-shard split, coordinator wait statistics
(``dist_prepare_wait`` / ``dist_commit_wait``), per-node commit counts,
per-reason abort totals and the latency summary, plus a content digest
of the full metrics snapshot.  ``--check-determinism`` runs the same
configuration twice and fails unless the digests match byte-for-byte.
"""

import argparse
import hashlib
import json
import sys

from repro.bench.runner import ExperimentConfig, run_experiment
from repro.cluster import Topology
from repro.faults import NAMED_PLANS, named_plan


def build_parser():
    parser = argparse.ArgumentParser(
        description="Run one deterministic sharded-cluster experiment."
    )
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--engine", default="mysql",
                        choices=["mysql", "postgres"])
    parser.add_argument("--router", default="hash", choices=["hash", "range"])
    parser.add_argument("--warehouses", type=int, default=16)
    parser.add_argument("--remote-payment", type=float, default=0.15,
                        help="fraction of Payments homed at a remote "
                             "warehouse (cross-shard writes)")
    parser.add_argument("--remote-stock", type=float, default=0.01,
                        help="per-order-line probability of a remote "
                             "supplying warehouse in NewOrder")
    parser.add_argument("--n-txns", type=int, default=600)
    parser.add_argument("--rate-tps", type=float, default=200.0)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--plan", choices=sorted(NAMED_PLANS),
                        help="optional named fault plan from repro.faults")
    parser.add_argument("--check-determinism", action="store_true",
                        help="run twice; fail unless digests match")
    parser.add_argument("--out", metavar="FILE",
                        help="write the telemetry event log (JSONL) here")
    return parser


def build_config(args):
    workload_kwargs = {
        "warehouses": args.warehouses,
        "remote_payment_prob": args.remote_payment,
        "remote_warehouse_prob": args.remote_stock,
    }
    if args.engine == "postgres":
        workload_kwargs.update(
            {"warehouse_zipf_theta": None, "item_zipf_theta": None}
        )
    return ExperimentConfig(
        engine=args.engine,
        workload="tpcc",
        workload_kwargs=workload_kwargs,
        seed=args.seed,
        n_txns=args.n_txns,
        rate_tps=args.rate_tps,
        warmup_fraction=0.0,
        num_shards=args.shards,
        topology=Topology(router=args.router),
        fault_plan=None if args.plan is None else named_plan(args.plan),
    )


def run_digest(result):
    """Content digest of the run: full metrics snapshot + latency vector."""
    payload = json.dumps(
        [result.metrics_snapshot(), result.latencies, result.sim.now],
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def main(argv=None):
    args = build_parser().parse_args(argv)
    config = build_config(args)
    result = run_experiment(config)
    cluster = result.engine

    print("engine=%s shards=%d router=%s seed=%d n_txns=%d plan=%s"
          % (args.engine, args.shards, args.router, args.seed,
             args.n_txns, args.plan or "none"))
    print("single_home=%d cross_shard=%d committed=%d failed=%d"
          % (cluster.single_home_txns, cluster.cross_shard_txns,
             len(result.log.committed), result.failed_txns))

    hists = result.metrics_snapshot()["histograms"]
    for name in ("cluster.prepare_wait", "cluster.commit_wait"):
        stats = hists.get(name, {"count": 0})
        if stats["count"]:
            print("%s: count=%d mean=%.0fus p99=%.0fus"
                  % (name, stats["count"], stats["mean"], stats["p99"]))
        else:
            print("%s: count=0" % (name,))
    for node_id in range(args.shards):
        node = result.node_metrics_snapshot(node_id)["counters"]
        print("  node%d: committed=%d branches_committed=%d"
              % (node_id,
                 node.get("%s.txns_committed" % args.engine, 0),
                 node.get("%s.branches_committed" % args.engine, 0)))
    for label, counts in (("aborts", result.abort_counts),
                          ("failed", result.failed_counts)):
        for reason in sorted(counts):
            print("  %s.%s=%d" % (label, reason, counts[reason]))
    summary = result.summary
    print("latency: mean=%.0fus p99=%.0fus variance=%.3g"
          % (summary.mean, summary.p99, summary.variance))
    digest = run_digest(result)
    print("digest=%s" % (digest,))

    if args.out:
        jsonl = result.event_log_jsonl()
        with open(args.out, "w") as fh:
            fh.write(jsonl)
        print("wrote %d events to %s" % (len(jsonl.splitlines()), args.out))

    if args.check_determinism:
        second = run_digest(run_experiment(build_config(args)))
        if second != digest:
            print("DETERMINISM FAILURE: %s != %s" % (digest, second))
            return 1
        print("determinism check passed (two runs, identical digests)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
