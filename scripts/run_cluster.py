#!/usr/bin/env python
"""Run a sharded cluster experiment and report the distributed picture.

Usage::

    PYTHONPATH=src python scripts/run_cluster.py --shards 4
    PYTHONPATH=src python scripts/run_cluster.py --shards 4 \\
        --remote-payment 0.15 --router range --check-determinism
    PYTHONPATH=src python scripts/run_cluster.py --shards 2 \\
        --engine postgres --plan net-delay --out events.jsonl
    PYTHONPATH=src python scripts/run_cluster.py --shards 4 \\
        --seeds 8 --jobs 4 --check-determinism

Prints the single-home/cross-shard split, coordinator wait statistics
(``dist_prepare_wait`` / ``dist_commit_wait``), per-node commit counts,
per-reason abort totals and the latency summary, plus a content digest
of the run (``repro.bench.digest.run_digest``).  ``--check-determinism``
re-executes every configuration and fails unless the digests match
byte-for-byte.

``--seeds N`` fans out over N consecutive seeds and ``--jobs`` sets the
process-pool width (``repro.exec``); the detailed report covers the
first seed, subsequent seeds print one digest line each.
"""

import argparse
import sys

from repro.bench.digest import run_digest
from repro.bench.runner import ExperimentConfig
from repro.cluster import Topology
from repro.exec import Executor
from repro.faults import NAMED_PLANS, named_plan


def build_parser():
    parser = argparse.ArgumentParser(
        description="Run one deterministic sharded-cluster experiment."
    )
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--engine", default="mysql",
                        choices=["mysql", "postgres"])
    parser.add_argument("--router", default="hash", choices=["hash", "range"])
    parser.add_argument("--warehouses", type=int, default=16)
    parser.add_argument("--remote-payment", type=float, default=0.15,
                        help="fraction of Payments homed at a remote "
                             "warehouse (cross-shard writes)")
    parser.add_argument("--remote-stock", type=float, default=0.01,
                        help="per-order-line probability of a remote "
                             "supplying warehouse in NewOrder")
    parser.add_argument("--n-txns", type=int, default=600)
    parser.add_argument("--rate-tps", type=float, default=200.0)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--seeds", type=int, default=1,
                        help="fan out over this many consecutive seeds "
                             "(default 1)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the fan-out (default 1)")
    parser.add_argument("--plan", choices=sorted(NAMED_PLANS),
                        help="optional named fault plan from repro.faults")
    parser.add_argument("--check-determinism", action="store_true",
                        help="re-execute every config; fail unless "
                             "digests match")
    parser.add_argument("--out", metavar="FILE",
                        help="write the telemetry event log (JSONL) here; "
                             "first seed only with --seeds > 1")
    return parser


def build_config(args, seed):
    workload_kwargs = {
        "warehouses": args.warehouses,
        "remote_payment_prob": args.remote_payment,
        "remote_warehouse_prob": args.remote_stock,
    }
    if args.engine == "postgres":
        workload_kwargs.update(
            {"warehouse_zipf_theta": None, "item_zipf_theta": None}
        )
    return ExperimentConfig(
        engine=args.engine,
        workload="tpcc",
        workload_kwargs=workload_kwargs,
        seed=seed,
        n_txns=args.n_txns,
        rate_tps=args.rate_tps,
        warmup_fraction=0.0,
        num_shards=args.shards,
        topology=Topology(router=args.router),
        fault_plan=None if args.plan is None else named_plan(args.plan),
    )


def main(argv=None):
    args = build_parser().parse_args(argv)
    seeds = range(args.seed, args.seed + args.seeds)
    configs = [build_config(args, seed) for seed in seeds]
    executor = Executor(jobs=args.jobs)
    artifacts = executor.run(configs)
    first = artifacts[0]
    stats = first.cluster_stats

    print("engine=%s shards=%d router=%s seed=%d n_txns=%d plan=%s jobs=%d"
          % (args.engine, args.shards, args.router, args.seed,
             args.n_txns, args.plan or "none", args.jobs))
    print("single_home=%d cross_shard=%d committed=%d failed=%d"
          % (stats["single_home_txns"], stats["cross_shard_txns"],
             first.committed_count, first.failed_txns))

    hists = first.metrics_snapshot()["histograms"]
    for name in ("cluster.prepare_wait", "cluster.commit_wait"):
        stats_row = hists.get(name, {"count": 0})
        if stats_row["count"]:
            print("%s: count=%d mean=%.0fus p99=%.0fus"
                  % (name, stats_row["count"], stats_row["mean"],
                     stats_row["p99"]))
        else:
            print("%s: count=0" % (name,))
    for node_id in range(args.shards):
        node = first.node_metrics_snapshot(node_id)["counters"]
        print("  node%d: committed=%d branches_committed=%d"
              % (node_id,
                 node.get("%s.txns_committed" % args.engine, 0),
                 node.get("%s.branches_committed" % args.engine, 0)))
    for label, counts in (("aborts", first.abort_counts),
                          ("failed", first.failed_counts)):
        for reason in sorted(counts):
            print("  %s.%s=%d" % (label, reason, counts[reason]))
    summary = first.summary
    print("latency: mean=%.0fus p99=%.0fus variance=%.3g"
          % (summary.mean, summary.p99, summary.variance))
    digests = [run_digest(artifact) for artifact in artifacts]
    print("digest=%s" % (digests[0],))
    for seed, digest in list(zip(seeds, digests))[1:]:
        print("digest seed=%d %s" % (seed, digest))

    if args.out:
        jsonl = first.event_log_jsonl()
        with open(args.out, "w") as fh:
            fh.write(jsonl)
        print("wrote %d events to %s" % (len(jsonl.splitlines()), args.out))

    if args.check_determinism:
        # A second, fully independent execution of every config (the
        # executor holds no cache here, so nothing is reused).
        rerun = [run_digest(a) for a in executor.run(configs)]
        for seed, one, two in zip(seeds, digests, rerun):
            if one != two:
                print("DETERMINISM FAILURE seed=%d: %s != %s"
                      % (seed, one, two))
                return 1
        print("determinism check passed (two runs, identical digests)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
