#!/usr/bin/env python
"""Assemble bench_output.txt from split benchmark runs.

The full ``pytest benchmarks/ --benchmark-only`` session exceeds this
environment's single-command time limit, so CI-style runs execute the
suite in parts; this script concatenates the part logs in benchmark-file
order with a header.
"""

import sys
from pathlib import Path

HEADER = """\
================================================================================
Benchmark suite: paper-reproduction tables and figures
Command equivalent: pytest benchmarks/ --benchmark-only -s -q
(Executed in parts; concatenated in file order.  Where a later part
re-runs a file that failed in an earlier part — fig4/fig5 in part2 were
re-run as parts 3/4 after a WAL-volume calibration fix and a
probe-budget fix — the later part supersedes.)
================================================================================
"""


def main():
    out = Path("/root/repo/bench_output.txt")
    parts = [Path(p) for p in sys.argv[1:]] or sorted(
        Path("/root/repo").glob("bench_output_part*.txt")
    )
    chunks = [HEADER]
    for part in parts:
        chunks.append("\n----- %s -----\n" % part.name)
        chunks.append(part.read_text())
    out.write_text("".join(chunks))
    print("wrote %s (%d bytes from %d parts)" % (out, out.stat().st_size, len(parts)))


if __name__ == "__main__":
    main()
