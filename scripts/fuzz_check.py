#!/usr/bin/env python
"""Seeded chaos fuzzing against the correctness oracles.

Usage::

    PYTHONPATH=src python scripts/fuzz_check.py --seeds 25
    PYTHONPATH=src python scripts/fuzz_check.py --start 100 --seeds 50
    PYTHONPATH=src python scripts/fuzz_check.py --seeds 200 --jobs 4

Each seed deterministically generates one (engine, workload, topology,
scheduler, fault-plan) configuration via ``repro.check.fuzz.make_case``,
runs it with history recording on, and feeds the history to every
oracle (serializability, 2PC atomicity, lock-interval invariants).

On a violation the fuzzer shrinks the case — fewer transactions, no
faults, fewer shards — and prints a ready-to-paste pytest reproducer,
then exits 1.  Exit 0 means every seed came back clean.

CI runs this with a tiny budget (the ``check-smoke`` job); longer local
sweeps just raise ``--seeds``.
"""

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.check.fuzz import fuzz_many


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="fuzz the simulator against the correctness oracles"
    )
    parser.add_argument(
        "--seeds", type=int, default=25,
        help="number of consecutive seeds to run (default 25)",
    )
    parser.add_argument(
        "--start", type=int, default=0,
        help="first seed (default 0)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the seed sweep (default 1); the "
             "cases are independent, so reports are identical at any "
             "job count",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="on failure, skip shrinking and print the raw case",
    )
    args = parser.parse_args(argv)

    seeds = range(args.start, args.start + args.seeds)
    engines_seen = {}
    shard_counts = {}
    fault_kinds = {}
    failures = []
    t0 = time.time()
    reports = fuzz_many(
        seeds, jobs=args.jobs, shrink_on_failure=not args.no_shrink
    )
    for report in reports:
        case = report.case
        engines_seen[case.engine] = engines_seen.get(case.engine, 0) + 1
        shard_counts[case.num_shards] = shard_counts.get(case.num_shards, 0) + 1
        fault_kinds[case.fault_kind] = fault_kinds.get(case.fault_kind, 0) + 1
        status = "FAIL %d violation(s)" % len(report.violations) if report.failed else "ok"
        print(
            "seed %4d  %-8s %-5s shards=%d fault=%-10s n=%-3d  %s"
            % (
                report.seed, case.engine, case.workload, case.num_shards,
                case.fault_kind or "none", case.n_txns, status,
            )
        )
        if report.failed:
            failures.append(report)
            print()
            print("shrunk to: %r" % (report.shrunk,))
            print("--- reproducer " + "-" * 50)
            print(report.reproducer)
            print("-" * 65)

    elapsed = time.time() - t0
    print()
    print(
        "ran %d seed(s) in %.1fs  engines=%s shards=%s faults=%s"
        % (
            len(seeds), elapsed,
            dict(sorted(engines_seen.items())),
            dict(sorted(shard_counts.items())),
            dict(sorted(fault_kinds.items())),
        )
    )
    if failures:
        print("%d seed(s) FAILED: %s" % (
            len(failures), [r.seed for r in failures],
        ))
        return 1
    print("all seeds clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
