#!/usr/bin/env python
"""Regenerate the kernel-equivalence golden digests.

Usage::

    PYTHONPATH=src python scripts/gen_equivalence_goldens.py

Writes ``tests/goldens/equivalence_digests.json``: one SHA-256 digest
per (engine, seed, telemetry) cell plus one fault-plan run, each
covering the run's full observable output (exact latency sequence,
final virtual clock, metrics snapshot, abort/failure/fault counts —
see ``repro.bench.digest``).

These goldens were captured from the *pre-optimisation* kernel and are
the contract every kernel fast path must honour: same (config, seed) ⇒
byte-identical RunResult.  Only regenerate them for an intentional
semantic change to the simulation (new engine behaviour, workload fix),
never to make a performance patch pass.
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench import paperconfig as pc
from repro.bench.digest import run_digest
from repro.bench.runner import run_experiment
from repro.faults import named_plan

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "..", "tests", "goldens",
    "equivalence_digests.json",
)

SEEDS = (7, 21, 99)
N_TXNS = 250


def golden_configs():
    """Yield (key, ExperimentConfig) pairs for every golden cell."""
    factories = {
        "mysql": lambda **kw: pc.mysql_128wh_experiment("VATS", **kw),
        "postgres": pc.postgres_experiment,
        "voltdb": pc.voltdb_experiment,
    }
    for engine, factory in sorted(factories.items()):
        for seed in SEEDS:
            base = factory(seed=seed, n_txns=N_TXNS)
            for telemetry in (True, False):
                key = "%s/seed%d/telemetry-%s" % (
                    engine, seed, "on" if telemetry else "off")
                yield key, base.replaced(telemetry=telemetry)
    # One chaos run: the fault subsystem's scheduling (extra fault
    # processes, retries, crash-restarts) must survive the fast paths too.
    chaos = pc.mysql_128wh_experiment(
        "VATS", seed=SEEDS[0], n_txns=N_TXNS,
    ).replaced(fault_plan=named_plan("full-chaos"))
    yield "mysql/seed7/full-chaos", chaos


def main():
    digests = {}
    for key, config in golden_configs():
        digests[key] = run_digest(run_experiment(config))
        print("%s  %s" % (digests[key], key))
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w") as fh:
        json.dump(digests, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("wrote %d digests to %s" % (len(digests), GOLDEN_PATH))
    return 0


if __name__ == "__main__":
    sys.exit(main())
