#!/usr/bin/env python
"""Run a named fault plan against an engine and dump its telemetry.

Usage::

    PYTHONPATH=src python scripts/run_fault_plan.py full-chaos
    PYTHONPATH=src python scripts/run_fault_plan.py io-errors \\
        --engine postgres --n-txns 500 --seed 7 --out events.jsonl
    PYTHONPATH=src python scripts/run_fault_plan.py full-chaos \\
        --seeds 16 --jobs 4

Prints per-reason abort/failure counts, injected-fault totals and the
latency summary; ``--out`` writes the structured telemetry event log as
JSON lines (one event per line, keys sorted — byte-comparable across
runs with the same seed and plan).

``--seeds N`` fans the same plan out over N consecutive run seeds
(``--seed`` up to ``--seed + N - 1``) through the execution layer
(``repro.exec``); ``--jobs`` sets the process-pool width.  The per-seed
runs are independent and deterministic, so the report is identical at
any job count.
"""

import argparse
import sys

from repro.bench.runner import ExperimentConfig
from repro.exec import Executor
from repro.faults import NAMED_PLANS, named_plan


def build_parser():
    parser = argparse.ArgumentParser(
        description="Run one deterministic fault plan and report the damage."
    )
    parser.add_argument(
        "plan",
        choices=sorted(NAMED_PLANS) + ["none"],
        help="named fault plan from repro.faults (or 'none' for a baseline)",
    )
    parser.add_argument("--engine", default="mysql",
                        choices=["mysql", "postgres", "voltdb"])
    parser.add_argument("--workload", default="tpcc")
    parser.add_argument("--n-txns", type=int, default=600)
    parser.add_argument("--rate-tps", type=float, default=500.0)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--seeds", type=int, default=1,
                        help="fan out over this many consecutive seeds "
                             "(default 1)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the seed fan-out "
                             "(default 1)")
    parser.add_argument("--out", metavar="FILE",
                        help="write the telemetry event log (JSONL) here; "
                             "first seed only with --seeds > 1")
    return parser


def report_one(seed, artifact):
    print("committed=%d failed=%d shed=%d" % (
        artifact.committed_count, artifact.failed_txns, artifact.shed_txns))
    for label, counts in (("aborts", artifact.abort_counts),
                          ("failed", artifact.failed_counts)):
        for reason in sorted(counts):
            print("  %s.%s=%d" % (label, reason, counts[reason]))
    for fault, count in sorted(artifact.fault_counts.items()):
        print("  faults.%s=%d" % (fault, count))
    summary = artifact.summary
    print("latency: mean=%.0fus p99=%.0fus variance=%.3g"
          % (summary.mean, summary.p99, summary.variance))


def main(argv=None):
    args = build_parser().parse_args(argv)
    plan = None if args.plan == "none" else named_plan(args.plan)
    seeds = range(args.seed, args.seed + args.seeds)
    configs = [
        ExperimentConfig(
            engine=args.engine,
            workload=args.workload,
            seed=seed,
            n_txns=args.n_txns,
            rate_tps=args.rate_tps,
            warmup_fraction=0.0,
            fault_plan=plan,
        )
        for seed in seeds
    ]
    artifacts = Executor(jobs=args.jobs).run(configs)

    print("plan=%s engine=%s workload=%s n_txns=%d seeds=%s jobs=%d"
          % (args.plan, args.engine, args.workload, args.n_txns,
             "%d..%d" % (seeds[0], seeds[-1]), args.jobs))
    for seed, artifact in zip(seeds, artifacts):
        if args.seeds > 1:
            print("-- seed %d" % (seed,))
        report_one(seed, artifact)
    if args.seeds > 1:
        means = [a.summary.mean for a in artifacts]
        committed = sum(a.committed_count for a in artifacts)
        print("aggregate: seeds=%d committed=%d mean(mean)=%.0fus"
              % (args.seeds, committed, sum(means) / len(means)))

    if args.out:
        jsonl = artifacts[0].event_log_jsonl()
        with open(args.out, "w") as fh:
            fh.write(jsonl)
        print("wrote %d events to %s" % (len(jsonl.splitlines()), args.out))
    return 0


if __name__ == "__main__":
    sys.exit(main())
