#!/usr/bin/env python
"""Run a named fault plan against an engine and dump its telemetry.

Usage::

    PYTHONPATH=src python scripts/run_fault_plan.py full-chaos
    PYTHONPATH=src python scripts/run_fault_plan.py io-errors \\
        --engine postgres --n-txns 500 --seed 7 --out events.jsonl

Prints per-reason abort/failure counts, injected-fault totals and the
latency summary; ``--out`` writes the structured telemetry event log as
JSON lines (one event per line, keys sorted — byte-comparable across
runs with the same seed and plan).
"""

import argparse
import sys

from repro.bench.runner import ExperimentConfig, run_experiment
from repro.faults import NAMED_PLANS, named_plan


def build_parser():
    parser = argparse.ArgumentParser(
        description="Run one deterministic fault plan and report the damage."
    )
    parser.add_argument(
        "plan",
        choices=sorted(NAMED_PLANS) + ["none"],
        help="named fault plan from repro.faults (or 'none' for a baseline)",
    )
    parser.add_argument("--engine", default="mysql",
                        choices=["mysql", "postgres", "voltdb"])
    parser.add_argument("--workload", default="tpcc")
    parser.add_argument("--n-txns", type=int, default=600)
    parser.add_argument("--rate-tps", type=float, default=500.0)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--out", metavar="FILE",
                        help="write the telemetry event log (JSONL) here")
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    plan = None if args.plan == "none" else named_plan(args.plan)
    config = ExperimentConfig(
        engine=args.engine,
        workload=args.workload,
        seed=args.seed,
        n_txns=args.n_txns,
        rate_tps=args.rate_tps,
        warmup_fraction=0.0,
        fault_plan=plan,
    )
    result = run_experiment(config)

    committed = len(result.log.committed)
    print("plan=%s engine=%s workload=%s seed=%d n_txns=%d"
          % (args.plan, args.engine, args.workload, args.seed, args.n_txns))
    print("committed=%d failed=%d shed=%d" % (
        committed, result.failed_txns, result.shed_txns))
    for label, counts in (("aborts", result.abort_counts),
                          ("failed", result.failed_counts)):
        for reason in sorted(counts):
            print("  %s.%s=%d" % (label, reason, counts[reason]))
    for fault, count in sorted(result.fault_counts.items()):
        print("  faults.%s=%d" % (fault, count))
    summary = result.summary
    print("latency: mean=%.0fus p99=%.0fus variance=%.3g"
          % (summary.mean, summary.p99, summary.variance))

    if args.out:
        jsonl = result.event_log_jsonl()
        with open(args.out, "w") as fh:
            fh.write(jsonl)
        print("wrote %d events to %s" % (len(jsonl.splitlines()), args.out))
    return 0


if __name__ == "__main__":
    sys.exit(main())
