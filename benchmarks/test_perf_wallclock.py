"""Wall-clock throughput of the simulation kernel (``perf_bench``).

These are *measurements*, not invariants of the paper: they time the
dispatch loop on the fixed macro-workloads and compare against the
committed smoke baseline in ``BENCH_PERF.json`` with the same loose
tolerance the CI perf-smoke job uses.  Skipped by default — run with
``pytest benchmarks/test_perf_wallclock.py -m perf_bench``.
"""

import json
import os

import pytest

from repro.bench import perf
from repro.sim.refkernel import ReferenceSimulator

BENCH_PERF = os.path.join(os.path.dirname(__file__), "..", "BENCH_PERF.json")
SMOKE_N_TXNS = 200


def _smoke_baseline():
    if not os.path.exists(BENCH_PERF):
        pytest.skip("no committed BENCH_PERF.json")
    with open(BENCH_PERF) as fh:
        report = json.load(fh)
    baseline = report.get("smoke_baseline")
    if not baseline:
        pytest.skip("no smoke_baseline section in BENCH_PERF.json")
    return baseline


@pytest.mark.perf_bench
def test_macro_throughput_within_baseline_tolerance():
    baseline = _smoke_baseline()
    measured = perf.measure_macros(n_txns=SMOKE_N_TXNS, repeats=3)
    failures = []
    for key, entry in sorted(measured.items()):
        base = baseline.get(key)
        if base is None:
            continue
        message = perf.check_regression(
            base["events_per_sec"], entry["events_per_sec"]
        )
        print("  %-32s %10.0f ev/s (baseline %10.0f)"
              % (key, entry["events_per_sec"], base["events_per_sec"]))
        if message is not None:
            failures.append("%s: %s" % (key, message))
    assert not failures, "\n".join(failures)


@pytest.mark.perf_bench
def test_fast_kernel_not_slower_than_reference():
    """Interleaved in-process A/B of the two kernels on the MySQL macro.

    The fast kernel should comfortably beat the verbatim reference
    loop; the assertion is deliberately loose (>=1.0x) because this can
    run on arbitrarily noisy machines — the committed numbers in
    BENCH_PERF.json are the real record.
    """
    config = perf.macro_config(
        "mysql-tpcc-vats", n_txns=SMOKE_N_TXNS, telemetry=False
    )
    fast = perf.measure(config, repeats=3)
    reference = perf.measure(config, repeats=3,
                             simulator_cls=ReferenceSimulator)
    ratio = fast["events_per_sec"] / reference["events_per_sec"]
    print("  fast kernel %.0f ev/s vs reference %.0f ev/s (%.2fx)"
          % (fast["events_per_sec"], reference["events_per_sec"], ratio))
    assert fast["dispatches"] == reference["dispatches"]
    assert ratio >= 1.0
