"""Replication cost appearing in the variance tree, scaling with knobs.

The paper's methodology demands that anything moving latency variance
show up as a factor in the tree; replication adds two such factors, each
with a knob that provably drives it:

- **Commit-ack waits** (``repl_ack_wait``): a sync/semisync commit holds
  its locks until the replica ack quota arrives (lossless-semisync,
  AFTER_SYNC), so every commit pays at least one replica network round
  trip.  Slower replica links mean longer ack waits — the
  ``repl_ack_wait`` variance share must rise monotonically with the
  fabric's one-way latency.
- **Failover stalls** (``promote_wait``): when the primary crashes, the
  promoted replica must replay its shipped-but-unapplied tail before
  service resumes; transactions queued across the outage record the
  stall.  A ``replica_lag`` fault window grows that tail, so the
  ``promote_wait`` share must rise monotonically with the injected
  per-record stall.

Plus the lag itself: each replica's staleness gauge high-water must rise
monotonically with the injected apply stall — that is the knob the
``replica_ok`` staleness bound defends against.

All smoke benchmarks (``smoke_bench``): tiny deterministic runs,
monotonicity asserted exactly — the same seed replays byte-identically.
"""

import json

import pytest

from repro.bench.runner import ExperimentConfig, run_experiment
from repro.cluster.coordinator import Topology
from repro.core.variance_tree import VarianceTree
from repro.faults.plan import FaultPlan
from repro.replication import ReplicationConfig
from repro.sim.disk import DiskConfig
from repro.sim.network import NetworkConfig

pytestmark = pytest.mark.smoke_bench


def replicated_config(mode, **overrides):
    # One shard, two replicas: the network carries only replication
    # traffic, so the ack-wait knob sweeps are clean of 2PC noise.
    fields = dict(
        engine="mysql",
        workload="tpcc",
        workload_kwargs={"warehouses": 8},
        seed=31,
        n_txns=300,
        rate_tps=500.0,
        warmup_fraction=0.0,
        replicas=2,
        replication=ReplicationConfig(mode=mode, ack_k=1),
    )
    fields.update(overrides)
    return ExperimentConfig(**fields)


def _share(result, frame):
    return VarianceTree(result.traces).name_shares().get(frame, 0.0)


def test_repl_ack_wait_share_grows_with_replica_latency():
    """Slower replica links => longer commit-ack round trips => bigger
    ``repl_ack_wait`` slice.  Sync mode: every commit pays the wait."""
    rows = []
    for latency in (120.0, 400.0, 1_200.0, 3_000.0):
        topology = Topology(
            network=NetworkConfig(latency_mean=latency, tail_prob=0.0)
        )
        result = run_experiment(
            replicated_config("sync", topology=topology)
        )
        rows.append((latency, _share(result, "repl_ack_wait")))
    print()
    for latency, share in rows:
        print(
            "  replica link latency=%7.0fus  repl_ack_wait share=%.4f%%"
            % (latency, 100.0 * share)
        )
    assert rows[0][1] > 0.0, "ack waits must appear in the tree at all"
    for (_l0, earlier), (_l1, later) in zip(rows, rows[1:]):
        assert later > earlier, (
            "repl_ack_wait share must grow with replica latency: %r" % (rows,)
        )


def test_async_mode_pays_no_ack_wait():
    """The async control: same run, no ack quota, no ``repl_ack_wait``
    frame no matter how slow the replica links are."""
    topology = Topology(
        network=NetworkConfig(latency_mean=3_000.0, tail_prob=0.0)
    )
    result = run_experiment(replicated_config("async", topology=topology))
    assert _share(result, "repl_ack_wait") == 0.0


def test_replica_staleness_grows_with_apply_stall():
    """A ``replica_lag`` window stalls the apply loops; each replica's
    staleness gauge high-water must rise with the injected stall."""
    rows = []
    for stall in (200.0, 1_000.0, 4_000.0):
        plan = FaultPlan(
            name="bench-lag",
            replica_lag_windows=((0.0, 1_000_000.0),),
            replica_lag_stall_us=stall,
        )
        result = run_experiment(
            replicated_config("async", fault_plan=plan)
        )
        lag = max(
            result.sim.telemetry.gauge("repl.s0r%d.lag_us" % idx).max
            for idx in (0, 1)
        )
        rows.append((stall, lag))
    print()
    for stall, lag in rows:
        print(
            "  apply stall=%7.0fus  max replica staleness=%9.1fus"
            % (stall, lag)
        )
    assert rows[0][1] > 0.0
    for (_s0, earlier), (_s1, later) in zip(rows, rows[1:]):
        assert later > earlier, (
            "staleness must grow with the apply stall: %r" % (rows,)
        )


def _promoted_event(result):
    for line in result.event_log_jsonl().splitlines():
        if '"repl.promoted"' in line:
            return json.loads(line)
    raise AssertionError("run never promoted a replica")


def test_promote_wait_share_grows_with_unapplied_tail():
    """Crash the primary behind a lagging apply loop: the promoted
    replica's tail replay stalls queued transactions, and a bigger lag
    stall means a bigger tail, a longer replay, a bigger
    ``promote_wait`` slice.  The relay disk is deliberately slow so the
    replay is the dominant part of the outage."""
    rows = []
    for stall in (500.0, 1_500.0, 3_000.0):
        plan = FaultPlan(
            name="bench-failover",
            node_crash_times=((0, 200_000.0),),
            replica_lag_windows=((0.0, 200_000.0),),
            replica_lag_stall_us=stall,
        )
        config = replicated_config(
            "async",
            seed=11,
            rate_tps=800.0,
            fault_plan=plan,
            replication=ReplicationConfig(
                mode="async",
                apply_disk=DiskConfig(
                    bandwidth_bytes_per_us=2.0, read_base_mean=400.0
                ),
            ),
            check=True,
        )
        result = run_experiment(config)
        assert result.check_report() == []
        event = _promoted_event(result)
        rows.append((stall, event["tail_bytes"], _share(result, "promote_wait")))
    print()
    for stall, tail, share in rows:
        print(
            "  apply stall=%7.0fus  unapplied tail=%7d B  "
            "promote_wait share=%.4f%%" % (stall, tail, 100.0 * share)
        )
    assert rows[0][2] > 0.0, "failover stall must appear in the tree"
    for earlier, later in zip(rows, rows[1:]):
        assert later[1] > earlier[1], (
            "the unapplied tail must grow with the stall: %r" % (rows,)
        )
        assert later[2] > earlier[2], (
            "promote_wait share must grow with the tail: %r" % (rows,)
        )
