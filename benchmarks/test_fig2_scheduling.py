"""Figure 2 — effect of the scheduling algorithm on MySQL (TPC-C).

Paper: replacing FCFS with VATS gives ratios (FCFS/alg) of 6.3x mean,
5.6x variance, 2.0x p99; RS lands between FCFS and VATS on TPC-C (and
is catastrophically worse on SEATS — see the SEATS assertion below).

Expected shape: VATS >= FCFS on all three metrics; RS does not beat
VATS; on SEATS RS is clearly the worst choice.
"""

from benchmarks.conftest import cached_run, median_ratios, print_paper_row
from repro.bench import paperconfig as pc
from repro.bench.compare import ratios


def scheduler_ratios(scheduler, seeds=pc.SEEDS, workload="tpcc"):
    n_txns = pc.N_TXNS_SCHED if workload == "tpcc" else pc.N_TXNS
    rows = []
    for seed in seeds:
        fcfs = cached_run(
            pc.mysql_workload_experiment(workload, "FCFS", seed=seed, n_txns=n_txns)
        )
        alg = cached_run(
            pc.mysql_workload_experiment(workload, scheduler, seed=seed, n_txns=n_txns)
        )
        rows.append(ratios(fcfs.latencies, alg.latencies))
    return median_ratios(rows)


def test_fig2_vats_vs_fcfs(benchmark):
    measured = benchmark.pedantic(
        lambda: scheduler_ratios("VATS"), rounds=1, iterations=1
    )
    print()
    print_paper_row("FCFS/VATS (TPC-C)", measured, "mean 6.3x var 5.6x p99 2.0x")
    assert measured["mean"] > 1.0
    assert measured["variance"] > 1.15
    assert measured["p99"] > 1.0


def test_fig2_rs_vs_fcfs(benchmark):
    measured = benchmark.pedantic(
        lambda: scheduler_ratios("RS"), rounds=1, iterations=1
    )
    print()
    print_paper_row("FCFS/RS (TPC-C)", measured, "between FCFS and VATS")
    # RS must not beat VATS.
    vats = scheduler_ratios("VATS")
    assert measured["variance"] <= vats["variance"] * 1.1


def test_fig2_rs_pathological_on_seats(benchmark):
    """Paper: 'For SEATS, RS performs about 2 orders of magnitude worse
    than other algorithms.'  Shape: RS is the worst scheduler on SEATS."""

    def run():
        rs = scheduler_ratios("RS", seeds=pc.SEEDS[:2], workload="seats")
        vats = scheduler_ratios("VATS", seeds=pc.SEEDS[:2], workload="seats")
        return rs, vats

    rs, vats = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print_paper_row("FCFS/RS (SEATS)", rs, "RS much worse than others")
    print_paper_row("FCFS/VATS (SEATS)", vats, "mean 1.1x var 1.3x p99 1.1x")
    assert rs["variance"] <= vats["variance"]
