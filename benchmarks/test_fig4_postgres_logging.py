"""Figure 4 — parallel logging (left) and WAL block size (right).

Paper:
- Parallel logging lowers Postgres's mean, variance and p99 by 2.4x,
  1.8x and 1.3x respectively.
- Increasing the block size from the 8 KB default helps "but only to a
  certain extent": the 4k-baseline ratios improve through 8K-32K and the
  benefit collapses (or reverses) at 64K, where padding overtakes the
  saved per-call overhead.
"""

import pytest

from benchmarks.conftest import cached_run, median_ratios, print_paper_row
from repro.bench import paperconfig as pc
from repro.bench.compare import ratios


def test_fig4_left_parallel_logging(benchmark):
    def run():
        rows = []
        for seed in pc.SEEDS:
            single = cached_run(pc.postgres_experiment(parallel_wal=False, seed=seed))
            parallel = cached_run(pc.postgres_experiment(parallel_wal=True, seed=seed))
            rows.append(ratios(single.latencies, parallel.latencies))
        return median_ratios(rows)

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print_paper_row(
        "Original/Parallel", measured, "mean 2.4x var 1.8x p99 1.3x"
    )
    assert measured["mean"] > 1.5
    assert measured["variance"] > 1.0
    assert measured["p99"] > 1.0


def test_fig4_right_block_size(benchmark):
    """Ratios of the 4K baseline over each block size."""

    def run():
        out = {}
        base = cached_run(pc.postgres_experiment(block_size=4096, seed=pc.SEEDS[0]))
        for size in (8192, 16384, 32768, 65536):
            cand = cached_run(pc.postgres_experiment(block_size=size, seed=pc.SEEDS[0]))
            out[size] = ratios(base.latencies, cand.latencies)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for size, measured in sorted(out.items()):
        print_paper_row("4K/%dK" % (size // 1024), measured, "peaks mid-range")
    # Shape: some mid-range block size beats 4K on variance...
    best_mid = max(out[8192]["variance"], out[16384]["variance"], out[32768]["variance"])
    assert best_mid > 1.0
    # ...and 64K is no better than the best mid-range size (the padding
    # penalty caps the benefit).
    assert out[65536]["variance"] <= best_mid * 1.05
