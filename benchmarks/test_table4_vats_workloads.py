"""Table 4 — VATS vs FCFS across the five workloads.

Paper (ratios FCFS / VATS):

    Contended      TPC-C     mean 6.3x  var 5.6x  p99 2.0x
                   SEATS     mean 1.1x  var 1.3x  p99 1.1x
                   TATP      mean 1.2x  var 1.6x  p99 1.3x
    No contention  Epinions  mean 1.4x  var 2.6x  p99 1.0x
                   YCSB      mean 1.0x  var 1.1x  p99 1.1x

Expected shape: VATS is consistently at least as good as FCFS; the
gains concentrate on the contended workloads and vanish (ratios ~1) on
YCSB, which has no lock contention at all.
"""

import pytest

from benchmarks.conftest import cached_run, median_ratios, print_paper_row
from repro.bench import paperconfig as pc
from repro.bench.compare import ratios

PAPER = {
    "tpcc": "mean 6.3x var 5.6x p99 2.0x",
    "seats": "mean 1.1x var 1.3x p99 1.1x",
    "tatp": "mean 1.2x var 1.6x p99 1.3x",
    "epinions": "mean 1.4x var 2.6x p99 1.0x",
    "ycsb": "mean 1.0x var 1.1x p99 1.1x",
}

CONTENDED = ("tpcc", "seats", "tatp")
UNCONTENDED = ("epinions", "ycsb")


def workload_ratios(workload, seeds):
    # The flagship contended comparison needs long runs for its
    # heavy-tailed variance estimates to converge.
    n_txns = pc.N_TXNS_SCHED if workload == "tpcc" else pc.N_TXNS
    rows = []
    for seed in seeds:
        fcfs = cached_run(
            pc.mysql_workload_experiment(workload, "FCFS", seed=seed, n_txns=n_txns)
        )
        vats = cached_run(
            pc.mysql_workload_experiment(workload, "VATS", seed=seed, n_txns=n_txns)
        )
        rows.append(ratios(fcfs.latencies, vats.latencies))
    return median_ratios(rows)


@pytest.mark.parametrize("workload", CONTENDED)
def test_table4_contended(benchmark, workload):
    seeds = pc.SEEDS if workload == "tpcc" else pc.SEEDS[:2]
    measured = benchmark.pedantic(
        lambda: workload_ratios(workload, seeds), rounds=1, iterations=1
    )
    print()
    print_paper_row(workload, measured, PAPER[workload])
    # VATS never loses, and on the flagship workload it clearly wins.
    assert measured["variance"] > 0.9
    assert measured["mean"] > 0.95
    if workload == "tpcc":
        assert measured["variance"] > 1.15
        assert measured["p99"] > 1.0


@pytest.mark.parametrize("workload", UNCONTENDED)
def test_table4_uncontended(benchmark, workload):
    measured = benchmark.pedantic(
        lambda: workload_ratios(workload, pc.SEEDS[:2]), rounds=1, iterations=1
    )
    print()
    print_paper_row(workload, measured, PAPER[workload])
    # Without contention the choice of scheduler is immaterial.
    assert 0.8 < measured["mean"] < 1.3
    assert 0.6 < measured["variance"] < 1.7


def test_table4_contended_gains_exceed_uncontended(benchmark):
    def spread():
        tpcc = workload_ratios("tpcc", pc.SEEDS)
        ycsb = workload_ratios("ycsb", pc.SEEDS[:2])
        return tpcc, ycsb

    tpcc, ycsb = benchmark.pedantic(spread, rounds=1, iterations=1)
    assert tpcc["variance"] > ycsb["variance"]
