"""Shared machinery for the paper-reproduction benchmarks.

Each benchmark file regenerates one table or figure from the paper's
evaluation: it runs the calibrated experiment configurations from
``repro.bench.paperconfig``, prints the same rows/series the paper
reports (paper value alongside measured value), and asserts the *shape*
— who wins and roughly where — rather than absolute numbers, since the
substrate is a simulator rather than the authors' testbed.

Run with ``pytest benchmarks/ --benchmark-only``.  Results are cached
per session so that several benchmarks sharing a configuration (e.g.
the FCFS baseline) pay for it once.
"""

import pytest

from repro.bench.runner import run_experiment


def pytest_collection_modifyitems(config, items):
    # Wall-clock measurements (``perf_bench``) are noisy and prove
    # nothing on a loaded machine; they run only when asked for
    # explicitly (``-m perf_bench``), like the CI perf-smoke job does
    # via scripts/run_perf_bench.py.
    if config.getoption("-m"):
        return
    skip = pytest.mark.skip(
        reason="wall-clock measurement; run with -m perf_bench"
    )
    for item in items:
        if "perf_bench" in item.keywords:
            item.add_marker(skip)


_CACHE = {}


def cached_run(config):
    """Run an ExperimentConfig once per session.

    Keyed by the config's canonical content digest (repro.exec.schema)
    — the same identity the executor's on-disk artifact cache uses.
    The previous hand-rolled structural key (``_stable``/``_config_key``
    here) is gone; the schema covers every field by construction.
    Benchmarks get the live :class:`RunResult` (several poke at
    ``.history`` or ``.sim``), so the cache stays in-memory.
    """
    key = config.config_digest()
    if key not in _CACHE:
        _CACHE[key] = run_experiment(config)
    return _CACHE[key]


def median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def median_ratios(pairs):
    """Median of per-seed {mean, variance, p99} ratio dicts."""
    return {
        key: median([r[key] for r in pairs]) for key in ("mean", "variance", "p99")
    }


def print_paper_row(label, measured, paper, unit="x"):
    """One comparison line: measured vs the paper's reported value."""
    print(
        "  %-28s measured mean=%.2f%s var=%.2f%s p99=%.2f%s   (paper: %s)"
        % (
            label,
            measured["mean"],
            unit,
            measured["variance"],
            unit,
            measured["p99"],
            unit,
            paper,
        )
    )


@pytest.fixture(scope="session")
def run_cached():
    return cached_run
