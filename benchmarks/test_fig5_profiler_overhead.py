"""Figure 5 — TProfiler's overhead vs DTrace (left) and the number of
runs needed vs naive profiling (right).

Paper:
- Left: DTrace's latency/throughput overhead is far higher than
  TProfiler's and grows rapidly with the number of instrumented
  children; TProfiler stays below ~6%.
- Right: a naive profiler must decompose every factor; with MySQL's
  expanded call tree at ~2e15 nodes the run count is astronomically
  larger than TProfiler's handful of iterations.
"""

import pytest

from repro.bench import paperconfig as pc
from repro.bench.profiled import EngineProfiledSystem
from repro.core.dtrace import (
    DTRACE_PROBE_COST,
    TPROFILER_PROBE_COST,
    overhead_experiment,
)
from repro.core.profiler import NaiveProfiler, TProfiler

CHILD_COUNTS = (1, 5, 10, 20)


def test_fig5_left_overhead_vs_dtrace(benchmark):
    def run():
        system = EngineProfiledSystem(pc.mysql_128wh_experiment(n_txns=1500))
        tprof = overhead_experiment(system, CHILD_COUNTS, TPROFILER_PROBE_COST)
        dtrace = overhead_experiment(system, CHILD_COUNTS, DTRACE_PROBE_COST)
        return tprof, dtrace

    tprof, dtrace = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("  children   TProfiler lat-ovh    DTrace lat-ovh")
    for (n, t_lat, _t_tp), (_n, d_lat, _d_tp) in zip(tprof, dtrace):
        print("  %8d   %14.2f%%   %13.2f%%" % (n, 100 * t_lat, 100 * d_lat))
    # Shape: DTrace overhead dominates TProfiler's and grows with probe
    # count; TProfiler stays in the single digits.  At children=1 the
    # probes sit on once-per-transaction calls, so DTrace's signal is
    # ~0.2% of mean latency — below the trajectory perturbation any
    # instrumentation causes (probes shift lock-grant interleavings,
    # which moves mean latency by a few percent at 1500 transactions).
    # Allow that noise floor everywhere; where the signal clears it
    # (5+ children reach per-row functions) require strict domination.
    NOISE_FLOOR = 0.05
    for (n, t_lat, _), (_, d_lat, _) in zip(tprof, dtrace):
        assert d_lat > t_lat - NOISE_FLOOR
    for (n, t_lat, _), (_, d_lat, _) in zip(tprof[1:], dtrace[1:]):
        assert d_lat > t_lat
    assert dtrace[-1][1] > dtrace[0][1]  # grows with children
    assert tprof[-1][1] < 0.06  # paper: below 6%


def test_fig5_right_runs_needed(benchmark):
    # A run can carry only a handful of probes before instrumentation
    # distorts the latency profile (the premise of selective
    # instrumentation); the naive strategy pays that constraint on
    # *every* factor, TProfiler only on the variance-relevant path.
    PROBE_BUDGET = 3

    def run():
        system = EngineProfiledSystem(pc.mysql_128wh_experiment(n_txns=1500))
        profiler = TProfiler(system, k=5, max_iterations=10)
        result = profiler.profile()
        naive = NaiveProfiler(budget=PROBE_BUDGET)
        return (
            result.runs,
            naive.runs_needed(system.callgraph),
            naive.runs_needed(system.callgraph, expanded=True),
        )

    tprofiler_runs, naive_runs, naive_expanded = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print()
    print(
        "  runs (probe budget %d): TProfiler=%d, naive(static)=%d, "
        "naive(expanded tree)=%d"
        % (PROBE_BUDGET, tprofiler_runs, naive_runs, naive_expanded)
    )
    assert tprofiler_runs <= 10
    assert naive_runs >= tprofiler_runs
    # (On the abstracted ~20-function engine graph the expanded-tree
    # count is small too; the scale effect is exercised on MySQL-sized
    # and diamond-stack graphs below and in tests/test_callgraph.py.)
    assert naive_expanded >= 1


def test_fig5_right_scales_with_graph_size(benchmark):
    """On a MySQL-scale synthetic graph the naive run count explodes
    while TProfiler's stays bounded by its iteration cap."""
    from repro.core.callgraph import CallGraph

    def build_wide_graph(n_functions):
        graph = CallGraph("root")
        fanout = 30
        frontier = ["root"]
        count = 1
        level = 0
        while count < n_functions:
            nxt = []
            for parent in frontier:
                children = []
                for i in range(fanout):
                    if count >= n_functions:
                        break
                    name = "f_%d_%d" % (level, count)
                    children.append(name)
                    count += 1
                graph.add(parent, children)
                nxt.extend(children)
            frontier = nxt
            level += 1
        return graph

    def run():
        graph = build_wide_graph(30_000)  # MySQL's ~30K functions
        return NaiveProfiler(budget=100).runs_needed(graph)

    naive_runs = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("  naive runs on a 30K-function graph: %d (TProfiler cap: 10)" % naive_runs)
    assert naive_runs > 100
