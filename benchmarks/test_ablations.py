"""Ablations of the design choices DESIGN.md calls out.

Not paper figures — these probe the knobs inside the reproduced
mechanisms: VATS's granting rule, LLU's spin budget, the specificity
exponent in TProfiler's score, and the Lp order in the loss function.
"""

import itertools
import random

import pytest

from benchmarks.conftest import cached_run, median_ratios, print_paper_row
from repro.bench import paperconfig as pc
from repro.bench.compare import ratios
from repro.sim.stats import lp_norm


def test_ablation_vats_granting_rule(benchmark):
    """Theorem VATS (never grant on arrival) vs the shipped
    implementation (grant compatible arrivals).  The implementation
    should be at least as good on mean — that is why it shipped."""

    def run():
        rows_impl, rows_strict = [], []
        for seed in pc.SEEDS[:2]:
            fcfs = cached_run(pc.mysql_128wh_experiment("FCFS", seed=seed))
            impl = cached_run(pc.mysql_128wh_experiment("VATS", seed=seed))
            strict = cached_run(
                pc.mysql_128wh_experiment("VATS", seed=seed, strict_vats_arrival=True)
            )
            rows_impl.append(ratios(fcfs.latencies, impl.latencies))
            rows_strict.append(ratios(fcfs.latencies, strict.latencies))
        return median_ratios(rows_impl), median_ratios(rows_strict)

    impl, strict = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print_paper_row("VATS implemented", impl, "grant-compatible shipped")
    print_paper_row("VATS strict S_a", strict, "theorem variant")
    assert impl["mean"] >= strict["mean"] * 0.9


def test_ablation_cats_extension(benchmark):
    """The authors' follow-up scheduler (CATS, contention-aware): grant
    to the waiter blocking the most work.  It should be competitive with
    VATS under contention (their paper shows it winning at extreme
    contention; here we require it not to regress)."""

    def run():
        rows_cats, rows_vats = [], []
        for seed in pc.SEEDS[:2]:
            fcfs = cached_run(
                pc.mysql_workload_experiment("tpcc", "FCFS", seed=seed, n_txns=pc.N_TXNS_SCHED)
            )
            cats = cached_run(
                pc.mysql_workload_experiment("tpcc", "CATS", seed=seed, n_txns=pc.N_TXNS_SCHED)
            )
            vats = cached_run(
                pc.mysql_workload_experiment("tpcc", "VATS", seed=seed, n_txns=pc.N_TXNS_SCHED)
            )
            rows_cats.append(ratios(fcfs.latencies, cats.latencies))
            rows_vats.append(ratios(fcfs.latencies, vats.latencies))
        return median_ratios(rows_cats), median_ratios(rows_vats)

    cats, vats = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print_paper_row("FCFS/CATS", cats, "follow-up work: >= FCFS")
    print_paper_row("FCFS/VATS", vats, "this paper")
    assert cats["mean"] > 0.9
    assert cats["variance"] > 0.8


def test_ablation_llu_spin_timeout(benchmark):
    """Sweep the 0.01 ms abandon threshold: too short defers everything
    (LRU precision loss for nothing), too long degenerates to the mutex."""

    def run():
        out = {}
        base = cached_run(pc.mysql_2wh_experiment(lazy_lru=False, seed=pc.SEEDS[0]))
        for timeout in (1.0, 10.0, 100.0, 1000.0):
            llu = cached_run(
                pc.mysql_2wh_experiment(
                    lazy_lru=True, seed=pc.SEEDS[0], llu_spin_timeout=timeout
                )
            )
            out[timeout] = (
                ratios(base.latencies, llu.latencies),
                llu.engine.pool.llu_deferrals,
            )
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for timeout, (measured, deferrals) in sorted(out.items()):
        print(
            "  spin=%6.0fus var-ratio=%.2f deferrals=%d"
            % (timeout, measured["variance"], deferrals)
        )
    # Shorter budgets abandon more often.
    deferral_counts = [out[t][1] for t in sorted(out)]
    assert deferral_counts[0] >= deferral_counts[-1]
    # The paper's 10us choice is competitive with the best in the sweep.
    best = max(measured["variance"] for measured, _d in out.values())
    assert out[10.0][0]["variance"] >= best * 0.7


def test_ablation_specificity_exponent(benchmark):
    """Exponent 2 (the paper squares the height gap) vs exponent 1:
    squaring must rank the deep culprit above shallow aggregates."""
    from repro.bench.profiled import EngineProfiledSystem
    from repro.core.profiler import TProfiler

    def run():
        out = {}
        for exponent in (1, 2):
            system = EngineProfiledSystem(pc.mysql_128wh_experiment(n_txns=1500))
            profiler = TProfiler(
                system, k=5, max_iterations=8, specificity_exponent=exponent
            )
            result = profiler.profile()
            names = [row.name for row in result.top(4)]
            out[exponent] = names
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for exponent, names in out.items():
        print("  exponent=%d top factors: %s" % (exponent, names))
    # With the square, the leaf-level wait function must be on top of
    # every shallow ancestor that carries the same variance.
    top2 = out[2]
    assert any(n.startswith("os_event_wait") for n in top2[:2])
    assert "do_command" not in top2


@pytest.mark.parametrize("p", [1.0, 2.0, 4.0])
def test_ablation_lp_norm_order(benchmark, p):
    """Eldest-first optimality holds for every p >= 1 (Theorem 1); check
    the single-queue model at several orders."""

    def run():
        rng = random.Random(11)
        n = 5
        wins = 0
        trials = 60
        for _ in range(trials):
            ages = [rng.uniform(0.0, 100.0) for _ in range(n)]
            eldest = tuple(sorted(range(n), key=lambda i: -ages[i]))
            # Common random numbers: every order is evaluated against the
            # same per-position service draws (the proof's coupling).
            draws = [
                [rng.expovariate(0.1) for _ in range(n)] for _d in range(60)
            ]
            expected = {}
            for order in itertools.permutations(range(n)):
                total = 0.0
                for services in draws:
                    clock, lat = 0.0, [0.0] * n
                    for pos, idx in enumerate(order):
                        clock += services[pos]
                        lat[idx] = ages[idx] + clock
                    total += lp_norm(lat, p=p)
                expected[order] = total
            best = min(expected, key=expected.get)
            if expected[eldest] <= expected[best] * 1.001:
                wins += 1
        return wins, trials

    wins, trials = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("  p=%.0f: eldest-first within 2%% of best order in %d/%d menus" % (p, wins, trials))
    assert wins >= trials * 0.9
