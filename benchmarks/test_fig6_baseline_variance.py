"""Figure 6 / Appendix C.1 — how unpredictable stock engines are.

Paper (TPC-C, out-of-the-box):

    MySQL:    std = 1.7x mean, p99 = 7.5x mean
    Postgres: std = 1.9x mean, p99 = 11.0x mean
    VoltDB:   std = 3.3x mean, p99 = 6.1x mean

and the disparity persists even running only fixed-size NewOrder
transactions (the variance is not just work mix).

Expected shape: every engine's p99 is several times its mean; the
fixed-work variant remains disperse (cv and p99/mean stay large).
"""

import pytest

from benchmarks.conftest import cached_run
from repro.bench import paperconfig as pc
from repro.core.report import render_summary_table


def test_fig6_dispersion_all_engines(benchmark):
    def run():
        return {
            "MySQL": cached_run(pc.mysql_128wh_experiment()),
            "Postgres": cached_run(pc.postgres_experiment()),
            "VoltDB": cached_run(pc.voltdb_experiment()),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        render_summary_table(
            "Figure 6 — out-of-the-box dispersion (paper: std 1.7-3.3x mean, "
            "p99 6.1-11x mean)",
            [(name, r.summary) for name, r in results.items()],
        )
    )
    for name, result in results.items():
        s = result.summary
        assert s.p99 > 3.0 * s.mean, name
        assert s.cv > 0.5, name


def test_fig6_c1_fixed_work_still_disperse(benchmark):
    """Appendix C.1: pure NewOrder with a fixed line count still shows
    large dispersion — the variance is avoidable, not inherent work."""

    def run():
        config = pc.mysql_128wh_experiment()
        kwargs = dict(config.workload_kwargs)
        kwargs["fixed_order_lines"] = 10
        return cached_run(config.replaced(workload_kwargs=kwargs))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    new_orders = result.latencies_of("NewOrder")
    from repro.sim.stats import summarize

    s = summarize(new_orders)
    print()
    print(
        "  fixed-work NewOrder: cv=%.2f p99/mean=%.1f (paper: ratios stay similar)"
        % (s.cv, s.p99 / s.mean)
    )
    assert s.cv > 0.4
    assert s.p99 > 2.5 * s.mean
