"""Fault-driven variance appearing in the variance tree.

The paper's methodology is top-down: whatever moves latency variance
must show up as a factor in the variance tree, whether the cause is
inherent (flush tails, lock waits) or injected.  These smoke tests run
the deterministic chaos subsystem (``repro.faults``) at tiny N and
check two things:

- chaos runs are exactly as reproducible as clean runs (byte-identical
  telemetry under a fixed seed + plan), and
- a log-device brownout window materialises in the tree where the paper
  says disk variance lives — ``fil_flush``'s share of overall variance
  rises sharply against the un-faulted baseline.
"""

import json

import pytest

from repro.bench.runner import ExperimentConfig, run_experiment
from repro.core.variance_tree import VarianceTree
from repro.faults import named_plan

pytestmark = pytest.mark.smoke_bench

N_TXNS = 600

MYSQL_COMMIT_PATH = (
    "do_command",
    "dispatch_command",
    "mysql_execute_command",
    "innobase_commit",
    "trx_commit",
    "log_write_up_to",
    "fil_flush",
)


def chaos_config(plan=None, **overrides):
    # 64 warehouses and a moderate offered rate: enough contention to be
    # realistic, but lock waits and queueing do not drown the disk signal
    # the brownout test looks for.
    fields = dict(
        engine="mysql",
        workload="tpcc",
        workload_kwargs={"warehouses": 64},
        seed=31,
        n_txns=N_TXNS,
        rate_tps=200.0,
        warmup_fraction=0.0,
        instrumented=MYSQL_COMMIT_PATH,
        fault_plan=plan,
    )
    fields.update(overrides)
    return ExperimentConfig(**fields)


def test_chaos_run_deterministic_and_noisier_than_baseline():
    config = chaos_config(plan=named_plan("full-chaos", io_error_prob=0.03))
    first = run_experiment(config)
    second = run_experiment(config)
    assert first.event_log_jsonl() == second.event_log_jsonl()
    assert json.dumps(first.metrics_snapshot(), sort_keys=True) == json.dumps(
        second.metrics_snapshot(), sort_keys=True
    )
    assert first.latencies == second.latencies
    assert first.sim.faults.io_errors > 0
    baseline = run_experiment(chaos_config(plan=None))
    print()
    print(
        "  full-chaos: io_errors=%d crashes=%d  variance %.3g vs baseline %.3g"
        % (
            first.sim.faults.io_errors,
            first.sim.faults.worker_crashes,
            first.summary.variance,
            baseline.summary.variance,
        )
    )
    # Chaos must actually hurt: injected faults add latency variance.
    assert first.summary.variance > baseline.summary.variance


def test_log_brownout_surfaces_as_fil_flush_variance():
    """A brownout window on the log device shows up exactly where the
    paper's Table 1 puts disk variance: in ``fil_flush``'s share."""
    baseline = run_experiment(chaos_config(plan=None))
    brownout = run_experiment(
        chaos_config(
            plan=named_plan(
                "log-brownout",
                # Half the run (600 txns at 200 tps = 3 s of virtual time)
                # spent in brownout: flushes become bimodal.
                brownout_windows=((750_000.0, 1_500_000.0),),
                brownout_factor=10.0,
            )
        )
    )
    base_share = VarianceTree(baseline.traces).name_shares().get("fil_flush", 0.0)
    chaos_tree = VarianceTree(brownout.traces)
    chaos_share = chaos_tree.name_shares().get("fil_flush", 0.0)
    print()
    print(
        "  fil_flush variance share: baseline %.2f%% -> brownout %.2f%%"
        % (100.0 * base_share, 100.0 * chaos_share)
    )
    # The injected fault turns fil_flush from a negligible node into a
    # first-order one (order-of-magnitude share growth).
    assert chaos_share > 0.05
    assert chaos_share > 10.0 * base_share
    # The window was announced through telemetry for auditability.
    assert '"fault.window_active"' in brownout.event_log_jsonl()
