"""Recovery cost appearing in the variance tree, scaling with the WAL.

The paper's methodology demands that anything moving latency variance
show up as a factor in the tree; crash recovery is no exception.  Two
mechanisms, each with a knob that provably drives it:

- **Redo replay** (``recovery_replay``): a crashed node replays its
  durable WAL as sequential disk reads before accepting work, so
  transactions arriving during the outage wait behind the replay.  The
  later the crash, the longer the accumulated WAL, the longer the
  replay — replayed bytes, node downtime and the ``recovery_replay``
  variance share must all rise monotonically with the crash instant.
- **In-doubt stalls** (``indoubt_wait``): a crashed 2PC coordinator
  leaves decided-but-unnotified rounds blocked until it returns and
  re-drives them, so the stall scales with the coordinator's downtime
  (restart delay + decision-log replay).

Both are smoke benchmarks (``smoke_bench``): tiny deterministic runs,
monotonicity asserted exactly — no statistical slack needed because the
same seed replays byte-identically.
"""

import json

import pytest

from repro.bench.runner import ExperimentConfig, run_experiment
from repro.core.variance_tree import VarianceTree
from repro.faults.plan import FaultPlan

pytestmark = pytest.mark.smoke_bench

N_TXNS = 400


def recovery_config(plan=None, **overrides):
    # Two shards with moderate cross-shard traffic: node crashes hit a
    # real WAL and coordinator crashes strand real 2PC rounds.  No
    # warmup discard — recovery effects near the crash must stay in the
    # measurement set.
    fields = dict(
        engine="mysql",
        workload="tpcc",
        workload_kwargs={"warehouses": 16, "remote_payment_prob": 0.3},
        seed=31,
        n_txns=N_TXNS,
        rate_tps=400.0,
        warmup_fraction=0.0,
        num_shards=2,
        fault_plan=plan,
    )
    fields.update(overrides)
    return ExperimentConfig(**fields)


def _recovered_event(result):
    for line in result.event_log_jsonl().splitlines():
        if '"node.recovered"' in line:
            return json.loads(line)
    raise AssertionError("run never recovered a node")


def test_recovery_replay_share_grows_with_wal_length():
    """Crash later => more durable WAL => longer replay => bigger
    ``recovery_replay`` slice.  All three must rise monotonically."""
    rows = []
    for crash_at in (100_000.0, 250_000.0, 500_000.0, 800_000.0):
        plan = FaultPlan(name="bench-crash", node_crash_times=((0, crash_at),))
        result = run_experiment(recovery_config(plan))
        event = _recovered_event(result)
        share = VarianceTree(result.traces).name_shares().get(
            "recovery_replay", 0.0
        )
        rows.append((crash_at, event["replayed_bytes"], event["downtime"], share))
    print()
    for crash_at, replayed, downtime, share in rows:
        print(
            "  crash@%8.0fus  wal=%7d B  downtime=%7.1fus  "
            "recovery_replay share=%.4f%%"
            % (crash_at, replayed, downtime, 100.0 * share)
        )
    for earlier, later in zip(rows, rows[1:]):
        assert later[1] > earlier[1], "WAL must grow with the crash instant"
        assert later[2] > earlier[2], "replay downtime must grow with the WAL"
        assert later[3] > earlier[3], (
            "recovery_replay variance share must grow with the WAL: %r" % (rows,)
        )
    assert rows[0][3] > 0.0, "replay must appear in the tree at all"


def test_indoubt_wait_share_grows_with_coordinator_downtime():
    """Crash the coordinator in the decision-log/notification window;
    the stranded rounds' ``indoubt_wait`` share scales with downtime."""
    baseline = run_experiment(recovery_config(check=True))
    decisions = sorted(
        rnd.decision[2]
        for rnd in baseline.history.rounds
        if rnd.decision is not None
    )
    assert decisions, "fixture must exercise 2PC"
    crash_at = round(decisions[len(decisions) // 2] + 0.5, 1)
    rows = []
    for delay in (5_000.0, 20_000.0, 80_000.0):
        plan = FaultPlan(
            name="bench-coord-crash",
            node_crash_times=(("coord", crash_at),),
            node_restart_delay=delay,
        )
        result = run_experiment(recovery_config(plan))
        share = VarianceTree(result.traces).name_shares().get(
            "indoubt_wait", 0.0
        )
        rows.append((delay, share))
    print()
    print("  coordinator crash at %.1fus" % (crash_at,))
    for delay, share in rows:
        print(
            "  restart_delay=%7.0fus  indoubt_wait share=%.4f%%"
            % (delay, 100.0 * share)
        )
    assert rows[0][1] > 0.0, "in-doubt stall must appear in the tree"
    for (_d0, earlier), (_d1, later) in zip(rows, rows[1:]):
        assert later > earlier, (
            "indoubt_wait share must grow with downtime: %r" % (rows,)
        )
