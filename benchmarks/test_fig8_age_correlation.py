"""Figure 8 / Appendix C.2 — correlation of a transaction's age with its
remaining time at scheduling decisions.

Paper: the correlation is small (within roughly +/- 0.3) for every
TPC-C transaction type, regardless of type — the evidence behind the
i.i.d. remaining-time assumption of Theorem 1.
"""

import pytest

from benchmarks.conftest import cached_run
from repro.bench import paperconfig as pc
from repro.sim.stats import correlation

TXN_TYPES = ("NewOrder", "Payment", "OrderStatus", "Delivery", "StockLevel")


def collect_age_remaining(result):
    """(age, remaining) samples at every post-wait lock grant."""
    end_by_id = {
        t.txn_id: t.end for t in result.log.traces if t.committed
    }
    per_type = {t: ([], []) for t in TXN_TYPES}
    per_type["ALL"] = ([], [])
    for ctx, grant_time in result.engine.lockmgr.grant_log:
        end = end_by_id.get(ctx.txn_id)
        if end is None or end <= grant_time:
            continue
        for bucket in (ctx.txn_type, "ALL"):
            if bucket in per_type:
                per_type[bucket][0].append(grant_time - ctx.birth)
                per_type[bucket][1].append(end - grant_time)
    return per_type


def test_fig8_low_age_remaining_correlation(benchmark):
    def run():
        samples = {t: ([], []) for t in TXN_TYPES}
        samples["ALL"] = ([], [])
        for seed in pc.SEEDS:
            result = cached_run(pc.mysql_128wh_experiment("FCFS", seed=seed))
            for bucket, (ages, rems) in collect_age_remaining(result).items():
                samples[bucket][0].extend(ages)
                samples[bucket][1].extend(rems)
        return samples

    samples = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("  correlation(age, remaining) at scheduling decisions:")
    checked = 0
    for bucket in ("ALL",) + TXN_TYPES:
        ages, rems = samples[bucket]
        if len(ages) < 30:
            print("  %-12s (too few waits: %d)" % (bucket, len(ages)))
            continue
        rho = correlation(ages, rems)
        print("  %-12s rho=%+.3f n=%d (paper: within ~+/-0.3)" % (bucket, rho, len(ages)))
        assert abs(rho) < 0.45, bucket
        checked += 1
    assert checked >= 2  # at least the aggregate and one txn type
