"""Table 3 — impact of modifying each function TProfiler identified.

Paper rows (ratios are original / modified; > 1 means improvement):

    MySQL    os_event_wait        FCFS -> VATS      var 5.6x  p99 2.0x  mean 6.3x
    MySQL    buf_pool_mutex_enter mutex -> spinlock var 1.6x  p99 1.4x  mean 1.1x
    MySQL    fil_flush            parameter tuning  var 1.4x  p99 1.2x  mean 1.2x
    Postgres LWLockAcquireOrWait  parallel logging  var 1.8x  p99 1.3x  mean 2.4x
    VoltDB   [waiting in queue]   worker threads    var 2.6x  p99 1.4x  mean 5.7x

(The paper's Table 3 column order differs from its text; the text's
per-experiment numbers are used for the per-figure benches.  Here we
regenerate the whole summary: every modification must improve variance
without hurting throughput.)
"""

import pytest

from benchmarks.conftest import cached_run, median_ratios, print_paper_row
from repro.bench import paperconfig as pc
from repro.bench.compare import ratios
from repro.wal.mysql_log import FlushPolicy

N = pc.N_TXNS


def seed_ratios(make_base, make_mod, seeds=pc.SEEDS):
    rows = []
    for seed in seeds:
        base = cached_run(make_base(seed))
        mod = cached_run(make_mod(seed))
        rows.append(ratios(base.latencies, mod.latencies))
    return median_ratios(rows)


def test_table3_summary(benchmark):
    def run_all():
        rows = {}
        rows["os_event_wait (VATS)"] = seed_ratios(
            lambda s: pc.mysql_workload_experiment("tpcc", "FCFS", seed=s, n_txns=pc.N_TXNS_SCHED),
            lambda s: pc.mysql_workload_experiment("tpcc", "VATS", seed=s, n_txns=pc.N_TXNS_SCHED),
        )
        rows["buf_pool_mutex_enter (LLU)"] = seed_ratios(
            lambda s: pc.mysql_2wh_experiment(lazy_lru=False, seed=s, n_txns=N),
            lambda s: pc.mysql_2wh_experiment(lazy_lru=True, seed=s, n_txns=N),
            seeds=pc.SEEDS[:2],
        )
        rows["fil_flush (lazy write)"] = seed_ratios(
            lambda s: pc.mysql_128wh_experiment("VATS", seed=s, n_txns=N),
            lambda s: pc.mysql_128wh_experiment(
                "VATS", seed=s, n_txns=N, flush_policy=FlushPolicy.LAZY_WRITE
            ),
            seeds=pc.SEEDS[:2],
        )
        rows["LWLockAcquireOrWait (par. log)"] = seed_ratios(
            lambda s: pc.postgres_experiment(parallel_wal=False, seed=s, n_txns=N),
            lambda s: pc.postgres_experiment(parallel_wal=True, seed=s, n_txns=N),
        )
        rows["[waiting in queue] (workers)"] = seed_ratios(
            lambda s: pc.voltdb_experiment(n_workers=2, seed=s, n_txns=N),
            lambda s: pc.voltdb_experiment(n_workers=8, seed=s, n_txns=N),
            seeds=pc.SEEDS[:2],
        )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    paper = {
        "os_event_wait (VATS)": "var 5.6x p99 2.0x mean 6.3x",
        "buf_pool_mutex_enter (LLU)": "var 1.6x p99 1.4x mean 1.1x",
        "fil_flush (lazy write)": "var 1.4x p99 1.2x mean 1.2x",
        "LWLockAcquireOrWait (par. log)": "var 1.8x p99 1.3x mean 2.4x",
        "[waiting in queue] (workers)": "var 2.6x p99 1.4x mean 5.7x",
    }
    print()
    print("Table 3 — impact of each modification (original / modified):")
    for label, measured in rows.items():
        print_paper_row(label, measured, paper[label])
    # Shape: every modification reduces (or at worst preserves) variance.
    for label, measured in rows.items():
        assert measured["variance"] > 0.9, label
    # The two biggest levers in the paper are big here too.
    assert rows["[waiting in queue] (workers)"]["mean"] > 2.0
    assert rows["LWLockAcquireOrWait (par. log)"]["mean"] > 1.5
