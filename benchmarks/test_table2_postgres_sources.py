"""Table 2 — key sources of latency variance in Postgres.

Paper (TPC-C, 32 warehouses, 30 GB buffer pool):

    LWLockAcquireOrWait       76.8%
    ReleasePredicateLocks      6%

Expected shape: the wait for the global WALWriteLock dominates overall
variance by a wide margin; predicate-lock release is a small secondary
factor.
"""

from repro.bench import paperconfig as pc
from repro.bench.profiled import EngineProfiledSystem
from repro.core.profiler import TProfiler
from repro.core.report import render_profile


def test_table2_postgres_variance_sources(benchmark):
    def run():
        system = EngineProfiledSystem(pc.postgres_experiment(n_txns=2500))
        return TProfiler(system, k=5, max_iterations=8).profile()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    shares = result.tree.name_shares()
    print()
    print(render_profile(result, top=8, config_label="32-WH"))
    print(
        "  LWLockAcquireOrWait: measured %.1f%% (paper: 76.8%%)"
        % (100.0 * shares.get("LWLockAcquireOrWait", 0.0))
    )
    print(
        "  ReleasePredicateLocks: measured %.1f%% (paper: 6%%)"
        % (100.0 * shares.get("ReleasePredicateLocks", 0.0))
    )
    lwlock = shares.get("LWLockAcquireOrWait", 0.0)
    predicate = shares.get("ReleasePredicateLocks", 0.0)
    assert lwlock > 0.4  # dominant
    assert predicate < 0.2  # small secondary factor
    assert lwlock > 3.0 * predicate
