"""Figure 7 / Appendix A — VoltDB worker-thread sweep.

Paper: with 2 worker threads (the default) queue waiting accounts for
~99.9% of latency variance; raising the count to 8/12/16/24 lowers mean,
variance and p99, eliminating ~60.9% of total variance (2.6x lower) and
up to 5.7x lower mean, with diminishing returns past ~8 workers.
"""

import pytest

from benchmarks.conftest import cached_run, print_paper_row
from repro.bench import paperconfig as pc
from repro.bench.compare import ratios
from repro.bench.profiled import EngineProfiledSystem
from repro.core.profiler import TProfiler


def test_fig7_worker_sweep(benchmark):
    def run():
        out = {}
        base = cached_run(pc.voltdb_experiment(n_workers=2))
        for workers in (8, 12, 16, 24):
            cand = cached_run(pc.voltdb_experiment(n_workers=workers))
            out[workers] = ratios(base.latencies, cand.latencies)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for workers, measured in sorted(out.items()):
        print_paper_row(
            "2 workers / %d workers" % workers,
            measured,
            "var 2.6x mean 5.7x at best N",
        )
    # Shape: more workers always helps vs the default of 2...
    for workers, measured in out.items():
        assert measured["mean"] > 1.5, workers
        assert measured["variance"] > 1.5, workers
    # ...with diminishing returns: 24 workers is not much better than 8.
    assert out[24]["mean"] <= out[8]["mean"] * 1.3


def test_fig7_queue_wait_share(benchmark):
    """Appendix A: nearly all VoltDB variance is queue waiting."""

    def run():
        system = EngineProfiledSystem(pc.voltdb_experiment(n_workers=2, n_txns=2500))
        return TProfiler(system, k=3, max_iterations=5).profile()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    share = result.tree.name_shares().get("[waiting in queue]", 0.0)
    print()
    print("  queue-wait share of variance: %.1f%% (paper: 99.9%%)" % (100 * share))
    assert share > 0.6
