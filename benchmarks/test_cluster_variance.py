"""Distributed waits appearing in the variance tree (cluster smoke).

The cluster's promise is methodological: sharding and 2PC add *new*
variance sources (coordinator prepare/commit waits over a heavy-tailed
network), and the top-down tree must attribute them with the same
machinery that attributes lock waits and log flushes.  These smoke tests
sweep the cross-shard fraction (remote TPC-C Payments, 0% -> 30%) and
check the methodology's directional claims:

- the share of total latency charged to the ``dist_*`` coordinator
  frames grows strictly monotonically with the cross-shard fraction
  (time shares are stable at tiny N where variance shares are noisy),
  and
- by 30% remote payments, distributed commit machinery is a first-order
  factor — a ``dist_*`` frame ranks in the variance tree's top-3
  non-wrapper names alongside the single-node champions.
"""

import json

import pytest

from repro.bench.runner import ExperimentConfig, run_experiment
from repro.core.variance_tree import VarianceTree

pytestmark = pytest.mark.smoke_bench

N_TXNS = 600

MYSQL_COMMIT_PATH = (
    "do_command",
    "dispatch_command",
    "mysql_execute_command",
    "innobase_commit",
    "trx_commit",
    "log_write_up_to",
    "fil_flush",
)

REMOTE_SWEEP = (0.0, 0.1, 0.2, 0.3)


def cluster_config(remote_payment_prob, **overrides):
    fields = dict(
        engine="mysql",
        workload="tpcc",
        workload_kwargs={
            "warehouses": 16,
            "remote_payment_prob": remote_payment_prob,
            "remote_warehouse_prob": 0.0,
        },
        seed=31,
        n_txns=N_TXNS,
        rate_tps=200.0,
        warmup_fraction=0.0,
        instrumented=MYSQL_COMMIT_PATH,
        num_shards=4,
    )
    fields.update(overrides)
    return ExperimentConfig(**fields)


DIST_KEYS = (("dist_prepare_wait", "cluster"), ("dist_commit_wait", "cluster"))

#: The outermost frames measure whole-transaction latency (each nests
#: the entire commit path), so they trivially top every ranking; the
#: interesting competition is among the factors below them.
WRAPPER_NAMES = {"do_command", "dispatch_command", "mysql_execute_command"}


def dist_time_share(result):
    """Fraction of total post-warmup latency spent in coordinator waits."""
    total = sum(t.latency for t in result.traces)
    dist = sum(
        sum(t.durations.get(key, 0.0) for key in DIST_KEYS)
        for t in result.traces
    )
    return dist / total


def test_dist_wait_share_grows_with_cross_shard_fraction():
    rows = []
    for prob in REMOTE_SWEEP:
        result = run_experiment(cluster_config(prob))
        rows.append(
            (prob, result.engine.cross_shard_txns, dist_time_share(result), result)
        )
    print()
    for prob, cross, share, _result in rows:
        print(
            "  remote=%4.0f%%  cross_shard=%3d  dist time share=%6.2f%%"
            % (100.0 * prob, cross, 100.0 * share)
        )
    # 0% remote payments -> no cross-shard transactions, zero dist share.
    assert rows[0][1] == 0
    assert rows[0][2] == 0.0
    # More cross-shard transactions, and strictly more of the latency
    # budget paid to the coordinator.
    crosses = [cross for _prob, cross, _share, _result in rows]
    shares = [share for _prob, _cross, share, _result in rows]
    assert all(a < b for a, b in zip(crosses, crosses[1:]))
    assert all(a < b for a, b in zip(shares, shares[1:]))
    # At 30% remote payments the distributed commit machinery is a
    # first-order factor: a dist_* frame ranks top-3 among non-wrapper
    # names in the variance tree.
    top = sorted(
        VarianceTree(rows[-1][3].traces).name_shares().items(),
        key=lambda kv: kv[1],
        reverse=True,
    )
    contenders = [name for name, _share in top if name not in WRAPPER_NAMES]
    print("  top non-wrapper factors at 30%%: %s" % (contenders[:3],))
    assert set(contenders[:3]) & {"dist_prepare_wait", "dist_commit_wait"}


def test_clustered_smoke_run_is_reproducible():
    config = cluster_config(0.2)
    first = run_experiment(config)
    second = run_experiment(config)
    assert first.latencies == second.latencies
    assert json.dumps(first.metrics_snapshot(), sort_keys=True) == json.dumps(
        second.metrics_snapshot(), sort_keys=True
    )
