"""Table 1 — key sources of latency variance in MySQL.

Paper (TPC-C):

    128-WH  os_event_wait [A]                 37.5%
    128-WH  os_event_wait [B]                 21.7%
    128-WH  row_ins_clust_index_entry_low      9.3%
    2-WH    buf_pool_mutex_enter              32.92%
    2-WH    btr_cur_search_to_nth_level        8.3%
    2-WH    fil_flush                          5%

We run TProfiler's full iterative refinement against the simulated
MySQL engine in both configurations and report each named function's
share of overall transaction latency variance.

Expected shape: in 128-WH, lock waits (os_event_wait, across both call
sites) dominate; in 2-WH, buffer-pool factors (the pool mutex and the
miss path) and the index traversal carry the variance instead, with the
lock waits far smaller than in the contended configuration.
"""

from repro.bench import paperconfig as pc
from repro.bench.profiled import EngineProfiledSystem
from repro.core.profiler import TProfiler
from repro.core.report import render_profile

N_PROFILE = 2500


def profile(config, k=6, iterations=8):
    system = EngineProfiledSystem(config)
    profiler = TProfiler(system, k=k, max_iterations=iterations)
    return profiler.profile()


def test_table1_128wh_lock_waits_dominate(benchmark):
    result = benchmark.pedantic(
        lambda: profile(pc.mysql_128wh_experiment(n_txns=N_PROFILE)),
        rounds=1,
        iterations=1,
    )
    shares = result.tree.name_shares()
    print()
    print(render_profile(result, top=8, config_label="128-WH"))
    print(
        "  os_event_wait total share: measured %.1f%% (paper: 59.2%% across sites)"
        % (100.0 * shares.get("os_event_wait", 0.0))
    )
    print(
        "  row_ins_clust_index_entry_low: measured %.1f%% (paper: 9.3%%)"
        % (100.0 * shares.get("row_ins_clust_index_entry_low", 0.0))
    )
    # Shape: lock waits are the dominant identified source.
    assert shares.get("os_event_wait", 0.0) > 0.3
    # Both call sites (select [A] and update [B]) were observed.
    sites = {key[1] for key in result.tree.factor_keys if key[0] == "os_event_wait"}
    assert {"A", "B"} <= sites


def test_table1_2wh_buffer_pool_emerges(benchmark):
    result = benchmark.pedantic(
        lambda: profile(pc.mysql_2wh_experiment(n_txns=N_PROFILE)),
        rounds=1,
        iterations=1,
    )
    shares = result.tree.name_shares()
    print()
    print(render_profile(result, top=10, config_label="2-WH"))
    for name, paper in (
        ("buf_pool_mutex_enter", "32.92%"),
        ("btr_cur_search_to_nth_level", "8.3%"),
        ("fil_flush", "5%"),
    ):
        print(
            "  %-30s measured %.1f%% (paper: %s)"
            % (name, 100.0 * shares.get(name, 0.0), paper)
        )
    # Shape: under memory pressure the pool mutex becomes a first-order
    # variance factor (it is negligible in the 128-WH configuration)...
    assert shares.get("buf_pool_mutex_enter", 0.0) > 0.05
    # ...and the index traversal's inherent variance is visible.
    assert shares.get("btr_cur_search_to_nth_level", 0.0) > 0.05


def test_table1_cross_config_contrast(benchmark):
    """The defining contrast: the pool mutex matters only at 2-WH, lock
    waits matter far more at 128-WH."""

    def both():
        return (
            profile(pc.mysql_128wh_experiment(n_txns=N_PROFILE), k=5),
            profile(pc.mysql_2wh_experiment(n_txns=N_PROFILE), k=5),
        )

    big, small = benchmark.pedantic(both, rounds=1, iterations=1)
    big_shares = big.tree.name_shares()
    small_shares = small.tree.name_shares()
    assert small_shares.get("buf_pool_mutex_enter", 0.0) > 3.0 * big_shares.get(
        "buf_pool_mutex_enter", 0.0
    )
    assert big_shares.get("os_event_wait", 0.0) > small_shares.get(
        "os_event_wait", 0.0
    )
