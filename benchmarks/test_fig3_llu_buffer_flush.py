"""Figure 3 — LLU (left), buffer-pool size (center), flush policy (right).

Paper:
- LLU on the memory-contended 2-WH config: 1.1x mean, 1.6x variance,
  1.4x p99 lower than the original mutex.
- Buffer pool at 33/66/100% of the database: bigger pool = lower mean,
  variance and p99 (monotone improvement).
- Flush policy: lazy flush and lazy write both beat eager flush on all
  three metrics; lazy write (everything deferred) is the most
  predictable.
"""

import pytest

from benchmarks.conftest import cached_run, median_ratios, print_paper_row
from repro.bench import paperconfig as pc
from repro.bench.compare import ratios
from repro.wal.mysql_log import FlushPolicy

SEEDS = pc.SEEDS[:2]


def test_fig3_left_lazy_lru_update(benchmark):
    def run():
        rows = []
        for seed in SEEDS:
            base = cached_run(pc.mysql_2wh_experiment(lazy_lru=False, seed=seed))
            llu = cached_run(pc.mysql_2wh_experiment(lazy_lru=True, seed=seed))
            rows.append(ratios(base.latencies, llu.latencies))
        return median_ratios(rows)

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print_paper_row("Original/LLU (2-WH)", measured, "mean 1.1x var 1.6x p99 1.4x")
    assert measured["mean"] > 1.0
    assert measured["variance"] > 1.1
    assert measured["p99"] > 1.0


def test_fig3_center_buffer_pool_size(benchmark):
    """Sweep pool capacity as a fraction of the database; report ratios
    of the 33% baseline over each size (paper's Figure 3 center)."""

    def run():
        results = {}
        for label, fraction in (("33%", 0.33), ("66%", 0.66), ("100%", 1.2)):
            results[label] = cached_run(
                pc.mysql_2wh_experiment(buffer_fraction=fraction, seed=pc.SEEDS[0])
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    base = results["33%"]
    print()
    for label in ("66%", "100%"):
        measured = ratios(base.latencies, results[label].latencies)
        print_paper_row(
            "33%% / %s pool" % label, measured, "bigger pool strictly better"
        )
    small = base.summary
    medium = results["66%"].summary
    large = results["100%"].summary
    # Monotone improvement with pool size, on mean and variance.
    assert small.mean >= medium.mean >= large.mean * 0.98
    assert small.variance >= large.variance
    # And the mechanism: fewer evictions with more memory.
    assert (
        results["33%"].engine.pool.evictions
        > results["66%"].engine.pool.evictions
        > results["100%"].engine.pool.evictions
    )


def test_fig3_right_flush_policy(benchmark):
    """Eager flush vs lazy flush vs lazy write (ratios eager/policy)."""

    def run():
        out = {}
        for label, policy in (
            ("eager", FlushPolicy.EAGER_FLUSH),
            ("lazy_flush", FlushPolicy.LAZY_FLUSH),
            ("lazy_write", FlushPolicy.LAZY_WRITE),
        ):
            rows = []
            for seed in SEEDS:
                out.setdefault("eager_runs", {})
                base = cached_run(
                    pc.mysql_128wh_experiment(
                        "VATS", seed=seed, flush_policy=FlushPolicy.EAGER_FLUSH
                    )
                )
                cand = cached_run(
                    pc.mysql_128wh_experiment("VATS", seed=seed, flush_policy=policy)
                )
                rows.append(ratios(base.latencies, cand.latencies))
            out[label] = median_ratios(rows)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print_paper_row("Eager/LazyFlush", out["lazy_flush"], "all ratios > 1")
    print_paper_row("Eager/LazyWrite", out["lazy_write"], "most predictable")
    for label in ("lazy_flush", "lazy_write"):
        assert out[label]["mean"] > 1.0
        assert out[label]["variance"] > 1.0
    # Deferring both steps is at least as good as deferring only flush.
    assert out["lazy_write"]["variance"] >= out["lazy_flush"]["variance"] * 0.9
