"""Golden equivalence digests: the fast paths change nothing observable.

``tests/goldens/equivalence_digests.json`` holds one SHA-256 digest per
(engine, seed, telemetry) macro cell plus one full-chaos fault-plan
run, captured from the pre-optimisation tree.  Every run here must
reproduce its digest byte for byte: same (config, seed) ⇒ identical
latency sequence, final clock, metrics snapshot and abort/fault counts,
no matter what wall-clock fast paths the kernel or engines grow.

Regenerate with ``scripts/gen_equivalence_goldens.py`` — but only for
an intentional *semantic* change to the simulation, never to make a
performance patch pass.
"""

import json
import os

import pytest

from repro.bench import paperconfig as pc
from repro.bench.digest import run_digest
from repro.bench.runner import run_experiment


def _load_goldens():
    path = os.path.join(
        os.path.dirname(__file__), "goldens", "equivalence_digests.json"
    )
    with open(path) as fh:
        return json.load(fh)


def _golden_configs():
    import importlib.util

    script = os.path.join(
        os.path.dirname(__file__), "..", "scripts",
        "gen_equivalence_goldens.py",
    )
    spec = importlib.util.spec_from_file_location("gen_goldens", script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return list(module.golden_configs())


GOLDENS = _load_goldens()
CONFIGS = _golden_configs()


def test_golden_set_is_complete():
    assert sorted(GOLDENS) == sorted(key for key, _ in CONFIGS)


@pytest.mark.parametrize(
    "key,config", CONFIGS, ids=[key for key, _ in CONFIGS]
)
def test_run_digest_matches_golden(key, config):
    assert run_digest(run_experiment(config)) == GOLDENS[key], (
        "digest drift on %s: the optimised kernel/engine produced a "
        "different observable run than the committed golden" % key
    )


def test_zero_cost_instrumentation_is_invisible():
    """The flattened uninstrumented statement path vs the traced chain.

    With ``probe_cost=0`` the traced delegation chain must produce a
    byte-identical run to the fast path — instrumentation may only add
    its probe cost, never change scheduling.  This pins
    ``_mysql_execute_fast`` directly against the traced generators it
    replaces.
    """
    base = pc.mysql_128wh_experiment("VATS", seed=7, n_txns=150)
    probes = (
        "row_search", "row_update", "row_insert", "lock_rec_lock",
        "sel_set_rec_lock", "lock_wait_suspend",
        "btr_cur_search_to_nth_level",
    )
    fast = run_digest(run_experiment(base))
    traced = run_digest(
        run_experiment(base.replaced(instrumented=probes, probe_cost=0.0))
    )
    assert fast == traced


def test_postgres_zero_cost_instrumentation_is_invisible():
    """Pins ``_postgres_execute_fast`` against the traced statement loop.

    Instrumenting every Postgres factor with ``probe_cost=0`` forces the
    full ``_portal_run`` delegation chain; the flattened fast path must
    produce a byte-identical run.
    """
    base = pc.postgres_experiment(seed=7, n_txns=150)
    probes = (
        "exec_simple_query", "PortalRun", "ExecutorRun", "index_fetch",
        "PredicateLockTuple", "heap_lock_tuple", "LockAcquireExtended",
        "ProcSleep", "CommitTransaction", "RecordTransactionCommit",
        "XLogFlush", "ReleasePredicateLocks",
    )
    fast = run_digest(run_experiment(base))
    traced = run_digest(
        run_experiment(base.replaced(instrumented=probes, probe_cost=0.0))
    )
    assert fast == traced


def test_voltdb_zero_cost_instrumentation_is_invisible():
    """Pins ``_voltdb_execute_fast`` against the traced partition loop."""
    base = pc.voltdb_experiment(seed=7, n_txns=150)
    probes = (
        "transaction", "execute_procedure", "init_procedure",
        "run_plan_fragments", "[waiting in queue]",
    )
    fast = run_digest(run_experiment(base))
    traced = run_digest(
        run_experiment(base.replaced(instrumented=probes, probe_cost=0.0))
    )
    assert fast == traced
