"""Differential testing: fast kernel vs the reference kernel.

``repro.sim.kernel.Simulator`` is a fast-path rewrite of
``repro.sim.refkernel.ReferenceSimulator`` (the verbatim
pre-optimisation loop).  Hypothesis generates random process programs —
bare-float/int delays, ``Timeout``s, events, timed waits, nested
``yield from`` sub-calls, dynamic spawns, process joins — and runs each
program on both kernels.  The full observable behaviour must match:
the event trace (every step with its virtual timestamp), every process
return value, the final clock, and the dispatch count.

The program shapes deliberately cover the fast paths the production
kernel added: long runs of same-process delays (direct resume without a
heap round-trip), waits on already-fired events (immediate resume), and
zero delays (ready-deque path).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import Simulator, Timeout, WaitEvent
from repro.sim.refkernel import ReferenceSimulator

N_EVENTS = 3

# Delays from a small grid: collisions in wakeup times are the
# interesting case (tie-break order), and coarse values keep float
# arithmetic identical trivially.
_delays = st.sampled_from([0.0, 0.25, 0.5, 1.0, 1.5, 2.0, 5.0])
_int_delays = st.integers(min_value=0, max_value=3)
_event_idx = st.integers(min_value=0, max_value=N_EVENTS - 1)

_leaf_op = st.one_of(
    st.tuples(st.just("delay"), _delays),
    st.tuples(st.just("timeout"), _delays),
    st.tuples(st.just("idelay"), _int_delays),
    st.tuples(st.just("wait"), _event_idx,
              st.one_of(st.none(), _delays)),
    st.tuples(st.just("fire"), _event_idx),
)


def _ops(children):
    return st.lists(children, min_size=0, max_size=6)


# Two levels of nesting: leaf ops, then ops that carry a sub-program
# (either inlined via ``yield from`` or spawned as its own process).
_nested_op = st.one_of(
    _leaf_op,
    st.tuples(st.just("subcall"), _ops(_leaf_op)),
    st.tuples(st.just("spawn"), _ops(_leaf_op), st.booleans()),
)

_program = st.lists(
    st.lists(
        st.one_of(
            _nested_op,
            st.tuples(st.just("subcall"), _ops(_nested_op)),
        ),
        min_size=1,
        max_size=8,
    ),
    min_size=1,
    max_size=4,
)


def _interp(sim, events, spec, trace, tag):
    """Run one op-list; every step logs (tag, index, detail, now)."""
    for i, op in enumerate(spec):
        kind = op[0]
        if kind == "delay":
            yield op[1]
        elif kind == "timeout":
            yield Timeout(op[1])
        elif kind == "idelay":
            yield op[1]
        elif kind == "wait":
            fired = yield WaitEvent(events[op[1]], timeout=op[2])
            trace.append((tag, i, "wait", fired, sim.now))
        elif kind == "fire":
            event = events[op[1]]
            if not event.fired:
                event.fire((tag, i))
        elif kind == "subcall":
            value = yield from _interp(sim, events, op[1], trace, tag + "s")
            trace.append((tag, i, "sub", value, sim.now))
        elif kind == "spawn":
            child = sim.spawn(
                _interp(sim, events, op[1], trace, "%sc%d" % (tag, i)),
                name="%sc%d" % (tag, i),
            )
            if op[2]:
                yield child
                trace.append((tag, i, "join", child.done.value, sim.now))
        trace.append((tag, i, "step", None, sim.now))
    return (tag, sim.now)


def _run(simulator_cls, program, until=None):
    sim = simulator_cls()
    events = [sim.event() for _ in range(N_EVENTS)]
    trace = []
    procs = [
        sim.spawn(_interp(sim, events, spec, trace, "p%d" % i), name="p%d" % i)
        for i, spec in enumerate(program)
    ]
    final = sim.run(until=until)
    returns = [
        proc.done.value if proc.done.fired else None for proc in procs
    ]
    return {
        "trace": trace,
        "returns": returns,
        "final_clock": final,
        "now": sim.now,
        "dispatches": sim.dispatch_count,
    }


@settings(max_examples=200, deadline=None)
@given(program=_program)
def test_fast_kernel_matches_reference(program):
    assert _run(Simulator, program) == _run(ReferenceSimulator, program)


@settings(max_examples=50, deadline=None)
@given(program=_program, until=_delays)
def test_fast_kernel_matches_reference_with_until(program, until):
    first = _run(Simulator, program, until=until)
    second = _run(ReferenceSimulator, program, until=until)
    assert first == second
    # ``until`` is an upper bound for the clock, never a rewind target.
    assert first["now"] <= max(until, 0.0) or first["now"] == 0.0


def test_long_delay_chain_uses_direct_resume_identically():
    """A single process yielding many bare floats: the production
    kernel's same-process direct resume must count dispatches exactly
    like the reference kernel's heap round-trips."""

    def chain(sim):
        for _ in range(100):
            yield 0.5
        return sim.now

    results = []
    for cls in (Simulator, ReferenceSimulator):
        sim = cls()
        proc = sim.spawn(chain(sim))
        sim.run()
        results.append((sim.now, sim.dispatch_count, proc.done.value))
    assert results[0] == results[1]
