"""Disk model: FIFO service, block writes, counters."""

import pytest

from repro.sim.disk import Disk, DiskConfig
from repro.sim.rand import Streams


def make_disk(sim, **config_kwargs):
    config = DiskConfig(**config_kwargs)
    return Disk(sim, Streams(9).stream("disk"), config)


def test_requests_are_fifo(sim):
    disk = make_disk(sim)
    finish = []

    def proc(tag):
        yield from disk.flush()
        finish.append(tag)

    sim.spawn(proc("a"))
    sim.spawn(proc("b"))
    sim.spawn(proc("c"))
    sim.run()
    assert finish == ["a", "b", "c"]


def test_second_request_waits_for_first(sim):
    disk = make_disk(sim)
    times = []

    def proc():
        yield from disk.flush()
        times.append(sim.now)

    sim.spawn(proc())
    sim.spawn(proc())
    sim.run()
    assert times[1] > times[0]


def test_write_accounts_bytes(sim):
    disk = make_disk(sim)

    def proc():
        yield from disk.write(1000)
        yield from disk.write(500)

    sim.spawn(proc())
    sim.run()
    assert disk.writes == 2
    assert disk.bytes_written == 1500


def test_write_blocks_counts_whole_blocks(sim):
    disk = make_disk(sim)

    def proc():
        yield from disk.write_blocks(3, 8192)

    sim.spawn(proc())
    sim.run()
    assert disk.writes == 3
    assert disk.bytes_written == 3 * 8192


def test_write_blocks_zero_is_noop(sim):
    disk = make_disk(sim)

    def proc():
        yield from disk.write_blocks(0, 8192)
        yield from disk.flush()

    sim.spawn(proc())
    sim.run()
    assert disk.writes == 0
    assert disk.flushes == 1


def test_more_blocks_take_longer(sim):
    few = make_disk(sim, write_base_cv=0.0001)
    durations = []

    def proc(disk, nblocks):
        start = sim.now
        yield from disk.write_blocks(nblocks, 4096)
        durations.append(sim.now - start)

    sim.spawn(proc(few, 1))
    sim.run()
    sim2_start = sim.now

    def proc2():
        start = sim.now
        yield from few.write_blocks(10, 4096)
        durations.append(sim.now - start)

    sim.spawn(proc2())
    sim.run()
    assert durations[1] > durations[0] * 5


def test_queue_delay_reflects_busy_device(sim):
    disk = make_disk(sim)

    def proc():
        yield from disk.flush()

    sim.spawn(proc())
    # Before running, nothing queued.
    assert disk.queue_delay == 0.0
    sim.run(until=1.0)
    assert disk.busy
    assert disk.queue_delay > 0.0


def test_page_cache_reads_much_faster_than_spinning(sim):
    fast = Disk(sim, Streams(9).stream("a"), DiskConfig.page_cache())
    slow = Disk(sim, Streams(9).stream("b"), DiskConfig())
    times = {}

    def proc(tag, disk):
        start = sim.now
        for _ in range(50):
            yield from disk.read(16384)
        times[tag] = sim.now - start

    sim.spawn(proc("fast", fast))
    sim.run()
    sim.spawn(proc("slow", slow))
    sim.run()
    assert times["fast"] < times["slow"]


def test_flush_heavy_tail_present(sim):
    disk = make_disk(
        sim,
        flush_base_mean=100.0,
        flush_base_cv=0.1,
        flush_tail_prob=0.2,
        flush_tail_scale=10_000.0,
        flush_tail_alpha=2.0,
    )
    durations = []

    def proc():
        for _ in range(500):
            start = sim.now
            yield from disk.flush()
            durations.append(sim.now - start)

    sim.spawn(proc())
    sim.run()
    assert max(durations) > 10 * (sum(durations) / len(durations))
