"""Specificity and score-based factor ranking (eqs. 2-3)."""

import pytest

from repro.core.annotations import TxnTrace
from repro.core.callgraph import CallGraph
from repro.core.scoring import score_factors, specificity, top_k_factors
from repro.core.variance_tree import VarianceTree


@pytest.fixture
def graph():
    return CallGraph.from_dict(
        "root",
        {"root": ["mid"], "mid": ["leaf"]},
    )


def make_tree(rows):
    traces = []
    for i, durations in enumerate(rows):
        latency = durations.get(("root", "<root>"), 1.0)
        traces.append(
            TxnTrace(i, "t", 0.0, 0.0, latency, 1, durations, {}, True)
        )
    return VarianceTree(traces)


def test_specificity_decreases_with_height(graph):
    assert specificity(graph, "leaf") > specificity(graph, "mid")
    assert specificity(graph, "mid") > specificity(graph, "root")
    assert specificity(graph, "root") == 0.0


def test_specificity_exponent(graph):
    assert specificity(graph, "leaf", exponent=1) == 2.0
    assert specificity(graph, "leaf", exponent=2) == 4.0


def test_deep_factor_outranks_root_with_same_variance(graph):
    """The core insight: the root always has the largest variance but is
    uninformative; with equal variances the leaf must win on score."""
    rows = [
        {("root", "<root>"): 10.0, ("leaf", "mid"): 10.0},
        {("root", "<root>"): 20.0, ("leaf", "mid"): 20.0},
    ]
    scores = score_factors(make_tree(rows), graph)
    assert scores["leaf"] > scores["root"]
    assert scores["root"] == 0.0  # zero specificity


def test_score_aggregates_across_sites(graph):
    rows = [
        {("leaf", "A"): 1.0, ("leaf", "B"): 1.0},
        {("leaf", "A"): 5.0, ("leaf", "B"): 5.0},
    ]
    scores = score_factors(make_tree(rows), graph)
    import numpy as np

    expected = specificity(graph, "leaf") * np.var([2.0, 10.0])
    assert scores["leaf"] == pytest.approx(expected)


def test_body_factors_score_with_their_function(graph):
    rows = [
        {("mid::body", "root"): 1.0},
        {("mid::body", "root"): 7.0},
    ]
    scores = score_factors(make_tree(rows), graph)
    assert "mid::body" in scores
    import numpy as np

    assert scores["mid::body"] == pytest.approx(
        specificity(graph, "mid") * np.var([1.0, 7.0])
    )


def test_unknown_functions_skipped(graph):
    rows = [{("alien", "x"): 1.0}, {("alien", "x"): 2.0}]
    scores = score_factors(make_tree(rows), graph)
    assert "alien" not in scores


def test_top_k_ordering():
    scores = {"a": 5.0, "b": 10.0, "c": 1.0}
    assert top_k_factors(scores, 2) == ["b", "a"]
    assert top_k_factors(scores, 10) == ["b", "a", "c"]


def test_top_k_ties_broken_by_name():
    scores = {"z": 5.0, "a": 5.0}
    assert top_k_factors(scores, 2) == ["a", "z"]
