"""The variance tree: eq. (1) identity, shares, decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.annotations import TxnTrace
from repro.core.variance_tree import VarianceTree, body_key


def make_trace(txn_id, latency, durations=None, under=None, committed=True):
    return TxnTrace(
        txn_id=txn_id,
        txn_type="t",
        birth=0.0,
        start=0.0,
        end=latency,
        attempts=1,
        durations=durations or {},
        under=under or {},
        committed=committed,
    )


ROOT = ("root", "<root>")
A = ("a", "root")
B = ("b", "root")


def traces_with_components(component_rows):
    """Build traces where root = a + b exactly."""
    traces = []
    for i, (a, b) in enumerate(component_rows):
        total = a + b
        traces.append(
            make_trace(
                i,
                total,
                durations={ROOT: total, A: a, B: b},
                under={ROOT: {A: a, B: b}},
            )
        )
    return traces


def test_overall_variance_is_latency_variance():
    traces = [make_trace(i, lat) for i, lat in enumerate([10.0, 20.0, 30.0])]
    tree = VarianceTree(traces)
    assert tree.overall_variance == pytest.approx(np.var([10.0, 20.0, 30.0]))


def test_aborted_traces_excluded():
    traces = [make_trace(0, 10.0), make_trace(1, 99999.0, committed=False)]
    tree = VarianceTree(traces)
    assert tree.overall_variance == 0.0


def test_empty_raises():
    with pytest.raises(ValueError):
        VarianceTree([])


def test_share_of_factor():
    rows = [(10.0, 0.0), (20.0, 0.0), (30.0, 0.0)]
    tree = VarianceTree(traces_with_components(rows))
    assert tree.share(A) == pytest.approx(1.0)
    assert tree.share(B) == pytest.approx(0.0)


def test_missing_factor_counts_as_zero():
    traces = [
        make_trace(0, 10.0, durations={A: 5.0}),
        make_trace(1, 10.0, durations={}),
    ]
    tree = VarianceTree(traces)
    assert tree.factor_variance(A) == pytest.approx(np.var([5.0, 0.0]))


def test_decompose_identity_exact():
    """Var(parent) equals sum of component variances + 2*sum covariances."""
    rows = [(1.0, 9.0), (5.0, 2.0), (3.0, 3.0), (8.0, 1.0)]
    tree = VarianceTree(traces_with_components(rows))
    decomp = tree.decompose(ROOT)
    assert decomp.reconstructed_variance() == pytest.approx(
        tree.factor_variance(ROOT), rel=1e-9
    )


def test_decompose_body_is_residual():
    traces = [
        make_trace(0, 10.0, durations={ROOT: 10.0, A: 4.0}, under={ROOT: {A: 4.0}}),
        make_trace(1, 20.0, durations={ROOT: 20.0, A: 5.0}, under={ROOT: {A: 5.0}}),
    ]
    tree = VarianceTree(traces)
    decomp = tree.decompose(ROOT)
    body = [c for c in decomp.components if c.key == body_key(ROOT)][0]
    assert list(body.samples) == [6.0, 15.0]


def test_decompose_unknown_parent_raises():
    tree = VarianceTree([make_trace(0, 1.0), make_trace(1, 2.0)])
    with pytest.raises(KeyError):
        tree.decompose(("nope", "<root>"))


def test_name_shares_aggregate_sites():
    traces = [
        make_trace(0, 10.0, durations={("f", "A"): 2.0, ("f", "B"): 1.0}),
        make_trace(1, 30.0, durations={("f", "A"): 9.0, ("f", "B"): 6.0}),
    ]
    tree = VarianceTree(traces)
    shares = tree.name_shares()
    combined = np.var([3.0, 15.0]) / np.var([10.0, 30.0])
    assert shares["f"] == pytest.approx(combined)


def test_covariance_antisymmetric_components():
    """Components that trade off against each other covary negatively."""
    rows = [(1.0, 9.0), (9.0, 1.0), (2.0, 8.0), (8.0, 2.0)]
    tree = VarianceTree(traces_with_components(rows))
    decomp = tree.decompose(ROOT)
    covs = decomp.covariances()
    assert covs[(A, B)] < 0


@settings(max_examples=60, deadline=None)
@given(
    rows=st.lists(
        st.tuples(
            st.floats(0.0, 1e4, allow_nan=False), st.floats(0.0, 1e4, allow_nan=False)
        ),
        min_size=2,
        max_size=30,
    )
)
def test_variance_tree_identity_property(rows):
    """Property: eq. (1) holds exactly for any component data."""
    tree = VarianceTree(traces_with_components(rows))
    decomp = tree.decompose(ROOT)
    assert decomp.reconstructed_variance() == pytest.approx(
        tree.factor_variance(ROOT), rel=1e-6, abs=1e-6
    )


@settings(max_examples=60, deadline=None)
@given(
    rows=st.lists(
        st.tuples(st.floats(0.0, 1e4), st.floats(0.0, 1e4)), min_size=2, max_size=30
    )
)
def test_parent_variance_at_least_single_child_contribution(rows):
    """The paper's observation: a parent's variance always >= what any
    single child contributes net of covariance (why raw variance ranks
    roots, motivating specificity)."""
    tree = VarianceTree(traces_with_components(rows))
    parent_var = tree.factor_variance(ROOT)
    decomp = tree.decompose(ROOT)
    total = decomp.reconstructed_variance()
    assert total == pytest.approx(parent_var, rel=1e-6, abs=1e-6)
