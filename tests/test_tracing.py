"""Selective instrumentation: frames, sites, probe costs, manual records."""

import pytest

from repro.core.annotations import TransactionContext, TransactionLog
from repro.core.callgraph import CallGraph
from repro.core.tracing import Tracer
from repro.sim.kernel import Timeout


@pytest.fixture
def graph():
    return CallGraph.from_dict(
        "root", {"root": ["child"], "child": ["grandchild"]}
    )


def make_tracer(sim, graph, instrumented, probe_cost=0.0):
    return Tracer(
        sim, graph, instrumented=instrumented, probe_cost=probe_cost, log=TransactionLog()
    )


def body(duration):
    def gen():
        yield Timeout(duration)
        return "value"

    return gen()


def test_uninstrumented_function_is_invisible(sim, graph):
    tracer = make_tracer(sim, graph, instrumented=set())
    ctx = TransactionContext(sim, 1, "t")

    def proc():
        tracer.begin_transaction(ctx)
        result = yield from tracer.traced(ctx, "root", body(10.0))
        assert result == "value"
        tracer.end_transaction(ctx)

    sim.spawn(proc())
    sim.run()
    assert ctx.durations == {}


def test_instrumented_function_records_duration(sim, graph):
    tracer = make_tracer(sim, graph, instrumented={"root"})
    ctx = TransactionContext(sim, 1, "t")

    def proc():
        tracer.begin_transaction(ctx)
        yield from tracer.traced(ctx, "root", body(10.0))
        tracer.end_transaction(ctx)

    sim.spawn(proc())
    sim.run()
    assert ctx.durations == {("root", "<root>"): 10.0}


def test_nested_frames_attributed_to_parent(sim, graph):
    tracer = make_tracer(sim, graph, instrumented={"root", "child"})
    ctx = TransactionContext(sim, 1, "t")

    def child_gen():
        yield Timeout(4.0)

    def root_gen():
        yield Timeout(3.0)
        yield from tracer.traced(ctx, "child", child_gen())
        yield Timeout(3.0)

    def proc():
        tracer.begin_transaction(ctx)
        yield from tracer.traced(ctx, "root", root_gen())
        tracer.end_transaction(ctx)

    sim.spawn(proc())
    sim.run()
    assert ctx.durations[("root", "<root>")] == 10.0
    assert ctx.durations[("child", "root")] == 4.0
    assert ctx.under[("root", "<root>")] == {("child", "root"): 4.0}


def test_skipped_middle_level_attributes_to_nearest_instrumented(sim, graph):
    """When 'child' is not instrumented, grandchild time lands under root."""
    tracer = make_tracer(sim, graph, instrumented={"root", "grandchild"})
    ctx = TransactionContext(sim, 1, "t")

    def grandchild_gen():
        yield Timeout(2.0)

    def child_gen():
        yield from tracer.traced(ctx, "grandchild", grandchild_gen())

    def root_gen():
        yield from tracer.traced(ctx, "child", child_gen())

    def proc():
        tracer.begin_transaction(ctx)
        yield from tracer.traced(ctx, "root", root_gen())
        tracer.end_transaction(ctx)

    sim.spawn(proc())
    sim.run()
    assert ("child", "root") not in ctx.durations
    assert ctx.durations[("grandchild", "root")] == 2.0
    assert ctx.under[("root", "<root>")] == {("grandchild", "root"): 2.0}


def test_explicit_site_labels_distinguish_call_sites(sim, graph):
    """The paper's os_event_wait [A] vs [B] distinction."""
    tracer = make_tracer(sim, graph, instrumented={"child"})
    ctx = TransactionContext(sim, 1, "t")

    def proc():
        tracer.begin_transaction(ctx)
        yield from tracer.traced(ctx, "child", body(1.0), site="A")
        yield from tracer.traced(ctx, "child", body(2.0), site="B")
        yield from tracer.traced(ctx, "child", body(3.0), site="B")
        tracer.end_transaction(ctx)

    sim.spawn(proc())
    sim.run()
    assert ctx.durations[("child", "A")] == 1.0
    assert ctx.durations[("child", "B")] == 5.0


def test_multiple_invocations_aggregate(sim, graph):
    tracer = make_tracer(sim, graph, instrumented={"root"})
    ctx = TransactionContext(sim, 1, "t")

    def proc():
        tracer.begin_transaction(ctx)
        yield from tracer.traced(ctx, "root", body(10.0))
        yield from tracer.traced(ctx, "root", body(5.0))
        tracer.end_transaction(ctx)

    sim.spawn(proc())
    sim.run()
    assert ctx.durations[("root", "<root>")] == 15.0


def test_probe_cost_charged_per_entry_and_exit(sim, graph):
    tracer = make_tracer(sim, graph, instrumented={"root"}, probe_cost=1.0)
    ctx = TransactionContext(sim, 1, "t")

    def proc():
        tracer.begin_transaction(ctx)
        yield from tracer.traced(ctx, "root", body(10.0))
        tracer.end_transaction(ctx)

    sim.spawn(proc())
    sim.run()
    assert sim.now == 12.0  # 10 body + 2 probes
    assert tracer.probe_firings == 2
    trace = tracer.log.traces[0]
    assert trace.latency == 12.0


def test_no_probe_cost_for_uninstrumented(sim, graph):
    tracer = make_tracer(sim, graph, instrumented=set(), probe_cost=5.0)
    ctx = TransactionContext(sim, 1, "t")

    def proc():
        tracer.begin_transaction(ctx)
        yield from tracer.traced(ctx, "root", body(10.0))
        tracer.end_transaction(ctx)

    sim.spawn(proc())
    sim.run()
    assert sim.now == 10.0
    assert tracer.probe_firings == 0


def test_traced_with_none_ctx_delegates(sim, graph):
    tracer = make_tracer(sim, graph, instrumented={"root"})
    result = []

    def proc():
        value = yield from tracer.traced(None, "root", body(1.0))
        result.append(value)

    sim.spawn(proc())
    sim.run()
    assert result == ["value"]


def test_instrument_validates_names(sim, graph):
    tracer = make_tracer(sim, graph, instrumented=set())
    tracer.instrument(["child"])
    assert "child" in tracer.instrumented
    with pytest.raises(KeyError):
        tracer.instrument(["not_a_function"])


def test_record_manual_respects_instrumented_set(sim, graph):
    tracer = make_tracer(sim, graph, instrumented={"root", "child"})
    ctx = TransactionContext(sim, 1, "t")
    tracer.record(ctx, "child", 5.0, site="q", parent=("root", "<root>"))
    tracer.record(ctx, "grandchild", 1.0)  # not instrumented: dropped
    assert ctx.durations == {("child", "q"): 5.0}
    assert ctx.under[("root", "<root>")] == {("child", "q"): 5.0}


def test_end_transaction_records_to_log(sim, graph):
    tracer = make_tracer(sim, graph, instrumented=set())
    ctx = TransactionContext(sim, 1, "t")

    def proc():
        tracer.begin_transaction(ctx)
        yield Timeout(1.0)
        tracer.end_transaction(ctx, committed=False)

    sim.spawn(proc())
    sim.run()
    assert len(tracer.log) == 1
    assert not tracer.log.traces[0].committed
