"""Parallel execution is byte-identical to serial execution.

The whole case for the process-pool backend rests on one claim: a run
is a pure function of (config, seed) in *any* interpreter, so fanning a
sweep across worker processes cannot change a single byte of any
artifact.  These tests pin that claim on a deliberately mixed sweep —
plain single-node runs, a faulted run, a sharded 2PC run and a
replicated semi-sync run, plus an exact duplicate config to exercise
the executor's digest dedup — and compare the *full* canonical run
payloads (every trace, event, counter and check report), not just a
summary statistic.

The cross-process variant additionally varies ``PYTHONHASHSEED``
between two fresh interpreters (see ``tests/util.py``): worker
processes inherit the parent's hash seed, so a str-hash-order bug in
any layer would desynchronise the pool from the serial baseline in at
least one of them.
"""

import json

import pytest

from repro.bench.digest import run_digest, run_payload
from repro.bench.runner import ExperimentConfig
from repro.cluster import Topology
from repro.exec import Executor
from repro.faults.plan import FaultPlan
from repro.replication import ReplicationConfig
from tests.util import assert_hash_seed_invariant

#: The mixed sweep: single-node, faulted, sharded, replicated — and a
#: byte-identical duplicate of the first config (index 4) so the pool
#: path also exercises dedup fan-in.
def mixed_sweep():
    plain = ExperimentConfig(
        workload="ycsb",
        workload_kwargs={"scale_factor": 1, "rows_per_sf": 32},
        n_txns=40,
        seed=3,
    )
    return [
        plain,
        ExperimentConfig(
            engine="postgres",
            workload="ycsb",
            workload_kwargs={"scale_factor": 1, "rows_per_sf": 32},
            n_txns=40,
            seed=4,
            fault_plan=FaultPlan(name="io", io_error_prob=0.02),
        ),
        ExperimentConfig(
            workload="tpcc",
            workload_kwargs={"warehouses": 8, "remote_payment_prob": 0.3},
            n_txns=40,
            seed=5,
            num_shards=2,
            topology=Topology(router="hash"),
            check=True,
        ),
        ExperimentConfig(
            workload="tpcc",
            workload_kwargs={"warehouses": 4},
            n_txns=40,
            seed=6,
            replicas=1,
            replication=ReplicationConfig(mode="semi_sync", ack_k=1),
            check=True,
        ),
        plain,
    ]


@pytest.mark.exec_smoke
def test_pool_artifacts_identical_to_serial():
    configs = mixed_sweep()
    serial = Executor(jobs=1).run(configs)
    pooled = Executor(jobs=4).run(configs)
    assert len(serial) == len(pooled) == len(configs)
    for config, a, b in zip(configs, serial, pooled):
        assert a.config_digest == b.config_digest == config.config_digest()
        # Full canonical payload, not just the digest: a mismatch then
        # points at the differing key instead of an opaque hash.
        pa, pb = run_payload(a), run_payload(b)
        assert json.dumps(pa, sort_keys=True) == json.dumps(pb, sort_keys=True)
        assert a.outcome_counts == b.outcome_counts
        assert [repr(v) for v in a.check_report() or []] == \
               [repr(v) for v in b.check_report() or []]
    # The duplicate config (index 4) matches its original (index 0).
    assert run_digest(pooled[4]) == run_digest(pooled[0])


#: Subprocess program for the cross-process check: run the mixed sweep
#: serial and pooled, print both digest lists.  Byte-identical stdout
#: across hash seeds == byte-identical artifacts across interpreters.
CROSS_PROCESS_CODE = """\
import sys, json; sys.path[:0] = json.loads(sys.argv[1])
from repro.bench.digest import run_digest
from repro.exec import Executor
from tests.test_exec_parallel import mixed_sweep

configs = mixed_sweep()
serial = [run_digest(a) for a in Executor(jobs=1).run(configs)]
pooled = [run_digest(a) for a in Executor(jobs=4).run(configs)]
assert serial == pooled, (serial, pooled)
print(json.dumps(serial))
"""


@pytest.mark.exec_smoke
def test_pool_identical_to_serial_across_hash_seeds():
    out = assert_hash_seed_invariant(CROSS_PROCESS_CODE)
    digests = json.loads(out)
    assert len(digests) == 5
    assert digests[4] == digests[0]  # duplicate config, same artifact
    assert len(set(digests[:4])) == 4  # distinct configs, distinct runs
