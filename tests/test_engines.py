"""End-to-end engine behaviour on small runs."""

import pytest

from repro.bench.runner import ExperimentConfig, run_experiment
from repro.engines.mysql import MySQLConfig, mysql_callgraph
from repro.engines.postgres import PostgresConfig, postgres_callgraph
from repro.engines.voltdb import VoltDBConfig, voltdb_callgraph
from repro.wal.mysql_log import FlushPolicy


def small_mysql(n_txns=200, **engine_kwargs):
    return ExperimentConfig(
        engine="mysql",
        workload="tpcc",
        workload_kwargs={"warehouses": 8},
        engine_config=MySQLConfig(**engine_kwargs),
        seed=11,
        n_txns=n_txns,
        rate_tps=500.0,
        warmup_fraction=0.0,
    )


class TestMySQLEngine:
    def test_all_transactions_complete(self):
        result = run_experiment(small_mysql())
        assert len(result.log) == 200
        assert result.failed_txns == 0
        assert all(t.latency > 0 for t in result.traces)

    def test_sustains_offered_rate(self):
        result = run_experiment(small_mysql())
        assert result.throughput_tps == pytest.approx(500.0, rel=0.15)

    def test_locks_all_released_at_end(self):
        result = run_experiment(small_mysql())
        assert result.engine.lockmgr._objects == {}
        assert result.engine.lockmgr._held == {}

    def test_traces_have_instrumented_factors(self):
        config = small_mysql()
        config = config.replaced(instrumented=frozenset({"do_command"}))
        result = run_experiment(config)
        trace = result.traces[0]
        assert ("do_command", "<root>") in trace.durations

    def test_read_only_txns_skip_redo(self):
        result = run_experiment(small_mysql())
        redo = result.engine.redo
        committed_writers = sum(
            1
            for t in result.traces
            if t.txn_type not in ("OrderStatus", "StockLevel")
        )
        assert len(redo._commits) == committed_writers

    def test_lazy_flush_policy_wired(self):
        result = run_experiment(small_mysql(flush_policy=FlushPolicy.LAZY_WRITE))
        redo = result.engine.redo
        assert redo.config.policy is FlushPolicy.LAZY_WRITE

    def test_prewarm_gives_high_hit_ratio(self):
        result = run_experiment(small_mysql())
        assert result.engine.pool.hit_ratio > 0.9

    def test_no_prewarm_cold_misses(self):
        result = run_experiment(small_mysql(prewarm=False))
        assert result.engine.pool.misses > 100

    def test_deadlocks_are_retried_not_failed(self):
        # Tiny warehouse count + upgrades make deadlocks likely.
        config = ExperimentConfig(
            engine="mysql",
            workload="tpcc",
            workload_kwargs={"warehouses": 1, "warehouse_zipf_theta": None},
            engine_config=MySQLConfig(),
            seed=3,
            n_txns=400,
            rate_tps=800.0,
            warmup_fraction=0.0,
        )
        result = run_experiment(config)
        # Whether or not deadlocks occurred, nothing may be lost.
        assert len(result.log) == 400
        committed = sum(1 for t in result.log.traces if t.committed)
        assert committed + result.failed_txns == 400

    def test_vats_scheduler_selected(self):
        result = run_experiment(small_mysql(scheduler="VATS"))
        assert result.engine.lockmgr.scheduler.name == "VATS"


class TestPostgresEngine:
    def small(self, n_txns=200, **kwargs):
        return ExperimentConfig(
            engine="postgres",
            workload="tpcc",
            workload_kwargs={"warehouses": 8},
            engine_config=PostgresConfig(**kwargs),
            seed=11,
            n_txns=n_txns,
            rate_tps=500.0,
            warmup_fraction=0.0,
        )

    def test_all_transactions_complete(self):
        result = run_experiment(self.small())
        assert len(result.log) == 200
        assert result.failed_txns == 0

    def test_wal_commits_match_writers(self):
        result = run_experiment(self.small())
        writers = sum(
            1 for t in result.traces if t.txn_type not in ("OrderStatus", "StockLevel")
        )
        assert len(result.engine.wal._commits) == writers
        assert result.engine.wal.lost_on_crash() == []

    def test_parallel_wal_uses_both_streams(self):
        result = run_experiment(self.small(parallel_wal=True))
        rounds = [w.flush_rounds for w in result.engine.wal.writers]
        assert all(r > 0 for r in rounds)

    def test_block_size_configurable(self):
        result = run_experiment(self.small(wal_block_size=32768))
        assert result.engine.wal.config.block_size == 32768


class TestVoltDBEngine:
    def small(self, n_txns=200, **kwargs):
        return ExperimentConfig(
            engine="voltdb",
            workload="tpcc",
            workload_kwargs={"warehouses": 8},
            engine_config=VoltDBConfig(**kwargs),
            seed=11,
            n_txns=n_txns,
            rate_tps=500.0,
            warmup_fraction=0.0,
        )

    def test_all_transactions_complete(self):
        result = run_experiment(self.small())
        assert len(result.log) == 200
        assert all(t.committed for t in result.log.traces)

    def test_intervals_recorded(self):
        result = run_experiment(self.small())
        # VoltDB traces span queue wait + execution; latency >= busy time.
        assert all(t.latency > 0 for t in result.traces)

    def test_queue_wait_factor_recorded_when_instrumented(self):
        config = self.small().replaced(
            instrumented=frozenset({"transaction", "[waiting in queue]"})
        )
        result = run_experiment(config)
        trace = result.traces[0]
        assert ("transaction", "<root>") in trace.durations
        keys = [k for k in trace.durations if k[0] == "[waiting in queue]"]
        assert keys

    def test_more_workers_less_queueing(self):
        few = run_experiment(self.small(n_workers=1))
        many = run_experiment(self.small(n_workers=16))
        assert sum(many.engine.queue_waits) < sum(few.engine.queue_waits)


class TestCallGraphs:
    @pytest.mark.parametrize(
        "factory, root",
        [
            (mysql_callgraph, "do_command"),
            (postgres_callgraph, "exec_simple_query"),
            (voltdb_callgraph, "transaction"),
        ],
    )
    def test_roots_and_acyclicity(self, factory, root):
        graph = factory()
        assert graph.root == root
        assert graph.graph_height >= 2  # deep enough for specificity
        # height computation implies acyclicity
        for name in graph.functions:
            assert graph.height(name) >= 0

    def test_mysql_graph_names_paper_functions(self):
        graph = mysql_callgraph()
        for name in (
            "os_event_wait",
            "lock_wait_suspend_thread",
            "buf_pool_mutex_enter",
            "row_ins_clust_index_entry_low",
            "btr_cur_search_to_nth_level",
            "fil_flush",
        ):
            assert name in graph

    def test_postgres_graph_names_paper_functions(self):
        graph = postgres_callgraph()
        assert "LWLockAcquireOrWait" in graph
        assert "ReleasePredicateLocks" in graph
