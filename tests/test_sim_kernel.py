"""Kernel semantics: clock, ordering, events, timeouts, processes."""

import pytest

from repro.sim.kernel import (
    Event,
    SimulationError,
    Simulator,
    Timeout,
    WaitEvent,
)


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_timeout_advances_clock(sim):
    seen = []

    def proc():
        yield Timeout(5.0)
        seen.append(sim.now)
        yield Timeout(2.5)
        seen.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert seen == [5.0, 7.5]


def test_negative_timeout_rejected():
    with pytest.raises(SimulationError):
        Timeout(-1.0)


@pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
def test_non_finite_timeout_rejected(bad):
    # NaN passes a bare ``< 0`` check and then poisons heap ordering
    # (every comparison with NaN is False), so the kernel must reject
    # non-finite delays explicitly.
    with pytest.raises(SimulationError):
        Timeout(bad)


@pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf"), -1.0])
def test_non_finite_wait_event_timeout_rejected(sim, bad):
    from repro.sim.kernel import WaitEvent

    with pytest.raises(SimulationError):
        WaitEvent(sim.event(), timeout=bad)


def test_wait_event_none_timeout_still_allowed(sim):
    from repro.sim.kernel import WaitEvent

    fired = []

    def waiter():
        event = sim.event()
        sim.spawn(firer(event))
        yield WaitEvent(event, timeout=None)
        fired.append(sim.now)

    def firer(event):
        yield Timeout(4.0)
        event.fire()

    sim.spawn(waiter())
    sim.run()
    assert fired == [4.0]


def test_zero_timeout_allowed(sim):
    done = []

    def proc():
        yield Timeout(0.0)
        done.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert done == [0.0]


def test_fifo_tiebreak_at_same_time(sim):
    """Processes scheduled for the same instant run in spawn order."""
    order = []

    def proc(tag):
        yield Timeout(10.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        sim.spawn(proc(tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_event_wakes_all_waiters(sim):
    event = sim.event()
    woken = []

    def waiter(tag):
        yield WaitEvent(event)
        woken.append((tag, sim.now))

    def firer():
        yield Timeout(3.0)
        event.fire("payload")

    sim.spawn(waiter("x"))
    sim.spawn(waiter("y"))
    sim.spawn(firer())
    sim.run()
    assert woken == [("x", 3.0), ("y", 3.0)]
    assert event.value == "payload"


def test_wait_on_already_fired_event_returns_immediately(sim):
    event = sim.event()
    event.fire()
    seen = []

    def proc():
        fired = yield WaitEvent(event)
        seen.append((fired, sim.now))

    sim.spawn(proc())
    sim.run()
    assert seen == [(True, 0.0)]


def test_event_cannot_fire_twice(sim):
    event = sim.event()
    event.fire()
    with pytest.raises(SimulationError):
        event.fire()


def test_wait_with_timeout_times_out(sim):
    event = sim.event()
    results = []

    def proc():
        fired = yield WaitEvent(event, timeout=4.0)
        results.append((fired, sim.now))

    sim.spawn(proc())
    sim.run()
    assert results == [(False, 4.0)]


def test_wait_with_timeout_fires_first(sim):
    event = sim.event()
    results = []

    def proc():
        fired = yield WaitEvent(event, timeout=10.0)
        results.append((fired, sim.now))

    def firer():
        yield Timeout(2.0)
        event.fire()

    sim.spawn(proc())
    sim.spawn(firer())
    sim.run()
    assert results == [(True, 2.0)]


def test_timed_out_waiter_not_woken_by_later_fire(sim):
    event = sim.event()
    wakeups = []

    def proc():
        fired = yield WaitEvent(event, timeout=1.0)
        wakeups.append(fired)
        yield Timeout(100.0)

    def firer():
        yield Timeout(5.0)
        event.fire()

    sim.spawn(proc())
    sim.spawn(firer())
    sim.run()
    assert wakeups == [False]


def test_process_return_value_on_done_event(sim):
    def proc():
        yield Timeout(1.0)
        return 42

    process = sim.spawn(proc())
    sim.run()
    assert process.done.fired
    assert process.done.value == 42


def test_waiting_on_process_sugar(sim):
    results = []

    def child():
        yield Timeout(7.0)
        return "done"

    def parent():
        proc = sim.spawn(child())
        yield proc
        results.append((sim.now, proc.done.value))

    sim.spawn(parent())
    sim.run()
    assert results == [(7.0, "done")]


def test_yield_from_composes_subcalls(sim):
    trace = []

    def inner():
        yield Timeout(2.0)
        return "inner-result"

    def outer():
        value = yield from inner()
        trace.append((sim.now, value))

    sim.spawn(outer())
    sim.run()
    assert trace == [(2.0, "inner-result")]


def test_unsupported_command_raises(sim):
    def proc():
        yield "nonsense"

    sim.spawn(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_run_until_bound_pauses_and_resumes(sim):
    seen = []

    def proc():
        yield Timeout(10.0)
        seen.append(sim.now)

    sim.spawn(proc())
    assert sim.run(until=5.0) == 5.0
    assert seen == []
    sim.run()
    assert seen == [10.0]


def test_run_until_in_the_past_never_moves_clock_backwards(sim):
    """Regression: ``run(until=t)`` with ``t < now`` used to rewind the
    clock to ``t``.  The clock is monotone; a past bound runs nothing
    and leaves ``now`` untouched."""

    def proc():
        yield Timeout(10.0)

    sim.spawn(proc())
    sim.run()
    assert sim.now == 10.0
    assert sim.run(until=3.0) == 10.0
    assert sim.now == 10.0


def test_run_until_equal_to_now_is_a_noop_bound(sim):
    def proc():
        yield Timeout(2.0)
        yield Timeout(2.0)

    sim.spawn(proc())
    assert sim.run(until=2.0) == 2.0
    assert sim.now == 2.0
    sim.run()
    assert sim.now == 4.0


def test_bare_float_yield_is_timeout_shorthand(sim):
    seen = []

    def proc():
        yield 5.0
        seen.append(sim.now)
        yield 2.5
        seen.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert seen == [5.0, 7.5]


def test_bare_int_yield_is_timeout_shorthand(sim):
    seen = []

    def proc():
        yield 3
        seen.append(sim.now)
        yield 0
        seen.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert seen == [3.0, 3.0]


@pytest.mark.parametrize(
    "bad", [float("nan"), float("inf"), float("-inf"), -1.0, -0.001]
)
def test_bare_float_yield_rejects_invalid_delays(sim, bad):
    """The bare-float fast path applies the exact ``Timeout`` guard:
    negative, infinite and NaN delays raise instead of poisoning the
    wakeup heap."""

    def proc():
        yield bad

    sim.spawn(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_bare_negative_int_yield_rejected(sim):
    def proc():
        yield -1

    sim.spawn(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_determinism_two_identical_sims():
    def build():
        sim = Simulator()
        log = []

        def proc(tag, delay):
            yield Timeout(delay)
            log.append((tag, sim.now))

        sim.spawn(proc("a", 3))
        sim.spawn(proc("b", 1))
        sim.spawn(proc("c", 2))
        sim.run()
        return log

    assert build() == build()


def test_exception_in_process_propagates(sim):
    def proc():
        yield Timeout(1.0)
        raise ValueError("boom")

    sim.spawn(proc())
    with pytest.raises(ValueError, match="boom"):
        sim.run()


def test_current_process_tracked(sim):
    observed = []

    def proc():
        observed.append(sim.current.name)
        yield Timeout(1.0)

    sim.spawn(proc(), name="myproc")
    sim.run()
    assert observed == ["myproc"]
    assert sim.current is None
