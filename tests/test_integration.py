"""Full-stack integration: miniature versions of the paper's headline
experiments, asserting directions (who wins), not magnitudes."""

import pytest

from repro.bench import paperconfig as pc
from repro.bench.compare import ratios
from repro.bench.profiled import EngineProfiledSystem
from repro.bench.runner import run_experiment
from repro.core.profiler import TProfiler
from repro.faults import named_plan

# Miniature run length: big enough for stable direction, small enough
# for the test suite.  The full-size runs live in benchmarks/.
N = 1500


@pytest.fixture(scope="module")
def mysql_fcfs():
    return run_experiment(pc.mysql_128wh_experiment("FCFS", n_txns=N))


@pytest.fixture(scope="module")
def mysql_vats():
    return run_experiment(pc.mysql_128wh_experiment("VATS", n_txns=N))


class TestContendedMySQL:
    def test_sustains_offered_load(self, mysql_fcfs):
        assert mysql_fcfs.throughput_tps == pytest.approx(500.0, rel=0.2)

    def test_baseline_is_unpredictable(self, mysql_fcfs):
        """Appendix C.1 direction: p99 is many times the mean."""
        s = mysql_fcfs.summary
        assert s.p99 > 3.0 * s.mean

    def test_vats_does_not_hurt_throughput(self, mysql_fcfs, mysql_vats):
        assert mysql_vats.throughput_tps >= 0.95 * mysql_fcfs.throughput_tps

    def test_vats_not_worse_on_mean(self, mysql_fcfs, mysql_vats):
        r = ratios(mysql_fcfs.latencies, mysql_vats.latencies)
        assert r["mean"] > 0.9

    def test_lock_waits_present_under_contention(self, mysql_fcfs):
        assert mysql_fcfs.engine.lockmgr.total_waits > 50


class TestNoContentionWorkloads:
    @pytest.mark.parametrize("workload", ["ycsb", "epinions"])
    def test_scheduling_immaterial_without_contention(self, workload):
        """Table 4 bottom: FCFS vs VATS within noise on uncontended
        workloads."""
        fcfs = run_experiment(
            pc.mysql_workload_experiment(workload, "FCFS", n_txns=800)
        )
        vats = run_experiment(
            pc.mysql_workload_experiment(workload, "VATS", n_txns=800)
        )
        assert fcfs.engine.lockmgr.total_waits < 20
        r = ratios(fcfs.latencies, vats.latencies)
        assert 0.8 < r["mean"] < 1.25


class TestLLUIntegration:
    def test_llu_reduces_mutex_wait_time(self):
        base = run_experiment(pc.mysql_2wh_experiment(lazy_lru=False, n_txns=1200))
        llu = run_experiment(pc.mysql_2wh_experiment(lazy_lru=True, n_txns=1200))
        base_mutex = base.engine.pool.mutex
        llu_pool = llu.engine.pool
        assert llu_pool.llu_deferrals > 0
        r = ratios(base.latencies, llu.latencies)
        assert r["variance"] > 0.95  # never meaningfully worse

    def test_memory_pressure_present(self):
        result = run_experiment(pc.mysql_2wh_experiment(n_txns=800))
        pool = result.engine.pool
        assert pool.hit_ratio < 0.97
        assert pool.evictions > 500


class TestPostgresIntegration:
    def test_wal_lock_dominates_variance(self):
        system = EngineProfiledSystem(pc.postgres_experiment(n_txns=1200))
        result = TProfiler(system, k=4, max_iterations=6).profile()
        shares = result.tree.name_shares()
        assert shares.get("LWLockAcquireOrWait", 0.0) > 0.3
        assert shares.get("LWLockAcquireOrWait", 0.0) > shares.get(
            "ReleasePredicateLocks", 0.0
        )

    def test_parallel_logging_improves_mean(self):
        single = run_experiment(pc.postgres_experiment(parallel_wal=False, n_txns=1500))
        parallel = run_experiment(pc.postgres_experiment(parallel_wal=True, n_txns=1500))
        r = ratios(single.latencies, parallel.latencies)
        assert r["mean"] > 1.2


class TestVoltDBIntegration:
    def test_queue_wait_dominates_variance(self):
        system = EngineProfiledSystem(pc.voltdb_experiment(n_txns=1200))
        result = TProfiler(system, k=3, max_iterations=5).profile()
        shares = result.tree.name_shares()
        assert shares.get("[waiting in queue]", 0.0) > 0.5

    def test_more_workers_more_predictable(self):
        two = run_experiment(pc.voltdb_experiment(n_workers=2, n_txns=1200))
        eight = run_experiment(pc.voltdb_experiment(n_workers=8, n_txns=1200))
        r = ratios(two.latencies, eight.latencies)
        assert r["mean"] > 1.5
        assert r["variance"] > 1.5


class TestOutcomeAccounting:
    def test_every_transaction_accounted_for(self):
        """Every submitted transaction ends in exactly one bucket, even
        under load shedding and injected faults.  Closes the old gap
        where shed/failed/committed counts could only be cross-checked
        through separate engine counters."""
        config = pc.mysql_128wh_experiment(
            "FCFS", n_txns=600, max_queue_depth=2, n_workers=8
        ).replaced(
            fault_plan=named_plan("io-errors", io_error_prob=0.05),
            check=True,
        )
        result = run_experiment(config)
        counts = result.outcome_counts
        assert sum(counts.values()) == config.n_txns
        assert counts.get("shed", 0) == result.shed_txns
        assert counts.get("committed", 0) + result.failed_txns == config.n_txns
        # The bounded per-txn listing agrees with the exact aggregates.
        outcomes = result.txn_outcomes
        assert len(outcomes) == config.n_txns
        tally = {}
        for _txn_id, _txn_type, outcome in outcomes:
            tally[outcome] = tally.get(outcome, 0) + 1
        assert tally == counts
        # This config actually exercises the shed and fault paths.
        assert counts.get("shed", 0) > 0
        assert result.check_report() == []


class TestProfilerIntegration:
    def test_mysql_128wh_profile_finds_lock_waits(self):
        system = EngineProfiledSystem(pc.mysql_128wh_experiment(n_txns=1200))
        result = TProfiler(system, k=5, max_iterations=8).profile()
        shares = result.tree.name_shares()
        assert shares.get("os_event_wait", 0.0) > 0.25
        # Informative deep factors outrank the root in score order.
        top_names = [row.name for row in result.top(6)]
        assert "do_command" not in top_names
