"""The variance-aware tuning advisor and sweep machinery."""

import pytest

from repro.bench import paperconfig as pc
from repro.tuning.advisor import Recommendation, TuningAdvisor
from repro.tuning.sweep import ParameterSweep


class TestAdvisor:
    def test_known_factor_mapped(self):
        advisor = TuningAdvisor()
        recs = advisor.recommend({"os_event_wait": 0.6})
        assert len(recs) == 1
        assert recs[0].parameter == "lock scheduling algorithm"
        assert "VATS" in recs[0].action

    def test_ranked_by_share(self):
        advisor = TuningAdvisor()
        recs = advisor.recommend(
            {"fil_flush": 0.05, "os_event_wait": 0.6, "buf_pool_mutex_enter": 0.3}
        )
        assert [r.factor for r in recs] == [
            "os_event_wait",
            "buf_pool_mutex_enter",
            "fil_flush",
        ]

    def test_below_threshold_ignored(self):
        advisor = TuningAdvisor(min_share=0.1)
        assert advisor.recommend({"fil_flush": 0.05}) == []

    def test_unknown_factors_ignored(self):
        advisor = TuningAdvisor()
        assert advisor.recommend({"mystery_function": 0.9}) == []

    def test_body_factors_folded(self):
        advisor = TuningAdvisor()
        recs = advisor.recommend({"buf_pool_mutex_enter::body": 0.4})
        assert recs and recs[0].factor == "buf_pool_mutex_enter"

    def test_durability_tradeoff_surfaced(self):
        advisor = TuningAdvisor()
        recs = advisor.recommend({"fil_flush": 0.3})
        assert recs[0].tradeoff is not None
        assert "crash" in recs[0].tradeoff

    def test_render_mentions_every_factor(self):
        advisor = TuningAdvisor()
        text = advisor.render({"LWLockAcquireOrWait": 0.77, "[waiting in queue]": 0.9})
        assert "LWLockAcquireOrWait" in text
        assert "[waiting in queue]" in text
        assert "trade-off" in text or "worker" in text

    def test_render_empty(self):
        assert "No actionable" in TuningAdvisor().render({})

    def test_advisor_on_real_profile(self):
        """End-to-end: profile the contended MySQL config and the advisor
        must point at the lock scheduler first."""
        from repro.bench.profiled import EngineProfiledSystem
        from repro.core.profiler import TProfiler

        system = EngineProfiledSystem(pc.mysql_128wh_experiment(n_txns=800))
        profile = TProfiler(system, k=4, max_iterations=6).profile()
        recs = TuningAdvisor().recommend(profile.tree.name_shares())
        assert recs
        assert recs[0].parameter in (
            "lock scheduling algorithm",
            "innodb_flush_log_at_trx_commit",
        )


class TestSweep:
    def make_sweep(self):
        def make_config(n_workers):
            return pc.voltdb_experiment(n_workers=n_workers, n_txns=600)

        return ParameterSweep(make_config)

    def test_sweep_runs_all_candidates(self):
        sweep = self.make_sweep()
        points = sweep.run([2, 8])
        assert [p.value for p in points] == [2, 8]

    def test_best_prefers_low_variance_with_good_mean(self):
        sweep = self.make_sweep()
        sweep.run([2, 8])
        best = sweep.best()
        assert best.value == 8  # more workers: lower mean AND variance

    def test_best_requires_run_first(self):
        with pytest.raises(RuntimeError):
            self.make_sweep().best()

    def test_render_contains_all_settings(self):
        sweep = self.make_sweep()
        sweep.run([2, 8])
        text = sweep.render()
        assert "ideal setting" in text
        assert "8" in text

    def test_padding_rejected_by_ideal_rule(self):
        """A setting that trivially minimises variance by inflating mean
        latency (the paper's padding strawman) must not win."""

        class FakeSummary:
            def __init__(self, mean, variance):
                self.mean = mean
                self.variance = variance
                self.p99 = mean * 2

        from repro.tuning.sweep import SweepPoint

        sweep = ParameterSweep(lambda v: None)
        sweep.points = [
            SweepPoint("normal", 1, FakeSummary(10.0, 100.0), 500.0),
            SweepPoint("padded", 2, FakeSummary(100.0, 1.0), 500.0),
        ]
        assert sweep.best().label == "normal"
