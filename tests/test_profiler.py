"""TProfiler's iterative refinement on a synthetic system with a
planted variance source, plus the naive baseline's run counts."""

import random

import pytest

from repro.core.annotations import TransactionLog, TxnTrace
from repro.core.callgraph import CallGraph
from repro.core.profiler import NaiveProfiler, ProfiledSystem, TProfiler


class SyntheticSystem(ProfiledSystem):
    """root -> {quiet, noisy}; noisy -> {noisy_leaf, steady_leaf}.

    noisy_leaf is the planted culprit: its duration is highly variable;
    everything else is (nearly) constant.  run() produces traces that
    honour the instrumented subset, exactly as the tracer would.
    """

    def __init__(self, n_txns=300):
        self.callgraph = CallGraph.from_dict(
            "root",
            {
                "root": ["quiet", "noisy"],
                "noisy": ["noisy_leaf", "steady_leaf"],
                "quiet": [],
            },
        )
        self.n_txns = n_txns
        self.run_count = 0

    def run(self, instrumented, probe_cost):
        self.run_count += 1
        rng = random.Random(42)
        log = TransactionLog()
        for i in range(self.n_txns):
            quiet = 10.0
            noisy_leaf = rng.expovariate(1.0 / 50.0)  # the culprit
            steady_leaf = 5.0
            noisy = noisy_leaf + steady_leaf + 2.0
            total = quiet + noisy + 3.0
            durations = {}
            under = {}

            def record(name, value, parent_chain):
                if name not in instrumented:
                    return
                site = "<root>"
                parent_key = None
                for anc in reversed(parent_chain):
                    if anc in instrumented:
                        site = anc
                        parent_key = (anc, _site_of(anc, parent_chain))
                        break
                key = (name, site)
                durations[key] = durations.get(key, 0.0) + value
                if parent_key is not None:
                    under.setdefault(parent_key, {})[key] = value

            def _site_of(name, chain):
                idx = chain.index(name)
                for anc in reversed(chain[:idx]):
                    if anc in instrumented:
                        return anc
                return "<root>"

            record("root", total, [])
            record("quiet", quiet, ["root"])
            record("noisy", noisy, ["root"])
            record("noisy_leaf", noisy_leaf, ["root", "noisy"])
            record("steady_leaf", steady_leaf, ["root", "noisy"])
            log.traces.append(
                TxnTrace(i, "t", 0.0, 0.0, total, 1, durations, under, True)
            )
        return log


def test_profiler_finds_planted_culprit():
    system = SyntheticSystem()
    profiler = TProfiler(system, k=2, max_iterations=10)
    result = profiler.profile()
    top_names = [row.name for row in result.top(3)]
    assert "noisy_leaf" in top_names
    # The culprit accounts for essentially all the variance.
    assert result.share_of("noisy_leaf") > 0.9


def test_profiler_expands_only_variance_relevant_subtrees():
    system = SyntheticSystem()
    profiler = TProfiler(system, k=1, max_iterations=10)
    result = profiler.profile()
    # quiet is constant: no need to expand below it (it has no children
    # anyway), but noisy's children must have been instrumented.
    assert "noisy_leaf" in result.instrumented
    assert "steady_leaf" in result.instrumented


def test_profiler_run_count_bounded_by_iterations():
    system = SyntheticSystem()
    profiler = TProfiler(system, k=2, max_iterations=4)
    result = profiler.profile()
    assert result.runs <= 4
    assert system.run_count == result.runs


def test_profiler_stops_when_fully_expanded():
    system = SyntheticSystem()
    profiler = TProfiler(system, k=5, max_iterations=50)
    result = profiler.profile()
    # Graph height is 2: root -> noisy -> leaves needs 3 runs at most
    # (root; +children; +grandchildren), plus the terminating run.
    assert result.runs <= 4


def test_low_variance_factors_not_expanded():
    """A factor below the share threshold is never decomposed."""
    system = SyntheticSystem()
    profiler = TProfiler(system, k=5, max_iterations=10, expand_share_threshold=2.0)
    result = profiler.profile()
    # Threshold of 200% can never be met: only the root is instrumented.
    assert result.instrumented == frozenset({"root"})


class TestNaiveProfiler:
    def test_runs_needed_scales_with_graph(self):
        small = CallGraph.from_dict("r", {"r": ["a", "b"]})
        big = CallGraph.from_dict(
            "r", {"r": ["n%d" % i for i in range(50)]}
        )
        naive = NaiveProfiler(budget=10)
        assert naive.runs_needed(big) > naive.runs_needed(small)

    def test_runs_needed_expanded_counts_paths(self):
        # Diamond stack: expanded tree is exponentially larger.
        edges = {}
        prev = "L0"
        for i in range(12):
            a, b, nxt = "A%d" % i, "B%d" % i, "L%d" % (i + 1)
            edges.setdefault(prev, []).extend([a, b])
            edges[a] = [nxt]
            edges[b] = [nxt]
            prev = nxt
        graph = CallGraph.from_dict("L0", edges)
        naive = NaiveProfiler(budget=100)
        assert naive.runs_needed(graph, expanded=True) > naive.runs_needed(graph)

    def test_naive_profile_runs_system(self):
        system = SyntheticSystem(n_txns=50)
        naive = NaiveProfiler(system, budget=3)
        tree, runs = naive.profile()
        assert runs >= 2  # forced to split batches
        assert tree is not None


def test_tprofiler_vs_naive_run_count():
    """Figure 5 (right): TProfiler needs orders of magnitude fewer runs."""
    system = SyntheticSystem()
    profiler = TProfiler(system, k=2, max_iterations=10)
    result = profiler.profile()
    naive = NaiveProfiler(budget=2)
    assert naive.runs_needed(system.callgraph) >= result.runs
