"""The CATS extension scheduler (contention-aware, the authors'
follow-up work)."""

import pytest

from repro.core.annotations import TransactionContext
from repro.lockmgr.locks import LockMode
from repro.lockmgr.manager import LockManager
from repro.lockmgr.scheduling import CATSScheduler, make_scheduler
from repro.sim.kernel import Timeout


def test_factory_builds_cats():
    scheduler = make_scheduler("cats")
    assert scheduler.name == "CATS"
    assert scheduler.head_placement


def test_manager_binds_itself():
    from repro.sim.kernel import Simulator

    sim = Simulator()
    scheduler = CATSScheduler()
    manager = LockManager(sim, scheduler)
    assert scheduler._manager is manager


def test_cats_prefers_heavier_lock_holder(sim):
    """Between two waiters, the one holding more locks elsewhere (and
    therefore blocking more downstream work) is granted first."""
    lm = LockManager(sim, make_scheduler("cats"))
    order = []

    def holder():
        ctx = TransactionContext(sim, "holder", "t")
        ctx.begin()
        yield from lm.acquire(ctx, "hot", LockMode.X)
        yield Timeout(50.0)
        lm.release_all(ctx)

    def light(tid, arrive):
        yield Timeout(arrive)
        ctx = TransactionContext(sim, tid, "t")
        ctx.begin()
        yield from lm.acquire(ctx, "hot", LockMode.X)
        order.append(tid)
        yield Timeout(1.0)
        lm.release_all(ctx)

    def heavy(tid, arrive):
        yield Timeout(arrive)
        ctx = TransactionContext(sim, tid, "t")
        ctx.begin()
        for i in range(5):
            yield from lm.acquire(ctx, "side%d" % i, LockMode.X)
        yield from lm.acquire(ctx, "hot", LockMode.X)
        order.append(tid)
        yield Timeout(1.0)
        lm.release_all(ctx)

    sim.spawn(holder())
    sim.spawn(light("light", 1.0))   # arrives first, holds nothing
    sim.spawn(heavy("heavy", 2.0))   # arrives later, holds 5 locks
    sim.run()
    assert order == ["heavy", "light"]


def test_cats_falls_back_to_eldest_on_ties(sim):
    lm = LockManager(sim, make_scheduler("cats"))
    order = []

    def holder():
        ctx = TransactionContext(sim, "holder", "t")
        ctx.begin()
        yield from lm.acquire(ctx, "hot", LockMode.X)
        yield Timeout(50.0)
        lm.release_all(ctx)

    def waiter(tid, arrive, birth):
        yield Timeout(arrive)
        ctx = TransactionContext(sim, tid, "t", birth=birth)
        ctx.begin()
        yield from lm.acquire(ctx, "hot", LockMode.X)
        order.append(tid)
        yield Timeout(1.0)
        lm.release_all(ctx)

    sim.spawn(holder())
    sim.spawn(waiter("younger", 1.0, birth=10.0))
    sim.spawn(waiter("elder", 2.0, birth=0.0))
    sim.run()
    assert order == ["elder", "younger"]


def test_cats_runs_full_engine():
    from repro.bench.runner import ExperimentConfig, run_experiment
    from repro.engines.mysql import MySQLConfig

    config = ExperimentConfig(
        engine="mysql",
        workload="tpcc",
        workload_kwargs={"warehouses": 8},
        engine_config=MySQLConfig(scheduler="CATS"),
        seed=9,
        n_txns=300,
        rate_tps=500.0,
        warmup_fraction=0.0,
    )
    result = run_experiment(config)
    assert len(result.log) == 300
    assert result.failed_txns == 0
