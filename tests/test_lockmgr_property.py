"""Property-based safety checks for the lock manager.

The invariant every scheduler must preserve: no two *incompatible*
locks are ever granted on the same object at the same time, and every
transaction eventually resolves (grant, deadlock-abort, or timeout) —
no scheduler may simply lose a waiter.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.annotations import TransactionContext
from repro.lockmgr.locks import LockMode, compatible
from repro.lockmgr.manager import LockManager, RequestStatus
from repro.lockmgr.scheduling import make_scheduler
from repro.sim.kernel import Simulator, Timeout


def check_granted_compatible(manager):
    for obj_id, obj in manager._objects.items():
        granted = obj.granted
        for i in range(len(granted)):
            for j in range(i + 1, len(granted)):
                a, b = granted[i], granted[j]
                if a.txn is b.txn:
                    continue
                assert compatible(a.mode, b.mode), (
                    "incompatible grants on %r: %r vs %r" % (obj_id, a, b)
                )


SCHEDULERS = ("FCFS", "VATS", "RS", "CATS")


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    scheduler_name=st.sampled_from(SCHEDULERS),
    n_txns=st.integers(2, 12),
    n_objects=st.integers(1, 4),
)
def test_no_incompatible_grants_and_all_resolve(seed, scheduler_name, n_txns, n_objects):
    rng = random.Random(seed)
    sim = Simulator()
    scheduler = make_scheduler(scheduler_name, rng=random.Random(seed + 1))
    manager = LockManager(sim, scheduler, wait_timeout=10_000.0)
    resolved = []

    def txn(tid, plan, birth_delay):
        yield Timeout(birth_delay)
        ctx = TransactionContext(sim, tid, "t")
        ctx.begin()
        outcome = "committed"
        for obj_id, mode, hold in plan:
            status = yield from manager.acquire(ctx, obj_id, mode)
            check_granted_compatible(manager)
            if status is not RequestStatus.GRANTED:
                outcome = status.value
                break
            yield Timeout(hold)
        manager.release_all(ctx)
        check_granted_compatible(manager)
        resolved.append((tid, outcome))

    for tid in range(n_txns):
        plan = [
            (
                "obj%d" % rng.randrange(n_objects),
                LockMode.X if rng.random() < 0.5 else LockMode.S,
                rng.uniform(0.0, 30.0),
            )
            for _ in range(rng.randint(1, 4))
        ]
        sim.spawn(txn(tid, plan, rng.uniform(0.0, 50.0)))
    sim.run()

    # Liveness: every transaction resolved one way or another.
    assert len(resolved) == n_txns
    # And the lock table drained completely.
    assert manager._objects == {}
    assert manager._held == {}


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), scheduler_name=st.sampled_from(SCHEDULERS))
def test_strict_two_phase_holds_until_release(seed, scheduler_name):
    """A granted lock stays held (and exclusive) until release_all."""
    rng = random.Random(seed)
    sim = Simulator()
    manager = LockManager(
        sim, make_scheduler(scheduler_name, rng=random.Random(seed + 1))
    )

    def writer(tid, delay):
        yield Timeout(delay)
        ctx = TransactionContext(sim, tid, "t")
        ctx.begin()
        status = yield from manager.acquire(ctx, "hot", LockMode.X)
        if status is RequestStatus.GRANTED:
            for _ in range(3):
                yield Timeout(rng.uniform(1.0, 5.0))
                # Still exclusively ours every time we look.
                holders = {
                    r.txn for r in manager._objects["hot"].granted
                }
                assert holders == {ctx}
        manager.release_all(ctx)

    for tid in range(4):
        sim.spawn(writer(tid, tid * 2.0))
    sim.run()
    assert manager._objects == {}
