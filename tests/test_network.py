"""Unit tests for the simulated network (repro.sim.network).

The network is the cluster's variance source: seeded heavy-tailed
propagation latency, per-link bandwidth queueing, and two fault hooks
(delay windows, partitions).  These tests pin its semantics directly
against a bare simulator, without building a cluster.
"""

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.sim.kernel import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.rand import Streams
from repro.telemetry import MetricsRegistry


def build(seed=7, config=None, plan=None):
    registry = MetricsRegistry()
    streams = Streams(seed)
    if plan is not None and plan.enabled:
        faults = FaultInjector(plan, streams, telemetry=registry)
        sim = Simulator(telemetry=registry, faults=faults)
    else:
        sim = Simulator(telemetry=registry)
    registry.bind_clock(sim)
    net = Network(sim, streams.stream("net"), config=config)
    return sim, net


def send_and_record(sim, net, src, dst, nbytes, arrivals):
    def proc():
        yield from net.send(src, dst, nbytes)
        arrivals.append(sim.now)

    sim.spawn(proc(), name="send")


def test_loopback_is_fixed_cost():
    sim, net = build(config=NetworkConfig(loopback_cost=2.0))
    arrivals = []
    send_and_record(sim, net, 3, 3, 10_000, arrivals)
    sim.run()
    assert arrivals == [2.0]
    assert net.messages == 1


def test_same_seed_same_arrivals():
    runs = []
    for _ in range(2):
        sim, net = build(seed=11)
        arrivals = []
        for i in range(50):
            send_and_record(sim, net, 0, 1 + i % 3, 256, arrivals)
        sim.run()
        runs.append(arrivals)
    assert runs[0] == runs[1]
    assert len(runs[0]) == 50


def test_bandwidth_queueing_serialises_a_link():
    # 125_000 bytes at 1250 B/us = 100 us of transmission: the second
    # message submitted at t=0 on the same link queues behind the first.
    config = NetworkConfig(bandwidth_bytes_per_us=1250.0)
    sim, net = build(config=config)
    arrivals = []
    send_and_record(sim, net, 0, 1, 125_000, arrivals)
    send_and_record(sim, net, 0, 1, 125_000, arrivals)
    sim.run()
    snap = sim.telemetry.snapshot()
    queue = snap["histograms"]["net.net.queue_delay"]
    assert queue["count"] == 2
    assert queue["max"] == pytest.approx(100.0)
    # Distinct links do not share the bandwidth queue.
    sim2, net2 = build(config=config)
    arrivals2 = []
    send_and_record(sim2, net2, 0, 1, 125_000, arrivals2)
    send_and_record(sim2, net2, 0, 2, 125_000, arrivals2)
    sim2.run()
    queue2 = sim2.telemetry.snapshot()["histograms"]["net.net.queue_delay"]
    assert queue2["max"] == pytest.approx(0.0)


def test_partition_holds_messages_until_heal():
    plan = FaultPlan(partition_windows=((0.0, 5_000.0),))
    sim, net = build(plan=plan)
    arrivals = []
    send_and_record(sim, net, 0, 1, 64, arrivals)
    sim.run()
    assert net.partition_holds == 1
    assert arrivals[0] >= 5_000.0


def test_partition_links_limits_the_cut():
    plan = FaultPlan(
        partition_windows=((0.0, 5_000.0),), partition_links=((0, 1),)
    )
    sim, net = build(plan=plan)
    arrivals_cut = []
    arrivals_ok = []
    send_and_record(sim, net, 0, 1, 64, arrivals_cut)
    send_and_record(sim, net, 1, 0, 64, arrivals_ok)
    sim.run()
    assert net.partition_holds == 1
    assert arrivals_cut[0] >= 5_000.0
    assert arrivals_ok[0] < 5_000.0


def test_net_delay_factor_scales_latency():
    # Zero-byte messages isolate propagation latency (no transmission
    # time); the same seed samples the same base latency, so the faulted
    # arrival is exactly factor x the clean one.
    clean_sim, clean_net = build(seed=5)
    clean = []
    send_and_record(clean_sim, clean_net, 0, 1, 0, clean)
    clean_sim.run()
    plan = FaultPlan(
        net_delay_windows=((0.0, 1e9),), net_delay_factor=5.0
    )
    slow_sim, slow_net = build(seed=5, plan=plan)
    slow = []
    send_and_record(slow_sim, slow_net, 0, 1, 0, slow)
    slow_sim.run()
    assert slow[0] == pytest.approx(5.0 * clean[0])


def test_telemetry_counts_messages_and_bytes():
    sim, net = build()
    arrivals = []
    send_and_record(sim, net, 0, 1, 100, arrivals)
    send_and_record(sim, net, 1, 2, 200, arrivals)
    sim.run()
    snap = sim.telemetry.snapshot()
    assert snap["counters"]["net.net.messages"] == 2
    assert snap["counters"]["net.net.bytes"] == 300
    assert snap["histograms"]["net.net.latency"]["count"] == 2
