"""Golden-figure smoke tests: tiny-N directional invariants.

The full figure reproductions live in ``benchmarks/`` and take minutes;
these runs are small enough for every CI push yet still assert the
*shape* each figure depends on:

* Figure 2 — VATS tames the FCFS lock-wait tail (variance and p99).
* Figure 6 — stock-engine latency is heavily dispersed, and the
  variance tree's eq. (1) identity (children + body + 2*cov sums back
  to the parent) holds on real instrumented traces, not just synthetic
  ones.

Directional thresholds are deliberately looser than the paper's ratios:
at tiny N the heavy-tailed estimators are noisy, and the point here is
catching figure *drift* (a sign flip, a broken decomposition), not
re-measuring the paper.
"""

import pytest

from repro.bench import paperconfig as pc
from repro.bench.runner import run_experiment
from repro.core.variance_tree import VarianceTree

pytestmark = pytest.mark.smoke_bench

SMOKE_TXNS = 1500


@pytest.fixture(scope="module")
def scheduler_runs():
    """One FCFS and one VATS run on the contended 128-WH TPC-C config."""
    fcfs = run_experiment(pc.mysql_128wh_experiment("FCFS", n_txns=SMOKE_TXNS))
    vats = run_experiment(pc.mysql_128wh_experiment("VATS", n_txns=SMOKE_TXNS))
    return fcfs, vats


class TestFig2Direction:
    def test_vats_tail_no_worse_than_fcfs(self, scheduler_runs):
        fcfs, vats = scheduler_runs
        # The paper's FCFS/VATS p99 ratio is 2.0x at full scale; at tiny N
        # we only require the direction (with 5% slack for estimator noise).
        assert vats.summary.p99 <= fcfs.summary.p99 * 1.05

    def test_vats_variance_below_fcfs(self, scheduler_runs):
        fcfs, vats = scheduler_runs
        assert vats.summary.variance < fcfs.summary.variance

    def test_vats_sees_the_same_lock_demand(self, scheduler_runs):
        """The improvement must come from ordering, not from the runs
        accidentally exercising different workloads."""
        fcfs, vats = scheduler_runs
        a = fcfs.metrics_snapshot()["counters"]
        b = vats.metrics_snapshot()["counters"]
        assert a["lockmgr.requests"] > 0
        # Same workload stream: request volume within 10% of each other
        # (aborted/retried transactions re-request, so not exactly equal).
        assert abs(a["lockmgr.requests"] - b["lockmgr.requests"]) <= (
            0.10 * a["lockmgr.requests"]
        )


class TestFig6Direction:
    @pytest.fixture(scope="class")
    def instrumented_run(self):
        config = pc.mysql_128wh_experiment(n_txns=SMOKE_TXNS).replaced(
            instrumented=frozenset(
                ["do_command", "dispatch_command", "mysql_execute_command"]
            )
        )
        return run_experiment(config)

    def test_latency_is_disperse(self, instrumented_run):
        s = instrumented_run.summary
        # Full-scale figure asserts p99 > 3x mean and cv > 0.5; tiny N
        # keeps the direction with slack.
        assert s.p99 > 2.0 * s.mean
        assert s.cv > 0.4

    def test_variance_tree_children_sum_to_root(self, instrumented_run):
        tree = VarianceTree(instrumented_run.traces)
        root = ("do_command", "<root>")
        decomp = tree.decompose(root)
        assert decomp.reconstructed_variance() == pytest.approx(
            tree.factor_variance(root), rel=1e-9
        )

    def test_inner_decomposition_also_reconstructs(self, instrumented_run):
        tree = VarianceTree(instrumented_run.traces)
        key = ("dispatch_command", "do_command")
        decomp = tree.decompose(key)
        assert decomp.reconstructed_variance() == pytest.approx(
            tree.factor_variance(key), rel=1e-9
        )

    def test_root_variance_tracks_overall(self, instrumented_run):
        """do_command spans (almost) the whole transaction, so its
        variance share must dominate."""
        tree = VarianceTree(instrumented_run.traces)
        assert tree.share(("do_command", "<root>")) > 0.5
