"""The execution layer: schema, artifacts, executor, cache.

Three properties carry everything:

1. **Canonical serialization round-trips.**  For any registered config,
   ``from_dict(to_dict(c))`` digests equal to ``c`` — constructors
   re-normalise the relaxed JSON forms (lists back to tuples and
   frozensets, enum tags back to members), so the canonical form is a
   faithful identity.
2. **The schema is the signature.**  Every ``__init__`` parameter of
   :class:`ExperimentConfig` is a field, and ``replaced``/``to_dict``/
   ``from_dict`` cover all of them — the drift guard below fails the
   moment someone adds a parameter without it round-tripping (the old
   hand-maintained ``replaced()`` dict silently dropped new fields).
3. **The executor is ``run_experiment``.**  Inline execution, pool
   execution and cache hits all produce artifacts whose ``run_digest``
   equals the one computed from a direct ``run_experiment`` call.
"""

import pickle

import pytest

from repro.bench.digest import run_digest, run_payload
from repro.bench.runner import ExperimentConfig, run_experiment
from repro.cluster import Topology
from repro.engines.mysql import MySQLConfig
from repro.engines.postgres import PostgresConfig
from repro.engines.voltdb import VoltDBConfig
from repro.exec import Executor, config_fields, from_dict, run_many, to_dict
from repro.exec import executor as executor_module
from repro.faults.plan import FaultPlan
from repro.replication import ReplicationConfig
from repro.sim.disk import DiskConfig
from repro.sim.network import NetworkConfig
from repro.wal.mysql_log import FlushPolicy


def tiny(**overrides):
    kwargs = dict(
        workload="ycsb",
        workload_kwargs={"scale_factor": 1, "rows_per_sf": 32},
        n_txns=30,
        seed=11,
    )
    kwargs.update(overrides)
    return ExperimentConfig(**kwargs)


# ----------------------------------------------------------------------
# Schema: canonical round-trips and digests
# ----------------------------------------------------------------------


ROUND_TRIP_CONFIGS = [
    ExperimentConfig(),
    tiny(),
    tiny(engine="mysql", engine_config=MySQLConfig(
        scheduler="VATS", flush_policy=FlushPolicy.LAZY_FLUSH,
        log_disk=DiskConfig.battery_backed(),
    )),
    tiny(engine="postgres", engine_config=PostgresConfig(parallel_wal=True)),
    tiny(engine="voltdb", engine_config=VoltDBConfig(n_workers=4)),
    tiny(fault_plan=FaultPlan(
        name="mixed", io_error_prob=0.01,
        brownout_windows=((1_000.0, 2_000.0),),
        node_crash_times=((0, 5_000.0),),
    )),
    tiny(workload="tpcc", workload_kwargs={"warehouses": 8,
                                           "remote_payment_prob": 0.2},
         num_shards=2,
         topology=Topology(router="range",
                           network=NetworkConfig(latency_mean=300.0)),
         check=True),
    tiny(workload="tpcc", workload_kwargs={"warehouses": 4}, replicas=2,
         replication=ReplicationConfig(mode="semi_sync", ack_k=2,
                                       read_policy="replica_ok"),
         instrumented=("os_event_wait", "fil_flush"), probe_cost=0.05),
]


@pytest.mark.parametrize("config", ROUND_TRIP_CONFIGS,
                         ids=lambda c: c.config_digest()[:8])
def test_round_trip_digest_identity(config):
    data = config.to_dict()
    rebuilt = ExperimentConfig.from_dict(data)
    assert rebuilt.config_digest() == config.config_digest()
    # The canonical form itself is stable under a second trip.
    assert rebuilt.to_dict() == data


def test_round_trip_digests_all_distinct():
    digests = [c.config_digest() for c in ROUND_TRIP_CONFIGS]
    assert len(set(digests)) == len(digests)


def test_canonical_form_is_plain_json_data():
    import json

    data = tiny(
        engine_config=MySQLConfig(flush_policy=FlushPolicy.LAZY_WRITE),
        fault_plan=FaultPlan(name="x", io_error_prob=0.5),
    ).to_dict()
    json.dumps(data)  # no custom types anywhere


def test_enum_round_trips_through_tag():
    config = MySQLConfig(flush_policy=FlushPolicy.LAZY_FLUSH)
    rebuilt = MySQLConfig.from_dict(config.to_dict())
    assert rebuilt.flush_policy is FlushPolicy.LAZY_FLUSH


def test_from_dict_rejects_wrong_class_and_garbage():
    payload = MySQLConfig().to_dict()
    with pytest.raises(TypeError):
        ExperimentConfig.from_dict(payload)
    with pytest.raises(TypeError):
        from_dict({"no": "tag"})
    with pytest.raises(TypeError):
        from_dict({"__config__": "NoSuchConfig"})


def test_module_level_to_dict_matches_method():
    config = tiny()
    assert to_dict(config) == config.to_dict()


# ----------------------------------------------------------------------
# Drift guard: every __init__ parameter round-trips (satellite 2)
# ----------------------------------------------------------------------

#: One non-default value per ExperimentConfig field.  The guard below
#: fails when a new __init__ parameter is added without extending this
#: table — and the round-trip assertions then prove the new field
#: survives replaced()/to_dict()/from_dict(), which the old
#: hand-maintained replaced() dict could not promise.
NON_DEFAULT_VALUES = {
    "engine": "postgres",
    "workload": "ycsb",
    "workload_kwargs": {"warehouses": 3},
    "engine_config": MySQLConfig(scheduler="VATS"),
    "seed": 7,
    "n_txns": 50,
    "rate_tps": 123.0,
    "warmup_fraction": 0.25,
    "instrumented": ("os_event_wait", "fil_flush"),
    "probe_cost": 0.5,
    "telemetry": False,
    "fault_plan": FaultPlan(name="guard", io_error_prob=0.01),
    "num_shards": 2,
    "topology": Topology(router="range"),
    "replicas": 1,
    "replication": ReplicationConfig(mode="async"),
    "check": True,
}


def test_drift_guard_table_covers_schema_exactly():
    assert set(NON_DEFAULT_VALUES) == set(config_fields(ExperimentConfig))


@pytest.mark.parametrize("field", sorted(NON_DEFAULT_VALUES))
def test_every_field_round_trips(field):
    base = ExperimentConfig()
    changed = base.replaced(**{field: NON_DEFAULT_VALUES[field]})
    # replaced() carried the override (digest must move)...
    assert changed.config_digest() != base.config_digest()
    # ...and the serialisation round-trip preserves it exactly.
    rebuilt = ExperimentConfig.from_dict(changed.to_dict())
    assert rebuilt.config_digest() == changed.config_digest()
    # Changing the field back restores the base identity.
    restored = changed.replaced(**{field: getattr(base, field)})
    assert restored.config_digest() == base.config_digest()


def test_replaced_rejects_unknown_fields():
    with pytest.raises(TypeError, match="no field"):
        ExperimentConfig().replaced(engin="mysql")
    with pytest.raises(TypeError, match="no field"):
        MySQLConfig().replaced(not_a_knob=1)


# ----------------------------------------------------------------------
# Eager workload validation (satellite 1)
# ----------------------------------------------------------------------


def test_unknown_workload_rejected_at_construction():
    with pytest.raises(ValueError, match="unknown workload"):
        ExperimentConfig(workload="tpcc_typo")


def test_unknown_workload_kwarg_rejected_at_construction():
    with pytest.raises(ValueError, match="does not accept"):
        ExperimentConfig(workload="ycsb",
                         workload_kwargs={"warehouses": 4})
    with pytest.raises(ValueError, match="scale_factr"):
        ExperimentConfig(workload="ycsb",
                         workload_kwargs={"scale_factr": 1})


def test_valid_workload_kwargs_accepted():
    ExperimentConfig(workload="ycsb",
                     workload_kwargs={"scale_factor": 2, "zipf_theta": 0.9})
    ExperimentConfig(workload="tpcc", workload_kwargs={"warehouses": 4})


# ----------------------------------------------------------------------
# Artifacts
# ----------------------------------------------------------------------


def test_artifact_mirrors_run_result():
    config = tiny(check=True)
    result = run_experiment(config)
    artifact = result.artifact()
    assert artifact.latencies == result.latencies
    assert artifact.summary.mean == result.summary.mean
    assert artifact.summary.variance == result.summary.variance
    assert artifact.throughput_tps == result.throughput_tps
    assert artifact.metrics_snapshot() == result.metrics_snapshot()
    assert artifact.event_log_jsonl() == result.event_log_jsonl()
    assert artifact.abort_counts == result.abort_counts
    assert artifact.failed_counts == result.failed_counts
    assert artifact.fault_counts == result.fault_counts
    assert artifact.outcome_counts == result.outcome_counts
    assert artifact.shed_txns == result.shed_txns
    assert artifact.check_report() == result.check_report() == []
    assert artifact.config_digest == config.config_digest()
    assert run_digest(artifact) == run_digest(result)


def test_artifact_pickle_round_trip():
    config = tiny(
        workload="tpcc", workload_kwargs={"warehouses": 4}, num_shards=2,
        fault_plan=FaultPlan(name="p", io_error_prob=0.005), check=True,
    )
    artifact = run_experiment(config).artifact()
    clone = pickle.loads(pickle.dumps(artifact, pickle.HIGHEST_PROTOCOL))
    assert run_digest(clone) == run_digest(artifact)
    assert clone.outcome_counts == artifact.outcome_counts
    assert [repr(v) for v in clone.check_report() or []] == []
    assert len(clone.history.txns) == len(artifact.history.txns)
    # The config rebuilds from the embedded canonical payload.
    assert clone.config.config_digest() == config.config_digest()


def test_artifact_cluster_stats():
    config = tiny(workload="tpcc",
                  workload_kwargs={"warehouses": 8,
                                   "remote_payment_prob": 0.3},
                  num_shards=2)
    artifact = run_experiment(config).artifact()
    stats = artifact.cluster_stats
    assert stats["single_home_txns"] + stats["cross_shard_txns"] > 0
    assert tiny().replaced(n_txns=20).config_digest()  # smoke: replaced chains


# ----------------------------------------------------------------------
# Executor: inline backend, ordering, dedup, cache
# ----------------------------------------------------------------------


def test_inline_executor_equals_run_experiment():
    config = tiny()
    artifact = Executor(jobs=1).run_one(config)
    assert run_digest(artifact) == run_digest(run_experiment(config))


def test_run_many_preserves_input_order():
    configs = [tiny(seed=s) for s in (5, 3, 9)]
    artifacts = run_many(configs)
    assert [a.config.seed for a in artifacts] == [5, 3, 9]
    for config, artifact in zip(configs, artifacts):
        assert artifact.config_digest == config.config_digest()


def test_identical_configs_run_once_and_share_artifacts(monkeypatch):
    calls = []
    real = executor_module._execute

    def counting(config_data):
        calls.append(config_data["seed"])
        return real(config_data)

    monkeypatch.setattr(executor_module, "_execute", counting)
    configs = [tiny(seed=1), tiny(seed=2), tiny(seed=1)]
    artifacts = Executor(jobs=1).run(configs)
    assert sorted(calls) == [1, 2]
    assert run_digest(artifacts[0]) == run_digest(artifacts[2])
    assert run_digest(artifacts[0]) != run_digest(artifacts[1])


def test_cache_hit_skips_execution(monkeypatch, tmp_path):
    config = tiny()
    executor = Executor(jobs=1, cache_dir=tmp_path)
    first = executor.run_one(config)

    def boom(config_data):
        raise AssertionError("cache should have answered")

    monkeypatch.setattr(executor_module, "_execute", boom)
    # A fresh executor sharing the directory answers from disk.
    second = Executor(jobs=1, cache_dir=tmp_path).run_one(config)
    assert run_digest(second) == run_digest(first)
    # A different config misses (and would execute -> boom).
    with pytest.raises(AssertionError, match="cache should have"):
        Executor(jobs=1, cache_dir=tmp_path).run_one(tiny(seed=999))


def test_cache_key_includes_code_version(monkeypatch, tmp_path):
    config = tiny()
    executor = Executor(jobs=1, cache_dir=tmp_path)
    executor.run_one(config)
    ran = []

    def tracking(config_data):
        ran.append(config_data["seed"])
        return ExperimentConfig  # never used; run() stores it blindly

    monkeypatch.setattr(executor_module, "_execute", tracking)
    monkeypatch.setattr(executor_module, "_CODE_VERSION", "different")
    Executor(jobs=1, cache_dir=tmp_path).run(configs=[config])
    assert ran == [config.seed]  # old entry unusable under new code


def test_executor_progress_and_validation():
    with pytest.raises(ValueError):
        Executor(jobs=0)
    seen = []
    run_many([tiny(seed=1), tiny(seed=2)],
             progress=lambda done, total: seen.append((done, total)))
    assert seen == [(1, 2), (2, 2)]
