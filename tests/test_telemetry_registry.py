"""MetricsRegistry: instruments, events, snapshots, disabled mode."""

import json

import pytest

from repro.sim.kernel import Simulator, Timeout
from repro.telemetry import (
    EventLog,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)


class TestInstruments:
    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(4)
        assert reg.counter("x") is c
        assert reg.counter("x").value == 5

    def test_gauge_tracks_high_water_mark(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(3)
        g.set(10)
        g.set(2)
        assert g.value == 2
        assert g.max == 10

    def test_histogram_snapshot_fields(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(10.0)
        assert snap["mean"] == pytest.approx(2.5)
        assert snap["min"] == 1.0
        assert snap["max"] == 4.0
        assert 1.0 <= snap["p50"] <= 4.0

    def test_empty_histogram_snapshot(self):
        reg = MetricsRegistry()
        assert reg.histogram("lat").snapshot() == {"count": 0}

    def test_snapshot_is_json_serialisable_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc()
        reg.histogram("h").observe(1.0)
        reg.gauge("g").set(2)
        reg.event("boom", detail="x")
        snap = reg.snapshot()
        json.dumps(snap)
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["events"] == {"emitted": 1, "retained": 1, "dropped": 0}


class TestEvents:
    def test_events_stamped_with_bound_clock(self):
        sim = Simulator()
        reg = MetricsRegistry()
        reg.bind_clock(sim)

        def proc():
            yield Timeout(25.0)
            reg.event("tick", n=1)

        sim.spawn(proc())
        sim.run()
        [event] = list(reg.events)
        assert event.t == 25.0
        assert event.kind == "tick"
        assert event.fields == {"n": 1}

    def test_ring_buffer_drops_oldest(self):
        log = EventLog(capacity=3)
        for i in range(5):
            log.emit(float(i), "e", {"i": i})
        assert len(log) == 3
        assert log.dropped == 2
        assert [e.fields["i"] for e in log] == [2, 3, 4]

    def test_jsonl_round_trips(self):
        log = EventLog(capacity=10)
        log.emit(1.5, "deadlock", {"txn": 7, "obj": "stock:3"})
        [line] = log.to_jsonl().splitlines()
        assert json.loads(line) == {
            "t": 1.5,
            "kind": "deadlock",
            "txn": 7,
            "obj": "stock:3",
        }

    def test_dump_writes_jsonl(self, tmp_path):
        log = EventLog(capacity=10)
        log.emit(0.0, "a", {})
        path = tmp_path / "events.jsonl"
        log.dump(str(path))
        assert path.read_text() == '{"kind": "a", "t": 0.0}\n'


class TestDisabledMode:
    def test_null_registry_is_inert(self):
        reg = NullRegistry()
        reg.counter("x").inc()
        reg.gauge("g").set(5)
        reg.histogram("h").observe(1.0)
        reg.event("boom")
        assert reg.snapshot() == {}
        assert not reg.enabled
        assert len(reg.events) == 0

    def test_null_instruments_are_shared(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")
        assert NULL_REGISTRY.histogram("a") is NULL_REGISTRY.histogram("b")

    def test_simulator_defaults_to_null_registry(self):
        sim = Simulator()
        assert sim.telemetry is NULL_REGISTRY

    def test_enabled_kernel_counts_dispatches(self):
        reg = MetricsRegistry()
        sim = Simulator(telemetry=reg)
        reg.bind_clock(sim)

        def proc():
            yield Timeout(1.0)
            yield Timeout(1.0)

        sim.spawn(proc())
        sim.run()
        snap = reg.snapshot()
        assert snap["counters"]["sim.spawns"] == 1
        assert snap["counters"]["sim.dispatches"] >= 3
