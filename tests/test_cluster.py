"""Tests for the cluster layer: routing, nodes, 2PC, determinism.

The contract under test:

- routing is a pure function of homes (no RNG, order-preserving);
- node isolation: per-node seeded streams and ``node=<id>``-labeled
  telemetry, so N engines coexist without sharing a draw or a metric;
- single-home transactions commit through the fast path, cross-shard
  transactions commit through 2PC and carry ``dist_prepare_wait`` /
  ``dist_commit_wait`` frames in their traces;
- clustered runs are a pure function of (config, seed), like everything
  else in the tree;
- ``num_shards=1`` with no topology builds no cluster objects at all.
"""

import json

import pytest

from repro.bench.runner import ExperimentConfig, run_experiment
from repro.cluster import HashRouter, Node, RangeRouter, Topology, make_router
from repro.sim.kernel import Simulator
from repro.sim.rand import Streams
from repro.telemetry import MetricsRegistry, split_label
from repro.workloads.base import Operation, TxnSpec

DIST_PREPARE = ("dist_prepare_wait", "cluster")
DIST_COMMIT = ("dist_commit_wait", "cluster")


def cluster_config(**overrides):
    kwargs = {
        "engine": "mysql",
        "workload_kwargs": {
            "warehouses": 8,
            "remote_payment_prob": 0.1,
        },
        "n_txns": 400,
        "num_shards": 2,
        "seed": 7,
    }
    kwargs.update(overrides)
    return ExperimentConfig(**kwargs)


# ----------------------------------------------------------------------
# Routers
# ----------------------------------------------------------------------


def spec_of(homes):
    ops = [Operation("update", "warehouse", h or 0, home=h) for h in homes]
    return TxnSpec("t", ops)


def test_hash_router_spreads_homes():
    router = HashRouter(4)
    assert [router.shard_of(h) for h in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]


def test_range_router_keeps_ranges_contiguous():
    router = RangeRouter(4, num_homes=8)
    assert [router.shard_of(h) for h in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]


def test_range_router_requires_enough_homes():
    with pytest.raises(ValueError):
        RangeRouter(4, num_homes=2)


def test_make_router_rejects_unknown_kind():
    with pytest.raises(ValueError):
        make_router("consistent", 4)


def test_split_single_home():
    router = HashRouter(4)
    groups = router.split(spec_of([5, 5, 5]))
    assert list(groups) == [1]
    assert len(groups[1]) == 3


def test_split_cross_shard_preserves_statement_order():
    router = HashRouter(2)
    spec = spec_of([0, 1, 0, 1])
    groups = router.split(spec)
    assert list(groups) == [0, 1]
    assert [op.home for op in groups[0]] == [0, 0]
    assert [op.home for op in groups[1]] == [1, 1]


def test_split_homeless_ops_follow_the_primary():
    router = HashRouter(4)
    # The first homed op (home=6 -> shard 2) sets the primary; the
    # home=None item read rides along instead of fanning out.
    groups = router.split(spec_of([None, 6, 6]))
    assert list(groups) == [2]
    assert len(groups[2]) == 3


# ----------------------------------------------------------------------
# Node isolation
# ----------------------------------------------------------------------


def test_nodes_get_scoped_streams_and_labeled_telemetry():
    registry = MetricsRegistry()
    sim = Simulator(telemetry=registry)
    streams = Streams(3)
    seen = {}

    def make_engine(node_sim, node_streams):
        rng = node_streams.stream("engine")
        seen[node_sim.node_id] = rng.random()
        node_sim.telemetry.counter("fake.started").inc()
        return object()

    Node(0, sim, streams, make_engine)
    Node(1, sim, streams, make_engine)
    # Different per-node stream prefixes -> different draws.
    assert seen[0] != seen[1]
    counters = registry.snapshot()["counters"]
    assert counters["fake.started{node=0}"] == 1
    assert counters["fake.started{node=1}"] == 1
    assert split_label("fake.started{node=0}") == ("fake.started", {"node": "0"})


# ----------------------------------------------------------------------
# Clustered runs
# ----------------------------------------------------------------------


def test_single_node_config_builds_no_cluster():
    config = cluster_config(num_shards=1, workload_kwargs={"warehouses": 8})
    assert not config.is_clustered
    result = run_experiment(config.replaced(n_txns=100))
    assert result.engine.name == "mysql"


def test_cluster_run_commits_and_accounts_for_every_txn():
    result = run_experiment(cluster_config())
    cluster = result.engine
    assert cluster.name == "cluster"
    assert cluster.cross_shard_txns > 0
    assert cluster.single_home_txns > 0
    assert (
        cluster.single_home_txns + cluster.cross_shard_txns
        == result.config.n_txns
    )
    # Every transaction reaches end_transaction exactly once.
    assert len(result.log.traces) == result.config.n_txns
    assert len(result.traces) > 0


def test_cluster_same_seed_identical():
    config = cluster_config(num_shards=4)
    first = run_experiment(config)
    second = run_experiment(config)
    assert first.latencies == second.latencies
    assert first.sim.now == second.sim.now
    a = json.dumps(first.metrics_snapshot(), sort_keys=True)
    b = json.dumps(second.metrics_snapshot(), sort_keys=True)
    assert a == b


def test_cross_shard_txns_carry_dist_frames():
    result = run_experiment(cluster_config())
    dist_traces = [t for t in result.traces if DIST_PREPARE in t.durations]
    assert dist_traces
    for trace in dist_traces:
        assert trace.durations[DIST_PREPARE] > 0
        assert DIST_COMMIT in trace.durations
    # Fast-path transactions carry none.
    plain = [t for t in result.traces if DIST_PREPARE not in t.durations]
    assert plain


def test_zero_remote_fraction_means_zero_cross_shard():
    config = cluster_config(
        workload_kwargs={
            "warehouses": 8,
            "remote_payment_prob": 0.0,
            "remote_warehouse_prob": 0.0,
        }
    )
    result = run_experiment(config)
    assert result.engine.cross_shard_txns == 0
    assert result.engine.single_home_txns == config.n_txns
    snap = result.metrics_snapshot()
    assert snap["histograms"]["cluster.prepare_wait"]["count"] == 0


def test_cross_shard_count_grows_with_remote_fraction():
    counts = []
    for prob in (0.0, 0.1, 0.3):
        config = cluster_config(
            workload_kwargs={
                "warehouses": 8,
                "remote_payment_prob": prob,
                "remote_warehouse_prob": 0.0,
            }
        )
        counts.append(run_experiment(config).engine.cross_shard_txns)
    assert counts[0] == 0
    assert counts[0] < counts[1] < counts[2]


def test_range_router_topology():
    config = cluster_config(topology=Topology(router="range"))
    result = run_experiment(config)
    assert result.engine.router.kind == "range"
    assert len(result.traces) > 0


def test_postgres_cluster_runs():
    config = cluster_config(
        engine="postgres",
        workload_kwargs={
            "warehouses": 8,
            "warehouse_zipf_theta": None,
            "item_zipf_theta": None,
            "remote_payment_prob": 0.1,
        },
        n_txns=300,
    )
    result = run_experiment(config)
    assert result.engine.cross_shard_txns > 0
    assert [t for t in result.traces if DIST_PREPARE in t.durations]


def test_voltdb_cannot_host_a_cluster():
    with pytest.raises(ValueError, match="branches"):
        run_experiment(cluster_config(engine="voltdb"))


def test_node_snapshots_partition_the_rollup():
    result = run_experiment(cluster_config())
    rollup = result.metrics_rollup()
    per_node = [
        result.node_metrics_snapshot(node_id)["counters"].get(
            "mysql.txns_committed", 0
        )
        for node_id in range(result.config.num_shards)
    ]
    assert all(count > 0 for count in per_node)
    assert sum(per_node) == rollup["counters"]["mysql.txns_committed"]
    # Node snapshots come back under bare names, like single-node runs.
    node0 = result.node_metrics_snapshot(0)
    assert all("{" not in name for name in node0["counters"])


def test_cluster_rejects_bad_shard_count():
    with pytest.raises(ValueError):
        ExperimentConfig(num_shards=0)
