"""Static call-graph registry: heights, navigation, expanded counts."""

import pytest

from repro.core.callgraph import CallGraph


@pytest.fixture
def simple_graph():
    return CallGraph.from_dict(
        "root",
        {
            "root": ["mid1", "mid2"],
            "mid1": ["leaf1", "leaf2"],
            "mid2": ["leaf2"],
        },
    )


def test_heights(simple_graph):
    assert simple_graph.height("leaf1") == 0
    assert simple_graph.height("leaf2") == 0
    assert simple_graph.height("mid1") == 1
    assert simple_graph.height("root") == 2
    assert simple_graph.graph_height == 2


def test_children_and_parents(simple_graph):
    assert simple_graph.children("root") == ["mid1", "mid2"]
    assert set(simple_graph.parents("leaf2")) == {"mid1", "mid2"}


def test_is_leaf(simple_graph):
    assert simple_graph.is_leaf("leaf1")
    assert not simple_graph.is_leaf("mid1")


def test_contains(simple_graph):
    assert "mid1" in simple_graph
    assert "nonexistent" not in simple_graph


def test_descendants(simple_graph):
    assert simple_graph.descendants("root") == {"mid1", "mid2", "leaf1", "leaf2"}
    assert simple_graph.descendants("mid2") == {"leaf2"}
    assert simple_graph.descendants("leaf1") == set()


def test_duplicate_edge_ignored():
    graph = CallGraph("r")
    graph.add_edge("r", "a")
    graph.add_edge("r", "a")
    assert graph.children("r") == ["a"]


def test_cycle_detected():
    graph = CallGraph("r")
    graph.add_edge("r", "a")
    graph.add_edge("a", "b")
    graph.add_edge("b", "a")
    with pytest.raises(ValueError):
        graph.height("r")


def test_height_cache_invalidated_on_mutation(simple_graph):
    assert simple_graph.height("root") == 2
    simple_graph.add_edge("leaf1", "deeper")
    assert simple_graph.height("root") == 3
    assert simple_graph.height("deeper") == 0


def test_expanded_tree_counts_linear_chain():
    graph = CallGraph.from_dict("a", {"a": ["b"], "b": ["c"]})
    total, leaves = graph.expanded_tree_counts()
    assert total == 3
    assert leaves == 1


def test_expanded_tree_counts_diamond():
    # a -> b, c; b -> d; c -> d: two paths to d, so 5 expanded nodes.
    graph = CallGraph.from_dict("a", {"a": ["b", "c"], "b": ["d"], "c": ["d"]})
    total, leaves = graph.expanded_tree_counts()
    assert total == 5
    assert leaves == 2


def test_expanded_tree_counts_exponential_growth():
    """A k-layer diamond stack has 2^k paths — how MySQL's 30K functions
    become the paper's 2e15 expanded nodes."""
    edges = {}
    prev = "L0"
    for i in range(20):
        a, b, nxt = "A%d" % i, "B%d" % i, "L%d" % (i + 1)
        edges.setdefault(prev, []).extend([a, b])
        edges[a] = [nxt]
        edges[b] = [nxt]
        prev = nxt
    graph = CallGraph.from_dict("L0", edges)
    total, leaves = graph.expanded_tree_counts()
    assert leaves == 2**20
    assert total > 2**20


def test_functions_listing(simple_graph):
    assert set(simple_graph.functions) == {"root", "mid1", "mid2", "leaf1", "leaf2"}
