"""Experiment harness: configs, results, ratio tables, profiled adapter."""

import pytest

from repro.bench.compare import geometric_mean, ratio_row, ratios
from repro.bench.profiled import EngineProfiledSystem
from repro.bench.runner import ExperimentConfig, engine_callgraph, run_experiment
from repro.core.report import render_profile, render_ratio_table, render_summary_table
from repro.engines.mysql import MySQLConfig
from repro.sim.stats import summarize


def tiny_config(**overrides):
    fields = dict(
        engine="mysql",
        workload="ycsb",
        workload_kwargs={"scale_factor": 2},
        engine_config=MySQLConfig(),
        seed=1,
        n_txns=100,
        rate_tps=1000.0,
        warmup_fraction=0.1,
    )
    fields.update(overrides)
    return ExperimentConfig(**fields)


class TestExperimentConfig:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(engine="oracle")

    def test_replaced_overrides_only_named_fields(self):
        config = tiny_config()
        other = config.replaced(seed=99)
        assert other.seed == 99
        assert other.workload == config.workload
        assert config.seed == 1  # original untouched

    def test_engine_callgraph_lookup(self):
        assert engine_callgraph("mysql").root == "do_command"
        assert engine_callgraph("voltdb").root == "transaction"


class TestRunResult:
    def test_warmup_fraction_dropped(self):
        result = run_experiment(tiny_config())
        assert result.warmup_count == 10
        assert all(t.txn_id >= 10 for t in result.traces)

    def test_summary_over_measurement_set(self):
        result = run_experiment(tiny_config())
        summary = result.summary
        assert summary.count == len(result.traces)
        assert summary.mean > 0

    def test_latencies_of_type(self):
        result = run_experiment(tiny_config())
        per_type = result.latencies_of("ReadRecord")
        assert len(per_type) <= len(result.latencies)

    def test_deterministic_across_runs(self):
        a = run_experiment(tiny_config())
        b = run_experiment(tiny_config())
        assert a.latencies == b.latencies

    def test_different_seeds_differ(self):
        a = run_experiment(tiny_config())
        b = run_experiment(tiny_config(seed=2))
        assert a.latencies != b.latencies


class TestRatios:
    def test_ratios_direction(self):
        base = [10.0, 20.0, 30.0, 100.0]
        better = [5.0, 10.0, 15.0, 50.0]
        r = ratios(base, better)
        assert r["mean"] == pytest.approx(2.0)
        assert r["variance"] == pytest.approx(4.0)
        assert r["p99"] == pytest.approx(2.0)

    def test_ratio_row_label(self):
        result = run_experiment(tiny_config())
        label, r = ratio_row("TPCC", result, result)
        assert label == "TPCC"
        assert r["mean"] == pytest.approx(1.0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([0.0])


class TestProfiledSystem:
    def test_runs_with_instrumented_subset(self):
        system = EngineProfiledSystem(tiny_config())
        log = system.run(frozenset({"do_command"}), probe_cost=0.0)
        assert len(log) > 0
        assert all(("do_command", "<root>") in t.durations for t in log.traces)

    def test_each_call_is_fresh_run(self):
        system = EngineProfiledSystem(tiny_config())
        system.run(frozenset(), 0.0)
        system.run(frozenset(), 0.0)
        assert len(system.runs) == 2


class TestReportRendering:
    def test_ratio_table(self):
        rows = [("TPCC", {"mean": 6.3, "variance": 5.6, "p99": 2.0})]
        text = render_ratio_table("Table 4", rows)
        assert "TPCC" in text and "6.3x" in text and "5.6x" in text

    def test_summary_table(self):
        rows = [("MySQL", summarize([1000.0, 2000.0, 3000.0]))]
        text = render_summary_table("Figure 6", rows)
        assert "MySQL" in text and "Mean (ms)" in text

    def test_profile_rendering(self):
        from repro.core.profiler import TProfiler
        from tests.test_profiler import SyntheticSystem

        result = TProfiler(SyntheticSystem(n_txns=100), k=2).profile()
        text = render_profile(result, top=4, config_label="test")
        assert "Function Name" in text
        assert "%" in text
