"""Replication semantics: mode identities, read routing, oracle teeth.

Three layers:

- **Mode identities** (hypothesis): ``semi_sync`` with ``ack_k >= N`` is
  definitionally ``sync`` and with ``ack_k == 0`` definitionally
  ``async``.  Identical required-ack accounting must mean *byte-identical
  runs* — the digests pin the whole execution, not just the counters.
- **Read routing**: ``replica_ok`` serves non-locking read-only
  transactions from replicas within the staleness bound; everything
  else stays on the primary; a zero bound still never fails a read
  (primary fallback).
- **Oracle teeth**: each planted ``repro.check._test_hooks`` corruption
  mode and each hand-built bad history must trip exactly its rule —
  a replication checker that never rejects is indistinguishable from no
  checker.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.digest import run_digest
from repro.bench.runner import ExperimentConfig, run_experiment
from repro.check import _test_hooks
from repro.check.oracles import check_replication
from repro.check.recorder import History, ReplRec
from repro.replication import ReplicationConfig

pytestmark = []


def _run(mode, ack_k, replicas, seed, **overrides):
    kwargs = dict(
        engine="mysql",
        workload="ycsb",
        workload_kwargs={"scale_factor": 1, "rows_per_sf": 32,
                         "read_fraction": 0.5},
        n_txns=40,
        rate_tps=500.0,
        seed=seed,
        replicas=replicas,
        replication=ReplicationConfig(mode=mode, ack_k=ack_k),
        check=True,
    )
    kwargs.update(overrides)
    return run_experiment(ExperimentConfig(**kwargs))


# ----------------------------------------------------------------------
# Config unit behaviour
# ----------------------------------------------------------------------


@given(
    ack_k=st.integers(min_value=0, max_value=8),
    live=st.integers(min_value=0, max_value=8),
)
@settings(max_examples=100, deadline=None)
def test_required_acks_identities(ack_k, live):
    sync = ReplicationConfig(mode="sync")
    semi = ReplicationConfig(mode="semi_sync", ack_k=ack_k)
    async_ = ReplicationConfig(mode="async")
    assert async_.required_acks(live) == 0
    assert sync.required_acks(live) == max(0, live)
    assert semi.required_acks(live) == min(ack_k, max(0, live))
    if ack_k >= live:
        assert semi.required_acks(live) == sync.required_acks(live)
    if ack_k == 0:
        assert semi.required_acks(live) == async_.required_acks(live)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"mode": "chained"},
        {"read_policy": "nearest"},
        {"ack_k": -1},
        {"staleness_bound_us": -1.0},
    ],
)
def test_config_validation(kwargs):
    with pytest.raises(ValueError):
        ReplicationConfig(**kwargs)


def test_experiment_config_rejects_negative_replicas():
    with pytest.raises(ValueError):
        ExperimentConfig(engine="mysql", replicas=-1)


# ----------------------------------------------------------------------
# Mode identities: equal ack accounting must mean byte-identical runs
# ----------------------------------------------------------------------


@given(
    seed=st.integers(min_value=0, max_value=50),
    replicas=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=6, deadline=None)
def test_semisync_full_quorum_is_sync(seed, replicas):
    a = run_digest(_run("sync", 1, replicas, seed))
    b = run_digest(_run("semi_sync", replicas, replicas, seed))
    assert a == b


@given(seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=6, deadline=None)
def test_semisync_zero_quorum_is_async(seed):
    a = run_digest(_run("async", 1, 2, seed))
    b = run_digest(_run("semi_sync", 0, 2, seed))
    assert a == b


def test_sync_pays_ack_wait_and_async_does_not():
    """Same run, sync vs async: the ack barrier must cost virtual time.
    Sync commits rank ``repl_ack_wait`` in the variance tree; async
    commits never wait so the frame must be absent entirely."""
    from repro.core.variance_tree import VarianceTree

    sync = _run("sync", 1, 2, seed=9)
    async_ = _run("async", 1, 2, seed=9)
    assert sync.check_report() == []
    assert async_.check_report() == []
    assert VarianceTree(sync.traces).name_shares().get("repl_ack_wait", 0.0) > 0.0
    assert "repl_ack_wait" not in VarianceTree(async_.traces).name_shares()


# ----------------------------------------------------------------------
# Read routing
# ----------------------------------------------------------------------


def _read_policy_run(staleness_bound_us, seed=13):
    return run_experiment(ExperimentConfig(
        engine="mysql",
        workload="tpcc",
        workload_kwargs={"warehouses": 4},
        n_txns=80,
        rate_tps=600.0,
        seed=seed,
        replicas=2,
        replication=ReplicationConfig(
            mode="async",
            read_policy="replica_ok",
            staleness_bound_us=staleness_bound_us,
        ),
        check=True,
    ))


def test_replica_ok_routes_read_only_transactions():
    result = _read_policy_run(staleness_bound_us=50_000.0)
    assert result.check_report() == []
    reads = [r for r in result.history.repl if r.kind == "read"]
    assert reads, "replica_ok must serve some read-only transactions"
    for rec in reads:
        assert rec.staleness <= rec.bound
        assert rec.replica in (0, 1)
    # Replica-served transactions still reach exactly one outcome each.
    assert sum(result.outcome_counts.values()) == 80


def test_primary_policy_never_routes_to_replicas():
    result = run_experiment(ExperimentConfig(
        engine="mysql",
        workload="tpcc",
        workload_kwargs={"warehouses": 4},
        n_txns=80,
        rate_tps=600.0,
        seed=13,
        replicas=2,
        replication=ReplicationConfig(mode="async", read_policy="primary"),
        check=True,
    ))
    assert result.check_report() == []
    assert [r for r in result.history.repl if r.kind == "read"] == []


def test_zero_staleness_bound_falls_back_to_primary():
    """An unmeetable bound must divert reads to the primary, never fail
    them: same outcome total, no read records beyond the bound."""
    result = _read_policy_run(staleness_bound_us=0.0)
    assert result.check_report() == []
    assert sum(result.outcome_counts.values()) == 80
    for rec in result.history.repl:
        if rec.kind == "read":
            assert rec.staleness <= 0.0


# ----------------------------------------------------------------------
# Oracle teeth: planted corruption and hand-built bad histories
# ----------------------------------------------------------------------


def _violation_rules(violations):
    return {v.rule for v in violations}


def test_planted_lost_ack_is_caught():
    with _test_hooks.corrupted("repl_lost_ack"):
        result = _run("sync", 1, 2, seed=7)
        violations = result.check_report()
    assert "repl-lost-ack-commit" in _violation_rules(violations)


def test_planted_stale_read_is_caught():
    with _test_hooks.corrupted("repl_stale_read"):
        result = _read_policy_run(staleness_bound_us=50_000.0)
        violations = result.check_report()
    assert "repl-stale-read-beyond-bound" in _violation_rules(violations)


def test_split_brain_double_primary_is_caught():
    history = History(repl=[
        ReplRec(1, "commit", 10.0, txn_id=1, shard=0, epoch=0, lsn=100,
                required=1, acks=1),
        ReplRec(2, "promote", 20.0, shard=0, epoch=1, replica=0, lsn=100),
        # The deposed primary keeps acknowledging commits at epoch 0.
        ReplRec(3, "commit", 30.0, txn_id=2, shard=0, epoch=0, lsn=200,
                required=1, acks=1),
    ])
    rules = _violation_rules(check_replication(history))
    assert rules == {"repl-split-brain-double-primary"}


def test_promotion_lost_durable_record_is_caught():
    history = History(repl=[
        ReplRec(1, "commit", 10.0, txn_id=1, shard=0, epoch=0, lsn=100,
                required=1, acks=1),
        # Promotee only ever received up to LSN 40: the ack-satisfied
        # commit at LSN 100 did not survive failover.
        ReplRec(2, "promote", 20.0, shard=0, epoch=1, replica=1, lsn=40),
    ])
    rules = _violation_rules(check_replication(history))
    assert rules == {"repl-promotion-lost-durable-record"}


def test_async_commits_may_be_lost_on_failover():
    """Async commits carry no ack promise; losing them at promotion is
    legitimate (lossy failover), not a violation."""
    history = History(repl=[
        ReplRec(1, "commit", 10.0, txn_id=1, shard=0, epoch=0, lsn=100,
                required=0, acks=0),
        ReplRec(2, "promote", 20.0, shard=0, epoch=1, replica=1, lsn=40),
    ])
    assert check_replication(history) == []


def test_faithful_replicated_history_checks_clean():
    for mode in ("sync", "semi_sync", "async"):
        result = _run(mode, 1, 2, seed=21)
        assert result.check_report() == []
        kinds = {r.kind for r in result.history.repl}
        assert "commit" in kinds
