"""Differential testing: engine fast paths vs the traced statement loops.

The Postgres and VoltDB engines each carry two execution paths for one
transaction body: the flattened single-frame fast generator (used
whenever no probe is attached) and the traced delegation chain through
:meth:`Tracer.traced`.  Hypothesis generates random workload programs —
benchmark, seed, arrival rate, worker count — and runs each one twice:
once uninstrumented (fast path) and once with every engine factor
instrumented at ``probe_cost=0`` (traced path).  Zero-cost probes may
not change anything observable, so the full run digests — latency
sequence, final clock, metrics snapshot, abort/fault counts — must be
byte-identical.

This is the engine-level analogue of ``test_kernel_differential``: the
goldens pin a handful of fixed macro cells, these tests walk the
configuration space around them.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.digest import run_digest
from repro.bench.runner import ExperimentConfig, run_experiment
from repro.engines.postgres import PostgresConfig
from repro.engines.voltdb import VoltDBConfig

#: Every traced factor in each engine: instrumenting all of them forces
#: the whole delegation chain on every statement.
POSTGRES_PROBES = (
    "exec_simple_query", "PortalRun", "ExecutorRun", "index_fetch",
    "PredicateLockTuple", "heap_lock_tuple", "LockAcquireExtended",
    "ProcSleep", "CommitTransaction", "RecordTransactionCommit",
    "XLogFlush", "ReleasePredicateLocks",
)
VOLTDB_PROBES = (
    "transaction", "execute_procedure", "init_procedure",
    "run_plan_fragments", "[waiting in queue]",
)

#: Small benchmarks with different op shapes: TPC-C mixes reads, writes
#: and explicit lock modes; YCSB is key-value point ops; TATP is short
#: read-mostly transactions.
_workloads = st.sampled_from(
    [
        ("tpcc", {"warehouses": 2}),
        ("ycsb", {}),
        ("tatp", {}),
    ]
)
_seeds = st.integers(min_value=0, max_value=2**16)
_n_txns = st.integers(min_value=20, max_value=50)
_rates = st.sampled_from([200.0, 500.0, 2_000.0])


def _digests(config, probes):
    fast = run_digest(run_experiment(config))
    traced = run_digest(
        run_experiment(config.replaced(instrumented=probes, probe_cost=0.0))
    )
    return fast, traced


@settings(max_examples=10, deadline=None)
@given(workload=_workloads, seed=_seeds, n_txns=_n_txns, rate=_rates)
def test_postgres_fast_path_matches_traced(workload, seed, n_txns, rate):
    name, kwargs = workload
    config = ExperimentConfig(
        engine="postgres",
        workload=name,
        workload_kwargs=kwargs,
        engine_config=PostgresConfig(n_workers=8),
        seed=seed,
        n_txns=n_txns,
        rate_tps=rate,
        warmup_fraction=0.0,
    )
    fast, traced = _digests(config, POSTGRES_PROBES)
    assert fast == traced


@settings(max_examples=10, deadline=None)
@given(
    workload=_workloads,
    seed=_seeds,
    n_txns=_n_txns,
    rate=_rates,
    n_workers=st.integers(min_value=1, max_value=4),
)
def test_voltdb_fast_path_matches_traced(workload, seed, n_txns, rate, n_workers):
    name, kwargs = workload
    config = ExperimentConfig(
        engine="voltdb",
        workload=name,
        workload_kwargs=kwargs,
        engine_config=VoltDBConfig(n_workers=n_workers),
        seed=seed,
        n_txns=n_txns,
        rate_tps=rate,
        warmup_fraction=0.0,
    )
    fast, traced = _digests(config, VOLTDB_PROBES)
    assert fast == traced
