"""Postgres-style WAL: AcquireOrWait semantics, hand-off fairness,
block-size writes, parallel logging."""

import pytest

from repro.core.annotations import TransactionContext, TransactionLog
from repro.core.tracing import Tracer
from repro.sim.disk import Disk, DiskConfig
from repro.sim.kernel import Timeout
from repro.sim.rand import Streams
from repro.wal.pg_wal import ParallelWAL, WALConfig, WALWriter


def make_writer(sim, block_size=8192, name="wal"):
    disk = Disk(sim, Streams(4).stream(name), DiskConfig.battery_backed(), name)
    tracer = Tracer(sim, None, instrumented=set(), log=TransactionLog())
    return WALWriter(sim, tracer, disk, WALConfig(block_size=block_size), name), disk


def make_parallel(sim, n=2, block_size=8192):
    disks = [
        Disk(sim, Streams(4).stream("d%d" % i), DiskConfig.battery_backed(), "d%d" % i)
        for i in range(n)
    ]
    tracer = Tracer(sim, None, instrumented=set(), log=TransactionLog())
    return ParallelWAL(sim, tracer, disks, WALConfig(block_size=block_size)), disks


def commit(sim, wal, txn_id, nbytes=100, delay=0.0, done=None):
    def proc():
        yield Timeout(delay)
        ctx = TransactionContext(sim, txn_id, "t")
        ctx.begin()
        yield from wal.commit(ctx, nbytes)
        ctx.end()
        if done is not None:
            done.append((txn_id, sim.now))

    return sim.spawn(proc())


class TestWALWriter:
    def test_single_commit_durable(self, sim):
        wal, disk = make_writer(sim)
        commit(sim, wal, 1)
        sim.run()
        assert wal.durable_lsn == wal.current_lsn
        assert wal.lost_on_crash() == []
        assert disk.flushes == 1

    def test_concurrent_commits_ride_one_round(self, sim):
        wal, disk = make_writer(sim)
        for i in range(8):
            commit(sim, wal, i)
        sim.run()
        assert wal.durable_lsn == wal.current_lsn
        # Waiters whose LSN was covered drain without their own flush.
        assert disk.flushes < 8

    def test_handoff_is_fifo_no_starvation(self, sim):
        """A parked waiter gets the lock before any fresh arrival."""
        wal, _disk = make_writer(sim)
        done = []
        commit(sim, wal, "first", delay=0.0, done=done)
        commit(sim, wal, "parked", delay=1.0, done=done)
        # A storm of late arrivals must not starve "parked".
        for i in range(20):
            commit(sim, wal, "late%d" % i, delay=2.0 + i * 0.01, done=done)
        sim.run()
        finish = {txn: t for txn, t in done}
        assert finish["parked"] <= min(finish["late%d" % i] for i in range(20))

    def test_waiters_property(self, sim):
        wal, _disk = make_writer(sim)
        commit(sim, wal, 1)
        commit(sim, wal, 2)
        commit(sim, wal, 3)
        sim.run(until=1.0)
        assert wal.waiters >= 1
        sim.run()
        assert wal.waiters == 0

    def test_block_size_pads_small_records(self, sim):
        wal, disk = make_writer(sim, block_size=8192)
        commit(sim, wal, 1, nbytes=10)
        sim.run()
        # A 10-byte record still writes one whole block.
        assert disk.bytes_written == 8192

    def test_larger_blocks_fewer_writes(self, sim):
        small, small_disk = make_writer(sim, block_size=4096, name="s")
        commit(sim, small, 1, nbytes=30_000)
        sim.run()
        large, large_disk = make_writer(sim, block_size=32_768, name="l")
        commit(sim, large, 1, nbytes=30_000)
        sim.run()
        assert small_disk.writes > large_disk.writes
        assert large_disk.bytes_written >= small_disk.bytes_written

    def test_lsn_includes_record_overhead(self, sim):
        wal, _disk = make_writer(sim)
        lsn = wal.append(100)
        assert lsn == 100 + wal.config.record_overhead

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            WALConfig(block_size=0)


class TestParallelWAL:
    def test_requires_two_disks(self, sim):
        tracer = Tracer(sim, None, instrumented=set(), log=TransactionLog())
        with pytest.raises(ValueError):
            ParallelWAL(sim, tracer, [object()], WALConfig())

    def test_second_commit_uses_free_stream(self, sim):
        wal, disks = make_parallel(sim)
        commit(sim, wal, 1)
        commit(sim, wal, 2, delay=1.0)  # stream 0 busy: goes to stream 1
        sim.run()
        assert disks[0].flushes >= 1
        assert disks[1].flushes >= 1

    def test_all_commits_durable(self, sim):
        wal, _disks = make_parallel(sim)
        for i in range(20):
            commit(sim, wal, i, delay=i * 10.0)
        sim.run()
        assert wal.lost_on_crash() == []

    def test_parallel_reduces_commit_latency_under_load(self, sim):
        """Figure 4 (left) in miniature: with both streams available,
        commit waits shrink relative to a single stream."""
        from repro.sim.kernel import Simulator

        def run(parallel):
            sim2 = Simulator()
            done = []
            if parallel:
                wal, _ = make_parallel(sim2)
            else:
                wal, _ = make_writer(sim2)
            for i in range(30):
                commit(sim2, wal, i, delay=i * 100.0, done=done)
            sim2.run()
            starts = {i: i * 100.0 for i in range(30)}
            return sum(t - starts[txn] for txn, t in done) / len(done)

        assert run(parallel=True) <= run(parallel=False)

    def test_aggregate_counters(self, sim):
        wal, _disks = make_parallel(sim)
        for i in range(6):
            commit(sim, wal, i)
        sim.run()
        assert wal.flush_rounds >= 2
        assert wal.lock_waits >= 0
