"""Property-based tests of the young/old LRU invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.bufferpool.lru import LRUList


ops = st.lists(
    st.tuples(st.sampled_from(["insert", "touch", "evict"]), st.integers(0, 30)),
    min_size=1,
    max_size=200,
)


@settings(max_examples=100, deadline=None)
@given(operations=ops, capacity=st.integers(min_value=2, max_value=20))
def test_lru_invariants_under_random_workload(operations, capacity):
    lru = LRUList(capacity)
    resident = set()
    for op, page in operations:
        if op == "insert":
            if page in resident or len(resident) >= capacity:
                continue
            lru.insert_old(page)
            resident.add(page)
        elif op == "touch":
            if page not in resident:
                continue
            if lru.needs_make_young(page):
                lru.make_young(page)
        else:  # evict
            victim = lru.victim()
            if victim is None:
                continue
            lru.remove(victim)
            resident.discard(victim)
        # Invariants after every operation:
        assert len(lru) == len(resident)
        assert len(lru) <= capacity
        young, old = set(lru.young_pages), set(lru.old_pages)
        assert young | old == resident
        assert young & old == set()
        # The old sublist tracks its target within rebalancing slack.
        assert len(old) <= lru.old_target + 1
        # A victim, when one exists, is never a young-head page.
        if resident:
            assert lru.victim() in resident


class LRUMachine(RuleBasedStateMachine):
    """Stateful exploration of the LRU against a reference resident set."""

    def __init__(self):
        super().__init__()
        self.lru = LRUList(8)
        self.resident = set()
        self.counter = 0

    @rule()
    def insert_fresh(self):
        if len(self.resident) >= 8:
            return
        self.counter += 1
        page = "p%d" % self.counter
        self.lru.insert_old(page)
        self.resident.add(page)

    @rule(data=st.data())
    def touch(self, data):
        if not self.resident:
            return
        page = data.draw(st.sampled_from(sorted(self.resident)))
        if self.lru.needs_make_young(page):
            self.lru.make_young(page)
        assert page in self.lru

    @rule()
    def evict_victim(self):
        victim = self.lru.victim()
        if victim is None:
            return
        self.lru.remove(victim)
        self.resident.discard(victim)

    @invariant()
    def membership_consistent(self):
        assert set(self.lru.young_pages) | set(self.lru.old_pages) == self.resident

    @invariant()
    def capacity_respected(self):
        assert len(self.lru) <= 8


TestLRUMachine = LRUMachine.TestCase
