"""Shared helpers for the test suite.

The repository's determinism discipline is "a run is a pure function of
(config, seed) — in *any* interpreter".  In-process double runs share
one ``PYTHONHASHSEED``, so they cannot see str-hash iteration-order
bugs (a grant pass walking a ``set`` of lock ids, a dict-ordered merge);
the cross-process check here runs the same code in two fresh
interpreters with different hash seeds and requires byte-identical
stdout.  It was duplicated across five test files before living here.
"""

import json
import os
import subprocess
import sys

#: Default interpreter hash seeds.  Two wildly different values: any
#: str-hash-order dependence flips *some* iteration order between them.
HASH_SEEDS = ("0", "12345")


def hash_seed_outputs(code, hash_seeds=HASH_SEEDS):
    """Run ``code`` once per hash seed in a fresh interpreter.

    ``code`` is a ``python -c`` program; it receives this process's
    ``sys.path`` as JSON in ``sys.argv[1]`` and must start with the
    canonical prologue::

        import sys, json; sys.path[:0] = json.loads(sys.argv[1]); ...

    so the subprocess imports the same ``repro`` tree regardless of how
    pytest was invoked.  Returns the list of captured stdouts, one per
    seed, in order.
    """
    outputs = []
    for hash_seed in hash_seeds:
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        proc = subprocess.run(
            [sys.executable, "-c", code, json.dumps(sys.path)],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        outputs.append(proc.stdout)
    return outputs


def assert_hash_seed_invariant(code, hash_seeds=HASH_SEEDS):
    """Assert ``code`` prints identical stdout under every hash seed.

    Returns the common stdout so callers can assert on its content
    (it is usually one ``json.dumps`` line).
    """
    outputs = hash_seed_outputs(code, hash_seeds)
    for other in outputs[1:]:
        assert outputs[0] == other, (
            "output depends on PYTHONHASHSEED:\n--- %s ---\n%s\n--- %s ---\n%s"
            % (hash_seeds[0], outputs[0], hash_seeds[-1], other)
        )
    return outputs[0]
