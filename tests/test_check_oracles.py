"""Unit tests for the correctness oracles over hand-built histories.

Each oracle gets both directions: a clean history it must accept and a
corrupted history it must reject with the right rule slug.  The
histories are built directly from the record classes — no simulator —
so each test documents exactly which event shape a rule fires on.
End-to-end coverage (real runs, planted corruption, digest equality)
lives at the bottom and in ``tests/test_check_fuzz.py``.
"""

import pytest

from repro.bench.digest import run_digest
from repro.bench.runner import ExperimentConfig, run_experiment
from repro.check import (
    OWN,
    History,
    OpRec,
    RoundRec,
    TxnRec,
    check_2pc_atomicity,
    check_all,
    check_lock_intervals,
    check_serializability,
)
from repro.check import _test_hooks
from repro.storage.tables import SequentialTableModel


def rules(violations):
    return sorted({v.rule for v in violations})


def write(seq, key, locked=True, table="t"):
    return OpRec(seq, t=float(seq), kind="update", table=table, key=key,
                 locked=locked)


def read(seq, key, observed, locked=True, table="t"):
    return OpRec(seq, t=float(seq), kind="select", table=table, key=key,
                 locked=locked, observed=observed)


# ----------------------------------------------------------------------
# Serializability: model-based replay
# ----------------------------------------------------------------------


def test_clean_locking_history_accepted():
    """Writer commits, later locking read sees its version: no anomaly."""
    history = History(txns=[
        TxnRec("T1", ops=[write(1, 7)], commit_seq=10),
        TxnRec("T2", ops=[read(20, 7, observed=("T1", 0))], commit_seq=30),
    ])
    assert check_serializability(history) == []
    assert check_all(history) == []


def test_read_own_write_accepted():
    history = History(txns=[
        TxnRec("T1", ops=[write(1, 7), read(2, 7, observed=OWN)],
               commit_seq=10),
    ])
    assert check_serializability(history) == []


def test_initial_state_read_accepted():
    """A read before any writer committed observes None (initial DB)."""
    history = History(txns=[
        TxnRec("T1", ops=[read(1, 7, observed=None, locked=False)],
               commit_seq=10),
    ])
    assert check_serializability(history) == []


def test_lost_update_rejected():
    """T1's committed write is invisible to T2's locking read."""
    history = History(txns=[
        TxnRec("T1", ops=[write(1, 7)], commit_seq=10),
        TxnRec("T2", ops=[read(20, 7, observed=None)], commit_seq=30),
    ])
    assert rules(check_serializability(history)) == ["stale-locking-read"]


def test_dirty_read_of_aborted_writer_rejected():
    """T2 observed a version whose writer never committed."""
    history = History(txns=[
        TxnRec("T1", committed=False, reason="deadlock", ops=[write(1, 7)]),
        TxnRec("T2", ops=[read(20, 7, observed=("T1", 0))], commit_seq=30),
    ])
    assert rules(check_serializability(history)) == ["dirty-read"]


def test_dirty_read_before_writer_commit_rejected():
    """T2 observed T1's write before T1's commit was sequenced."""
    history = History(txns=[
        TxnRec("T1", ops=[write(1, 7)], commit_seq=25),
        TxnRec("T2", ops=[read(20, 7, observed=("T1", 0))], commit_seq=30),
    ])
    assert rules(check_serializability(history)) == ["dirty-read"]


def test_stale_snapshot_read_rejected():
    """A non-locking read after an install must see that install."""
    history = History(txns=[
        TxnRec("T1", ops=[write(1, 7)], commit_seq=10),
        TxnRec("T2", ops=[read(20, 7, observed=None, locked=False)],
               commit_seq=30),
    ])
    assert rules(check_serializability(history)) == ["stale-read"]


def test_snapshot_read_of_older_version_accepted():
    """MVCC reads may lag: an older *committed* version is legal only if
    it was the latest at read time — here it is, because T2 reads before
    T3's install is sequenced."""
    history = History(txns=[
        TxnRec("T1", ops=[write(1, 7)], commit_seq=10),
        TxnRec("T2", ops=[read(20, 7, observed=("T1", 0), locked=False)],
               commit_seq=40),
        TxnRec("T3", ops=[write(21, 7)], commit_seq=30),
    ])
    assert check_serializability(history) == []


def test_own_write_marker_without_write_rejected():
    history = History(txns=[
        TxnRec("T1", ops=[read(1, 7, observed=OWN)], commit_seq=10),
    ])
    assert rules(check_serializability(history)) == ["read-own-write"]


def test_aborted_txns_do_not_replay():
    """Aborted transactions install nothing and are never replayed."""
    history = History(txns=[
        TxnRec("T1", committed=False, reason="timeout",
               ops=[write(1, 7), read(2, 7, observed=None)]),
        TxnRec("T2", ops=[read(20, 7, observed=None)], commit_seq=30),
    ])
    assert check_serializability(history) == []


# ----------------------------------------------------------------------
# 2PC atomicity
# ----------------------------------------------------------------------


def clean_round(gid="G1", shards=(0, 1)):
    return RoundRec(
        gid, 0, shards,
        votes={s: (True, None, 50.0) for s in shards},
        decision=(True, True, 100.0),
        seals={s: 110.0 + s for s in shards},
        outcomes={s: (True, 120.0 + s) for s in shards},
    )


def clean_2pc_history(gid="G1", shards=(0, 1)):
    rnd = clean_round(gid, shards)
    txns = [
        TxnRec("%s/n%d" % (gid, s), committed=True, commit_seq=200 + s,
               gid=gid, round_index=0, node=s)
        for s in shards
    ]
    txns.append(TxnRec(gid, committed=True, commit_seq=300))
    return History(txns=txns, rounds=[rnd])


def test_clean_2pc_round_accepted():
    assert check_2pc_atomicity(clean_2pc_history()) == []


def test_partial_commit_missing_seal_rejected():
    history = clean_2pc_history()
    del history.rounds[0].seals[1]
    assert rules(check_2pc_atomicity(history)) == ["2pc-partial-commit"]


def test_partial_commit_aborted_branch_rejected():
    history = clean_2pc_history()
    history.rounds[0].outcomes[1] = (False, 120.0)
    assert rules(check_2pc_atomicity(history)) == ["2pc-partial-commit"]


def test_decision_log_gap_rejected():
    history = clean_2pc_history()
    history.rounds[0].decision = (True, False, 100.0)
    assert rules(check_2pc_atomicity(history)) == ["2pc-decision-log-gap"]


def test_no_decision_log_is_vacuous_not_violated():
    """``logged=None`` means the coordinator has no decision log
    configured — durability is unknowable, not violated."""
    history = clean_2pc_history()
    history.rounds[0].decision = (True, None, 100.0)
    assert check_2pc_atomicity(history) == []


def test_seal_before_decision_logged_rejected():
    history = clean_2pc_history()
    history.rounds[0].seals[0] = 90.0  # decision logged at 100.0
    assert rules(check_2pc_atomicity(history)) == [
        "2pc-seal-before-decision-logged"
    ]


def test_commit_despite_no_vote_rejected():
    history = clean_2pc_history()
    history.rounds[0].votes[1] = (False, "crash", 50.0)
    assert "2pc-commit-despite-no-vote" in rules(check_2pc_atomicity(history))


def test_seal_without_decision_rejected():
    history = clean_2pc_history()
    history.rounds[0].decision = None
    history.txns[-1] = TxnRec("G1", committed=False, reason="crash")
    found = rules(check_2pc_atomicity(history))
    assert "2pc-seal-without-decision" in found


def test_aborted_round_sealed_rejected():
    history = clean_2pc_history()
    history.rounds[0].decision = (False, True, 100.0)
    history.txns[-1] = TxnRec("G1", committed=False, reason="vote-no")
    history.rounds[0].outcomes = {s: (False, 120.0) for s in (0, 1)}
    assert rules(check_2pc_atomicity(history)) == ["2pc-aborted-round-sealed"]


def test_resurrected_abort_rejected():
    """A globally failed transaction must have no committed round."""
    history = clean_2pc_history()
    history.txns[-1] = TxnRec("G1", committed=False, reason="coordinator-crash")
    assert rules(check_2pc_atomicity(history)) == ["2pc-resurrected-abort"]


def test_double_commit_rejected():
    history = clean_2pc_history()
    second = clean_round()
    second.round_index = 1
    history.rounds.append(second)
    assert "2pc-double-commit" in rules(check_2pc_atomicity(history))


def test_commit_mismatch_rejected():
    """Global reported committed but every round aborted."""
    rnd = clean_round()
    rnd.decision = (False, True, 100.0)
    rnd.seals = {}
    rnd.outcomes = {s: (False, 120.0) for s in (0, 1)}
    history = History(
        txns=[TxnRec("G1", committed=True, commit_seq=300)], rounds=[rnd],
    )
    assert rules(check_2pc_atomicity(history)) == ["2pc-commit-mismatch"]


# ----------------------------------------------------------------------
# Lock-hold intervals
# ----------------------------------------------------------------------


def txn_with_locks(txn_id, intervals, commit_seq=10):
    return TxnRec(txn_id, commit_seq=commit_seq, lock_intervals=intervals)


def test_shared_overlap_accepted():
    history = History(txns=[
        txn_with_locks("T1", [("t:7", "S", 0.0, 100.0)], 10),
        txn_with_locks("T2", [("t:7", "S", 50.0, 150.0)], 20),
    ])
    assert check_lock_intervals(history) == []


def test_touching_endpoints_accepted():
    """Release and re-grant may share one virtual instant."""
    history = History(txns=[
        txn_with_locks("T1", [("t:7", "X", 0.0, 100.0)], 10),
        txn_with_locks("T2", [("t:7", "X", 100.0, 200.0)], 20),
    ])
    assert check_lock_intervals(history) == []


def test_exclusive_overlap_rejected():
    history = History(txns=[
        txn_with_locks("T1", [("t:7", "X", 0.0, 100.0)], 10),
        txn_with_locks("T2", [("t:7", "X", 50.0, 150.0)], 20),
    ])
    assert rules(check_lock_intervals(history)) == ["lock-overlap"]


def test_exclusive_vs_shared_overlap_rejected():
    history = History(txns=[
        txn_with_locks("T1", [("t:7", "X", 0.0, 100.0)], 10),
        txn_with_locks("T2", [("t:7", "S", 50.0, 150.0)], 20),
    ])
    assert rules(check_lock_intervals(history)) == ["lock-overlap"]


def test_aborted_holder_overlap_ignored():
    """Only committed transactions participate — an aborted transaction
    legitimately held locks before dying."""
    history = History(txns=[
        txn_with_locks("T1", [("t:7", "X", 0.0, 100.0)], 10),
        TxnRec("T2", committed=False, reason="deadlock",
               lock_intervals=[("t:7", "X", 50.0, 150.0)]),
    ])
    assert check_lock_intervals(history) == []


# ----------------------------------------------------------------------
# The sequential model itself
# ----------------------------------------------------------------------


def test_sequential_table_model():
    model = SequentialTableModel()
    assert model.read("t", 1) is None
    model.write("t", 1, ("T1", 0))
    assert model.read("t", 1) == ("T1", 0)
    model.write("t", 1, ("T2", 3))
    assert model.read("t", 1) == ("T2", 3)
    assert len(model) == 1


# ----------------------------------------------------------------------
# End-to-end: real runs through the oracles
# ----------------------------------------------------------------------


def small_config(engine, **overrides):
    kwargs = dict(
        engine=engine,
        workload="ycsb",
        workload_kwargs={"scale_factor": 1, "rows_per_sf": 16,
                         "read_fraction": 0.5},
        n_txns=80,
        rate_tps=500.0,
        seed=42,
        check=True,
    )
    kwargs.update(overrides)
    return ExperimentConfig(**kwargs)


@pytest.mark.parametrize("engine", ["mysql", "postgres", "voltdb"])
def test_real_run_is_clean(engine):
    result = run_experiment(small_config(engine))
    assert result.history is not None
    assert result.check_report() == []
    # The history must actually contain signal.
    assert len(result.history.committed()) > 0


def test_check_flag_does_not_change_results():
    """Recording consumes no virtual time and draws no randomness:
    the full run digest is identical with checking on and off."""
    on = run_experiment(small_config("mysql"))
    off = run_experiment(small_config("mysql", check=False))
    assert run_digest(on) == run_digest(off)
    assert off.history is None
    assert off.check_report() is None


@pytest.mark.parametrize("mode,expected_rules", [
    ("lost_update", {"stale-read", "stale-locking-read"}),
    ("dirty_read", {"dirty-read"}),
])
def test_planted_single_node_corruption_detected(mode, expected_rules):
    # Hot enough that reads race in-flight writers (dirty_read needs a
    # read inside another transaction's execute window).
    config = small_config(
        "mysql",
        workload_kwargs={"scale_factor": 1, "rows_per_sf": 4,
                         "read_fraction": 0.5},
        n_txns=150,
        rate_tps=900.0,
    )
    with _test_hooks.corrupted(mode):
        result = run_experiment(config)
        violations = result.check_report()
    assert violations, "corruption %r went undetected" % (mode,)
    assert set(rules(violations)) <= expected_rules


@pytest.mark.parametrize("mode,expected_rule", [
    ("partial_commit", "2pc-partial-commit"),
    ("decision_log_gap", "2pc-decision-log-gap"),
])
def test_planted_2pc_corruption_detected(mode, expected_rule):
    config = ExperimentConfig(
        engine="mysql",
        workload_kwargs={"warehouses": 8, "remote_payment_prob": 0.3},
        n_txns=60,
        num_shards=2,
        seed=9,
        check=True,
    )
    with _test_hooks.corrupted(mode):
        violations = run_experiment(config).check_report()
    assert expected_rule in rules(violations)
