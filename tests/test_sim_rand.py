"""Random streams and distribution properties."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rand import (
    Constant,
    Exponential,
    HeavyTail,
    LogNormal,
    Pareto,
    Streams,
    Uniform,
    Zipfian,
)


class TestStreams:
    def test_same_seed_same_sequence(self):
        a = Streams(42).stream("x")
        b = Streams(42).stream("x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_are_independent(self):
        streams = Streams(42)
        a = streams.stream("a")
        b = streams.stream("b")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_stream_is_cached(self):
        streams = Streams(42)
        assert streams.stream("x") is streams.stream("x")

    def test_insensitive_to_creation_order(self):
        s1 = Streams(7)
        s2 = Streams(7)
        __ = s1.stream("noise")  # extra stream must not perturb "x"
        seq1 = [s1.stream("x").random() for _ in range(5)]
        seq2 = [s2.stream("x").random() for _ in range(5)]
        assert seq1 == seq2


class TestDistributions:
    def test_constant(self, rng):
        dist = Constant(5.0)
        assert dist.sample(rng) == 5.0
        assert dist.mean == 5.0

    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            Constant(-1.0)

    def test_uniform_bounds(self, rng):
        dist = Uniform(2.0, 4.0)
        for _ in range(200):
            assert 2.0 <= dist.sample(rng) <= 4.0
        assert dist.mean == 3.0

    def test_exponential_mean(self, rng):
        dist = Exponential(100.0)
        samples = [dist.sample(rng) for _ in range(20_000)]
        assert sum(samples) / len(samples) == pytest.approx(100.0, rel=0.05)

    def test_lognormal_mean_and_cv(self, rng):
        dist = LogNormal(mean=50.0, cv=0.5)
        samples = [dist.sample(rng) for _ in range(50_000)]
        mean = sum(samples) / len(samples)
        var = sum((x - mean) ** 2 for x in samples) / len(samples)
        assert mean == pytest.approx(50.0, rel=0.05)
        assert math.sqrt(var) / mean == pytest.approx(0.5, rel=0.1)

    def test_lognormal_positive(self, rng):
        dist = LogNormal(mean=1.0, cv=2.0)
        assert all(dist.sample(rng) > 0 for _ in range(1000))

    def test_pareto_minimum_is_scale(self, rng):
        dist = Pareto(xm=3.0, alpha=2.0)
        assert all(dist.sample(rng) >= 3.0 for _ in range(1000))

    def test_pareto_infinite_mean_below_one(self):
        assert Pareto(1.0, 0.5).mean == math.inf
        assert Pareto(1.0, 2.0).mean == pytest.approx(2.0)

    def test_heavy_tail_mixture_mean(self, rng):
        dist = HeavyTail(Constant(1.0), Constant(100.0), tail_prob=0.1)
        assert dist.mean == pytest.approx(0.9 * 1.0 + 0.1 * 100.0)
        samples = [dist.sample(rng) for _ in range(10_000)]
        tail_frac = sum(1 for x in samples if x == 100.0) / len(samples)
        assert tail_frac == pytest.approx(0.1, abs=0.02)

    def test_heavy_tail_prob_bounds(self):
        with pytest.raises(ValueError):
            HeavyTail(Constant(1.0), Constant(2.0), tail_prob=1.5)


class TestZipfian:
    def test_samples_in_range(self, rng):
        zipf = Zipfian(1000, theta=0.99)
        for _ in range(5000):
            assert 0 <= zipf.sample(rng) < 1000

    def test_key_zero_is_hottest(self, rng):
        zipf = Zipfian(1000, theta=0.99)
        counts = {}
        for _ in range(20_000):
            key = zipf.sample(rng)
            counts[key] = counts.get(key, 0) + 1
        assert max(counts, key=counts.get) == 0

    def test_more_skew_with_higher_theta(self, rng):
        low = Zipfian(1000, theta=0.5)
        high = Zipfian(1000, theta=0.99)
        low_hot = sum(1 for _ in range(20_000) if low.sample(rng) == 0)
        high_hot = sum(1 for _ in range(20_000) if high.sample(rng) == 0)
        assert high_hot > low_hot

    def test_large_n_uses_approximation(self, rng):
        zipf = Zipfian(2_000_000, theta=0.9)
        for _ in range(1000):
            assert 0 <= zipf.sample(rng) < 2_000_000

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Zipfian(0, theta=0.9)
        with pytest.raises(ValueError):
            Zipfian(10, theta=1.0)


@settings(max_examples=50, deadline=None)
@given(
    mean=st.floats(min_value=0.1, max_value=1e6),
    cv=st.floats(min_value=0.01, max_value=5.0),
)
def test_lognormal_always_positive_and_finite(mean, cv):
    import random

    dist = LogNormal(mean, cv)
    rng = random.Random(0)
    for _ in range(20):
        x = dist.sample(rng)
        assert x > 0
        assert math.isfinite(x)


@settings(max_examples=50, deadline=None)
@given(n=st.integers(min_value=1, max_value=100_000), theta=st.floats(0.05, 0.995))
def test_zipfian_stays_in_range(n, theta):
    import random

    zipf = Zipfian(n, theta=theta)
    rng = random.Random(1)
    for _ in range(50):
        assert 0 <= zipf.sample(rng) < n


class TestBufferedRandomEquivalence:
    """``BufferedRandom`` must be value-identical to ``random.Random``.

    The buffered uniform path, the native rebinding on mixed streams,
    and the rewind-sync for direct core consumers are wall-clock
    optimisations only: every draw sequence must match a plain
    ``random.Random`` seeded identically, no matter how the call kinds
    interleave.
    """

    OPS = ("random", "randint", "getrandbits", "randbytes",
           "gauss", "lognormvariate", "shuffle", "getstate_roundtrip")

    def _apply(self, rng, op):
        if op == "random":
            return rng.random()
        if op == "randint":
            return rng.randint(0, 10 ** 9)
        if op == "getrandbits":
            return rng.getrandbits(64)
        if op == "randbytes":
            return rng.randbytes(7)
        if op == "gauss":
            return rng.gauss(0.0, 1.0)
        if op == "lognormvariate":
            return rng.lognormvariate(0.1, 0.8)
        if op == "shuffle":
            items = list(range(10))
            rng.shuffle(items)
            return tuple(items)
        state = rng.getstate()
        rng.setstate(state)
        return None

    @settings(max_examples=60, deadline=None)
    @given(
        ops=st.lists(
            st.sampled_from(OPS + ("random",) * 4), min_size=1, max_size=400
        ),
        seed=st.integers(min_value=0, max_value=2 ** 32 - 1),
    )
    def test_torture_interleaving_matches_plain_random(self, ops, seed):
        import random as stdlib_random

        from repro.sim.rand import BufferedRandom

        buffered = BufferedRandom(seed)
        plain = stdlib_random.Random(seed)
        for op in ops:
            assert self._apply(buffered, op) == self._apply(plain, op), op

    def test_long_uniform_run_crosses_refill_boundaries(self):
        import random as stdlib_random

        from repro.sim.rand import BufferedRandom

        buffered = BufferedRandom(99)
        plain = stdlib_random.Random(99)
        draws = [(buffered.random(), plain.random()) for _ in range(5000)]
        assert all(a == b for a, b in draws)
        # The warm-up completed and the buffer engaged.
        assert buffered._buf

    def test_mixed_stream_goes_native_and_stays_identical(self):
        import random as stdlib_random

        from repro.sim.rand import BufferedRandom

        buffered = BufferedRandom(7)
        plain = stdlib_random.Random(7)
        assert buffered.random() == plain.random()
        assert buffered.getrandbits(32) == plain.getrandbits(32)
        # First direct-core call before warm-up: the instance rebinds
        # the C-level methods and never buffers.
        assert "random" in buffered.__dict__
        for _ in range(500):
            assert buffered.random() == plain.random()
        assert not buffered._buf
        # Re-seeding restores the buffering wrapper.
        buffered.seed(7)
        assert "random" not in buffered.__dict__

    def test_state_roundtrip_mid_buffer(self):
        import random as stdlib_random

        from repro.sim.rand import BufferedRandom

        buffered = BufferedRandom(3)
        plain = stdlib_random.Random(3)
        for _ in range(300):  # past warm-up, buffer engaged
            assert buffered.random() == plain.random()
        state = buffered.getstate()
        expected = [plain.random() for _ in range(10)]
        assert [buffered.random() for _ in range(10)] == expected
        buffered.setstate(state)
        assert [buffered.random() for _ in range(10)] == expected
