"""Failure injection: crash-loss windows, deadlock storms, timeouts."""

import pytest

from repro.bench.runner import ExperimentConfig, run_experiment
from repro.core.annotations import TransactionContext
from repro.engines.mysql import MySQLConfig
from repro.lockmgr.locks import LockMode
from repro.lockmgr.manager import LockManager, RequestStatus
from repro.lockmgr.scheduling import FCFSScheduler, VATSScheduler
from repro.sim.kernel import Timeout
from repro.wal.mysql_log import FlushPolicy


class TestCrashLoss:
    def run_policy(self, policy):
        config = ExperimentConfig(
            engine="mysql",
            workload="tpcc",
            workload_kwargs={"warehouses": 8},
            engine_config=MySQLConfig(flush_policy=policy),
            seed=17,
            n_txns=200,
            rate_tps=500.0,
            warmup_fraction=0.0,
        )
        return run_experiment(config)

    def test_eager_flush_never_loses_commits(self):
        result = self.run_policy(FlushPolicy.EAGER_FLUSH)
        assert result.engine.redo.lost_on_crash() == []

    def test_lazy_write_risks_recent_commits(self):
        """Appendix B: lazy policies may lose forward progress — commits
        are reported to the client before their redo is durable."""
        result = self.run_policy(FlushPolicy.LAZY_WRITE)
        redo = result.engine.redo
        # Every write transaction was exposed to a crash for some window
        # (the background flusher only catches up once per interval);
        # eager flush never exposes any.
        assert redo.exposed_commits > 0
        eager = self.run_policy(FlushPolicy.EAGER_FLUSH)
        assert eager.engine.redo.exposed_commits == 0

    def test_lazy_policies_commit_faster_despite_risk(self):
        eager = self.run_policy(FlushPolicy.EAGER_FLUSH)
        lazy = self.run_policy(FlushPolicy.LAZY_WRITE)
        assert lazy.summary.mean < eager.summary.mean


class TestDeadlockStorm:
    def run_storm(self, scheduler_cls, n_pairs=30):
        """Many transactions lock (a, b) in opposite orders."""
        from repro.sim.kernel import Simulator

        sim = Simulator()
        lm = LockManager(sim, scheduler_cls())
        outcomes = {"granted": 0, "deadlock": 0}

        def txn(tid, first, second, delay):
            yield Timeout(delay)
            ctx = TransactionContext(sim, tid, "t")
            ctx.begin()
            status1 = yield from lm.acquire(ctx, first, LockMode.X)
            if status1 is RequestStatus.GRANTED:
                yield Timeout(3.0)
                status2 = yield from lm.acquire(ctx, second, LockMode.X)
                if status2 is RequestStatus.GRANTED:
                    outcomes["granted"] += 1
                else:
                    outcomes["deadlock"] += 1
            lm.release_all(ctx)

        for i in range(n_pairs):
            sim.spawn(txn("f%d" % i, "a", "b", i * 1.0))
            sim.spawn(txn("r%d" % i, "b", "a", i * 1.0 + 0.5))
        sim.run()
        return outcomes, lm

    def test_storm_always_makes_progress(self):
        outcomes, lm = self.run_storm(FCFSScheduler)
        # Every transaction resolved: granted or aborted, none stuck.
        assert outcomes["granted"] + outcomes["deadlock"] == 60
        assert outcomes["granted"] > 0
        assert lm._objects == {}

    def test_storm_under_vats_also_progresses(self):
        outcomes, lm = self.run_storm(VATSScheduler)
        assert outcomes["granted"] + outcomes["deadlock"] == 60
        assert lm._objects == {}


class TestTimeoutRecovery:
    def test_timed_out_waiter_leaves_queue_clean(self, sim):
        lm = LockManager(sim, FCFSScheduler(), wait_timeout=5.0)
        after = []

        def holder():
            ctx = TransactionContext(sim, "h", "t")
            ctx.begin()
            yield from lm.acquire(ctx, "obj", LockMode.X)
            yield Timeout(100.0)
            lm.release_all(ctx)

        def victim():
            yield Timeout(1.0)
            ctx = TransactionContext(sim, "v", "t")
            ctx.begin()
            status = yield from lm.acquire(ctx, "obj", LockMode.X)
            assert status is RequestStatus.TIMEOUT
            lm.release_all(ctx)

        def late():
            # Arrives just before the holder releases, so its own wait
            # stays inside the 5us budget.
            yield Timeout(99.0)
            ctx = TransactionContext(sim, "l", "t")
            ctx.begin()
            status = yield from lm.acquire(ctx, "obj", LockMode.X)
            after.append((status, sim.now))
            lm.release_all(ctx)

        sim.spawn(holder())
        sim.spawn(victim())
        sim.spawn(late())
        sim.run()
        # The late arrival is granted as soon as the holder releases; the
        # timed-out victim neither blocks it nor receives a ghost grant.
        assert after == [(RequestStatus.GRANTED, 100.0)]

    def test_engine_survives_pathological_lock_timeouts(self):
        """With an absurdly short lock-wait timeout the engine retries
        and (mostly) completes rather than wedging."""
        config = ExperimentConfig(
            engine="mysql",
            workload="tpcc",
            workload_kwargs={"warehouses": 1, "warehouse_zipf_theta": None},
            engine_config=MySQLConfig(lock_wait_timeout=2_000.0, max_attempts=30),
            seed=23,
            n_txns=150,
            rate_tps=300.0,
            warmup_fraction=0.0,
        )
        result = run_experiment(config)
        assert len(result.log) == 150
        committed = sum(1 for t in result.log.traces if t.committed)
        assert committed >= 140
