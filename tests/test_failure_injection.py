"""Failure injection: crash-loss windows, deadlock storms, timeouts,
and the deterministic fault-injection subsystem (``repro.faults``)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.runner import ExperimentConfig, run_experiment
from repro.core.annotations import TransactionContext
from repro.engines.mysql import MySQLConfig
from repro.faults import FaultPlan, NAMED_PLANS, RetryPolicy, named_plan
from repro.lockmgr.locks import LockMode
from repro.lockmgr.manager import LockManager, RequestStatus
from repro.lockmgr.scheduling import FCFSScheduler, VATSScheduler
from repro.sim.kernel import Timeout
from repro.sim.rand import Streams
from repro.wal.mysql_log import FlushPolicy

from tests.util import assert_hash_seed_invariant


class TestCrashLoss:
    def run_policy(self, policy):
        config = ExperimentConfig(
            engine="mysql",
            workload="tpcc",
            workload_kwargs={"warehouses": 8},
            engine_config=MySQLConfig(flush_policy=policy),
            seed=17,
            n_txns=200,
            rate_tps=500.0,
            warmup_fraction=0.0,
        )
        return run_experiment(config)

    def test_eager_flush_never_loses_commits(self):
        result = self.run_policy(FlushPolicy.EAGER_FLUSH)
        assert result.engine.redo.lost_on_crash() == []

    def test_lazy_write_risks_recent_commits(self):
        """Appendix B: lazy policies may lose forward progress — commits
        are reported to the client before their redo is durable."""
        result = self.run_policy(FlushPolicy.LAZY_WRITE)
        redo = result.engine.redo
        # Every write transaction was exposed to a crash for some window
        # (the background flusher only catches up once per interval);
        # eager flush never exposes any.
        assert redo.exposed_commits > 0
        eager = self.run_policy(FlushPolicy.EAGER_FLUSH)
        assert eager.engine.redo.exposed_commits == 0

    def test_lazy_policies_commit_faster_despite_risk(self):
        eager = self.run_policy(FlushPolicy.EAGER_FLUSH)
        lazy = self.run_policy(FlushPolicy.LAZY_WRITE)
        assert lazy.summary.mean < eager.summary.mean


class TestDeadlockStorm:
    def run_storm(self, scheduler_cls, n_pairs=30):
        """Many transactions lock (a, b) in opposite orders."""
        from repro.sim.kernel import Simulator

        sim = Simulator()
        lm = LockManager(sim, scheduler_cls())
        outcomes = {"granted": 0, "deadlock": 0}

        def txn(tid, first, second, delay):
            yield Timeout(delay)
            ctx = TransactionContext(sim, tid, "t")
            ctx.begin()
            status1 = yield from lm.acquire(ctx, first, LockMode.X)
            if status1 is RequestStatus.GRANTED:
                yield Timeout(3.0)
                status2 = yield from lm.acquire(ctx, second, LockMode.X)
                if status2 is RequestStatus.GRANTED:
                    outcomes["granted"] += 1
                else:
                    outcomes["deadlock"] += 1
            lm.release_all(ctx)

        for i in range(n_pairs):
            sim.spawn(txn("f%d" % i, "a", "b", i * 1.0))
            sim.spawn(txn("r%d" % i, "b", "a", i * 1.0 + 0.5))
        sim.run()
        return outcomes, lm

    def test_storm_always_makes_progress(self):
        outcomes, lm = self.run_storm(FCFSScheduler)
        # Every transaction resolved: granted or aborted, none stuck.
        assert outcomes["granted"] + outcomes["deadlock"] == 60
        assert outcomes["granted"] > 0
        assert lm._objects == {}

    def test_storm_under_vats_also_progresses(self):
        outcomes, lm = self.run_storm(VATSScheduler)
        assert outcomes["granted"] + outcomes["deadlock"] == 60
        assert lm._objects == {}


class TestTimeoutRecovery:
    def test_timed_out_waiter_leaves_queue_clean(self, sim):
        lm = LockManager(sim, FCFSScheduler(), wait_timeout=5.0)
        after = []

        def holder():
            ctx = TransactionContext(sim, "h", "t")
            ctx.begin()
            yield from lm.acquire(ctx, "obj", LockMode.X)
            yield Timeout(100.0)
            lm.release_all(ctx)

        def victim():
            yield Timeout(1.0)
            ctx = TransactionContext(sim, "v", "t")
            ctx.begin()
            status = yield from lm.acquire(ctx, "obj", LockMode.X)
            assert status is RequestStatus.TIMEOUT
            lm.release_all(ctx)

        def late():
            # Arrives just before the holder releases, so its own wait
            # stays inside the 5us budget.
            yield Timeout(99.0)
            ctx = TransactionContext(sim, "l", "t")
            ctx.begin()
            status = yield from lm.acquire(ctx, "obj", LockMode.X)
            after.append((status, sim.now))
            lm.release_all(ctx)

        sim.spawn(holder())
        sim.spawn(victim())
        sim.spawn(late())
        sim.run()
        # The late arrival is granted as soon as the holder releases; the
        # timed-out victim neither blocks it nor receives a ghost grant.
        assert after == [(RequestStatus.GRANTED, 100.0)]

    def test_engine_survives_pathological_lock_timeouts(self):
        """With an absurdly short lock-wait timeout the engine retries
        and (mostly) completes rather than wedging."""
        config = ExperimentConfig(
            engine="mysql",
            workload="tpcc",
            workload_kwargs={"warehouses": 1, "warehouse_zipf_theta": None},
            engine_config=MySQLConfig(lock_wait_timeout=2_000.0, max_attempts=30),
            seed=23,
            n_txns=150,
            rate_tps=300.0,
            warmup_fraction=0.0,
        )
        result = run_experiment(config)
        assert len(result.log) == 150
        committed = sum(1 for t in result.log.traces if t.committed)
        assert committed >= 140


# ----------------------------------------------------------------------
# repro.faults: deterministic chaos
# ----------------------------------------------------------------------


def chaos_config(engine="mysql", plan=None, seed=29, n_txns=250, **kwargs):
    return ExperimentConfig(
        engine=engine,
        workload="tpcc",
        workload_kwargs={"warehouses": 8},
        seed=seed,
        n_txns=n_txns,
        rate_tps=500.0,
        warmup_fraction=0.0,
        fault_plan=plan,
        **kwargs
    )


class TestChaosDeterminism:
    @pytest.mark.parametrize("engine", ["mysql", "postgres", "voltdb"])
    def test_same_seed_same_plan_byte_identical(self, engine):
        """Chaos runs are as reproducible as clean runs: same seed + same
        FaultPlan => byte-identical telemetry and latency vectors."""
        config = chaos_config(
            engine, plan=named_plan("full-chaos", crash_prob=0.02)
        )
        first = run_experiment(config)
        second = run_experiment(config)
        a = first.event_log_jsonl()
        b = second.event_log_jsonl()
        assert a.encode("utf-8") == b.encode("utf-8")
        assert json.dumps(first.metrics_snapshot(), sort_keys=True) == json.dumps(
            second.metrics_snapshot(), sort_keys=True
        )
        assert first.latencies == second.latencies
        # The comparison has teeth: faults actually fired.  VoltDB has no
        # disks or lock manager, so its chaos surface is worker crashes.
        if engine == "voltdb":
            assert first.sim.faults.worker_crashes > 0
        else:
            assert first.sim.faults.io_errors > 0
        assert '"fault.' in a

    def test_empty_plan_identical_to_no_plan(self):
        """FaultPlan() with nothing configured is disabled: the runner
        wires NO_FAULTS and the run matches fault_plan=None exactly."""
        plan = FaultPlan()
        assert not plan.enabled
        base = run_experiment(chaos_config(plan=None))
        empty = run_experiment(chaos_config(plan=plan))
        assert base.event_log_jsonl() == empty.event_log_jsonl()
        assert base.latencies == empty.latencies
        assert base.sim.now == empty.sim.now

    def test_inert_enabled_plan_identical_to_baseline(self):
        """An enabled plan whose windows lie beyond the run's end and
        whose probabilities are zero draws no RNG and injects nothing —
        byte-identical to the no-plan baseline."""
        plan = named_plan(
            "log-brownout", brownout_windows=((10.0**15, 1_000.0),)
        )
        assert plan.enabled
        base = run_experiment(chaos_config(plan=None))
        inert = run_experiment(chaos_config(plan=plan))
        assert base.event_log_jsonl() == inert.event_log_jsonl()
        assert base.latencies == inert.latencies

    def test_named_plans_all_run(self):
        for name in sorted(NAMED_PLANS):
            result = run_experiment(chaos_config(plan=named_plan(name), n_txns=120))
            assert len(result.log) == 120

    def test_cross_process_hash_seed_chaos_determinism(self):
        """Chaos totals must not depend on PYTHONHASHSEED either."""
        code = (
            "import sys, json; sys.path[:0] = json.loads(sys.argv[1]); "
            "from repro import ExperimentConfig, run_experiment, named_plan; "
            "r = run_experiment(ExperimentConfig(engine='mysql', workload='tpcc', "
            "workload_kwargs={'warehouses': 8}, seed=29, n_txns=150, "
            "warmup_fraction=0.0, fault_plan=named_plan('full-chaos'))); "
            "print(json.dumps([sum(r.latencies), r.sim.now, "
            "r.sim.faults.io_errors, r.sim.faults.worker_crashes]))"
        )
        assert_hash_seed_invariant(code, hash_seeds=("0", "424242"))


class TestFaultClasses:
    def test_io_errors_retried_by_wal(self):
        """Injected log-device errors are absorbed by the WAL retry loop:
        transactions still commit and the retries are counted."""
        result = run_experiment(
            chaos_config(plan=named_plan("io-errors", io_error_prob=0.08))
        )
        assert result.sim.faults.io_errors > 0
        counters = result.metrics_snapshot()["counters"]
        assert counters["faults.io_errors"] == result.sim.faults.io_errors
        assert counters.get("wal.redo.io_retries", 0) > 0
        # Retries preserved durability: every injected error was absorbed.
        assert len(result.log.committed) == len(result.log)

    def test_io_errors_retried_by_pg_wal(self):
        result = run_experiment(
            chaos_config(
                engine="postgres", plan=named_plan("io-errors", io_error_prob=0.08)
            )
        )
        assert result.sim.faults.io_errors > 0
        counters = result.metrics_snapshot()["counters"]
        assert counters.get("wal.wal.io_retries", 0) > 0
        assert len(result.log.committed) == len(result.log)

    def test_worker_crashes_recovered(self):
        result = run_experiment(
            chaos_config(plan=named_plan("worker-crashes", crash_prob=0.05))
        )
        assert result.sim.faults.worker_crashes > 0
        snapshot = result.metrics_snapshot()
        assert snapshot["counters"]["faults.worker_crashes"] > 0
        assert "faults.worker_restart_time" in snapshot["histograms"]
        # Crashes delay transactions; they never lose them.
        assert len(result.log.committed) == len(result.log)
        assert sum(w.crashes for w in result.engine.workers) == (
            result.sim.faults.worker_crashes
        )

    def test_lock_storm_causes_timeout_aborts(self):
        result = run_experiment(
            chaos_config(
                plan=named_plan(
                    "lock-storm",
                    lock_storm_windows=((0.0, 10.0**9),),
                    lock_storm_timeout=1_500.0,
                )
            )
        )
        assert result.abort_counts.get("timeout", 0) > 0
        # The unified retry loop recovered most of them.
        assert len(result.log.committed) >= 0.9 * len(result.log)

    def test_burst_sheds_when_queue_bounded(self):
        """An arrival burst against a bounded queue sheds load instead of
        building an unbounded backlog — and every arrival is accounted."""
        n = 300
        result = run_experiment(
            chaos_config(
                n_txns=n,
                engine_config=MySQLConfig(n_workers=8, max_queue_depth=6),
                plan=named_plan(
                    "arrival-burst",
                    burst_windows=((0.0, 10.0**9),),
                    burst_rate_factor=12.0,
                ),
            )
        )
        assert result.shed_txns > 0
        assert result.failed_counts.get("shed", 0) == result.shed_txns
        counter = result.metrics_snapshot()["counters"]["mysql.txns_shed"]
        assert counter == result.shed_txns
        # Shed transactions still appear in the log as uncommitted.
        assert len(result.log) == n
        assert len(result.log.committed) == n - result.failed_txns

    def test_deadline_gives_up_stale_transactions(self):
        result = run_experiment(
            chaos_config(
                n_txns=300,
                engine_config=MySQLConfig(n_workers=4, txn_deadline=30_000.0),
                plan=named_plan(
                    "arrival-burst",
                    burst_windows=((0.0, 10.0**9),),
                    burst_rate_factor=10.0,
                ),
            )
        )
        assert result.failed_counts.get("deadline", 0) > 0
        assert len(result.log) == 300


class TestRetryPolicyProperties:
    @given(
        attempt=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_backoff_bounded_and_reproducible(self, attempt, seed):
        policy = RetryPolicy(
            max_attempts=12,
            base_backoff=500.0,
            multiplier=2.0,
            max_backoff=2_000.0,
            jitter=0.5,
        )
        first = policy.backoff(attempt, Streams(seed).stream("retry"))
        second = policy.backoff(attempt, Streams(seed).stream("retry"))
        assert first == second
        cap = policy.max_backoff
        raw = min(cap, policy.base_backoff * policy.multiplier ** (attempt - 1))
        assert raw * (1 - policy.jitter) <= first <= raw * (1 + policy.jitter)

    def test_backoff_without_rng_is_deterministic_midpoint(self):
        policy = RetryPolicy(base_backoff=100.0, multiplier=2.0, max_backoff=800.0)
        assert [policy.backoff(a, None) for a in (1, 2, 3, 4, 5)] == [
            100.0,
            200.0,
            400.0,
            800.0,
            800.0,
        ]

    def test_jitter_draws_come_from_dedicated_stream(self):
        """The backoff stream is independent: drawing jitter does not
        perturb any other named stream, and vice versa."""
        clean = Streams(7).stream("mysql.engine")
        other_before = [clean.random() for _ in range(3)]
        streams = Streams(7)
        policy = RetryPolicy()
        rng = streams.stream("mysql.retry")
        for attempt in (1, 2, 3):
            policy.backoff(attempt, rng)
        other_after = [streams.stream("mysql.engine").random() for _ in range(3)]
        assert other_before == other_after

    def test_give_up_accounting_per_reason(self):
        policy = RetryPolicy()
        policy.note_retry("deadlock")
        policy.note_retry("deadlock")
        policy.note_retry("io_error")
        policy.note_give_up("deadlock")
        assert policy.retries_by_reason == {"deadlock": 2, "io_error": 1}
        assert policy.giveups_by_reason == {"deadlock": 1}
        assert policy.total_retries == 3
        assert policy.total_giveups == 1

    def test_validation_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff=float("nan"))
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff=100.0, max_backoff=50.0)


class TestFaultPlanValidation:
    def test_rejects_bad_windows(self):
        with pytest.raises(ValueError):
            FaultPlan(brownout_windows=((-1.0, 10.0),))
        with pytest.raises(ValueError):
            FaultPlan(burst_windows=((0.0, float("nan")),))

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            FaultPlan(io_error_prob=1.5)
        with pytest.raises(ValueError):
            FaultPlan(crash_prob=-0.1)

    def test_unknown_named_plan(self):
        with pytest.raises(KeyError):
            named_plan("no-such-plan")
