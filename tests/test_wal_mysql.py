"""InnoDB-style redo log: policies, group commit, crash accounting."""

import pytest

from repro.core.annotations import TransactionContext, TransactionLog
from repro.core.tracing import Tracer
from repro.sim.disk import Disk, DiskConfig
from repro.sim.kernel import Timeout
from repro.sim.rand import Streams
from repro.wal.mysql_log import FlushPolicy, RedoLog, RedoLogConfig


def make_log(sim, policy=FlushPolicy.EAGER_FLUSH, group_commit=True, flusher_interval=1000.0):
    disk = Disk(sim, Streams(3).stream("log"), DiskConfig.battery_backed())
    tracer = Tracer(sim, None, instrumented=set(), log=TransactionLog())
    config = RedoLogConfig(
        policy=policy, group_commit=group_commit, flusher_interval=flusher_interval
    )
    return RedoLog(sim, tracer, disk, config), disk


def commit_txn(sim, redo, txn_id, nbytes=100, delay=0.0):
    def proc():
        yield Timeout(delay)
        ctx = TransactionContext(sim, txn_id, "t")
        ctx.begin()
        yield from redo.commit(ctx, nbytes)
        ctx.end()

    return sim.spawn(proc())


class TestEagerFlush:
    def test_commit_is_durable(self, sim):
        redo, disk = make_log(sim)
        commit_txn(sim, redo, 1)
        sim.run()
        assert redo.durable_lsn == redo.current_lsn
        assert disk.flushes == 1
        assert redo.lost_on_crash() == []

    def test_group_commit_batches_concurrent_commits(self, sim):
        redo, disk = make_log(sim)
        for i in range(10):
            commit_txn(sim, redo, i)
        sim.run()
        # All ten commit durably with far fewer than ten flushes.
        assert redo.durable_lsn == redo.current_lsn
        assert disk.flushes < 10
        assert redo.lost_on_crash() == []

    def test_no_group_commit_flushes_per_txn(self, sim):
        redo, disk = make_log(sim, group_commit=False)
        for i in range(5):
            commit_txn(sim, redo, i)
        sim.run()
        assert disk.flushes == 5

    def test_followers_wait_for_next_round(self, sim):
        redo, _disk = make_log(sim)
        finish_times = []

        def proc(txn_id, delay):
            yield Timeout(delay)
            ctx = TransactionContext(sim, txn_id, "t")
            ctx.begin()
            yield from redo.commit(ctx, 100)
            finish_times.append(sim.now)
            ctx.end()

        sim.spawn(proc(1, 0.0))
        sim.spawn(proc(2, 1.0))  # arrives mid-flush: rides round 2
        sim.run()
        assert len(finish_times) == 2
        assert finish_times[1] >= finish_times[0]


class TestLazyPolicies:
    def test_lazy_flush_commit_returns_before_durable(self, sim):
        redo, disk = make_log(sim, policy=FlushPolicy.LAZY_FLUSH)
        commit_txn(sim, redo, 1)
        sim.run(until=100.0)
        # Written (the worker wrote) but not yet flushed.
        assert redo.written_lsn > 0
        assert redo.durable_lsn < redo.written_lsn
        assert redo.lost_on_crash() == [1]

    def test_lazy_flush_background_flusher_catches_up(self, sim):
        redo, disk = make_log(sim, policy=FlushPolicy.LAZY_FLUSH, flusher_interval=50.0)
        commit_txn(sim, redo, 1)
        sim.run(until=5000.0)
        assert redo.durable_lsn == redo.current_lsn
        assert redo.lost_on_crash() == []

    def test_lazy_write_defers_both_steps(self, sim):
        redo, disk = make_log(sim, policy=FlushPolicy.LAZY_WRITE, flusher_interval=50.0)
        commit_txn(sim, redo, 1)
        sim.run(until=10.0)
        # Nothing written by the worker at all.
        assert disk.writes == 0
        assert redo.lost_on_crash() == [1]
        sim.run(until=5000.0)
        assert disk.writes >= 1
        assert redo.lost_on_crash() == []

    def test_lazy_commit_is_fast(self, sim):
        """Lazy write keeps disk latency off the commit path entirely."""
        eager, _d1 = make_log(sim, policy=FlushPolicy.EAGER_FLUSH)
        times = {}

        def run_one(tag, redo):
            ctx = TransactionContext(sim, tag, "t")
            ctx.begin()
            start = sim.now
            yield from redo.commit(ctx, 100)
            times[tag] = sim.now - start
            ctx.end()

        sim.spawn(run_one("eager", eager))
        sim.run()
        lazy, _d2 = make_log(sim, policy=FlushPolicy.LAZY_WRITE)
        sim.spawn(run_one("lazy", lazy))
        sim.run(until=sim.now + 10.0)
        assert times["lazy"] < times["eager"]


class TestCrashAccounting:
    def test_partial_durability_window(self, sim):
        redo, _disk = make_log(sim, policy=FlushPolicy.LAZY_FLUSH, flusher_interval=200.0)
        commit_txn(sim, redo, "early", delay=0.0)
        # Plenty of flusher rounds make "early" durable...
        commit_txn(sim, redo, "late", delay=4001.0)
        sim.run(until=4060.0)
        # ...but "late" was reported committed within the last exposure
        # window and its flush round cannot have completed yet.
        lost = redo.lost_on_crash()
        assert "late" in lost
        assert "early" not in lost

    def test_lsn_monotone(self, sim):
        redo, _disk = make_log(sim)
        lsns = [redo.append(10) for _ in range(5)]
        assert lsns == sorted(lsns)
        assert lsns[-1] == 50
