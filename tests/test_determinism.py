"""Same-seed determinism regression tests.

A run must be a pure function of ``(config, seed)`` — that is the
foundation under every variance figure in the reproduction.  These
tests run each engine twice with the same seed and assert *byte
identical* telemetry: the JSONL event log and the full metrics snapshot
(counters, gauge high-water marks, every histogram's sketch output),
plus the latency vector itself.  Any nondeterminism smuggled into a hot
path (dict-order dependence, wall-clock leakage, id()-keyed state)
breaks these before it can silently skew a figure.
"""

import json

import pytest

from repro.bench import paperconfig as pc
from repro.bench.runner import run_experiment

from tests.util import assert_hash_seed_invariant


def tiny_config(engine):
    if engine == "mysql":
        return pc.mysql_128wh_experiment("VATS", n_txns=400)
    if engine == "postgres":
        return pc.postgres_experiment(n_txns=400)
    if engine == "voltdb":
        return pc.voltdb_experiment(n_txns=400)
    raise ValueError(engine)


def run_twice(engine):
    config = tiny_config(engine)
    return run_experiment(config), run_experiment(config)


@pytest.mark.parametrize("engine", ["mysql", "postgres", "voltdb"])
def test_same_seed_identical_event_logs(engine):
    first, second = run_twice(engine)
    a = first.event_log_jsonl()
    b = second.event_log_jsonl()
    assert a.encode("utf-8") == b.encode("utf-8")


@pytest.mark.parametrize("engine", ["mysql", "postgres", "voltdb"])
def test_same_seed_identical_metrics_snapshots(engine):
    first, second = run_twice(engine)
    a = json.dumps(first.metrics_snapshot(), sort_keys=True)
    b = json.dumps(second.metrics_snapshot(), sort_keys=True)
    assert a == b
    # The snapshot must actually contain signal, not vacuous equality.
    counters = first.metrics_snapshot()["counters"]
    assert counters["sim.dispatches"] > 0
    assert counters["%s.txns_committed" % engine] > 0


@pytest.mark.parametrize("engine", ["mysql", "postgres", "voltdb"])
def test_same_seed_identical_latencies(engine):
    first, second = run_twice(engine)
    assert first.latencies == second.latencies
    assert first.sim.now == second.sim.now


def test_different_seeds_differ():
    """Sanity check that the comparison has teeth."""
    base = tiny_config("mysql")
    first = run_experiment(base)
    second = run_experiment(base.replaced(seed=base.seed + 1))
    assert first.latencies != second.latencies


def test_cross_process_hash_seed_determinism():
    """Results must not depend on ``PYTHONHASHSEED``.

    In-process double runs share one hash seed, so they cannot see
    str-hash iteration-order bugs (e.g. a grant pass walking a ``set``
    of lock ids).  Run the same config in two interpreters with
    different hash seeds and require identical totals.
    """
    code = (
        "import sys, json; sys.path[:0] = json.loads(sys.argv[1]); "
        "from repro.bench import paperconfig as pc; "
        "from repro.bench.runner import run_experiment; "
        "r = run_experiment(pc.mysql_128wh_experiment('VATS', n_txns=300)); "
        "print(json.dumps([sum(r.latencies), r.sim.now]))"
    )
    assert_hash_seed_invariant(code)


def test_cross_process_hash_seed_determinism_clustered():
    """The 4-shard 2PC path must also be hash-seed independent.

    The cluster adds dict-heavy machinery the single-node check never
    exercises — router group maps, per-link bandwidth state, merged
    per-reason abort dicts — so it gets its own two-interpreter run.
    """
    code = (
        "import sys, json; sys.path[:0] = json.loads(sys.argv[1]); "
        "from repro.bench.runner import ExperimentConfig, run_experiment; "
        "r = run_experiment(ExperimentConfig(engine='mysql', "
        "workload_kwargs={'warehouses': 16, 'remote_payment_prob': 0.15}, "
        "n_txns=300, num_shards=4, seed=9)); "
        "print(json.dumps([sum(r.latencies), r.sim.now, "
        "sorted(r.abort_counts.items()), r.engine.cross_shard_txns]))"
    )
    output = assert_hash_seed_invariant(code)
    assert json.loads(output)[3] > 0


def test_telemetry_flag_does_not_change_results():
    """Emitters are zero virtual time: disabling telemetry is invisible
    to the simulation (the Figure 5 overhead study depends on this)."""
    base = tiny_config("mysql")
    with_telemetry = run_experiment(base)
    without = run_experiment(base.replaced(telemetry=False))
    assert with_telemetry.latencies == without.latencies
    assert with_telemetry.sim.now == without.sim.now
    assert without.metrics_snapshot() == {}
