"""Failover sweeps: promotion must be correct at *every* instant.

Same discipline as ``tests/test_recovery_sweep.py``, but with replica
groups attached: the primary is crashed at every event boundary observed
in a crash-free baseline run, and at every single point the run must

- keep all oracles clean — including the replication family
  (stale reads, lost acks, split brain, promotion losing an
  ack-satisfied commit);
- promote exactly once (a ``promote`` record at epoch 1, a retired
  replica, one fewer live log consumer afterwards);
- preserve exact client accounting:
  ``sum(outcome_counts.values()) == n_txns``;
- terminate (no ship/apply loop parked on an event nobody fires).

Unlike the recovery sweeps this file crashes at *every* boundary, not
every k-th — failover has more moving state (ship cursors, ack waits,
apply queues) so the sweep leaves no gaps; the workload is kept small to
compensate.  The cross-process test at the bottom pins a replicated
failover run's digest across interpreters with different
``PYTHONHASHSEED``.
"""

import json

import pytest

from repro.bench.digest import run_digest
from repro.bench.runner import ExperimentConfig, run_experiment
from repro.exec import run_many
from repro.faults.plan import FaultPlan
from repro.replication import ReplicationConfig

from tests.util import assert_hash_seed_invariant


def _replicated_config(mode, **overrides):
    repl_kwargs = overrides.pop("repl_kwargs", {})
    kwargs = dict(
        engine="mysql",
        workload="tpcc",
        workload_kwargs={"warehouses": 4},
        n_txns=50,
        rate_tps=600.0,
        seed=23,
        replicas=2,
        replication=ReplicationConfig(mode=mode, ack_k=1, **repl_kwargs),
        check=True,
    )
    kwargs.update(overrides)
    return ExperimentConfig(**kwargs)


def _event_boundaries(result):
    """Every distinct commit/ship boundary of a crash-free baseline."""
    times = {rec.commit_time for rec in result.history.txns}
    for rec in result.history.repl:
        times.add(rec.t)
    return [round(t + 0.5, 1) for t in sorted(times)]


def _promotions(result):
    return [r for r in result.history.repl if r.kind == "promote"]


def _failover_sweep(base_config, crash_points):
    # Independent deterministic runs: fan out through repro.exec (the
    # artifacts carry the history, so _promotions works unchanged).
    n = base_config.n_txns
    configs = [
        base_config.replaced(fault_plan=FaultPlan(
            name="failover-sweep", node_crash_times=((0, crash_at),)
        ))
        for crash_at in crash_points
    ]
    aggregate = {}
    promoted_runs = 0
    for crash_at, result in zip(crash_points, run_many(configs)):
        violations = result.check_report()
        assert violations == [], (
            "failover at t=%r: %r" % (crash_at, violations)
        )
        counts = result.outcome_counts
        assert sum(counts.values()) == n, (
            "failover at t=%r lost/duplicated clients: %r"
            % (crash_at, counts)
        )
        assert result.fault_counts["node_crashes"] == 1
        promotions = _promotions(result)
        assert len(promotions) <= 1
        if promotions:
            promoted_runs += 1
            promo = promotions[0]
            assert promo.epoch == 1
            assert promo.shard == 0
            assert promo.replica in (0, 1)
        for outcome, count in counts.items():
            aggregate[outcome] = aggregate.get(outcome, 0) + count
    return aggregate, promoted_runs


@pytest.mark.parametrize("mode", ["sync", "semi_sync", "async"])
def test_failover_sweep_every_event_boundary(mode):
    base = _replicated_config(mode)
    baseline = run_experiment(base)
    assert baseline.check_report() == []
    assert _promotions(baseline) == []
    points = _event_boundaries(baseline)
    assert len(points) >= base.n_txns
    aggregate, promoted_runs = _failover_sweep(base, points)
    assert aggregate["committed"] > 0
    # Crashing mid-run must actually exercise failover, not just the
    # single-node restart path.
    assert promoted_runs == len(points)


def test_failover_sweep_with_replica_reads():
    """replica_ok routing + failover: promoted/retired replicas must
    drop out of the read pool without stranding any client."""
    base = _replicated_config(
        "async",
        repl_kwargs={"read_policy": "replica_ok",
                     "staleness_bound_us": 50_000.0},
    )
    baseline = run_experiment(base)
    assert baseline.check_report() == []
    points = _event_boundaries(baseline)[::4]
    aggregate, promoted_runs = _failover_sweep(base, points)
    assert aggregate["committed"] > 0
    assert promoted_runs == len(points)


def test_failover_under_replica_lag():
    """A lag window forces promotion of a replica with a shipped-but-
    unapplied tail: the tail replay must happen before service resumes
    and the promotion must never lose an ack-satisfied commit."""
    base = _replicated_config(
        "semi_sync",
        fault_plan=FaultPlan(
            name="lag-then-crash",
            node_crash_times=((0, 40_000.0),),
            replica_lag_windows=((0.0, 40_000.0),),
            replica_lag_stall_us=1_500.0,
        ),
    )
    result = run_experiment(base)
    assert result.check_report() == []
    assert sum(result.outcome_counts.values()) == base.n_txns
    promotions = _promotions(result)
    assert len(promotions) == 1
    assert promotions[0].epoch == 1


def test_last_replica_crash_degrades_to_restart():
    """Two crashes on the same shard: the second failover finds no live
    replica left (one promoted, one... with replicas=1 none remain) and
    must fall back to the plain restart-and-replay path, still clean."""
    base = _replicated_config(
        "semi_sync",
        replicas=1,
        fault_plan=FaultPlan(
            name="double-crash",
            node_crash_times=((0, 30_000.0), (0, 60_000.0)),
        ),
    )
    result = run_experiment(base)
    assert result.check_report() == []
    assert sum(result.outcome_counts.values()) == base.n_txns
    assert result.fault_counts["node_crashes"] == 2
    promotions = _promotions(result)
    assert len(promotions) == 1
    assert promotions[0].epoch == 1


def test_cross_process_hash_seed_failover_determinism():
    """A replicated failover run must produce a byte-identical digest in
    interpreters with different hash seeds."""
    code = (
        "import sys, json; sys.path[:0] = json.loads(sys.argv[1]); "
        "from repro.bench.digest import run_digest; "
        "from repro.bench.runner import ExperimentConfig, run_experiment; "
        "from repro.faults.plan import FaultPlan; "
        "from repro.replication import ReplicationConfig; "
        "config = ExperimentConfig(engine='mysql', workload='tpcc', "
        "workload_kwargs={'warehouses': 4}, n_txns=50, rate_tps=600.0, "
        "seed=23, replicas=2, "
        "replication=ReplicationConfig(mode='semi_sync', ack_k=1, "
        "read_policy='replica_ok', staleness_bound_us=50_000.0), "
        "fault_plan=FaultPlan(name='xproc', "
        "node_crash_times=((0, 45_000.0),)), check=True); "
        "result = run_experiment(config); "
        "print(json.dumps([run_digest(result), "
        "sorted(result.outcome_counts.items())]))"
    )
    output = assert_hash_seed_invariant(code)
    digest, counts = json.loads(output)
    assert len(digest) == 64
    assert sum(count for _outcome, count in counts) == 50


def test_in_process_failover_digest_repeatable():
    base = _replicated_config(
        "semi_sync",
        fault_plan=FaultPlan(
            name="repeat", node_crash_times=((0, 45_000.0),)
        ),
    )
    first = run_experiment(base)
    second = run_experiment(base)
    assert _promotions(first)
    assert run_digest(first) == run_digest(second)
