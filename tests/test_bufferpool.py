"""Buffer pool: LRU behaviour, miss path, Lazy LRU Update."""

import pytest

from repro.bufferpool.lru import LRUList
from repro.bufferpool.pool import BufferPool, BufferPoolConfig
from repro.core.annotations import TransactionContext, TransactionLog
from repro.core.tracing import Tracer
from repro.sim.disk import Disk, DiskConfig
from repro.sim.kernel import Timeout
from repro.sim.rand import Streams


class TestLRUList:
    def test_insert_old_keeps_first_insert_as_victim(self):
        lru = LRUList(10)
        lru.insert_old("a")
        lru.insert_old("b")
        assert "a" in lru and "b" in lru
        # The earliest unpromoted page is the replacement victim.
        assert lru.victim() == "a"

    def test_make_young_promotes(self):
        lru = LRUList(10)
        for page in "abcde":
            lru.insert_old(page)
        lru.make_young("a")
        assert "a" in lru.young_pages

    def test_victim_from_old_tail(self):
        lru = LRUList(10)
        for page in "abc":
            lru.insert_old(page)
        # "a" was inserted first so sits at the old tail.
        assert lru.victim() == "a"

    def test_old_ratio_maintained(self):
        lru = LRUList(16, old_ratio=3.0 / 8.0)
        for i in range(16):
            lru.insert_old(i)
        for i in range(16):
            lru.make_young(i)
        # After promotions, rebalancing keeps the old list near target.
        assert abs(len(lru.old_pages) - lru.old_target) <= 1

    def test_needs_make_young_for_old_pages(self):
        lru = LRUList(10)
        lru.insert_old("a")
        assert lru.needs_make_young("a")

    def test_fresh_young_page_not_repromoted(self):
        lru = LRUList(40)
        for i in range(20):
            lru.insert_old(i)
        for i in range(20):
            lru.make_young(i)
        # Page 19 was promoted last: it sits at the young head.
        assert not lru.needs_make_young(19)

    def test_stale_young_page_repromoted(self):
        lru = LRUList(40)
        for i in range(20):
            lru.insert_old(i)
        lru.make_young(0)
        for i in range(1, 20):
            lru.make_young(i)
        # 19 promotions since page 0's: it has sunk past the zone.
        assert lru.needs_make_young(0)

    def test_remove(self):
        lru = LRUList(4)
        lru.insert_old("a")
        lru.remove("a")
        assert "a" not in lru
        with pytest.raises(KeyError):
            lru.remove("a")

    def test_insert_beyond_capacity_raises(self):
        lru = LRUList(2)
        lru.insert_old("a")
        lru.insert_old("b")
        with pytest.raises(RuntimeError):
            lru.insert_old("c")

    def test_duplicate_insert_raises(self):
        lru = LRUList(4)
        lru.insert_old("a")
        with pytest.raises(KeyError):
            lru.insert_old("a")

    def test_unknown_page_queries_raise(self):
        lru = LRUList(4)
        with pytest.raises(KeyError):
            lru.make_young("ghost")
        with pytest.raises(KeyError):
            lru.needs_make_young("ghost")


def make_pool(sim, **config_kwargs):
    streams = Streams(5)
    disk = Disk(sim, streams.stream("disk"), DiskConfig.page_cache())
    log = TransactionLog()
    tracer = Tracer(sim, None, instrumented=set(), log=log)
    pool = BufferPool(sim, tracer, disk, BufferPoolConfig(**config_kwargs))
    return pool, disk


def run_fix(sim, pool, ctx, page_id, dirty=False, backlog=None):
    result = {}

    def proc():
        page = yield from pool.fix_page(ctx, page_id, dirty=dirty, backlog=backlog)
        result["page"] = page

    sim.spawn(proc())
    sim.run()
    return result["page"]


class TestBufferPool:
    def test_miss_then_hit(self, sim):
        pool, disk = make_pool(sim, capacity_pages=8)
        ctx = TransactionContext(sim, 1, "t")
        run_fix(sim, pool, ctx, "p1")
        assert pool.misses == 1
        assert disk.reads == 1
        run_fix(sim, pool, ctx, "p1")
        assert pool.hits == 1
        assert disk.reads == 1

    def test_eviction_when_full(self, sim):
        pool, disk = make_pool(sim, capacity_pages=4)
        ctx = TransactionContext(sim, 1, "t")
        for i in range(6):
            run_fix(sim, pool, ctx, "p%d" % i)
        assert pool.evictions == 2
        assert len(pool._pages) == 4

    def test_dirty_victim_written_back(self, sim):
        pool, disk = make_pool(sim, capacity_pages=2)
        ctx = TransactionContext(sim, 1, "t")
        run_fix(sim, pool, ctx, "dirty1", dirty=True)
        run_fix(sim, pool, ctx, "dirty2", dirty=True)
        writes_before = disk.writes
        run_fix(sim, pool, ctx, "p3")
        run_fix(sim, pool, ctx, "p4")
        assert disk.writes > writes_before
        assert pool.dirty_writebacks >= 1

    def test_prewarm_fills_to_capacity(self, sim):
        pool, _disk = make_pool(sim, capacity_pages=3)
        count = pool.prewarm(["a", "b", "c", "d", "e"])
        assert count == 3
        assert pool.contains("a") and not pool.contains("d")

    def test_prewarm_costs_no_time_or_io(self, sim):
        pool, disk = make_pool(sim, capacity_pages=8)
        pool.prewarm(["a", "b"])
        assert sim.now == 0.0
        assert disk.reads == 0

    def test_hit_ratio(self, sim):
        pool, _disk = make_pool(sim, capacity_pages=8)
        ctx = TransactionContext(sim, 1, "t")
        run_fix(sim, pool, ctx, "p")
        run_fix(sim, pool, ctx, "p")
        run_fix(sim, pool, ctx, "p")
        assert pool.hit_ratio == pytest.approx(2.0 / 3.0)

    def test_make_young_tracked(self, sim):
        pool, _disk = make_pool(sim, capacity_pages=8)
        ctx = TransactionContext(sim, 1, "t")
        run_fix(sim, pool, ctx, "p")  # miss: inserted at old head
        run_fix(sim, pool, ctx, "p")  # hit in old: promoted
        assert pool.make_youngs == 1


class TestLazyLRU:
    def test_llu_defers_on_contention(self, sim):
        pool, _disk = make_pool(
            sim, capacity_pages=8, lazy_lru=True, llu_spin_timeout=2.0
        )
        ctx = TransactionContext(sim, 1, "t")
        pool.prewarm(["p", "q"])
        backlog = []
        done = []

        def hog():
            yield from pool.mutex.acquire()
            yield Timeout(50.0)
            pool.mutex.release()

        def toucher():
            yield Timeout(1.0)
            yield from pool.fix_page(ctx, "p", backlog=backlog)
            done.append(sim.now)

        sim.spawn(hog())
        sim.spawn(toucher())
        sim.run()
        # The toucher gave up after the spin timeout instead of waiting 50.
        assert done[0] < 10.0
        assert pool.llu_deferrals == 1
        assert backlog == ["p"]

    def test_llu_applies_backlog_on_next_acquire(self, sim):
        pool, _disk = make_pool(
            sim, capacity_pages=8, lazy_lru=True, llu_spin_timeout=2.0
        )
        ctx = TransactionContext(sim, 1, "t")
        pool.prewarm(["p", "q"])
        # Touch a page that is in the old sublist (so make-young fires)
        # with another resident page in the deferred backlog.
        target = pool._lru.old_pages[0]
        other = "p" if target == "q" else "q"
        backlog = [other]

        def toucher():
            yield from pool.fix_page(ctx, target, backlog=backlog)

        sim.spawn(toucher())
        sim.run()
        assert backlog == []
        assert pool.llu_applied == 1

    def test_llu_skips_evicted_backlog_pages(self, sim):
        pool, _disk = make_pool(
            sim, capacity_pages=8, lazy_lru=True, llu_spin_timeout=2.0
        )
        ctx = TransactionContext(sim, 1, "t")
        pool.prewarm(["q"])
        backlog = ["gone"]  # page no longer resident

        def toucher():
            yield from pool.fix_page(ctx, "q", backlog=backlog)

        sim.spawn(toucher())
        sim.run()
        assert backlog == []
        assert pool.llu_applied == 0

    def test_eager_pool_never_defers(self, sim):
        pool, _disk = make_pool(sim, capacity_pages=8, lazy_lru=False)
        ctx = TransactionContext(sim, 1, "t")
        pool.prewarm(["p"])
        run_fix(sim, pool, ctx, "p")
        assert pool.llu_deferrals == 0


class TestEvictionRace:
    def test_hit_retries_as_miss_if_evicted_during_pause(self, sim):
        """A page evicted while the hitting process pauses must be
        re-read, not promoted as a ghost."""
        pool, disk = make_pool(sim, capacity_pages=2, hit_cost=50.0)
        ctx = TransactionContext(sim, 1, "t")
        pool.prewarm(["p", "q"])
        outcome = {}

        def hitter():
            page = yield from pool.fix_page(ctx, "p")
            outcome["page"] = page

        def evictor():
            # While the hitter pays its 5us hit cost, storm the pool so
            # "p" gets evicted.
            ctx2 = TransactionContext(sim, 2, "t")
            yield Timeout(1.0)
            yield from pool.fix_page(ctx2, "r1")
            yield from pool.fix_page(ctx2, "r2")

        sim.spawn(hitter())
        sim.spawn(evictor())
        sim.run()
        # The hitter still got a page object for "p" — via a re-read,
        # not a stale promotion of the evicted frame.
        assert outcome["page"].page_id == "p"
        assert pool.misses >= 3  # r1, r2, and the retried "p"


class TestInsertOldMany:
    """``insert_old_many`` must equal a loop of ``insert_old`` calls.

    Three implementations share this contract: the generic fallback
    loop, the from-empty closed form, and the numpy-vectorised
    from-empty path (taken only above 512 pages).
    """

    @staticmethod
    def _state(lru):
        return (list(lru._young), list(lru._old), dict(lru._stamp), lru._clock)

    @pytest.mark.parametrize("n", [1, 2, 5, 37, 100, 511, 513, 2000])
    def test_from_empty_matches_insert_old_loop(self, n):
        bulk = LRUList(capacity=4096)
        loop = LRUList(capacity=4096)
        pages = ["p%d" % i for i in range(n)]
        bulk.insert_old_many(pages)
        for page in pages:
            loop.insert_old(page)
        assert self._state(bulk) == self._state(loop)

    @pytest.mark.parametrize("old_ratio", [0.125, 3.0 / 8.0, 0.5, 0.9])
    def test_vector_path_matches_scalar_closed_form(self, old_ratio):
        # n > 512 takes the numpy path (when numpy is present); build a
        # second list just below the threshold plus singles to force the
        # scalar form on identical input, and compare final states.
        n = 600
        pages = ["p%d" % i for i in range(n)]
        vector = LRUList(capacity=4096, old_ratio=old_ratio)
        scalar = LRUList(capacity=4096, old_ratio=old_ratio)
        vector.insert_old_many(pages)
        for page in pages:
            scalar.insert_old(page)
        assert self._state(vector) == self._state(scalar)

    def test_non_empty_fallback_matches_loop(self):
        bulk = LRUList(capacity=4096)
        loop = LRUList(capacity=4096)
        for lru in (bulk, loop):
            lru.insert_old("seed-1")
            lru.insert_old("seed-2")
            lru.make_young("seed-1")
        pages = ["p%d" % i for i in range(700)]
        bulk.insert_old_many(pages)
        for page in pages:
            loop.insert_old(page)
        assert self._state(bulk) == self._state(loop)

    def test_duplicate_page_raises_keyerror(self):
        lru = LRUList(capacity=4096)
        with pytest.raises(KeyError):
            lru.insert_old_many(["a", "b", "a"])

    def test_duplicate_against_vector_guard(self):
        # >512 pages with one duplicate: the vector path must decline
        # (its guard) and the scalar loop raises exactly like insert_old.
        pages = ["p%d" % i for i in range(600)] + ["p0"]
        lru = LRUList(capacity=4096)
        with pytest.raises(KeyError):
            lru.insert_old_many(pages)

    def test_over_capacity_raises(self):
        lru = LRUList(capacity=16)
        with pytest.raises(RuntimeError):
            lru.insert_old_many(["p%d" % i for i in range(17)])
