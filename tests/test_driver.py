"""The open-loop constant-rate load driver."""

import pytest

from repro.engines.base import Engine
from repro.sim.kernel import Simulator, Timeout
from repro.sim.rand import Streams
from repro.workloads import make_workload
from repro.workloads.driver import LoadDriver


class RecordingEngine(Engine):
    """Captures submissions instead of executing them."""

    name = "recording"

    def __init__(self, sim, service=0.0):
        self.submissions = []
        self.service = service
        super().__init__(sim, tracer=None, n_workers=4)

    def submit(self, ctx, spec):
        self.submissions.append((self.sim.now, ctx, spec))
        super().submit(ctx, spec)

    def _execute(self, worker, ctx, spec):
        if self.service:
            yield Timeout(self.service)
        else:
            yield Timeout(0.0)


def test_driver_submits_exact_count(sim, streams):
    engine = RecordingEngine(sim)
    workload = make_workload("ycsb", scale_factor=1)
    driver = LoadDriver(sim, engine, workload, streams, rate_tps=1000.0, n_txns=50)
    driver.start()
    sim.run()
    assert driver.submitted == 50
    assert len(engine.submissions) == 50


def test_interarrival_matches_rate(sim, streams):
    engine = RecordingEngine(sim)
    workload = make_workload("ycsb", scale_factor=1)
    driver = LoadDriver(
        sim, engine, workload, streams, rate_tps=500.0, n_txns=100, jitter_fraction=0.0
    )
    driver.start()
    sim.run()
    times = [t for t, _ctx, _spec in engine.submissions]
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(g == pytest.approx(2000.0) for g in gaps)


def test_jitter_stays_within_fraction(sim, streams):
    engine = RecordingEngine(sim)
    workload = make_workload("ycsb", scale_factor=1)
    driver = LoadDriver(
        sim, engine, workload, streams, rate_tps=500.0, n_txns=200, jitter_fraction=0.1
    )
    driver.start()
    sim.run()
    times = [t for t, _ctx, _spec in engine.submissions]
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(1800.0 - 1e-9 <= g <= 2200.0 + 1e-9 for g in gaps)
    assert len(set(round(g, 3) for g in gaps)) > 10  # actually jittered


def test_open_loop_independent_of_server_speed(sim, streams):
    """Arrivals keep coming even when the server is slow (open loop)."""
    engine = RecordingEngine(sim, service=1e6)  # 1s per txn, 4 workers
    workload = make_workload("ycsb", scale_factor=1)
    driver = LoadDriver(
        sim, engine, workload, streams, rate_tps=1000.0, n_txns=30, jitter_fraction=0.0
    )
    driver.start()
    sim.run(until=31_000.0)
    assert len(engine.submissions) == 30


def test_ctx_birth_is_submission_time(sim, streams):
    engine = RecordingEngine(sim)
    workload = make_workload("ycsb", scale_factor=1)
    driver = LoadDriver(sim, engine, workload, streams, rate_tps=500.0, n_txns=10)
    driver.start()
    sim.run()
    for t, ctx, _spec in engine.submissions:
        assert ctx.birth == t


def test_txn_ids_sequential(sim, streams):
    engine = RecordingEngine(sim)
    workload = make_workload("ycsb", scale_factor=1)
    LoadDriver(sim, engine, workload, streams, rate_tps=500.0, n_txns=10).start()
    sim.run()
    assert [ctx.txn_id for _t, ctx, _s in engine.submissions] == list(range(10))


def test_invalid_rate_rejected(sim, streams):
    engine = RecordingEngine(sim)
    workload = make_workload("ycsb", scale_factor=1)
    with pytest.raises(ValueError):
        LoadDriver(sim, engine, workload, streams, rate_tps=0.0)


def test_submit_after_drain_rejected(sim, streams):
    engine = RecordingEngine(sim)
    engine.drain()
    with pytest.raises(RuntimeError):
        engine.submit(object(), object())
