"""Transaction demarcation: contexts, intervals, traces, the log."""

import pytest

from repro.core.annotations import TransactionContext, TransactionLog
from repro.sim.kernel import Simulator, Timeout


def test_begin_end_latency(sim):
    ctx = TransactionContext(sim, 1, "t")

    def proc():
        ctx.begin()
        yield Timeout(25.0)
        ctx.end()

    sim.spawn(proc())
    sim.run()
    trace = ctx.finish()
    assert trace.latency == 25.0
    assert trace.attempts == 1
    assert trace.committed


def test_latency_measured_from_birth_not_start(sim):
    """A transaction queued before its first attempt still counts the
    queueing in its user-perceived latency."""
    ctx = TransactionContext(sim, 1, "t")

    def proc():
        yield Timeout(10.0)  # queued
        ctx.begin()
        yield Timeout(5.0)
        ctx.end()

    sim.spawn(proc())
    sim.run()
    assert ctx.finish().latency == 15.0


def test_end_before_begin_raises(sim):
    ctx = TransactionContext(sim, 1, "t")
    with pytest.raises(RuntimeError):
        ctx.end()


def test_end_with_open_frames_raises(sim):
    from repro.core.annotations import _Frame

    ctx = TransactionContext(sim, 1, "t")
    ctx.begin()
    ctx.stack.append(_Frame(("f", "s"), 0.0, None))
    with pytest.raises(RuntimeError):
        ctx.end()


def test_age_advances_with_clock(sim):
    ctx = TransactionContext(sim, 1, "t")

    def proc():
        yield Timeout(7.0)

    sim.spawn(proc())
    sim.run()
    assert ctx.age == 7.0


def test_retries_preserve_birth(sim):
    ctx = TransactionContext(sim, 1, "t")

    def proc():
        ctx.begin()
        yield Timeout(5.0)
        ctx.attempts += 1  # retry bookkeeping
        yield Timeout(5.0)
        ctx.end()

    sim.spawn(proc())
    sim.run()
    trace = ctx.finish()
    assert trace.attempts == 2
    assert trace.latency == 10.0


class TestIntervals:
    def test_concatenated_intervals(self, sim):
        """VoltDB-style: latency spans first interval start to last end."""
        ctx = TransactionContext(sim, 1, "t")

        def proc():
            yield Timeout(3.0)
            ctx.begin_interval()
            yield Timeout(2.0)
            ctx.end_interval()
            yield Timeout(4.0)
            ctx.begin_interval()
            yield Timeout(1.0)
            ctx.end_interval()

        sim.spawn(proc())
        sim.run()
        trace = ctx.finish()
        assert ctx.busy_time == 3.0
        assert trace.latency == 10.0  # birth at 0, last end at 10
        assert ctx.intervals == [(3.0, 5.0), (9.0, 10.0)]

    def test_nested_interval_raises(self, sim):
        ctx = TransactionContext(sim, 1, "t")
        ctx.begin_interval()
        with pytest.raises(RuntimeError):
            ctx.begin_interval()

    def test_end_interval_without_begin_raises(self, sim):
        ctx = TransactionContext(sim, 1, "t")
        with pytest.raises(RuntimeError):
            ctx.end_interval()


class TestTransactionLog:
    def test_records_and_filters(self, sim):
        log = TransactionLog()
        for i, (txn_type, commit) in enumerate(
            [("a", True), ("b", True), ("a", False)]
        ):
            ctx = TransactionContext(sim, i, txn_type)
            ctx.begin()
            ctx.end()
            log.record(ctx, committed=commit)
        assert len(log) == 3
        assert len(log.committed) == 2
        assert len(log.latencies()) == 2
        assert len(log.latencies("a")) == 1

    def test_aborted_excluded_from_latencies(self, sim):
        log = TransactionLog()
        ctx = TransactionContext(sim, 1, "t")
        ctx.begin()
        ctx.end()
        log.record(ctx, committed=False)
        assert log.latencies() == []
