"""Lock manager: grant rules, schedulers, deadlock, timeout, bookkeeping."""

import pytest

from repro.core.annotations import TransactionContext
from repro.lockmgr.locks import LockMode, compatible, stronger_or_equal
from repro.lockmgr.manager import LockManager, RequestStatus
from repro.lockmgr.scheduling import (
    FCFSScheduler,
    RandomScheduler,
    VATSScheduler,
    make_scheduler,
)
from repro.sim.kernel import Timeout


def ctx_at(sim, txn_id, birth):
    return TransactionContext(sim, txn_id, "t", birth=birth)


class TestCompatibility:
    def test_matrix(self):
        assert compatible(LockMode.S, LockMode.S)
        assert not compatible(LockMode.S, LockMode.X)
        assert not compatible(LockMode.X, LockMode.S)
        assert not compatible(LockMode.X, LockMode.X)

    def test_stronger_or_equal(self):
        assert stronger_or_equal(LockMode.X, LockMode.S)
        assert stronger_or_equal(LockMode.X, LockMode.X)
        assert stronger_or_equal(LockMode.S, LockMode.S)
        assert not stronger_or_equal(LockMode.S, LockMode.X)


class TestBasicGranting:
    def test_free_object_granted_immediately(self, sim):
        lm = LockManager(sim, FCFSScheduler())
        ctx = ctx_at(sim, 1, 0.0)
        request = lm.request(ctx, "obj", LockMode.X)
        assert request.status is RequestStatus.GRANTED
        assert lm.held_locks(ctx) == {"obj": LockMode.X}

    def test_shared_locks_coexist(self, sim):
        lm = LockManager(sim, FCFSScheduler())
        a, b = ctx_at(sim, 1, 0.0), ctx_at(sim, 2, 0.0)
        assert lm.request(a, "obj", LockMode.S).status is RequestStatus.GRANTED
        assert lm.request(b, "obj", LockMode.S).status is RequestStatus.GRANTED

    def test_exclusive_blocks_shared(self, sim):
        lm = LockManager(sim, FCFSScheduler())
        a, b = ctx_at(sim, 1, 0.0), ctx_at(sim, 2, 0.0)
        lm.request(a, "obj", LockMode.X)
        assert lm.request(b, "obj", LockMode.S).status is RequestStatus.WAITING

    def test_reentrant_same_mode(self, sim):
        lm = LockManager(sim, FCFSScheduler())
        ctx = ctx_at(sim, 1, 0.0)
        lm.request(ctx, "obj", LockMode.X)
        again = lm.request(ctx, "obj", LockMode.S)
        assert again.status is RequestStatus.GRANTED

    def test_release_grants_next(self, sim):
        lm = LockManager(sim, FCFSScheduler())
        granted = []

        def holder():
            ctx = ctx_at(sim, 1, sim.now)
            yield from lm.acquire(ctx, "obj", LockMode.X)
            yield Timeout(10.0)
            lm.release_all(ctx)

        def waiter():
            yield Timeout(1.0)
            ctx = ctx_at(sim, 2, sim.now)
            status = yield from lm.acquire(ctx, "obj", LockMode.X)
            granted.append((status, sim.now))
            lm.release_all(ctx)

        sim.spawn(holder())
        sim.spawn(waiter())
        sim.run()
        assert granted == [(RequestStatus.GRANTED, 10.0)]

    def test_release_grants_all_compatible(self, sim):
        lm = LockManager(sim, FCFSScheduler())
        granted = []

        def holder():
            ctx = ctx_at(sim, 1, sim.now)
            yield from lm.acquire(ctx, "obj", LockMode.X)
            yield Timeout(10.0)
            lm.release_all(ctx)

        def reader(tid, arrive):
            yield Timeout(arrive)
            ctx = ctx_at(sim, tid, sim.now)
            yield from lm.acquire(ctx, "obj", LockMode.S)
            granted.append((tid, sim.now))

        sim.spawn(holder())
        sim.spawn(reader(2, 1.0))
        sim.spawn(reader(3, 2.0))
        sim.run()
        assert granted == [(2, 10.0), (3, 10.0)]

    def test_writer_not_starved_by_late_readers(self, sim):
        """An S request behind a waiting X request must queue (the paper's
        footnote 7: reads may not pass waiting writes)."""
        lm = LockManager(sim, FCFSScheduler())
        order = []

        def first_reader():
            ctx = ctx_at(sim, 1, sim.now)
            yield from lm.acquire(ctx, "obj", LockMode.S)
            yield Timeout(10.0)
            lm.release_all(ctx)

        def writer():
            yield Timeout(1.0)
            ctx = ctx_at(sim, 2, sim.now)
            yield from lm.acquire(ctx, "obj", LockMode.X)
            order.append(("writer", sim.now))
            yield Timeout(5.0)
            lm.release_all(ctx)

        def late_reader():
            yield Timeout(2.0)
            ctx = ctx_at(sim, 3, sim.now)
            yield from lm.acquire(ctx, "obj", LockMode.S)
            order.append(("late_reader", sim.now))
            lm.release_all(ctx)

        sim.spawn(first_reader())
        sim.spawn(writer())
        sim.spawn(late_reader())
        sim.run()
        assert order == [("writer", 10.0), ("late_reader", 15.0)]


class TestSchedulerOrder:
    def run_three_waiters(self, sim, scheduler, births):
        """txn0 holds; three waiters with given births arrive in order."""
        lm = LockManager(sim, scheduler)
        grants = []

        def holder():
            ctx = ctx_at(sim, "holder", 0.0)
            yield from lm.acquire(ctx, "obj", LockMode.X)
            yield Timeout(100.0)
            lm.release_all(ctx)

        def waiter(tid, arrive, birth):
            yield Timeout(arrive)
            ctx = ctx_at(sim, tid, birth)
            yield from lm.acquire(ctx, "obj", LockMode.X)
            grants.append(tid)
            yield Timeout(1.0)
            lm.release_all(ctx)

        sim.spawn(holder())
        for i, (arrive, birth) in enumerate(births):
            sim.spawn(waiter("w%d" % i, arrive, birth))
        sim.run()
        return grants

    def test_fcfs_grants_in_arrival_order(self, sim):
        # Births reversed vs arrivals: FCFS must ignore age.
        grants = self.run_three_waiters(
            sim, FCFSScheduler(), [(1.0, 50.0), (2.0, 20.0), (3.0, 0.0)]
        )
        assert grants == ["w0", "w1", "w2"]

    def test_vats_grants_eldest_first(self, sim):
        grants = self.run_three_waiters(
            sim, VATSScheduler(), [(1.0, 50.0), (2.0, 20.0), (3.0, 0.0)]
        )
        assert grants == ["w2", "w1", "w0"]

    def test_vats_tie_broken_by_seq(self, sim):
        grants = self.run_three_waiters(
            sim, VATSScheduler(), [(1.0, 5.0), (2.0, 5.0), (3.0, 5.0)]
        )
        assert grants == ["w0", "w1", "w2"]

    def test_random_scheduler_deterministic_with_seed(self):
        import random

        from repro.sim.kernel import Simulator

        def run(seed):
            sim = Simulator()
            return self.run_three_waiters(
                sim,
                RandomScheduler(random.Random(seed)),
                [(1.0, 50.0), (2.0, 20.0), (3.0, 0.0)],
            )

        assert run(3) == run(3)

    def test_strict_vats_never_grants_on_arrival(self, sim):
        """Theorem 1's S_a: compatible arrivals still wait while any lock
        is held."""
        lm = LockManager(sim, VATSScheduler(strict_arrival=True))
        events = []

        def holder():
            ctx = ctx_at(sim, 1, sim.now)
            yield from lm.acquire(ctx, "obj", LockMode.S)
            yield Timeout(10.0)
            lm.release_all(ctx)

        def reader():
            yield Timeout(1.0)
            ctx = ctx_at(sim, 2, sim.now)
            yield from lm.acquire(ctx, "obj", LockMode.S)
            events.append(sim.now)

        sim.spawn(holder())
        sim.spawn(reader())
        sim.run()
        # Default VATS would grant at 1.0 (S compatible with S); strict waits.
        assert events == [10.0]


class TestUpgrade:
    def test_upgrade_succeeds_when_alone(self, sim):
        lm = LockManager(sim, FCFSScheduler())
        ctx = ctx_at(sim, 1, 0.0)
        lm.request(ctx, "obj", LockMode.S)
        up = lm.request(ctx, "obj", LockMode.X)
        assert up.status is RequestStatus.GRANTED
        assert lm.held_locks(ctx)["obj"] is LockMode.X

    def test_upgrade_deadlock_detected(self, sim):
        lm = LockManager(sim, FCFSScheduler())
        results = []

        def upgrader(tid, delay):
            yield Timeout(delay)
            ctx = ctx_at(sim, tid, sim.now)
            yield from lm.acquire(ctx, "obj", LockMode.S)
            yield Timeout(5.0)
            status = yield from lm.acquire(ctx, "obj", LockMode.X)
            results.append((tid, status))
            lm.release_all(ctx)

        sim.spawn(upgrader(1, 0.0))
        sim.spawn(upgrader(2, 1.0))
        sim.run()
        statuses = dict(results)
        assert RequestStatus.DEADLOCK in statuses.values()
        assert RequestStatus.GRANTED in statuses.values()
        assert lm.deadlocks == 1


class TestDeadlock:
    def test_two_object_cycle(self, sim):
        lm = LockManager(sim, FCFSScheduler())
        results = []

        def txn(tid, first, second, delay):
            yield Timeout(delay)
            ctx = ctx_at(sim, tid, sim.now)
            yield from lm.acquire(ctx, first, LockMode.X)
            yield Timeout(5.0)
            status = yield from lm.acquire(ctx, second, LockMode.X)
            results.append((tid, status))
            lm.release_all(ctx)

        sim.spawn(txn(1, "a", "b", 0.0))
        sim.spawn(txn(2, "b", "a", 1.0))
        sim.run()
        statuses = [s for _tid, s in results]
        assert RequestStatus.DEADLOCK in statuses
        assert RequestStatus.GRANTED in statuses

    def test_three_txn_cycle(self, sim):
        lm = LockManager(sim, FCFSScheduler())
        results = []

        def txn(tid, first, second, delay):
            yield Timeout(delay)
            ctx = ctx_at(sim, tid, sim.now)
            yield from lm.acquire(ctx, first, LockMode.X)
            yield Timeout(5.0)
            status = yield from lm.acquire(ctx, second, LockMode.X)
            results.append((tid, status))
            yield Timeout(1.0)
            lm.release_all(ctx)

        sim.spawn(txn(1, "a", "b", 0.0))
        sim.spawn(txn(2, "b", "c", 1.0))
        sim.spawn(txn(3, "c", "a", 2.0))
        sim.run()
        statuses = [s for _tid, s in results]
        assert statuses.count(RequestStatus.DEADLOCK) == 1
        assert statuses.count(RequestStatus.GRANTED) == 2

    def test_no_false_deadlock_on_simple_wait(self, sim):
        lm = LockManager(sim, FCFSScheduler())

        def holder():
            ctx = ctx_at(sim, 1, sim.now)
            yield from lm.acquire(ctx, "obj", LockMode.X)
            yield Timeout(5.0)
            lm.release_all(ctx)

        statuses = []

        def waiter():
            yield Timeout(1.0)
            ctx = ctx_at(sim, 2, sim.now)
            status = yield from lm.acquire(ctx, "obj", LockMode.X)
            statuses.append(status)

        sim.spawn(holder())
        sim.spawn(waiter())
        sim.run()
        assert statuses == [RequestStatus.GRANTED]
        assert lm.deadlocks == 0


class TestTimeoutAndCancel:
    def test_lock_wait_timeout(self, sim):
        lm = LockManager(sim, FCFSScheduler(), wait_timeout=5.0)
        statuses = []

        def holder():
            ctx = ctx_at(sim, 1, sim.now)
            yield from lm.acquire(ctx, "obj", LockMode.X)
            yield Timeout(100.0)
            lm.release_all(ctx)

        def waiter():
            yield Timeout(1.0)
            ctx = ctx_at(sim, 2, sim.now)
            status = yield from lm.acquire(ctx, "obj", LockMode.X)
            statuses.append((status, sim.now))

        sim.spawn(holder())
        sim.spawn(waiter())
        sim.run()
        assert statuses == [(RequestStatus.TIMEOUT, 6.0)]
        assert lm.timeouts == 1

    def test_release_all_cancels_waiting_request(self, sim):
        lm = LockManager(sim, FCFSScheduler())

        def holder():
            ctx = ctx_at(sim, 1, sim.now)
            yield from lm.acquire(ctx, "obj", LockMode.X)
            yield Timeout(50.0)
            lm.release_all(ctx)

        def quitter():
            yield Timeout(1.0)
            ctx = ctx_at(sim, 2, sim.now)
            request = lm.request(ctx, "obj", LockMode.X)
            assert request.status is RequestStatus.WAITING
            lm.release_all(ctx)  # abort while waiting
            assert request.status is RequestStatus.CANCELLED

        sim.spawn(holder())
        sim.spawn(quitter())
        sim.run()
        assert lm.queue_length("obj") == 0


class TestBookkeeping:
    def test_bookkeeping_charges_time(self, sim):
        lm = LockManager(
            sim,
            FCFSScheduler(),
            bookkeeping=True,
            bookkeeping_base=1.0,
            bookkeeping_per_entry=0.5,
        )

        def proc():
            ctx = ctx_at(sim, 1, sim.now)
            request = yield from lm.request_timed(ctx, "obj", LockMode.X)
            assert request.status is RequestStatus.GRANTED
            yield from lm.release_all_timed(ctx)

        sim.spawn(proc())
        sim.run()
        assert lm.bookkeeping_time > 0
        assert sim.now >= 2.0  # request scan + release scan

    def test_head_placement_shortens_scans(self, sim):
        fcfs = LockManager(sim, FCFSScheduler(), bookkeeping=True)
        vats = LockManager(sim, VATSScheduler(), bookkeeping=True)
        assert fcfs._scan_fraction() == 1.0
        assert vats._scan_fraction() < 1.0

    def test_bookkeeping_disabled_is_free(self, sim):
        lm = LockManager(sim, FCFSScheduler(), bookkeeping=False)

        def proc():
            ctx = ctx_at(sim, 1, sim.now)
            yield from lm.request_timed(ctx, "obj", LockMode.X)
            yield from lm.release_all_timed(ctx)

        sim.spawn(proc())
        sim.run()
        assert sim.now == 0.0
        assert lm.bookkeeping_time == 0.0


class TestAccounting:
    def test_wait_statistics(self, sim):
        lm = LockManager(sim, FCFSScheduler())

        def holder():
            ctx = ctx_at(sim, 1, sim.now)
            yield from lm.acquire(ctx, "obj", LockMode.X)
            yield Timeout(10.0)
            lm.release_all(ctx)

        def waiter():
            yield Timeout(2.0)
            ctx = ctx_at(sim, 2, sim.now)
            yield from lm.acquire(ctx, "obj", LockMode.X)
            lm.release_all(ctx)

        sim.spawn(holder())
        sim.spawn(waiter())
        sim.run()
        assert lm.total_requests == 2
        assert lm.immediate_grants == 1
        assert lm.total_waits == 1
        assert lm.total_wait_time == pytest.approx(8.0)

    def test_lock_table_cleaned_up(self, sim):
        lm = LockManager(sim, FCFSScheduler())

        def proc():
            ctx = ctx_at(sim, 1, sim.now)
            yield from lm.acquire(ctx, "obj", LockMode.X)
            lm.release_all(ctx)

        sim.spawn(proc())
        sim.run()
        assert lm._objects == {}
        assert lm._held == {}


def test_make_scheduler_factory():
    import random

    assert make_scheduler("fcfs").name == "FCFS"
    assert make_scheduler("VATS").name == "VATS"
    assert make_scheduler("rs", rng=random.Random(0)).name == "RS"
    with pytest.raises(ValueError):
        make_scheduler("rs")
    with pytest.raises(ValueError):
        make_scheduler("mystery")
