"""The DTrace-style baseline and the overhead experiment (Figure 5)."""

import pytest

from repro.core.dtrace import (
    DTRACE_PROBE_COST,
    TPROFILER_PROBE_COST,
    overhead_experiment,
)
from repro.core.profiler import ProfiledSystem
from tests.test_profiler import SyntheticSystem


class TimedSyntheticSystem(SyntheticSystem):
    """Synthetic system whose traces reflect probe cost in latency."""

    def run(self, instrumented, probe_cost):
        log = super().run(instrumented, probe_cost)
        if probe_cost:
            # Each instrumented function fires entry+exit once per txn.
            extra = 2.0 * probe_cost * len(instrumented)
            for trace in log.traces:
                trace.end += extra
        return log


def test_probe_cost_constants_ordering():
    """Source probes must be orders of magnitude cheaper than binary
    rewriting probes."""
    assert DTRACE_PROBE_COST > 50 * TPROFILER_PROBE_COST


def test_overhead_grows_with_children():
    system = TimedSyntheticSystem(n_txns=100)
    rows = overhead_experiment(system, (1, 2, 3), probe_cost=5.0)
    overheads = [lat for _n, lat, _tp in rows]
    assert overheads == sorted(overheads)
    assert overheads[-1] > 0


def test_dtrace_overhead_exceeds_tprofiler():
    system = TimedSyntheticSystem(n_txns=100)
    tprof = overhead_experiment(system, (1, 3), TPROFILER_PROBE_COST)
    dtrace = overhead_experiment(system, (1, 3), DTRACE_PROBE_COST)
    for (n, t_lat, _), (_, d_lat, _) in zip(tprof, dtrace):
        assert d_lat > t_lat


def test_throughput_overhead_reported():
    system = TimedSyntheticSystem(n_txns=100)
    rows = overhead_experiment(system, (2,), probe_cost=10.0)
    (_n, lat_overhead, tput_overhead), = rows
    assert lat_overhead > 0
    # Throughput overhead defined as 1 - instrumented/baseline.
    assert -1.0 < tput_overhead < 1.0
