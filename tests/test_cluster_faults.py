"""2PC edge cases under injected faults (repro.faults x repro.cluster).

Three failure regimes from the fault catalogue, each asserted to abort
*cleanly*: branches release their locks, the coordinator retries or
gives up through the standard RetryPolicy, every transaction reaches
end_transaction exactly once, and the per-reason abort counters name the
culprit.

- lock-wait-timeout storms during prepare: participants vote no with
  ``timeout``;
- network delay windows: the same seed's 2PC rounds take visibly longer
  (``dist_*`` waits stretch), with no accounting drift;
- worker crash mid-prepare: the dequeuing worker dies before voting, the
  round aborts with ``crash`` and the transaction retries.
"""

from repro.bench.runner import ExperimentConfig, run_experiment
from repro.cluster import Topology
from repro.faults.plan import FaultPlan


def chaos_config(plan=None, **overrides):
    kwargs = {
        "engine": "mysql",
        "workload_kwargs": {
            "warehouses": 8,
            "remote_payment_prob": 0.3,
            "remote_warehouse_prob": 0.0,
        },
        "n_txns": 400,
        "num_shards": 2,
        "seed": 11,
        "fault_plan": plan,
    }
    kwargs.update(overrides)
    return ExperimentConfig(**kwargs)


def assert_clean_accounting(result):
    """Every submitted transaction ends exactly once, committed or not."""
    assert len(result.log.traces) == result.config.n_txns
    committed = sum(1 for t in result.log.traces if t.committed)
    assert committed + result.failed_txns == result.config.n_txns


def test_lock_storm_times_out_prepares_and_retries():
    plan = FaultPlan(
        name="storm",
        lock_storm_windows=((0.0, 1e9),),
        lock_storm_timeout=1_500.0,
    )
    result = run_experiment(chaos_config(plan))
    assert result.abort_counts.get("timeout", 0) > 0
    assert_clean_accounting(result)
    # The coordinator retried at least one cross-shard round.
    retries = result.metrics_snapshot()["counters"].get("cluster.txn_retries", 0)
    assert retries > 0


def test_coordinator_gives_up_after_max_attempts():
    plan = FaultPlan(
        name="storm",
        lock_storm_windows=((0.0, 1e9),),
        lock_storm_timeout=1_000.0,
    )
    config = chaos_config(plan, topology=Topology(max_attempts=1))
    result = run_experiment(config)
    assert_clean_accounting(result)
    assert result.failed_txns > 0
    # Give-ups carry their final abort reason.
    assert set(result.failed_counts) <= {"timeout", "deadlock", "shed", "abort"}


def test_net_delay_stretches_distributed_waits():
    clean = run_experiment(chaos_config())
    plan = FaultPlan(
        name="slow-net",
        net_delay_windows=((0.0, 1e9),),
        net_delay_factor=10.0,
    )
    slow = run_experiment(chaos_config(plan))
    assert_clean_accounting(clean)
    assert_clean_accounting(slow)
    clean_wait = clean.metrics_snapshot()["histograms"]["cluster.prepare_wait"]
    slow_wait = slow.metrics_snapshot()["histograms"]["cluster.prepare_wait"]
    assert clean_wait["count"] > 0 and slow_wait["count"] > 0
    assert slow_wait["mean"] > clean_wait["mean"]


def test_worker_crash_mid_prepare_aborts_cleanly():
    plan = FaultPlan(name="crashy", crash_prob=0.05)
    result = run_experiment(chaos_config(plan))
    assert result.abort_counts.get("crash", 0) > 0
    assert result.fault_counts["worker_crashes"] > 0
    assert_clean_accounting(result)
    # Crashed rounds retried and the run still made progress.
    assert len(result.traces) > 0
