"""The GK quantile sketch: rank-error guarantee vs numpy, edge cases."""

import math
import random

import numpy as np
import pytest

from repro.telemetry.sketch import GKSketch


def rank_interval(sorted_values, value):
    """[lo, hi] 1-based rank range that ``value`` occupies in the data."""
    lo = np.searchsorted(sorted_values, value, side="left") + 1
    hi = np.searchsorted(sorted_values, value, side="right")
    return lo, max(lo, hi)


def assert_within_guarantee(sketch, data, quantiles):
    """The returned value's true rank is within eps*n of the target rank."""
    ordered = np.sort(np.asarray(data, dtype=float))
    n = len(ordered)
    margin = sketch.epsilon * n
    for q in quantiles:
        estimate = sketch.quantile(q)
        target = math.ceil(q * n)
        lo, hi = rank_interval(ordered, estimate)
        # The estimate is always a stored (i.e. observed) value, so its
        # rank interval must intersect [target - margin, target + margin].
        assert lo <= target + margin + 1e-9, (q, estimate, lo, target, margin)
        assert hi >= target - margin - 1e-9, (q, estimate, hi, target, margin)


QUANTILES = (0.0, 0.01, 0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0)


class TestRankErrorGuarantee:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("epsilon", [0.05, 0.01])
    def test_uniform_stream(self, seed, epsilon):
        rng = random.Random(seed)
        sketch = GKSketch(epsilon)
        data = [rng.uniform(0.0, 1000.0) for _ in range(5000)]
        for v in data:
            sketch.observe(v)
        assert_within_guarantee(sketch, data, QUANTILES)

    def test_heavy_tailed_stream(self):
        rng = random.Random(99)
        sketch = GKSketch(0.02)
        data = [rng.paretovariate(1.5) for _ in range(8000)]
        for v in data:
            sketch.observe(v)
        assert_within_guarantee(sketch, data, QUANTILES)

    def test_sorted_and_reversed_streams(self):
        for order in (1, -1):
            data = [float(i) for i in range(3000)][::order]
            sketch = GKSketch(0.02)
            for v in data:
                sketch.observe(v)
            assert_within_guarantee(sketch, data, QUANTILES)

    def test_close_to_numpy_percentile(self):
        """Value error sanity: estimates land near numpy's percentiles
        (value distance bounded by the local density around the rank)."""
        rng = random.Random(7)
        data = [rng.gauss(100.0, 15.0) for _ in range(10_000)]
        sketch = GKSketch(0.01)
        for v in data:
            sketch.observe(v)
        arr = np.asarray(data)
        for q in (0.5, 0.9, 0.99):
            estimate = sketch.quantile(q)
            lo = float(np.percentile(arr, max(0.0, (q - 0.02) * 100)))
            hi = float(np.percentile(arr, min(100.0, (q + 0.02) * 100)))
            assert lo <= estimate <= hi

    def test_space_stays_bounded(self):
        sketch = GKSketch(0.01)
        rng = random.Random(5)
        for _ in range(50_000):
            sketch.observe(rng.random())
        # Retained tuples grow ~ (1/eps) * log(eps * n), far below n.
        assert sketch.size < 2500


class TestEdgeCases:
    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty sketch"):
            GKSketch(0.01).quantile(0.5)

    def test_single_element(self):
        sketch = GKSketch(0.01)
        sketch.observe(42.0)
        for q in QUANTILES:
            assert sketch.quantile(q) == 42.0

    def test_all_equal(self):
        sketch = GKSketch(0.01)
        for _ in range(1000):
            sketch.observe(7.5)
        for q in QUANTILES:
            assert sketch.quantile(q) == 7.5

    def test_two_values_extremes(self):
        sketch = GKSketch(0.01)
        sketch.observe(1.0)
        sketch.observe(2.0)
        assert sketch.quantile(0.0) == 1.0
        assert sketch.quantile(1.0) == 2.0

    def test_min_max_preserved_under_compression(self):
        rng = random.Random(11)
        data = [rng.uniform(10.0, 20.0) for _ in range(20_000)]
        sketch = GKSketch(0.05)
        for v in data:
            sketch.observe(v)
        assert sketch.quantile(0.0) == min(data)
        assert sketch.quantile(1.0) == max(data)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            GKSketch(0.01).observe(float("nan"))

    def test_rejects_bad_epsilon(self):
        for epsilon in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError):
                GKSketch(epsilon)

    def test_rejects_bad_quantile(self):
        sketch = GKSketch(0.01)
        sketch.observe(1.0)
        for q in (-0.1, 1.1):
            with pytest.raises(ValueError):
                sketch.quantile(q)

    def test_determinism(self):
        def build():
            rng = random.Random(3)
            sketch = GKSketch(0.02)
            for _ in range(4000):
                sketch.observe(rng.expovariate(0.01))
            return sketch

        a, b = build(), build()
        assert a._entries == b._entries
        assert [a.quantile(q) for q in QUANTILES] == [
            b.quantile(q) for q in QUANTILES
        ]
