"""Crash-point sweeps: recovery must be correct at *every* instant.

The crash controller kills a node (or the 2PC coordinator) at a planned
virtual-time instant; these tests sweep that instant across a tiny fixed
workload's whole execution — every k-th event boundary observed in a
crash-free baseline, plus adversarially chosen points bracketing each
coordinator decision (just before the vote deadline, and in the window
between the decision-log write and the branch notifications) — and
require, at every single point:

- all four oracles clean (serializability, 2PC atomicity, lock
  intervals, durability/in-doubt resolution);
- exact client accounting: every submitted transaction reaches exactly
  one outcome, ``sum(outcome_counts.values()) == n_txns``, including
  under load shedding;
- the run still terminates (no leaked in-flight counts, no processes
  parked forever on events nobody will fire).

The cross-process test at the bottom locks down determinism: the same
seed and fault plan must produce a byte-identical post-recovery run
digest in interpreters with different ``PYTHONHASHSEED``.
"""

import json

import pytest

from repro.bench.digest import run_digest
from repro.bench.runner import ExperimentConfig, run_experiment
from repro.exec import run_many
from repro.faults.plan import FaultPlan

from tests.util import assert_hash_seed_invariant


def _single_node_config(engine, **overrides):
    kwargs = dict(
        engine=engine,
        workload="tpcc",
        workload_kwargs={"warehouses": 4},
        n_txns=80,
        rate_tps=600.0,
        seed=23,
        check=True,
    )
    kwargs.update(overrides)
    return ExperimentConfig(**kwargs)


def _cluster_config(**overrides):
    kwargs = dict(
        engine="mysql",
        workload="tpcc",
        workload_kwargs={"warehouses": 8, "remote_payment_prob": 0.35},
        n_txns=80,
        rate_tps=600.0,
        seed=23,
        num_shards=2,
        check=True,
    )
    kwargs.update(overrides)
    return ExperimentConfig(**kwargs)


def _event_boundaries(result, every_kth):
    """Every k-th distinct virtual-time event boundary of a baseline run.

    "Event boundary" here is every instant the recorder observed state
    change at: transaction/branch completions and 2PC decision points.
    Crashing half a microsecond *after* each lands the crash between
    adjacent events — the adversarial placement.
    """
    times = {rec.commit_time for rec in result.history.txns}
    for rnd in result.history.rounds:
        if rnd.decision is not None:
            times.add(rnd.decision[2])
    ordered = sorted(times)
    return [round(t + 0.5, 1) for t in ordered[::every_kth]]


def _sweep(base_config, crash_points, target):
    """Run one crash per point; return the aggregated outcome counts.

    The points are independent deterministic runs, so the sweep fans
    out through the execution layer (``repro.exec.run_many``); the
    returned artifacts carry everything the assertions need.
    """
    n = base_config.n_txns
    configs = [
        base_config.replaced(fault_plan=FaultPlan(
            name="sweep-crash", node_crash_times=((target, crash_at),)
        ))
        for crash_at in crash_points
    ]
    aggregate = {}
    for crash_at, artifact in zip(crash_points, run_many(configs)):
        violations = artifact.check_report()
        assert violations == [], (
            "crash target=%r t=%r: %r" % (target, crash_at, violations)
        )
        counts = artifact.outcome_counts
        assert sum(counts.values()) == n, (
            "crash target=%r t=%r lost/duplicated clients: %r"
            % (target, crash_at, counts)
        )
        assert artifact.fault_counts["node_crashes"] == 1
        for outcome, count in counts.items():
            aggregate[outcome] = aggregate.get(outcome, 0) + count
    return aggregate


@pytest.mark.parametrize("engine", ["mysql", "postgres", "voltdb"])
def test_single_node_crash_sweep(engine):
    base = _single_node_config(engine)
    baseline = run_experiment(base)
    assert baseline.check_report() == []
    points = _event_boundaries(baseline, every_kth=12)
    # One point past the crash-free end: crash after all work finished.
    points.append(round(baseline.sim.now + 10_000.0, 1))
    aggregate = _sweep(base, points, target=0)
    assert aggregate["committed"] > 0


def test_cluster_node_crash_sweep():
    base = _cluster_config()
    baseline = run_experiment(base)
    assert baseline.check_report() == []
    points = _event_boundaries(baseline, every_kth=10)
    for target in (0, 1):
        aggregate = _sweep(base, points, target)
        assert aggregate["committed"] > 0


def test_cluster_node_crash_at_prepared_branches_resolves_indoubt():
    """Crash a node just before each decision: branches are prepared
    (voted yes, undecided) and must resolve through the in-doubt path
    after restart, never leaking locks or losing the global outcome."""
    base = _cluster_config()
    baseline = run_experiment(base)
    decisions = sorted(
        rnd.decision[2]
        for rnd in baseline.history.rounds
        if rnd.decision is not None
    )
    assert decisions, "fixture must exercise 2PC"
    points = [round(t - 1.0, 1) for t in decisions[::3]]
    _sweep(base, points, target=0)
    _sweep(base, points, target=1)


def test_coord_crash_sweep_including_log_notify_window():
    """Coordinator crashes at event boundaries AND in the window between
    the decision-log write and the branch notifications (decision time
    + 0.5us: durable decision, no participant informed yet).  Recovery
    must re-drive logged commits — the sweep as a whole has to produce
    at least one ``recovered_commit`` — and presumed-abort the rest."""
    base = _cluster_config()
    baseline = run_experiment(base)
    decisions = sorted(
        rnd.decision[2]
        for rnd in baseline.history.rounds
        if rnd.decision is not None
    )
    assert decisions, "fixture must exercise 2PC"
    points = _event_boundaries(baseline, every_kth=10)
    points += [round(t + 0.5, 1) for t in decisions[::2]]
    aggregate = _sweep(base, sorted(set(points)), target="coord")
    assert aggregate.get("recovered_commit", 0) > 0, (
        "no crash point exercised the logged-commit redrive: %r" % (aggregate,)
    )


def test_outcome_sum_under_shedding_and_crash():
    """Shedding and crashing together must not double- or under-count."""
    from repro.engines.mysql import MySQLConfig

    base = _single_node_config(
        "mysql",
        rate_tps=2_000.0,
        engine_config=MySQLConfig(n_workers=2, max_queue_depth=4),
    )
    baseline = run_experiment(base)
    points = _event_boundaries(baseline, every_kth=15)
    aggregate = _sweep(base, points, target=0)
    assert aggregate.get("shed", 0) > 0, "fixture must actually shed"
    assert aggregate.get("node_crash", 0) > 0


def test_post_crash_digest_cross_process():
    """Same seed + fault plan => byte-identical post-recovery digest,
    across interpreters with different ``PYTHONHASHSEED``."""
    code = (
        "import sys, json; sys.path[:0] = json.loads(sys.argv[1]); "
        "from repro.bench.digest import run_digest; "
        "from repro.bench.runner import ExperimentConfig, run_experiment; "
        "from repro.faults.plan import FaultPlan; "
        "plan = FaultPlan(name='sweep-crash', "
        "node_crash_times=((0, 60_000.0), ('coord', 140_000.0))); "
        "r = run_experiment(ExperimentConfig(engine='mysql', "
        "workload_kwargs={'warehouses': 8, 'remote_payment_prob': 0.35}, "
        "n_txns=80, rate_tps=600.0, seed=23, num_shards=2, check=True, "
        "fault_plan=plan)); "
        "print(json.dumps([run_digest(r), "
        "sorted(r.outcome_counts.items()), r.fault_counts]))"
    )
    output = assert_hash_seed_invariant(code)
    digest, outcomes, fault_counts = json.loads(output)
    assert fault_counts["node_crashes"] == 2
    assert sum(count for _outcome, count in outcomes) == 80


def test_post_crash_digest_in_process_repeatable():
    """And the digest is stable across repeated in-process runs."""
    plan = FaultPlan(
        name="sweep-crash", node_crash_times=((0, 60_000.0),)
    )
    config = _cluster_config(fault_plan=plan)
    assert run_digest(run_experiment(config)) == run_digest(
        run_experiment(config)
    )
