"""Mutex, SpinLock, WaitQueue, CoreSet semantics."""

import pytest

from repro.sim.kernel import SimulationError, Timeout
from repro.sim.resources import CoreSet, Mutex, SpinLock, WaitQueue


class TestMutex:
    def test_uncontended_acquire_is_instant(self, sim):
        mutex = Mutex(sim)
        done = []

        def proc():
            yield from mutex.acquire()
            done.append(sim.now)
            mutex.release()

        sim.spawn(proc())
        sim.run()
        assert done == [0.0]
        assert mutex.holder is None

    def test_fifo_handoff_order(self, sim):
        mutex = Mutex(sim)
        order = []

        def proc(tag, arrive):
            yield Timeout(arrive)
            yield from mutex.acquire()
            order.append(tag)
            yield Timeout(10.0)
            mutex.release()

        sim.spawn(proc("first", 0))
        sim.spawn(proc("second", 1))
        sim.spawn(proc("third", 2))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_release_unheld_raises(self, sim):
        mutex = Mutex(sim)

        def proc():
            mutex.release()
            yield Timeout(0)

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_release_by_non_holder_raises(self, sim):
        mutex = Mutex(sim)

        def holder():
            yield from mutex.acquire()
            yield Timeout(10.0)
            mutex.release()

        def intruder():
            yield Timeout(1.0)
            mutex.release()

        sim.spawn(holder())
        sim.spawn(intruder())
        with pytest.raises(SimulationError):
            sim.run()

    def test_try_acquire_timeout_gives_up(self, sim):
        mutex = Mutex(sim)
        results = []

        def holder():
            yield from mutex.acquire()
            yield Timeout(100.0)
            mutex.release()

        def impatient():
            yield Timeout(1.0)
            got = yield from mutex.try_acquire(5.0)
            results.append((got, sim.now))

        sim.spawn(holder())
        sim.spawn(impatient())
        sim.run()
        assert results == [(False, 6.0)]

    def test_cancelled_waiter_skipped_on_release(self, sim):
        """A timed-out waiter must not receive the lock (deadlock risk)."""
        mutex = Mutex(sim)
        order = []

        def holder():
            yield from mutex.acquire()
            yield Timeout(50.0)
            mutex.release()

        def quitter():
            yield Timeout(1.0)
            got = yield from mutex.try_acquire(5.0)
            order.append(("quitter", got))

        def patient():
            yield Timeout(2.0)
            yield from mutex.acquire()
            order.append(("patient", sim.now))
            mutex.release()

        sim.spawn(holder())
        sim.spawn(quitter())
        sim.spawn(patient())
        sim.run()
        assert ("quitter", False) in order
        assert ("patient", 50.0) in order
        assert mutex.holder is None

    def test_wait_accounting(self, sim):
        mutex = Mutex(sim)

        def holder():
            yield from mutex.acquire()
            yield Timeout(10.0)
            mutex.release()

        def waiter():
            yield Timeout(1.0)
            yield from mutex.acquire()
            mutex.release()

        sim.spawn(holder())
        sim.spawn(waiter())
        sim.run()
        assert mutex.total_waits == 1
        assert mutex.total_wait_time == pytest.approx(9.0)
        assert mutex.total_acquisitions == 2


class TestSpinLock:
    def test_acquire_within_spin_budget(self, sim):
        lock = SpinLock(sim, spin_timeout=20.0, spin_overhead=0.0)
        results = []

        def holder():
            yield from lock.acquire()
            yield Timeout(5.0)
            lock.release()

        def spinner():
            yield Timeout(1.0)
            got = yield from lock.try_acquire()
            results.append((got, sim.now))
            if got:
                lock.release()

        sim.spawn(holder())
        sim.spawn(spinner())
        sim.run()
        assert results == [(True, 5.0)]
        assert lock.timeouts == 0

    def test_spin_timeout_abandons(self, sim):
        lock = SpinLock(sim, spin_timeout=3.0, spin_overhead=0.0)
        results = []

        def holder():
            yield from lock.acquire()
            yield Timeout(100.0)
            lock.release()

        def spinner():
            yield Timeout(1.0)
            got = yield from lock.try_acquire()
            results.append((got, sim.now))

        sim.spawn(holder())
        sim.spawn(spinner())
        sim.run()
        assert results == [(False, 4.0)]
        assert lock.timeouts == 1

    def test_spin_overhead_charged(self, sim):
        lock = SpinLock(sim, spin_timeout=5.0, spin_overhead=0.5)
        times = []

        def proc():
            got = yield from lock.try_acquire()
            times.append((got, sim.now))
            lock.release()

        sim.spawn(proc())
        sim.run()
        assert times == [(True, 0.5)]


class TestWaitQueue:
    def test_put_then_get(self, sim):
        queue = WaitQueue(sim)
        items = []

        def producer():
            queue.put("a")
            queue.put("b")
            yield Timeout(0)

        def consumer():
            yield Timeout(1.0)
            items.append((yield from queue.get()))
            items.append((yield from queue.get()))

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert items == ["a", "b"]

    def test_get_blocks_until_put(self, sim):
        queue = WaitQueue(sim)
        items = []

        def consumer():
            item = yield from queue.get()
            items.append((item, sim.now))

        def producer():
            yield Timeout(5.0)
            queue.put("late")

        sim.spawn(consumer())
        sim.spawn(producer())
        sim.run()
        assert items == [("late", 5.0)]

    def test_getters_served_fifo(self, sim):
        queue = WaitQueue(sim)
        got = []

        def consumer(tag, arrive):
            yield Timeout(arrive)
            item = yield from queue.get()
            got.append((tag, item))

        def producer():
            yield Timeout(10.0)
            queue.put(1)
            queue.put(2)

        sim.spawn(consumer("first", 0))
        sim.spawn(consumer("second", 1))
        sim.spawn(producer())
        sim.run()
        assert got == [("first", 1), ("second", 2)]

    def test_peak_length_tracked(self, sim):
        queue = WaitQueue(sim)

        def producer():
            for i in range(5):
                queue.put(i)
            yield Timeout(0)

        sim.spawn(producer())
        sim.run()
        assert queue.peak_length == 5
        assert queue.total_puts == 5


class TestCoreSet:
    def test_single_core_serializes(self, sim):
        cpu = CoreSet(sim, 1)
        finish = []

        def proc(tag):
            yield from cpu.consume(10.0)
            finish.append((tag, sim.now))

        sim.spawn(proc("a"))
        sim.spawn(proc("b"))
        sim.run()
        assert finish == [("a", 10.0), ("b", 20.0)]

    def test_two_cores_run_in_parallel(self, sim):
        cpu = CoreSet(sim, 2)
        finish = []

        def proc(tag):
            yield from cpu.consume(10.0)
            finish.append((tag, sim.now))

        sim.spawn(proc("a"))
        sim.spawn(proc("b"))
        sim.run()
        assert finish == [("a", 10.0), ("b", 10.0)]

    def test_zero_cost_is_free(self, sim):
        cpu = CoreSet(sim, 1)

        def proc():
            yield from cpu.consume(0.0)
            yield Timeout(0)

        sim.spawn(proc())
        sim.run()
        assert cpu.total_bursts == 0

    def test_utilization(self, sim):
        cpu = CoreSet(sim, 2)

        def proc():
            yield from cpu.consume(10.0)

        sim.spawn(proc())
        sim.run()
        assert cpu.utilization(10.0) == pytest.approx(0.5)

    def test_requires_at_least_one_core(self, sim):
        with pytest.raises(ValueError):
            CoreSet(sim, 0)
