"""Statistics: Lp norms, summaries, covariance — incl. the identities
the variance tree and VATS theory rest on."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.stats import (
    LatencySummary,
    correlation,
    covariance,
    lp_norm,
    summarize,
)

latency_lists = st.lists(
    st.floats(min_value=0.001, max_value=1e6, allow_nan=False), min_size=2, max_size=50
)


class TestLpNorm:
    def test_l1_is_sum(self):
        assert lp_norm([1.0, 2.0, 3.0], p=1.0) == pytest.approx(6.0)

    def test_l2_euclidean(self):
        assert lp_norm([3.0, 4.0], p=2.0) == pytest.approx(5.0)

    def test_linf_is_max(self):
        assert lp_norm([1.0, 9.0, 5.0], p=math.inf) == 9.0

    def test_normalized_is_power_mean(self):
        values = [2.0, 2.0, 2.0]
        assert lp_norm(values, p=2.0, normalized=True) == pytest.approx(2.0)

    def test_rejects_p_below_one(self):
        with pytest.raises(ValueError):
            lp_norm([1.0], p=0.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            lp_norm([], p=2.0)

    @settings(max_examples=100, deadline=None)
    @given(values=latency_lists)
    def test_power_mean_monotone_in_p(self, values):
        """Power means are non-decreasing in p (the paper: larger p
        penalises deviations more)."""
        m1 = lp_norm(values, p=1.0, normalized=True)
        m2 = lp_norm(values, p=2.0, normalized=True)
        m4 = lp_norm(values, p=4.0, normalized=True)
        assert m1 <= m2 * (1 + 1e-9)
        assert m2 <= m4 * (1 + 1e-9)

    @settings(max_examples=100, deadline=None)
    @given(values=latency_lists)
    def test_l2_squared_is_n_times_mean_square(self, values):
        """||l||_2^2 = n * (mean^2 + var): minimising L2 minimises both."""
        n = len(values)
        arr = np.asarray(values)
        lhs = lp_norm(values, p=2.0) ** 2
        rhs = n * (arr.mean() ** 2 + arr.var())
        assert lhs == pytest.approx(rhs, rel=1e-6)


class TestCovariance:
    def test_self_covariance_is_variance(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        assert covariance(xs, xs) == pytest.approx(np.var(xs))

    def test_independent_shifted(self):
        xs = [1.0, 2.0, 3.0]
        ys = [5.0, 6.0, 7.0]
        assert covariance(xs, ys) == pytest.approx(covariance(xs, xs))

    def test_anticorrelated(self):
        xs = [1.0, 2.0, 3.0]
        ys = [3.0, 2.0, 1.0]
        assert covariance(xs, ys) < 0

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            covariance([1.0], [1.0, 2.0])

    def test_correlation_of_constant_is_zero(self):
        assert correlation([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0

    def test_correlation_bounds(self):
        assert correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)
        assert correlation([1, 2, 3], [6, 4, 2]) == pytest.approx(-1.0)

    @settings(max_examples=100, deadline=None)
    @given(values=latency_lists)
    def test_var_of_sum_identity(self, values):
        """Var(X+Y) = Var(X) + Var(Y) + 2Cov(X,Y) — eq. (1) base case."""
        xs = np.asarray(values)
        ys = xs[::-1].copy()
        lhs = float((xs + ys).var())
        rhs = float(xs.var()) + float(ys.var()) + 2.0 * covariance(xs, ys)
        # Absolute tolerance scales with the variance magnitude: when the
        # sum is (nearly) constant the identity is a cancellation of large
        # terms and float error dominates.
        tolerance = 1e-9 + 1e-10 * (float(xs.var()) + float(ys.var()))
        assert lhs == pytest.approx(rhs, rel=1e-6, abs=tolerance)


class TestSummarize:
    def test_basic_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.variance == pytest.approx(1.25)
        assert s.std == pytest.approx(math.sqrt(1.25))
        assert s.max == 4.0
        assert s.p50 == pytest.approx(2.5)

    def test_cv(self):
        s = summarize([10.0, 10.0])
        assert s.cv == 0.0

    def test_p99_upper_tail(self):
        values = list(range(1, 101))
        s = summarize(values)
        assert s.p99 >= 99.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_ratio_to(self):
        base = summarize([10.0, 20.0, 30.0])
        better = summarize([5.0, 10.0, 15.0])
        ratios = better.ratio_to(base)
        assert ratios["mean"] == pytest.approx(2.0)
        assert ratios["variance"] == pytest.approx(4.0)
        assert ratios["p99"] == pytest.approx(2.0)

    def test_repr_is_informative(self):
        s = summarize([1.0, 2.0])
        assert "mean" in repr(s)


class TestEdgeCaseHardening:
    """Empty-sample and NaN inputs must fail loudly, never propagate.

    A NaN latency fed to numpy percentile/variance silently poisons the
    result (or merely warns); every helper rejects it with a message
    naming the helper so figure drift is traceable to the bad sample.
    """

    NAN_SAMPLE = [1.0, float("nan"), 3.0]

    def test_lp_norm_rejects_nan(self):
        with pytest.raises(ValueError, match="lp_norm.*NaN"):
            lp_norm(self.NAN_SAMPLE, p=2.0)

    def test_summarize_rejects_nan(self):
        with pytest.raises(ValueError, match="summarize.*NaN"):
            summarize(self.NAN_SAMPLE)

    def test_covariance_rejects_nan(self):
        with pytest.raises(ValueError, match="covariance.*NaN"):
            covariance(self.NAN_SAMPLE, [1.0, 2.0, 3.0])
        with pytest.raises(ValueError, match="covariance.*NaN"):
            covariance([1.0, 2.0, 3.0], self.NAN_SAMPLE)

    def test_correlation_rejects_nan(self):
        with pytest.raises(ValueError, match="correlation.*NaN"):
            correlation(self.NAN_SAMPLE, [1.0, 2.0, 3.0])

    def test_covariance_rejects_empty(self):
        with pytest.raises(ValueError, match="covariance of empty"):
            covariance([], [])

    def test_correlation_rejects_empty(self):
        with pytest.raises(ValueError, match="correlation of empty"):
            correlation([], [])

    def test_correlation_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="mismatched"):
            correlation([1.0, 2.0], [1.0, 2.0, 3.0])

    def test_error_messages_count_nans(self):
        with pytest.raises(ValueError, match="1 of 3"):
            summarize(self.NAN_SAMPLE)

    def test_no_warnings_on_valid_input(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            summarize([1.0, 2.0, 3.0])
            correlation([1.0, 2.0], [2.0, 1.0])
            lp_norm([1.0], p=math.inf)
