"""The automatic source instrumenter (Section 3.1's rewrite step)."""

import textwrap

import pytest

from repro.core.annotations import TransactionContext, TransactionLog
from repro.core.callgraph import CallGraph
from repro.core.instrument import (
    IMPL_PREFIX,
    SourceInstrumenter,
    set_tracer,
)
from repro.core.tracing import Tracer
from repro.sim.kernel import Simulator


ENGINE_SOURCE = textwrap.dedent(
    """
    from repro.sim.kernel import Timeout


    def handle_query(ctx, amount):
        yield from parse(ctx)
        yield from execute(ctx, amount)
        return "done"


    def parse(ctx):
        yield Timeout(2.0)


    def execute(ctx, amount):
        yield Timeout(amount)


    def helper_without_ctx(value):
        return value * 2


    def not_in_graph(ctx):
        yield Timeout(1.0)
    """
)


@pytest.fixture
def callgraph():
    return CallGraph.from_dict(
        "handle_query", {"handle_query": ["parse", "execute"]}
    )


@pytest.fixture
def instrumented_module(callgraph):
    instrumenter = SourceInstrumenter(callgraph)
    return instrumenter, instrumenter.instrument_module_source(
        ENGINE_SOURCE, "toy_engine"
    )


def test_wraps_only_graph_generator_ctx_functions(instrumented_module):
    instrumenter, _module = instrumented_module
    assert set(instrumenter.instrumented_functions) == {
        "handle_query",
        "parse",
        "execute",
    }


def test_impl_aliases_created(instrumented_module):
    _instrumenter, module = instrumented_module
    assert hasattr(module, IMPL_PREFIX + "parse")
    assert hasattr(module, "parse")
    assert not hasattr(module, IMPL_PREFIX + "not_in_graph")


def test_runs_without_tracer_attached(instrumented_module):
    """Before a tracer is attached, the passthrough must be semantically
    transparent (zero overhead on behaviour)."""
    _instrumenter, module = instrumented_module
    sim = Simulator()
    ctx = TransactionContext(sim, 1, "t")
    out = {}

    def proc():
        out["result"] = yield from module.handle_query(ctx, 5.0)

    sim.spawn(proc())
    sim.run()
    assert out["result"] == "done"
    assert sim.now == 7.0
    assert ctx.durations == {}


def test_records_with_real_tracer(instrumented_module, callgraph):
    _instrumenter, module = instrumented_module
    sim = Simulator()
    tracer = Tracer(
        sim,
        callgraph,
        instrumented={"handle_query", "execute"},
        log=TransactionLog(),
    )
    set_tracer(module, tracer)
    ctx = TransactionContext(sim, 1, "t")

    def proc():
        tracer.begin_transaction(ctx)
        yield from module.handle_query(ctx, 5.0)
        tracer.end_transaction(ctx)

    sim.spawn(proc())
    sim.run()
    assert ctx.durations[("handle_query", "<root>")] == 7.0
    assert ctx.durations[("execute", "handle_query")] == 5.0
    # parse was rewritten but is not in the tracer's selected subset.
    assert ("parse", "handle_query") not in ctx.durations


def test_selective_subset_still_selective(instrumented_module, callgraph):
    """The rewrite wraps everything once; the *runtime* subset still
    controls which functions record — TProfiler's low-overhead property."""
    _instrumenter, module = instrumented_module
    sim = Simulator()
    tracer = Tracer(sim, callgraph, instrumented=set(), log=TransactionLog())
    set_tracer(module, tracer)
    ctx = TransactionContext(sim, 1, "t")

    def proc():
        yield from module.handle_query(ctx, 3.0)

    sim.spawn(proc())
    sim.run()
    assert ctx.durations == {}


def test_source_rewrite_is_idempotent(callgraph):
    instrumenter = SourceInstrumenter(callgraph)
    once = instrumenter.instrument_source(ENGINE_SOURCE)
    twice = SourceInstrumenter(callgraph).instrument_source(once)
    # Second pass finds the originals already renamed and wrapped: the
    # wrapper functions are generators with a ctx arg and graph names, so
    # they get wrapped again — guard: impl aliases are never re-wrapped.
    assert IMPL_PREFIX + IMPL_PREFIX not in twice


def test_non_generator_and_non_ctx_functions_untouched(callgraph):
    instrumenter = SourceInstrumenter(callgraph)
    transformed = instrumenter.instrument_source(ENGINE_SOURCE)
    assert "def helper_without_ctx(value):" in transformed
    assert "def not_in_graph(ctx):" in transformed
