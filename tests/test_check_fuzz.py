"""The chaos fuzzer: determinism, property runs, shrinking.

Three layers, cheapest first:

- Hypothesis over the *generator* alone (no simulation): ``make_case``
  is a pure function of the seed and every shrink candidate is strictly
  smaller and well-formed.
- Property runs: every engine crossed with {no faults, crashes,
  partition} must produce a violation-free history.
- The shrinker itself: plant a real corruption via
  ``repro.check._test_hooks``, fuzz, and require a deterministic
  minimal reproducer of at most 10 transactions — including across
  interpreter processes with different ``PYTHONHASHSEED``.

The 25-seed sweep at the bottom is the CI ``check-smoke`` budget; it is
marked ``fuzz_smoke`` and skipped in the default run (like
``perf_bench`` in benchmarks/).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.digest import run_digest
from repro.bench.runner import ExperimentConfig, run_experiment
from repro.check import _test_hooks
from repro.check.fuzz import (
    ENGINES,
    FuzzCase,
    _shrink_candidates,
    build_config,
    fuzz_many,
    fuzz_one,
    make_case,
    run_case,
    reproducer_source,
)
from repro.faults.plan import FaultPlan

from tests.util import assert_hash_seed_invariant


# ----------------------------------------------------------------------
# Generator properties (no simulation runs; keep hypothesis fast)
# ----------------------------------------------------------------------


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60, deadline=None)
def test_make_case_is_pure(seed):
    a = make_case(seed)
    b = make_case(seed)
    assert a == b
    assert a.astuple() == b.astuple()
    assert a.engine in ENGINES
    assert 1 <= a.num_shards <= 4
    assert a.engine != "voltdb" or a.num_shards == 1
    assert 30 <= a.n_txns <= 120
    assert a.fault_kind is not None and a.fault_kwargs
    assert 0 <= a.replicas <= 2
    assert a.engine != "voltdb" or a.replicas == 0
    if a.replicas:
        assert a.repl_kwargs["mode"] in ("sync", "semi_sync", "async")
        assert a.repl_kwargs["read_policy"] in ("primary", "replica_ok")
    else:
        assert a.repl_kwargs == {}
        assert a.fault_kind != "replica-lag"


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60, deadline=None)
def test_case_builds_valid_config(seed):
    config = build_config(make_case(seed))
    assert config.check is True
    assert isinstance(config.fault_plan, FaultPlan)


def _case_size(case):
    """A well-founded shrink order: every candidate must be < its parent.

    Node-crash plans add a crash-time dimension so the instant-halving
    candidates (same txn count, same kwargs keys) still strictly
    decrease; replication adds a complexity score (replica count, then
    mode/read-policy simplicity) so mode-collapsing candidates do too.
    """
    crash_total = sum(
        t for _target, t in case.fault_kwargs.get("node_crash_times", ())
    )
    repl_complexity = 0
    if case.replicas:
        repl_complexity = 10 * case.replicas
        if case.repl_kwargs.get("mode") != "sync":
            repl_complexity += 2
        if case.repl_kwargs.get("read_policy") == "replica_ok":
            repl_complexity += 1
    return (
        case.n_txns, case.num_shards, len(case.fault_kwargs),
        repl_complexity, crash_total,
    )


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60, deadline=None)
def test_shrink_candidates_strictly_smaller(seed):
    case = make_case(seed)
    size = _case_size(case)
    candidates = list(_shrink_candidates(case))
    assert candidates, "every fresh case must have somewhere to shrink"
    for candidate in candidates:
        assert isinstance(candidate, FuzzCase)
        assert candidate.n_txns >= 2
        assert _case_size(candidate) < size
        # Candidates must still build runnable configs.
        build_config(candidate)


def test_reproducer_source_is_executable_python():
    case = make_case(3)
    source = reproducer_source(case)
    assert source.startswith("def test_fuzz_reproducer_seed_3")
    compile(source, "<reproducer>", "exec")


# ----------------------------------------------------------------------
# Property runs: engines x fault regimes must check clean
# ----------------------------------------------------------------------


def _regime_plan(regime, num_shards):
    if regime == "none":
        return None
    if regime == "crashes":
        return FaultPlan(name="fuzz-crashes", crash_prob=0.01)
    if regime == "partition":
        # Inert on one shard (no network), by design.
        return FaultPlan(name="fuzz-partition",
                         partition_windows=((10_000.0, 40_000.0),))
    raise ValueError(regime)


@pytest.mark.parametrize("engine", ["mysql", "postgres", "voltdb"])
@pytest.mark.parametrize("regime", ["none", "crashes", "partition"])
def test_property_clean_history(engine, regime):
    num_shards = 2 if engine != "voltdb" and regime == "partition" else 1
    if num_shards > 1:
        workload_kwargs = {"warehouses": 8, "remote_payment_prob": 0.3}
        workload = "tpcc"
    else:
        workload = "ycsb"
        workload_kwargs = {"scale_factor": 1, "rows_per_sf": 16,
                           "read_fraction": 0.5}
    config = ExperimentConfig(
        engine=engine,
        workload=workload,
        workload_kwargs=workload_kwargs,
        n_txns=60,
        rate_tps=400.0,
        seed=11,
        num_shards=num_shards,
        fault_plan=_regime_plan(regime, num_shards),
        check=True,
    )
    result = run_experiment(config)
    assert result.check_report() == []
    assert sum(result.outcome_counts.values()) == 60


# ----------------------------------------------------------------------
# Shrinking: planted bug -> small deterministic reproducer
# ----------------------------------------------------------------------


def test_planted_bug_shrinks_to_small_reproducer():
    with _test_hooks.corrupted("lost_update"):
        first = fuzz_one(0)
        second = fuzz_one(0)
    assert first.failed
    assert first.shrunk.n_txns <= 10
    assert first.shrunk == second.shrunk
    assert first.reproducer == second.reproducer
    assert "def test_fuzz_reproducer_seed_0" in first.reproducer
    assert "_test_hooks.CORRUPTION = 'lost_update'" in first.reproducer
    compile(first.reproducer, "<reproducer>", "exec")


def test_shrunk_reproducer_still_fails():
    """The emitted pytest function must actually reproduce the bug."""
    with _test_hooks.corrupted("lost_update"):
        report = fuzz_one(0)
        namespace = {}
        exec(compile(report.reproducer, "<reproducer>", "exec"), namespace)
        test_fn = namespace["test_fuzz_reproducer_seed_0"]
        with pytest.raises(AssertionError):
            test_fn()
    # The reproducer sets the corruption knob itself; reset for safety.
    _test_hooks.CORRUPTION = None


def test_shrink_removes_faults_when_irrelevant():
    """lost_update is fault-independent, so the shrinker should strip
    the fault plan from the minimal case."""
    with _test_hooks.corrupted("lost_update"):
        report = fuzz_one(0)
    assert report.case.fault_kwargs
    assert report.shrunk.fault_kwargs == {}


def test_cross_process_hash_seed_fuzzer_determinism():
    """The minimal reproducer must be byte-identical across interpreters
    with different hash seeds (same discipline as test_determinism)."""
    code = (
        "import sys, json; sys.path[:0] = json.loads(sys.argv[1]); "
        "from repro.check import _test_hooks; "
        "from repro.check.fuzz import fuzz_one; "
        "_test_hooks.CORRUPTION = 'lost_update'; "
        "r = fuzz_one(0); "
        "print(json.dumps([r.shrunk.astuple(), r.reproducer]))"
    )
    output = assert_hash_seed_invariant(code)
    shrunk, reproducer = json.loads(output)
    assert "def test_fuzz_reproducer_seed_0" in reproducer


def test_fuzz_runs_do_not_leak_state():
    """A fuzz run must not perturb an unrelated run's digest (shared
    module state like the corruption knob must stay clean)."""
    config = ExperimentConfig(
        engine="mysql",
        workload="ycsb",
        workload_kwargs={"scale_factor": 1, "rows_per_sf": 16,
                         "read_fraction": 0.5},
        n_txns=40,
        rate_tps=400.0,
        seed=5,
    )
    before = run_digest(run_experiment(config))
    run_case(make_case(1))
    after = run_digest(run_experiment(config))
    assert before == after


def test_fuzz_many_matches_fuzz_one():
    """The batched sweep is the serial loop: same cases, same verdicts."""
    seeds = [0, 1, 2]
    reports = fuzz_many(seeds, shrink_on_failure=False)
    assert [r.seed for r in reports] == seeds
    for report in reports:
        lone = fuzz_one(report.seed, shrink_on_failure=False)
        assert report.case == lone.case
        assert [repr(v) for v in report.violations] == [
            repr(v) for v in lone.violations
        ]


# ----------------------------------------------------------------------
# CI smoke budget: 25 seeds, all engines, chaos on, zero violations
# ----------------------------------------------------------------------


@pytest.mark.fuzz_smoke
def test_fuzz_smoke_25_seeds():
    # The seed sweep routes through the execution layer (fuzz_many);
    # per-report equivalence to fuzz_one is pinned in
    # test_fuzz_many_matches_fuzz_one below.
    engines = set()
    shard_counts = set()
    for report in fuzz_many(range(25), shrink_on_failure=False):
        assert not report.failed, (
            "seed %d: %r" % (report.seed, report.violations[:5])
        )
        engines.add(report.case.engine)
        shard_counts.add(report.case.num_shards)
    assert engines == {"mysql", "postgres", "voltdb"}
    assert shard_counts == {1, 2, 3, 4}


@pytest.mark.fuzz_smoke
def test_fuzz_smoke_replication_100_seeds():
    """Every replicated case in the first 100 seeds must check clean —
    including the replication oracle family — and the sweep must cover
    all three modes, both read policies and the replica-lag fault."""
    from repro.check.oracles import check_replication

    modes = set()
    policies = set()
    fault_kinds = set()
    replicated = 0
    for seed in range(100):
        case = make_case(seed)
        if not case.replicas:
            continue
        replicated += 1
        violations, result = run_case(case)
        assert violations == [], "seed %d: %r" % (seed, violations[:5])
        assert check_replication(result.history) == []
        assert sum(result.outcome_counts.values()) == case.n_txns
        modes.add(case.repl_kwargs["mode"])
        policies.add(case.repl_kwargs["read_policy"])
        fault_kinds.add(case.fault_kind)
    assert replicated >= 20, "seed mix lost its replicated coverage"
    assert modes == {"sync", "semi_sync", "async"}
    assert policies == {"primary", "replica_ok"}
    assert "replica-lag" in fault_kinds
