"""Empirical checks of Theorem 1 and its assumptions.

The theorem: with i.i.d. remaining times, granting the lock to the
*eldest* waiter minimises the expected Lp norm of completion times, for
every p >= 1, against any scheduler — even one that knows the remaining-
time distribution.  We verify the claim on a direct single-queue model
(ages assigned, i.i.d. service draws, schedulers permute the grant
order), which isolates exactly the object of the proof.
"""

import itertools
import random

import pytest

from repro.sim.stats import correlation, lp_norm


def schedule_completion_times(ages, services, order):
    """Completion latency (age + queue wait + own service) per txn when
    served in ``order`` on one lock."""
    latencies = {}
    clock = 0.0
    for idx in order:
        clock += services[idx]
        latencies[idx] = ages[idx] + clock
    return [latencies[i] for i in range(len(ages))]


def eldest_first(ages):
    return sorted(range(len(ages)), key=lambda i: -ages[i])


@pytest.mark.parametrize("p", [1.0, 2.0, 4.0])
def test_eldest_first_optimal_over_all_permutations(p):
    """Exhaustive check on small menus: no grant order beats eldest-first
    in expected Lp norm when services are i.i.d. (expectation taken over
    service draws by symmetry: we average over random draws)."""
    rng = random.Random(0)
    n = 4
    ages = [rng.uniform(0.0, 100.0) for _ in range(n)]
    orders = list(itertools.permutations(range(n)))
    expected = {order: 0.0 for order in orders}
    draws = 300
    for _ in range(draws):
        services = [rng.expovariate(1.0 / 10.0) for _ in range(n)]
        for order in orders:
            # i.i.d.: the service assigned to the k-th *position* must not
            # depend on which txn sits there — draw per position.
            latencies = schedule_completion_times(
                ages, dict(zip(order, services)), order
            )
            expected[order] += lp_norm(latencies, p=p) / draws
    best = min(expected, key=expected.get)
    eldest = tuple(eldest_first(ages))
    assert expected[eldest] <= expected[best] * (1.0 + 1e-9)


@pytest.mark.parametrize("p", [1.0, 2.0, 3.0])
def test_single_transposition_toward_eldest_improves(p):
    """The proof's inductive step: swapping a younger-first pair into
    eldest-first order never increases the Lp norm, for any service
    realisation (the rearrangement-inequality argument)."""
    rng = random.Random(1)
    for _ in range(200):
        age_young = rng.uniform(0.0, 50.0)
        age_old = age_young + rng.uniform(0.1, 50.0)
        s1 = rng.expovariate(1.0 / 10.0)
        s2 = rng.expovariate(1.0 / 10.0)
        # Young first: young gets s1 then old gets s1+s2 on top of age.
        young_first = [age_young + s1, age_old + s1 + s2]
        # Old first under the coupling: positions keep their services.
        old_first = [age_old + s1, age_young + s1 + s2]
        assert lp_norm(old_first, p=p) <= lp_norm(young_first, p=p) + 1e-9


def test_eldest_first_beats_random_on_average():
    rng = random.Random(2)
    n = 6
    total_eldest = total_random = 0.0
    for _ in range(300):
        ages = [rng.uniform(0.0, 100.0) for _ in range(n)]
        services = [rng.expovariate(1.0 / 10.0) for _ in range(n)]
        eldest = eldest_first(ages)
        shuffled = list(range(n))
        rng.shuffle(shuffled)
        total_eldest += lp_norm(
            schedule_completion_times(ages, dict(zip(eldest, services)), eldest), 2.0
        )
        total_random += lp_norm(
            schedule_completion_times(ages, dict(zip(shuffled, services)), shuffled),
            2.0,
        )
    assert total_eldest < total_random


def test_optimality_holds_for_adversarial_age_menus():
    """Theorem 1 holds 'even if the menu ... [is] chosen adversarially':
    try extreme menus, eldest-first still wins."""
    menus = [
        [0.0, 0.0, 1000.0],
        [1.0, 2.0, 3.0],
        [100.0, 0.0, 100.0],
        [5.0, 5.0, 5.0],
    ]
    rng = random.Random(3)
    for ages in menus:
        n = len(ages)
        orders = list(itertools.permutations(range(n)))
        expected = {order: 0.0 for order in orders}
        for _ in range(400):
            services = [rng.expovariate(1.0 / 7.0) for _ in range(n)]
            for order in orders:
                latencies = schedule_completion_times(
                    ages, dict(zip(order, services)), order
                )
                expected[order] += lp_norm(latencies, 2.0)
        eldest = tuple(eldest_first(ages))
        best_value = min(expected.values())
        assert expected[eldest] <= best_value * 1.001


def test_age_remaining_time_correlation_near_zero_in_engine():
    """Appendix C.2: a transaction's age barely predicts its remaining
    time at scheduling points, supporting the i.i.d. assumption."""
    from repro.bench.runner import ExperimentConfig, run_experiment
    from repro.engines.mysql import MySQLConfig

    config = ExperimentConfig(
        engine="mysql",
        workload="tpcc",
        workload_kwargs={"warehouses": 2, "warehouse_zipf_theta": None},
        engine_config=MySQLConfig(),
        seed=13,
        n_txns=800,
        rate_tps=500.0,
        warmup_fraction=0.1,
    )
    result = run_experiment(config)
    end_by_ctx = {}
    for trace in result.log.traces:
        if trace.committed:
            end_by_ctx[trace.txn_id] = trace.end
    ages, remainings = [], []
    for ctx, grant_time in result.engine.lockmgr.grant_log:
        end = end_by_ctx.get(ctx.txn_id)
        if end is None or end <= grant_time:
            continue
        ages.append(grant_time - ctx.birth)
        remainings.append(end - grant_time)
    assert len(ages) >= 20  # enough scheduling decisions to correlate
    rho = correlation(ages, remainings)
    assert abs(rho) < 0.4
