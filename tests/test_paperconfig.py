"""The calibrated paper configurations are internally consistent."""

import pytest

from repro.bench import paperconfig as pc
from repro.wal.mysql_log import FlushPolicy


def test_seeds_are_distinct():
    assert len(set(pc.SEEDS)) == len(pc.SEEDS)


def test_contended_tpcc_has_skew():
    kwargs = pc.tpcc_contended_kwargs()
    assert kwargs["warehouses"] == 128
    assert kwargs["warehouse_zipf_theta"] is not None
    assert kwargs["item_zipf_theta"] is not None


def test_mysql_128wh_experiment_shape():
    config = pc.mysql_128wh_experiment("VATS", seed=21, n_txns=100)
    assert config.engine == "mysql"
    assert config.seed == 21
    assert config.n_txns == 100
    assert config.engine_config.scheduler == "VATS"
    assert config.rate_tps == pc.RATE_TPS


def test_mysql_2wh_runs_reduced_scale():
    config = pc.mysql_2wh_experiment()
    assert config.workload_kwargs["warehouses"] == 2
    assert config.rate_tps == pc.RATE_TPS_2WH
    assert config.engine_config.buffer_pool_fraction < 0.2
    assert config.engine_config.n_cores < 16


def test_2wh_lazy_lru_toggle():
    assert pc.mysql_2wh_experiment(lazy_lru=True).engine_config.lazy_lru
    assert not pc.mysql_2wh_experiment(lazy_lru=False).engine_config.lazy_lru


def test_workload_kwargs_cover_all_five():
    for workload in ("tpcc", "seats", "tatp", "epinions", "ycsb"):
        kwargs = pc.workload_kwargs_for(workload)
        assert isinstance(kwargs, dict)
    with pytest.raises(ValueError):
        pc.workload_kwargs_for("mystery")


def test_postgres_experiment_uniform_workload():
    config = pc.postgres_experiment()
    assert config.workload_kwargs["warehouse_zipf_theta"] is None
    assert config.engine_config.parallel_wal is False
    assert pc.postgres_experiment(parallel_wal=True).engine_config.parallel_wal


def test_voltdb_experiment_worker_override():
    assert pc.voltdb_experiment(n_workers=24).engine_config.n_workers == 24


def test_flush_policy_experiments():
    for name, policy in (
        ("eager", FlushPolicy.EAGER_FLUSH),
        ("lazy_flush", FlushPolicy.LAZY_FLUSH),
        ("lazy_write", FlushPolicy.LAZY_WRITE),
    ):
        config = pc.flush_policy_experiment(name)
        assert config.engine_config.flush_policy is policy


def test_disk_calibrations_are_ordered():
    """The three calibrated devices have the intended speed ordering."""
    spinning = pc.spinning_log_disk()
    pg = pc.pg_wal_disk()
    assert spinning.flush_base_mean > pg.flush_base_mean
    data = pc.twowh_data_disk()
    assert data.read_base_mean < data.write_base_mean
