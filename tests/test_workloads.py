"""Workload generators: mixes, schemas, contention structure."""

import random

import pytest

from repro.workloads import WORKLOADS, make_workload
from repro.workloads.base import Operation, TxnSpec, Workload
from repro.workloads.tpcc import TPCC


@pytest.fixture
def rng():
    return random.Random(99)


class TestOperation:
    def test_update_defaults_to_x_lock(self):
        op = Operation("update", "t", 1)
        assert op.lock == "X"

    def test_plain_select_takes_no_lock(self):
        op = Operation("select", "t", 1)
        assert op.lock is None

    def test_locking_select(self):
        assert Operation("select", "t", 1, lock="X").lock == "X"
        assert Operation("select", "t", 1, lock="S").lock == "S"

    def test_invalid_kind_and_lock(self):
        with pytest.raises(ValueError):
            Operation("delete", "t", 1)
        with pytest.raises(ValueError):
            Operation("select", "t", 1, lock="Z")


@pytest.mark.parametrize("name", sorted(WORKLOADS))
class TestEveryWorkload:
    def test_operations_reference_schema_tables(self, name, rng):
        workload = make_workload(name)
        for _ in range(200):
            spec = workload.make_txn(rng)
            assert len(spec.ops) >= 1
            for op in spec.ops:
                assert op.table in workload.schema

    def test_mix_frequencies_match_weights(self, name, rng):
        workload = make_workload(name)
        total = sum(w for _t, w, _m in workload.mix)
        counts = {}
        n = 4000
        for _ in range(n):
            spec = workload.make_txn(rng)
            counts[spec.txn_type] = counts.get(spec.txn_type, 0) + 1
        for txn_type, weight, _maker in workload.mix:
            expected = weight / total
            observed = counts.get(txn_type, 0) / n
            assert observed == pytest.approx(expected, abs=0.03)

    def test_deterministic_for_same_rng_seed(self, name):
        def sample(seed):
            workload = make_workload(name)
            rng = random.Random(seed)
            return [
                (s.txn_type, [(o.kind, o.table, o.key) for o in s.ops])
                for s in (workload.make_txn(rng) for _ in range(50))
            ]

        assert sample(5) == sample(5)

    def test_insert_keys_are_fresh(self, name, rng):
        workload = make_workload(name)
        seen = set()
        for _ in range(500):
            for op in workload.make_txn(rng).ops:
                if op.kind == "insert":
                    key = (op.table, op.key)
                    assert key not in seen
                    seen.add(key)


class TestTPCC:
    def test_standard_mix_weights(self):
        tpcc = TPCC()
        weights = {t: w for t, w, _m in tpcc.mix}
        assert weights["NewOrder"] == 45
        assert weights["Payment"] == 43
        assert weights["OrderStatus"] == weights["Delivery"] == weights["StockLevel"] == 4

    def test_new_order_line_count_range(self, rng):
        tpcc = TPCC(warehouses=4)
        for _ in range(100):
            spec = tpcc.make_txn(rng)
            if spec.txn_type != "NewOrder":
                continue
            stock_locks = [
                op
                for op in spec.ops
                if op.table == "stock" and op.kind == "select" and op.lock == "X"
            ]
            assert 5 <= len(stock_locks) <= 15

    def test_fixed_order_lines(self, rng):
        tpcc = TPCC(warehouses=4, fixed_order_lines=10)
        for _ in range(50):
            spec = tpcc.make_txn(rng)
            if spec.txn_type == "NewOrder":
                stock_locks = [
                    op
                    for op in spec.ops
                    if op.table == "stock" and op.kind == "select" and op.lock == "X"
                ]
                assert len(stock_locks) == 10

    def test_new_order_locks_district_via_select(self, rng):
        """The os_event_wait [A] call site: X lock from a select."""
        tpcc = TPCC(warehouses=4)
        for _ in range(100):
            spec = tpcc.make_txn(rng)
            if spec.txn_type == "NewOrder":
                first_district = next(o for o in spec.ops if o.table == "district")
                assert first_district.kind == "select"
                assert first_district.lock == "X"
                break

    def test_new_order_conflicts_with_delivery_on_new_order_counter(self, rng):
        tpcc = TPCC(warehouses=1, warehouse_zipf_theta=None)
        counters_locked = set()
        for _ in range(300):
            spec = tpcc.make_txn(rng)
            for op in spec.ops:
                if op.table == "new_order" and op.kind == "update":
                    counters_locked.add((spec.txn_type, op.key))
        types = {t for t, _k in counters_locked}
        assert "NewOrder" in types and "Delivery" in types

    def test_warehouse_skew_concentrates_traffic(self, rng):
        skewed = TPCC(warehouses=64, warehouse_zipf_theta=0.99)
        uniform = TPCC(warehouses=64, warehouse_zipf_theta=None)

        def hottest_share(workload):
            counts = {}
            sampler = random.Random(5)
            for _ in range(3000):
                w = workload._warehouse(sampler)
                counts[w] = counts.get(w, 0) + 1
            return max(counts.values()) / 3000

        assert hottest_share(skewed) > 2 * hottest_share(uniform)

    def test_zero_warehouses_rejected(self):
        with pytest.raises(ValueError):
            TPCC(warehouses=0)


class TestWorkloadBase:
    def test_finalize_required(self, rng):
        class Broken(Workload):
            def __init__(self):
                super().__init__()
                self.mix = [("only", 1, lambda r: [Operation("select", "t", 0)])]
                self.schema = {"t": 10}
                # forgot to call finalize()

        with pytest.raises(RuntimeError):
            Broken().make_txn(rng)

    def test_fresh_keys_monotone(self):
        workload = TPCC(warehouses=1)
        k1 = workload.fresh_key("orders")
        k2 = workload.fresh_key("orders")
        assert k2 == k1 + 1
        assert k1 >= workload.schema["orders"]

    def test_unknown_workload_name(self):
        with pytest.raises(ValueError):
            make_workload("oracle")


class TestContentionProfiles:
    def test_ycsb_essentially_conflict_free(self, rng):
        """Table 4's no-contention rows: repeated sampling rarely
        collides on the same key."""
        ycsb = make_workload("ycsb")
        keys = []
        for _ in range(300):
            for op in ycsb.make_txn(rng).ops:
                if op.lock == "X":
                    keys.append((op.table, op.key))
        assert len(set(keys)) >= 0.99 * len(keys)

    def test_seats_concentrates_on_hot_flights(self, rng):
        seats = make_workload("seats")
        flights = []
        for _ in range(500):
            for op in seats.make_txn(rng).ops:
                if op.table == "flight" and op.lock == "X":
                    flights.append(op.key)
        hottest = max(flights.count(f) for f in set(flights))
        assert hottest > len(flights) * 0.05

    def test_tatp_read_dominated(self, rng):
        tatp = make_workload("tatp")
        reads = writes = 0
        for _ in range(500):
            for op in tatp.make_txn(rng).ops:
                if op.kind == "select" and op.lock is None:
                    reads += 1
                else:
                    writes += 1
        assert reads > 2 * writes
