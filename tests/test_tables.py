"""Table catalog: lock ids, redo sizing, page footprints."""

import pytest

from repro.storage.tables import Table, TableCatalog


def test_lock_id_uses_key_verbatim():
    table = Table("orders", 100)
    assert table.lock_id(5) == ("orders", 5)
    # Fresh insert keys beyond n_rows get their own lock objects.
    assert table.lock_id(100_000) == ("orders", 100_000)


def test_redo_bytes_by_kind():
    table = Table("t", 10, row_bytes=200)
    assert table.redo_bytes("insert") > table.redo_bytes("update") > 0
    assert table.redo_bytes("select") == 0


def test_catalog_from_schema():
    catalog = TableCatalog.from_schema({"a": 100, "b": 200})
    assert len(catalog) == 2
    assert catalog["a"].n_rows == 100
    assert "b" in catalog
    assert "c" not in catalog


def test_catalog_rejects_duplicates():
    catalog = TableCatalog()
    catalog.add(Table("t", 10))
    with pytest.raises(KeyError):
        catalog.add(Table("t", 10))


def test_total_pages_sums_tables():
    catalog = TableCatalog.from_schema({"a": 10_000, "b": 20_000})
    assert catalog.total_pages == (
        catalog["a"].index.total_pages + catalog["b"].index.total_pages
    )


def test_iter_pages_covers_catalog():
    catalog = TableCatalog.from_schema({"a": 5_000, "b": 7_000})
    pages = list(catalog.iter_pages())
    assert len(pages) == catalog.total_pages
    assert len(set(pages)) == len(pages)


def test_minimum_one_row():
    table = Table("empty", 0)
    assert table.n_rows == 1
