"""Shared fixtures: small deterministic stacks for fast tests."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.rand import Streams


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def streams():
    return Streams(1234)


@pytest.fixture
def rng(streams):
    return streams.stream("test")


def run_to_completion(sim, *gens):
    """Spawn every generator and run the simulator dry."""
    procs = [sim.spawn(g) for g in gens]
    sim.run()
    return procs
