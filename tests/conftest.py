"""Shared fixtures: small deterministic stacks for fast tests."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.rand import Streams


def pytest_collection_modifyitems(config, items):
    # The 25-seed fuzz sweep is the CI check-smoke budget, not part of
    # the default suite; run it explicitly with ``-m fuzz_smoke`` (same
    # pattern as perf_bench in benchmarks/conftest.py).
    if config.getoption("-m"):
        return
    skip = pytest.mark.skip(reason="fuzz sweep; run with -m fuzz_smoke")
    for item in items:
        if "fuzz_smoke" in item.keywords:
            item.add_marker(skip)


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def streams():
    return Streams(1234)


@pytest.fixture
def rng(streams):
    return streams.stream("test")


def run_to_completion(sim, *gens):
    """Spawn every generator and run the simulator dry."""
    procs = [sim.spawn(g) for g in gens]
    sim.run()
    return procs
