"""B-tree cost model: depth, page mapping, insert paths."""

import random

import pytest

from repro.storage.btree import BTreeIndex, InsertOutcome


def test_depth_grows_with_keys():
    small = BTreeIndex("t", 1000, fanout=10, keys_per_leaf=10)
    large = BTreeIndex("t", 1_000_000, fanout=10, keys_per_leaf=10)
    assert large.depth > small.depth


def test_single_leaf_has_zero_depth():
    tiny = BTreeIndex("t", 10, keys_per_leaf=64)
    assert tiny.depth == 0
    assert tiny.n_leaves == 1


def test_leaf_page_stable_and_partitioned():
    index = BTreeIndex("t", 10_000, keys_per_leaf=100)
    assert index.leaf_page(5) == index.leaf_page(5)
    assert index.leaf_page(0) == index.leaf_page(99)
    assert index.leaf_page(0) != index.leaf_page(100)


def test_interior_pages_count_matches_depth():
    index = BTreeIndex("t", 1_000_000, fanout=100, keys_per_leaf=100)
    assert len(index.interior_pages(123)) == index.depth


def test_interior_pages_shared_by_nearby_keys():
    index = BTreeIndex("t", 1_000_000, fanout=100, keys_per_leaf=100)
    assert index.interior_pages(0) == index.interior_pages(50)


def test_total_pages_consistent_with_iter_pages():
    index = BTreeIndex("t", 123_456, fanout=50, keys_per_leaf=64)
    pages = list(index.iter_pages())
    assert len(pages) == index.total_pages
    assert len(set(pages)) == len(pages)


def test_search_pages_are_subset_of_iter_pages():
    index = BTreeIndex("t", 50_000, fanout=30, keys_per_leaf=64)
    all_pages = set(index.iter_pages())
    for key in (0, 1, 777, 49_999):
        for page in index.interior_pages(key):
            assert page in all_pages
        assert index.leaf_page(key) in all_pages


def test_insert_outcome_distribution():
    index = BTreeIndex(
        "t", 1000, split_probability=0.1, reorg_probability=0.05
    )
    rng = random.Random(7)
    outcomes = []

    def drain(gen):
        try:
            while True:
                next(gen)
        except StopIteration as stop:
            return stop.value

    for _ in range(5000):
        outcomes.append(drain(index.insert_body(rng)))
    fraction = lambda o: outcomes.count(o) / len(outcomes)
    assert fraction(InsertOutcome.TREE_REORG) == pytest.approx(0.05, abs=0.02)
    assert fraction(InsertOutcome.PAGE_SPLIT) == pytest.approx(0.1, abs=0.03)
    assert fraction(InsertOutcome.IN_PAGE) == pytest.approx(0.85, abs=0.03)


def test_insert_body_cost_ordering(sim):
    """Splits cost more than plain inserts; reorgs cost most — the
    inherent variance of row_ins_clust_index_entry_low."""
    index = BTreeIndex("t", 1000)
    durations = {}

    class FixedRng:
        def __init__(self, draw):
            self._draw = draw

        def random(self):
            return self._draw

    from repro.sim.kernel import Timeout

    def timed(tag, rng):
        start = sim.now
        yield from index.insert_body(rng)
        durations[tag] = sim.now - start

    sim.spawn(timed("reorg", FixedRng(0.0)))
    sim.run()
    sim.spawn(timed("split", FixedRng(index.reorg_probability + 1e-9)))
    sim.run()
    sim.spawn(timed("plain", FixedRng(0.99)))
    sim.run()
    assert durations["reorg"] > durations["split"] > durations["plain"]


def test_invalid_key_count():
    with pytest.raises(ValueError):
        BTreeIndex("t", 0)
