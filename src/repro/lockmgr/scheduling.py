"""Lock scheduling algorithms (Section 5).

A scheduler imposes an order on a lock object's wait queue; the manager's
grant pass walks the queue in that order and grants every request that
does not conflict with any lock in front of it (granted or still
waiting), which is exactly the paper's implemented variant of VATS
("grants as many locks as possible if a lock does not conflict with any
of the locks in front of it in the queue ... preserved in an eldest-first
order").

- :class:`FCFSScheduler` — First-Come-First-Served on *queue arrival*
  time: the default in MySQL and Postgres, and the baseline the paper
  identifies as a dominant variance source.
- :class:`VATSScheduler` — Variance-Aware Transaction Scheduling: order by
  transaction *age* (time since birth), eldest first.  Theorem 1 shows
  this minimizes the expected Lp norm of latencies for every p >= 1 when
  remaining times are i.i.d.
- :class:`RandomScheduler` — RS: a random order (each request draws a
  random priority at enqueue time), the control showing that even
  randomness can beat FCFS on contended workloads.

VATS's arrival policy in the theorem is "never grant while others hold
the lock" (``grants_on_arrival = False`` strictly); the shipped MySQL
implementation does grant compatible arrivals.  Both are available via
``strict_arrival`` and compared in the ablation bench.
"""


class Scheduler:
    """Queue discipline: smaller :meth:`sort_key` means nearer the front."""

    name = "abstract"

    #: If False, a request arriving while any lock is held always waits,
    #: even if compatible (the strict S_a of Theorem 1).
    grants_on_arrival = True

    #: The paper's VATS implementation also places newly-granted locks at
    #: the head of MySQL's hash-bucket lock list, shortening bucket scans
    #: ("the time for traversing the list is reduced", Section 7.2); the
    #: lock manager uses this flag when charging bookkeeping costs.
    head_placement = False

    def sort_key(self, request):
        raise NotImplementedError

    def on_enqueue(self, request):
        """Hook for per-request state (RS draws its priority here)."""

    def __repr__(self):
        return "<%s>" % type(self).__name__


class FCFSScheduler(Scheduler):
    """First-Come-First-Served on arrival in *this* queue."""

    name = "FCFS"

    def sort_key(self, request):
        return (request.seq,)


class VATSScheduler(Scheduler):
    """Eldest transaction first (largest age = smallest birth time)."""

    name = "VATS"
    head_placement = True

    def __init__(self, strict_arrival=False):
        self.grants_on_arrival = not strict_arrival

    def sort_key(self, request):
        return (request.txn.birth, request.seq)


class RandomScheduler(Scheduler):
    """Random order: each request draws a priority at enqueue time."""

    name = "RS"

    def __init__(self, rng):
        self.rng = rng

    def on_enqueue(self, request):
        request.priority = self.rng.random()

    def sort_key(self, request):
        return (request.priority, request.seq)


class CATSScheduler(Scheduler):
    """Contention-Aware Transaction Scheduling (the authors' follow-up).

    Orders waiters by how many *other* transactions they are currently
    blocking (their held-lock footprint as a cheap proxy), eldest-first
    as the tiebreak.  Granting the most-blocking transaction first frees
    the most downstream work.  Included as the paper's future-work
    extension; compared against VATS in the ablation benches.

    The footprint is supplied by the lock manager through
    :meth:`bind_manager`; without a manager it degrades to VATS.
    """

    name = "CATS"
    head_placement = True

    def __init__(self):
        self._manager = None

    def bind_manager(self, manager):
        self._manager = manager

    def sort_key(self, request):
        weight = 0
        if self._manager is not None:
            weight = len(self._manager.held_locks(request.txn))
        # More held locks first (negated), then eldest.
        return (-weight, request.txn.birth, request.seq)


def make_scheduler(name, rng=None, strict_arrival=False):
    """Factory used by experiment configs: 'FCFS' | 'VATS' | 'RS' | 'CATS'."""
    key = name.upper()
    if key == "FCFS":
        return FCFSScheduler()
    if key == "VATS":
        return VATSScheduler(strict_arrival=strict_arrival)
    if key == "RS":
        if rng is None:
            raise ValueError("RandomScheduler needs an rng")
        return RandomScheduler(rng)
    if key == "CATS":
        return CATSScheduler()
    raise ValueError("unknown scheduler %r" % (name,))
