"""Lock modes and compatibility.

Record locks in the simulated engines are shared (S) or exclusive (X),
the two modes the paper's scheduling discussion uses ("the transaction
scheduler might choose one of the exclusive requests, or choose one or
more of the inclusive ones").  The matrix is the classic one: S is
compatible with S; X conflicts with everything.
"""

import enum


class LockMode(enum.Enum):
    """Shared (inclusive) or exclusive lock mode."""

    S = "S"
    X = "X"

    def __repr__(self):
        return "LockMode.%s" % self.value


_COMPAT = {
    (LockMode.S, LockMode.S): True,
    (LockMode.S, LockMode.X): False,
    (LockMode.X, LockMode.S): False,
    (LockMode.X, LockMode.X): False,
}


def compatible(held, requested):
    """True if a lock in ``requested`` mode can coexist with ``held``."""
    return _COMPAT[(held, requested)]


def stronger_or_equal(held, requested):
    """True if holding ``held`` already satisfies a ``requested`` lock."""
    return held is LockMode.X or requested is LockMode.S
