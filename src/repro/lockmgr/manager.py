"""The 2PL lock manager.

Lifecycle of a lock request::

    request = manager.request(ctx, obj_id, mode)
    if request.status is RequestStatus.WAITING:
        result = yield from manager.wait(request)   # engine wraps this in
                                                    # its traced wait fns
    ...
    manager.release_all(ctx)                        # at commit/abort

The split between :meth:`LockManager.request` (instantaneous decision)
and :meth:`LockManager.wait` (the suspension) exists so engines can wrap
the wait in their own traced functions — MySQL's
``lock_wait_suspend_thread`` / ``os_event_wait``, which is how TProfiler
sees lock-wait variance where the paper saw it.

Grant discipline: on every release/cancel, the grant pass walks the wait
queue in the scheduler's order and grants each request that does not
conflict with any lock in front of it — granted locks *and* earlier
waiters — which both prevents starvation (an X waiter blocks later S
arrivals) and implements the paper's VATS granting rule.

Deadlocks are detected at block time by a cycle search over the waits-for
graph; the requesting transaction is the victim (status DEADLOCK) and the
engine aborts and retries it.  A lock-wait timeout (MySQL's
``innodb_lock_wait_timeout``) backstops anything the search misses.
"""

import enum

from repro.lockmgr.locks import LockMode, compatible, stronger_or_equal
from repro.sim.kernel import WaitEvent
from repro.sim.resources import Mutex


class RequestStatus(enum.Enum):
    GRANTED = "granted"
    WAITING = "waiting"
    DEADLOCK = "deadlock"
    TIMEOUT = "timeout"
    CANCELLED = "cancelled"


class LockRequest:
    """One transaction's (possibly waiting) lock on one object."""

    __slots__ = (
        "txn",
        "obj_id",
        "mode",
        "seq",
        "status",
        "event",
        "priority",
        "enqueued_at",
        "granted_at",
        "upgrade",
    )

    def __init__(self, txn, obj_id, mode, seq, now):
        self.txn = txn
        self.obj_id = obj_id
        self.mode = mode
        self.seq = seq
        self.status = RequestStatus.WAITING
        self.event = None
        self.priority = 0.0
        self.enqueued_at = now
        self.granted_at = None
        self.upgrade = False

    def __repr__(self):
        return "<LockRequest %s %s on %r (%s)>" % (
            self.txn.txn_id,
            self.mode.value,
            self.obj_id,
            self.status.value,
        )


class _LockObject:
    """Lock table entry: granted set + wait queue for one object."""

    __slots__ = ("granted", "waiting")

    def __init__(self):
        self.granted = []
        self.waiting = []

    @property
    def empty(self):
        return not self.granted and not self.waiting


class LockManager:
    """Record lock manager with a pluggable queue discipline.

    ``bookkeeping=True`` models InnoDB's lock_sys: every lock operation
    scans the hash-bucket list of lock structs while holding one global
    mutex, so the cost of each operation grows with queue length and all
    operations serialize.  The paper's VATS implementation places
    newly-granted locks at the head of the list ("the time for traversing
    the list is reduced"), which we model as a shorter effective scan
    (``head_scan_fraction``).  This is the superlinear feedback that
    makes deep FCFS queues so much more expensive than their pure
    queueing delay: deep queues -> long scans under a global mutex ->
    every lock operation slows -> queues deepen.
    """

    def __init__(
        self,
        sim,
        scheduler,
        wait_timeout=10_000_000.0,
        bookkeeping=False,
        bookkeeping_base=0.8,
        bookkeeping_per_entry=0.25,
        head_scan_fraction=0.3,
        release_rng=None,
    ):
        self.sim = sim
        self.scheduler = scheduler
        # When set (a seeded random.Random), the 2PL shrink releases a
        # transaction's locks in random order, modelling the effectively
        # arbitrary order real servers wake waiters across objects (lock
        # hash-bucket order, OS scheduling).  Seeded, so runs stay a pure
        # function of (config, seed); None falls back to acquisition order.
        self._release_rng = release_rng
        bind = getattr(scheduler, "bind_manager", None)
        if bind is not None:
            bind(self)
        self.wait_timeout = wait_timeout
        self.bookkeeping = bookkeeping
        self.bookkeeping_base = bookkeeping_base
        self.bookkeeping_per_entry = bookkeeping_per_entry
        self.head_scan_fraction = head_scan_fraction
        self.lock_sys_mutex = Mutex(sim, name="lock_sys") if bookkeeping else None
        self._check = sim.check
        self._objects = {}
        self._held = {}
        self._waiting_request = {}
        self._seq = 0
        # Accounting for the variance studies.
        self.total_requests = 0
        self.immediate_grants = 0
        self.total_waits = 0
        self.total_wait_time = 0.0
        self.deadlocks = 0
        self.timeouts = 0
        self.bookkeeping_time = 0.0
        # (txn, grant_time) for every grant that followed a wait — the
        # scheduling decisions behind the Appendix C.2 age-vs-remaining
        # correlation study (Figure 8).
        self.grant_log = []
        # Telemetry instruments (no-ops when the run carries none).  The
        # wait-time histogram is keyed by queue discipline so scheduler
        # comparisons can assert against the distribution directly.
        tm = sim.telemetry
        self._tm = tm
        self._t_requests = tm.counter("lockmgr.requests")
        self._t_immediate = tm.counter("lockmgr.immediate_grants")
        # The two hottest counters shadow the plain accounting attributes
        # above one-for-one, so instead of paying a Counter.inc on every
        # request they are folded in bulk when the registry flushes
        # (always before a snapshot) — same final values, no per-request
        # method calls.
        self._flushed_requests = 0
        self._flushed_immediate = 0
        tm.add_flush_hook(self._flush_counters)
        self._t_waits = tm.counter("lockmgr.waits")
        self._t_grants_after_wait = tm.counter("lockmgr.grants_after_wait")
        self._t_deadlocks = tm.counter("lockmgr.deadlocks")
        self._t_timeouts = tm.counter("lockmgr.timeouts")
        self._t_wait_hist = tm.histogram("lockmgr.wait_time.%s" % scheduler.name)
        self._t_queue_depth = tm.gauge("lockmgr.wait_queue_depth")

    # ------------------------------------------------------------------
    # Request / wait / release API
    # ------------------------------------------------------------------

    def _flush_counters(self):
        """Fold the deferred request/grant totals into their counters."""
        delta = self.total_requests - self._flushed_requests
        if delta:
            self._t_requests.inc(delta)
            self._flushed_requests = self.total_requests
        delta = self.immediate_grants - self._flushed_immediate
        if delta:
            self._t_immediate.inc(delta)
            self._flushed_immediate = self.immediate_grants

    def request(self, ctx, obj_id, mode):
        """Instantaneous lock decision; never blocks.

        Returns a :class:`LockRequest` whose status is GRANTED, WAITING,
        or DEADLOCK (granting it would close a waits-for cycle).
        """
        self.total_requests += 1
        held = self._held.get(ctx)
        if held is None:
            held = self._held[ctx] = {}
        current = held.get(obj_id)
        if current is not None and stronger_or_equal(current, mode):
            self.immediate_grants += 1
            return self._already_granted(ctx, obj_id, current)

        self._seq += 1
        request = LockRequest(ctx, obj_id, mode, self._seq, self.sim.now)
        request.upgrade = current is not None
        obj = self._objects.get(obj_id)
        if obj is None:
            obj = self._objects[obj_id] = _LockObject()
        self.scheduler.on_enqueue(request)

        if self._can_grant_on_arrival(obj, request):
            self._grant(obj, request)
            self.immediate_grants += 1
            return request

        obj.waiting.append(request)
        if self._closes_cycle(request):
            self._remove_waiter(obj, request)
            request.status = RequestStatus.DEADLOCK
            self.deadlocks += 1
            self._t_deadlocks.inc()
            self._tm.event(
                "lockmgr.deadlock",
                txn=ctx.txn_id,
                obj=str(obj_id),
                mode=mode.value,
            )
            return request

        request.event = self.sim.event()
        self._waiting_request[ctx] = request
        self.total_waits += 1
        self._t_waits.inc()
        self._t_queue_depth.set(len(obj.waiting))
        return request

    def wait(self, request):
        """Generator: suspend until the request resolves.

        Evaluates to the final :class:`RequestStatus` (GRANTED or TIMEOUT).
        """
        if request.status is not RequestStatus.WAITING:
            return request.status
        started = self.sim.now
        timeout = self.wait_timeout
        faults = self.sim.faults
        if faults.enabled:
            # A lock-storm window collapses the effective wait budget,
            # turning long waits into timeout-abort-retry storms.
            timeout = faults.lock_wait_timeout(started, timeout)
        fired = yield WaitEvent(request.event, timeout=timeout)
        waited = self.sim.now - started
        self.total_wait_time += waited
        self._t_wait_hist.observe(waited)
        self._waiting_request.pop(request.txn, None)
        if not fired and request.status is RequestStatus.WAITING:
            obj = self._objects.get(request.obj_id)
            if obj is not None:
                self._remove_waiter(obj, request)
                self._grant_pass(obj)
            request.status = RequestStatus.TIMEOUT
            self.timeouts += 1
            self._t_timeouts.inc()
            self._tm.event(
                "lockmgr.timeout",
                txn=request.txn.txn_id,
                obj=str(request.obj_id),
                waited=waited,
            )
        return request.status

    # -- lock_sys bookkeeping (InnoDB hash-bucket scans) -----------------

    def _scan_entries(self, obj_id):
        obj = self._objects.get(obj_id)
        if obj is None:
            return 0
        return len(obj.granted) + len(obj.waiting)

    def _scan_fraction(self):
        if getattr(self.scheduler, "head_placement", False):
            return self.head_scan_fraction
        return 1.0

    def charge_bookkeeping(self, entries):
        """Generator: pay for one lock_sys operation over ``entries`` structs.

        Serialised on the global lock_sys mutex; with head placement the
        wanted struct is found early, shortening the effective scan.
        """
        if not self.bookkeeping:
            return
        cost = (
            self.bookkeeping_base
            + self.bookkeeping_per_entry * entries * self._scan_fraction()
        )
        yield from self.lock_sys_mutex.acquire()
        self.bookkeeping_time += cost
        yield cost
        self.lock_sys_mutex.release()

    def request_timed(self, ctx, obj_id, mode):
        """Generator: :meth:`request` preceded by its bookkeeping cost.

        ``charge_bookkeeping`` is inlined here (with the uncontended
        mutex-acquire fast path flattened) — this runs once per lock
        request, and the two extra generator frames cost real wall time.
        """
        if self.bookkeeping:
            obj = self._objects.get(obj_id)
            entries = 0 if obj is None else len(obj.granted) + len(obj.waiting)
            cost = (
                self.bookkeeping_base
                + self.bookkeeping_per_entry * entries * self._scan_fraction()
            )
            mutex = self.lock_sys_mutex
            if mutex.holder is None:
                mutex.holder = self.sim.current
                mutex.total_acquisitions += 1
            else:
                yield from mutex.acquire()
            self.bookkeeping_time += cost
            yield cost
            mutex.release()
        return self.request(ctx, obj_id, mode)

    def release_all_timed(self, ctx):
        """Generator: :meth:`release_all` preceded by its bookkeeping cost."""
        held = self._held.get(ctx, {})
        if self.bookkeeping and held:
            entries = sum(self._scan_entries(obj_id) for obj_id in held)
            cost = (
                self.bookkeeping_base
                + self.bookkeeping_per_entry * entries * self._scan_fraction()
            )
            mutex = self.lock_sys_mutex
            if mutex.holder is None:
                mutex.holder = self.sim.current
                mutex.total_acquisitions += 1
            else:
                yield from mutex.acquire()
            self.bookkeeping_time += cost
            yield cost
            mutex.release()
        self.release_all(ctx)

    def acquire(self, ctx, obj_id, mode):
        """Generator convenience: request + wait; evaluates to the status."""
        request = self.request(ctx, obj_id, mode)
        if request.status is RequestStatus.WAITING:
            status = yield from self.wait(request)
            return status
        return request.status

    def release_all(self, ctx):
        """Release every lock held by ``ctx`` (2PL shrink at commit/abort).

        Also cancels any still-waiting request (abort path) and runs the
        grant pass on each touched object.
        """
        if self._check.enabled:
            self._check.locks_released(ctx, self.sim.now)
        waiting = self._waiting_request.pop(ctx, None)
        objects = self._objects
        objects_get = objects.get
        # Ordered set (insertion = lock-acquisition order).  Iterating a
        # plain set of obj_ids would wake waiters in str-hash order, which
        # varies with PYTHONHASHSEED and breaks cross-process
        # reproducibility; the randomised wake order is reintroduced
        # deterministically below via ``release_rng``.
        touched = {}
        if waiting is not None and waiting.status is RequestStatus.WAITING:
            obj = objects_get(waiting.obj_id)
            if obj is not None:
                self._remove_waiter(obj, waiting)
                touched[waiting.obj_id] = None
            waiting.status = RequestStatus.CANCELLED
        held = self._held.pop(ctx, {})
        for obj_id in held:
            obj = objects_get(obj_id)
            if obj is None:
                continue
            obj.granted = [r for r in obj.granted if r.txn is not ctx]
            touched[obj_id] = None
        order = list(touched)
        if self._release_rng is not None and len(order) > 1:
            self._release_rng.shuffle(order)
        grant_pass = self._grant_pass
        for obj_id in order:
            obj = objects_get(obj_id)
            if obj is None:
                continue
            grant_pass(obj)
            if not obj.granted and not obj.waiting:
                del objects[obj_id]

    def held_locks(self, ctx):
        """``{obj_id: mode}`` currently held by ``ctx``."""
        return dict(self._held.get(ctx, {}))

    def crash(self):
        """Whole-node crash: the lock table is volatile — wipe it.

        Granted sets, wait queues and waiting-request records all die
        with the server process; no grant pass runs because every waiter
        is a dead process.  The lock_sys mutex is reset directly (its
        holder, if any, died too).  Counters survive as run-level
        accounting.  In-doubt 2PC branches get their locks re-granted by
        recovery *before* new work is admitted (``repro.recovery``).
        """
        self._objects.clear()
        self._held.clear()
        self._waiting_request.clear()
        if self.lock_sys_mutex is not None:
            self.lock_sys_mutex.holder = None
            self.lock_sys_mutex._waiters.clear()

    def queue_length(self, obj_id):
        obj = self._objects.get(obj_id)
        return 0 if obj is None else len(obj.waiting)

    # ------------------------------------------------------------------
    # Granting machinery
    # ------------------------------------------------------------------

    def _already_granted(self, ctx, obj_id, mode):
        self._seq += 1
        request = LockRequest(ctx, obj_id, mode, self._seq, self.sim.now)
        request.status = RequestStatus.GRANTED
        request.granted_at = self.sim.now
        return request

    def _conflicts_with(self, request, other):
        if other.txn is request.txn:
            return False
        return not compatible(other.mode, request.mode)

    def _can_grant_on_arrival(self, obj, request):
        if obj.empty:
            return True
        if not self.scheduler.grants_on_arrival:
            return False
        # "In front" = all granted locks plus waiters ahead of this
        # request in the scheduler's order.
        key = self.scheduler.sort_key(request)
        for other in obj.granted:
            if self._conflicts_with(request, other):
                return False
        for other in obj.waiting:
            if self.scheduler.sort_key(other) < key and self._conflicts_with(
                request, other
            ):
                return False
        return True

    def _grant(self, obj, request):
        request.status = RequestStatus.GRANTED
        request.granted_at = self.sim.now
        if request.event is not None:
            self.grant_log.append((request.txn, self.sim.now))
            self._t_grants_after_wait.inc()
        obj.granted.append(request)
        held = self._held.get(request.txn)
        if held is None:
            held = self._held[request.txn] = {}
        if request.upgrade or request.mode is LockMode.X:
            held[request.obj_id] = LockMode.X
        else:
            held.setdefault(request.obj_id, request.mode)
        if self._check.enabled:
            self._check.lock_granted(
                request.txn,
                request.obj_id,
                held[request.obj_id].value,
                request.upgrade,
            )
        if request.event is not None and not request.event.fired:
            request.event.fire()

    def _grant_pass(self, obj):
        """Grant every waiter not conflicting with anything in front of it."""
        if not obj.waiting:
            return
        order = sorted(obj.waiting, key=self.scheduler.sort_key)
        ahead = list(obj.granted)
        still_waiting = []
        for request in order:
            blocked = any(self._conflicts_with(request, other) for other in ahead)
            if blocked:
                still_waiting.append(request)
                ahead.append(request)
            else:
                self._grant(obj, request)
                ahead.append(request)
        obj.waiting = still_waiting

    def _remove_waiter(self, obj, request):
        obj.waiting = [r for r in obj.waiting if r is not request]

    # ------------------------------------------------------------------
    # Deadlock detection
    # ------------------------------------------------------------------

    def _blockers(self, request):
        """Transactions this waiting request is blocked behind."""
        obj = self._objects.get(request.obj_id)
        if obj is None:
            return set()
        blockers = set()
        key = self.scheduler.sort_key(request)
        for other in obj.granted:
            if self._conflicts_with(request, other):
                blockers.add(other.txn)
        for other in obj.waiting:
            if other is request:
                continue
            if self.scheduler.sort_key(other) < key and self._conflicts_with(
                request, other
            ):
                blockers.add(other.txn)
        return blockers

    def _closes_cycle(self, request):
        """DFS over the waits-for graph starting from ``request.txn``."""
        start = request.txn
        stack = [request]
        visited = set()
        while stack:
            req = stack.pop()
            for txn in self._blockers(req):
                if txn is start:
                    return True
                if txn in visited:
                    continue
                visited.add(txn)
                waiting = self._waiting_request.get(txn)
                if waiting is not None and waiting.status is RequestStatus.WAITING:
                    stack.append(waiting)
        return False

    def __repr__(self):
        return "<LockManager %s objects=%d waits=%d deadlocks=%d>" % (
            self.scheduler.name,
            len(self._objects),
            self.total_waits,
            self.deadlocks,
        )
