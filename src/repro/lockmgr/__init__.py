"""Two-phase-locking record lock manager with pluggable scheduling.

This is the substrate the paper's headline contribution (VATS, Section 5)
plugs into: each database object has a wait queue; when locks are released
the *scheduler* decides which waiters are granted next.

- :mod:`repro.lockmgr.locks` — lock modes and the compatibility matrix.
- :mod:`repro.lockmgr.scheduling` — FCFS (the default in MySQL/Postgres),
  VATS (eldest-first by transaction age), and RS (random order).
- :mod:`repro.lockmgr.manager` — the lock manager: request/wait/release
  cycle, the grant pass ("grant as many locks as possible provided a lock
  does not conflict with any lock in front of it in the queue"), deadlock
  detection on the waits-for graph, and wait-time accounting.
"""

from repro.lockmgr.locks import LockMode, compatible
from repro.lockmgr.manager import LockManager, LockRequest, RequestStatus
from repro.lockmgr.scheduling import (
    CATSScheduler,
    FCFSScheduler,
    RandomScheduler,
    Scheduler,
    VATSScheduler,
    make_scheduler,
)

__all__ = [
    "CATSScheduler",
    "FCFSScheduler",
    "LockManager",
    "LockMode",
    "LockRequest",
    "RandomScheduler",
    "RequestStatus",
    "Scheduler",
    "VATSScheduler",
    "compatible",
    "make_scheduler",
]
