"""Shared engine machinery: the worker pool, retries, and degradation.

Engines process transactions with a fixed pool of worker processes
consuming a submission queue — the thread-per-connection (MySQL) and
process-per-connection (Postgres) architectures collapse to this shape
once clients are rate-limited terminals, and it bounds simulator process
count.  VoltDB overrides the worker loop with its task-concurrent model.

Driver protocol::

    engine.submit(ctx, spec)   # called by the load driver per arrival;
                               # returns False when the txn was shed
    ...
    engine.drain()             # after the last submission: workers stop
                               # once the queue empties

Each worker owns the per-thread state the substrates need (the Lazy LRU
Update backlog lives here, matching the paper's "thread-local backlog of
deferred LRU updates").

Robustness machinery shared by the lock-based engines:

- **One retry loop.**  ``_execute`` runs ``_attempt`` (the subclass hook)
  under the engine's :class:`~repro.faults.RetryPolicy` — exponential
  backoff with jitter drawn from a *dedicated* seeded stream, so retry
  activity never perturbs the engine's other draws.  Aborts and final
  failures are accounted per reason (``deadlock``/``timeout``/``shed``/
  ``deadline``) and surfaced on ``RunResult``.
- **Graceful degradation.**  ``max_queue_depth`` bounds the submission
  queue — an arrival that finds it full is *shed* (rejected immediately)
  instead of growing the backlog without bound; ``txn_deadline`` gives
  up on transactions whose age exceeds the budget, both at dequeue and
  between retry attempts.  Both default to off, preserving the open-loop
  measurement methodology of the paper's experiments.
- **Worker crash-and-restart.**  Under an active fault plan, a seeded
  coin crashes the dequeuing worker: it loses its thread-local state,
  pays a restart delay (the recovery-time histogram in telemetry), and
  then resumes — the queued transaction survives and simply waits.
"""

from repro.faults.retry import RetryPolicy
from repro.sim.kernel import WaitEvent
from repro.sim.resources import WaitQueue

#: Canonical abort/failure reasons; anything else an engine reports is
#: still counted, these are just the ones the stack itself produces.
ABORT_REASONS = ("deadlock", "timeout", "shed", "deadline")


class _Shutdown:
    """Queue sentinel telling a worker to exit."""


class Branch:
    """One shard's slice of a distributed transaction: a 2PC participant.

    Built by the cluster coordinator (``repro.cluster``) and enqueued on
    a node engine via :meth:`Engine.submit_branch`.  The dequeuing worker
    executes the branch's statements under strict 2PL *without releasing
    locks*, forces a prepare record, fires ``prepared`` with its vote,
    then parks on ``decision`` — the worker is held for the 2PC round
    trip, exactly as a thread-per-connection server's session thread is.
    On the decision it writes the commit record (commit only), releases
    everything, and fires ``done``.

    ``ctx`` is the branch's own :class:`TransactionContext` (lock
    ownership is per-context); the coordinator merges its traced
    durations back into the global transaction's trace.
    """

    __slots__ = (
        "ctx",
        "spec",
        "node_id",
        "prepared",
        "decision",
        "done",
        "vote",
        "reason",
        "redo_bytes",
        "predicate_locks",
    )

    def __init__(self, ctx, spec, node_id, sim):
        self.ctx = ctx
        self.spec = spec
        self.node_id = node_id
        self.prepared = sim.event()
        self.decision = sim.event()
        self.done = sim.event()
        self.vote = False
        self.reason = None
        self.redo_bytes = 0
        self.predicate_locks = 0

    def __repr__(self):
        return "<Branch %r node=%r vote=%r>" % (
            self.ctx.txn_id,
            self.node_id,
            self.vote,
        )


class Worker:
    """One server thread: identity + thread-local state.

    ``current`` tracks the dequeued item the worker is processing right
    now (a ``(ctx, spec)`` pair or a :class:`Branch`), so a whole-node
    crash (``repro.recovery``) can account for in-flight work.  It is a
    pure-Python assignment on the worker loop — no draws, no virtual
    time — so maintaining it never perturbs a fault-free run.
    """

    __slots__ = ("worker_id", "llu_backlog", "txns_executed", "crashes", "current")

    def __init__(self, worker_id):
        self.worker_id = worker_id
        self.llu_backlog = []
        self.txns_executed = 0
        self.crashes = 0
        self.current = None


class NodeCrashReport:
    """What a whole-node crash destroyed and what must be resolved.

    Produced by :meth:`Engine.crash` at the crash instant and consumed by
    :meth:`Engine.recover` (and, for 2PC, by the cluster's termination
    protocol in ``repro.recovery``):

    - ``lost``: txn ids that were reported committed but whose WAL was
      not yet durable — the forward progress the crash erased (empty
      under eager-flush policies; the durability oracle flags any entry
      that the recorder saw commit).
    - ``indoubt``: ``(branch, held_locks)`` pairs for participant
      branches that voted yes and were awaiting (or mid-applying) the
      global decision.  Their prepare records are durable, so recovery
      re-grants their locks and re-contacts the coordinator.
    - ``wal_bytes``: bytes of durable WAL replayed during recovery
      (filled in by :meth:`Engine.recover`).
    """

    __slots__ = ("crash_time", "lost", "indoubt", "wal_bytes")

    def __init__(self, crash_time):
        self.crash_time = crash_time
        self.lost = ()
        self.indoubt = []
        self.wal_bytes = 0

    def __repr__(self):
        return "<NodeCrashReport t=%.1f lost=%d indoubt=%d>" % (
            self.crash_time,
            len(self.lost),
            len(self.indoubt),
        )


class Engine:
    """Base engine: submission queue + N workers running ``_execute``."""

    name = "abstract"
    #: Engines that implement the ``_branch_*`` hooks can act as 2PC
    #: participants in a cluster; task-concurrent engines (VoltDB) can't.
    supports_branches = False

    def __init__(
        self,
        sim,
        tracer,
        n_workers,
        retry_policy=None,
        retry_rng=None,
        max_queue_depth=None,
        txn_deadline=None,
    ):
        self.sim = sim
        self.tracer = tracer
        self.telemetry = sim.telemetry
        self.faults = sim.faults
        self.check = sim.check
        self.n_workers = n_workers
        self.retry_policy = retry_policy or RetryPolicy(max_attempts=1)
        self.retry_rng = retry_rng
        self.max_queue_depth = max_queue_depth
        self.txn_deadline = txn_deadline
        # Set by the cluster builder when this engine is a replica
        # group's primary (repro.replication); None otherwise, and the
        # commit paths guard on it with a single attribute test.
        self.replication = None
        self.queue = WaitQueue(sim, name=self.name + ".submit")
        self.workers = [Worker(i) for i in range(n_workers)]
        self._draining = False
        # Per-reason robustness accounting (exposed via RunResult).
        self.aborts_by_reason = {}
        self.failed_by_reason = {}
        self.worker_crashes = 0
        self._t_committed = self.telemetry.counter(self.name + ".txns_committed")
        self._t_failed = self.telemetry.counter(self.name + ".txns_failed")
        self._t_shed = self.telemetry.counter(self.name + ".txns_shed")
        self._t_retries = self.telemetry.counter(self.name + ".txn_retries")
        self._t_submit_depth = self.telemetry.gauge(self.name + ".submit_queue_depth")
        self._worker_procs = [
            sim.spawn(self._worker_loop(worker), name="%s.worker%d" % (self.name, i))
            for i, worker in enumerate(self.workers)
        ]

    # ------------------------------------------------------------------
    # Driver protocol
    # ------------------------------------------------------------------

    def submit(self, ctx, spec):
        """Enqueue one transaction; returns False when it was shed.

        With ``max_queue_depth`` set, an arrival that finds the
        submission queue full is rejected immediately — bounded queues
        trade a fast, explicit failure for the unbounded latency tail an
        overloaded open loop would otherwise build.
        """
        if self._draining:
            raise RuntimeError("submit after drain on %s" % (self.name,))
        if (
            self.max_queue_depth is not None
            and len(self.queue) >= self.max_queue_depth
        ):
            self._give_up(ctx, "shed")
            return False
        self.queue.put((ctx, spec))
        self._t_submit_depth.set(len(self.queue))
        return True

    def submit_branch(self, branch):
        """Enqueue one 2PC participant branch; False when shed.

        A shed branch votes no immediately (its ``prepared`` event fires
        with ``False``) so the coordinator aborts globally — the bounded
        queue degrades a distributed transaction the same way it degrades
        a local one: fast and explicit.
        """
        if self._draining:
            raise RuntimeError("submit_branch after drain on %s" % (self.name,))
        if (
            self.max_queue_depth is not None
            and len(self.queue) >= self.max_queue_depth
        ):
            branch.reason = "shed"
            branch.ctx.abort_reason = "shed"
            self._count_abort("shed")
            self._t_shed.inc()
            if self.check.enabled:
                self.check.branch_vote(branch.ctx, False, "shed")
            branch.prepared.fire(False)
            return False
        self.queue.put(branch)
        self._t_submit_depth.set(len(self.queue))
        return True

    def drain(self):
        """No more submissions; workers exit once the queue empties."""
        self._draining = True
        for _ in self.workers:
            self.queue.put(_Shutdown)

    @property
    def queue_depth(self):
        return len(self.queue)

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------

    def _worker_loop(self, worker):
        faults = self.faults
        tracer = self.tracer
        policy = self.retry_policy
        check = self.check
        # Engines that keep the stock retry loop get it inlined here —
        # one generator frame fewer on every resume of the run's hottest
        # delegation chain.  The inline block below is ``_execute``'s
        # body verbatim (the equivalence goldens pin the two together);
        # subclasses that override ``_execute`` still get it called.
        stock_execute = type(self)._execute is Engine._execute
        while True:
            item = yield from self.queue.get()
            if item is _Shutdown:
                return
            worker.current = item
            if item.__class__ is Branch:
                yield from self._run_branch(worker, item)
                worker.current = None
                continue
            ctx, spec = item
            if faults.enabled:
                restart = faults.worker_crash(self.name, worker.worker_id)
                if restart is not None:
                    # Crash-and-restart: thread-local state is lost, the
                    # restart delay is paid, and the dequeued transaction
                    # (still safely queued from the client's view) runs
                    # after recovery.
                    self.worker_crashes += 1
                    worker.crashes += 1
                    worker.llu_backlog = []
                    yield restart
            if (
                self.txn_deadline is not None
                and self.sim.now - ctx.birth >= self.txn_deadline
            ):
                self._give_up(ctx, "deadline")
                worker.current = None
                continue
            worker.txns_executed += 1
            if not stock_execute:
                yield from self._execute(worker, ctx, spec)
                worker.current = None
                continue
            tracer.begin_transaction(ctx)
            committed = False
            reason = None
            for attempt in range(policy.max_attempts):
                if attempt:
                    ctx.attempts += 1
                    self._t_retries.inc()
                    policy.note_retry(reason or "abort")
                    yield policy.backoff(attempt, self.retry_rng)
                    if (
                        self.txn_deadline is not None
                        and self.sim.now - ctx.birth >= self.txn_deadline
                    ):
                        reason = "deadline"
                        break
                ctx.abort_reason = None
                if check.enabled:
                    check.begin_attempt(ctx)
                ok = yield from self._attempt(worker, ctx, spec)
                if ok:
                    committed = True
                    break
                reason = ctx.abort_reason or "abort"
                self._count_abort(reason)
            if not committed:
                final = reason or "abort"
                ctx.abort_reason = final
                policy.note_give_up(final)
                self._count_failed(final)
            tracer.end_transaction(ctx, committed)
            self.observe_txn(ctx, committed)
            worker.current = None

    def _execute(self, worker, ctx, spec):
        """Generator: run one transaction under the engine's retry policy.

        Subclasses with a retryable abort path implement ``_attempt``;
        task-concurrent engines (VoltDB) override ``_execute`` wholesale.
        """
        tracer = self.tracer
        policy = self.retry_policy
        check = self.check
        tracer.begin_transaction(ctx)
        committed = False
        reason = None
        for attempt in range(policy.max_attempts):
            if attempt:
                ctx.attempts += 1
                self._t_retries.inc()
                policy.note_retry(reason or "abort")
                yield policy.backoff(attempt, self.retry_rng)
                if (
                    self.txn_deadline is not None
                    and self.sim.now - ctx.birth >= self.txn_deadline
                ):
                    reason = "deadline"
                    break
            ctx.abort_reason = None
            if check.enabled:
                check.begin_attempt(ctx)
            ok = yield from self._attempt(worker, ctx, spec)
            if ok:
                committed = True
                break
            reason = ctx.abort_reason or "abort"
            self._count_abort(reason)
        if not committed:
            final = reason or "abort"
            ctx.abort_reason = final
            policy.note_give_up(final)
            self._count_failed(final)
        tracer.end_transaction(ctx, committed)
        self.observe_txn(ctx, committed)

    def _attempt(self, worker, ctx, spec):
        """Generator: one attempt; True on commit (subclass hook)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # 2PC participant branches (cluster mode only)
    # ------------------------------------------------------------------

    def _run_branch(self, worker, branch):
        """Generator: execute one participant branch through 2PC.

        Statements run with locks held to the *global* decision, a
        prepare record is forced before the yes vote, and the worker is
        parked on the decision event for the whole round trip — holding
        a session thread across prepare is what turns coordinator waits
        into node-level queueing under cross-shard load.
        """
        ctx = branch.ctx
        faults = self.faults
        check = self.check
        if faults.enabled:
            restart = faults.worker_crash(self.name, worker.worker_id)
            if restart is not None:
                # Crash mid-prepare: the in-flight branch state is lost,
                # so the participant votes no (the coordinator aborts
                # globally and may retry) and the worker pays its restart
                # delay before taking the next task.
                self.worker_crashes += 1
                worker.crashes += 1
                worker.llu_backlog = []
                branch.reason = "crash"
                ctx.abort_reason = "crash"
                self._count_abort("crash")
                if check.enabled:
                    check.branch_vote(ctx, False, "crash")
                branch.prepared.fire(False)
                yield restart
                return
        worker.txns_executed += 1
        ctx.abort_reason = None
        ok = yield from self._branch_execute(worker, ctx, branch)
        if not ok:
            reason = ctx.abort_reason or "abort"
            branch.reason = reason
            self._count_abort(reason)
            yield from self._branch_release(ctx, branch)
            if check.enabled:
                check.branch_vote(ctx, False, reason)
            branch.prepared.fire(False)
            return
        yield from self._branch_prepare(ctx, branch)
        branch.vote = True
        if check.enabled:
            check.branch_vote(ctx, True)
        branch.prepared.fire(True)
        yield WaitEvent(branch.decision)
        commit = bool(branch.decision.value)
        if commit:
            yield from self._branch_commit(ctx, branch)
            if check.enabled:
                check.branch_sealed(ctx)
            self.telemetry.counter(self.name + ".branches_committed").inc()
        else:
            branch.reason = branch.reason or "remote_abort"
            self.telemetry.counter(self.name + ".branches_aborted").inc()
        if commit:
            repl = self.replication
            if repl is not None and branch.redo_bytes:
                # The replication ack gates the branch's 2PC ack (and
                # thus the client response) with locks still held —
                # same AFTER_SYNC discipline as the single-home path.
                yield from repl.commit_barrier(ctx, branch.redo_bytes)
        yield from self._branch_release(ctx, branch)
        if check.enabled:
            check.branch_finished(ctx, commit)
        branch.done.fire(commit)

    def _branch_execute(self, worker, ctx, branch):
        """Generator: run the branch's statements, locks held at return.

        True on success; on failure ``ctx.abort_reason`` names why.
        Subclass hook — only engines with ``supports_branches`` have one.
        """
        raise NotImplementedError(
            "%s cannot execute 2PC branches" % (self.name,)
        )

    def _branch_prepare(self, ctx, branch):
        """Generator: force the participant's prepare record (hook)."""
        raise NotImplementedError

    def _branch_commit(self, ctx, branch):
        """Generator: write the participant's commit record (hook)."""
        raise NotImplementedError

    def _branch_release(self, ctx, branch):
        """Generator: release everything the branch holds (hook)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Node crash and recovery (repro.recovery)
    # ------------------------------------------------------------------

    def crash(self):
        """Kill the node at this virtual-time instant; returns a report.

        Everything volatile dies: worker processes (and whatever they
        were executing), the submission queue, the lock table, the buffer
        pool, and any WAL tail whose flush had not completed.  Only disk
        contents past the durable horizon survive — exactly the boundary
        ``sim/disk.py``'s ``flush`` defines.  No virtual time passes and
        no random numbers are drawn; the crash instant itself comes from
        the fault plan, so a run without a planned ``node_crash`` never
        reaches this code.

        In-flight and queued client transactions are failed with reason
        ``node_crash`` (their sessions died with the server).  Participant
        branches follow the 2PC termination rules: not-yet-prepared
        branches vote no; prepared branches become *in doubt* and are
        listed on the report for resolution after restart.
        """
        now = self.sim.now
        report = NodeCrashReport(now)
        for proc in self._worker_procs:
            if not proc.done.fired:
                proc.done.fire()
        for worker in self.workers:
            item, worker.current = worker.current, None
            if item is not None:
                self._crash_item(item, report)
        for item in self.queue._items:
            if item is not _Shutdown:
                self._crash_item(item, report)
        # Dead getters would silently swallow future puts; dead items
        # would be executed by the reborn pool as if nothing happened.
        self.queue._items.clear()
        self.queue._getters.clear()
        self._t_submit_depth.set(0)
        report.lost = tuple(self._crash_volatile(report))
        return report

    def _crash_item(self, item, report):
        """Classify one in-flight/queued item at the crash instant."""
        if item.__class__ is not Branch:
            self._crash_txn(item[0])
            return
        branch = item
        ctx = branch.ctx
        if branch.done.fired:
            return
        if branch.prepared.fired and branch.vote:
            # Voted yes: the prepare record is durable, the outcome is
            # the coordinator's to give.  Snapshot the locks now — the
            # lock table is about to be wiped — so recovery can re-grant
            # them before new work runs (``indoubt_wait`` holds them
            # until the decision arrives).
            report.indoubt.append((branch, self._held_locks(ctx)))
            return
        if branch.prepared.fired:
            return  # already voted no; nothing volatile left to undo
        # Not yet prepared: the branch's work was volatile — vote no so
        # the coordinator aborts globally.  ``reason`` may already be set
        # (crash landed mid-release of an aborting branch), in which case
        # the abort was already counted.
        reason = branch.reason
        if reason is None:
            reason = "node_crash"
            branch.reason = reason
            ctx.abort_reason = reason
            self._count_abort(reason)
        if self.check.enabled:
            self.check.locks_released(ctx, self.sim.now)
            self.check.branch_vote(ctx, False, reason)
        branch.prepared.fire(False)

    def _crash_txn(self, ctx):
        """Fail one client transaction whose session died with the node."""
        del ctx.stack[:]
        ctx._interval_start = None
        if self.check.enabled:
            self.check.locks_released(ctx, self.sim.now)
        self._give_up(ctx, "node_crash")

    def recover(self, report, crash_time, replay=True,
                stall_frame="recovery_replay"):
        """Generator: ARIES-style restart, called after the restart delay.

        Analysis + redo collapse to replaying the durable WAL prefix as
        virtual-time disk reads (``_recovery_replay``); undo is implicit
        because strict 2PL never writes uncommitted data to the modelled
        store.  In-doubt branches get their locks re-granted *before* the
        worker pool is rebuilt, so no new transaction can slip past a
        prepared branch's writes while its fate is undecided.

        Failover (``repro.replication``) restarts the engine *warm*:
        the promoted replica's applied state is current, so the caller
        passes ``replay=False`` (the promotion already replayed the
        shipped-but-unapplied tail) and ``stall_frame="promote_wait"``
        so queued transactions attribute the outage to failover rather
        than redo replay.
        """
        replayed = 0
        if replay:
            replayed = yield from self._recovery_replay()
        report.wal_bytes = replayed
        for branch, held in report.indoubt:
            self._regrant_locks(branch.ctx, held)
        self.workers = [Worker(i) for i in range(self.n_workers)]
        self._worker_procs = [
            self.sim.spawn(
                self._worker_loop(worker),
                name="%s.worker%d" % (self.name, worker.worker_id),
            )
            for worker in self.workers
        ]
        if self._draining:
            for _ in self.workers:
                self.queue.put(_Shutdown)
        now = self.sim.now
        tracer = self.tracer
        if stall_frame in tracer.instrumented:
            # Transactions that queued while the node was down spent this
            # stretch waiting on recovery (or failover), not on execution
            # — attribute it so the variance tree can rank the stalls.
            site = "replication" if stall_frame == "promote_wait" else "recovery"
            for item in self.queue._items:
                if item is _Shutdown or item.__class__ is Branch:
                    continue
                ctx = item[0]
                dt = now - max(crash_time, ctx.birth)
                if dt > 0.0:
                    tracer.record(ctx, stall_frame, dt, site=site)
        self.telemetry.event(
            "node.recovered",
            engine=self.name,
            replayed_bytes=replayed,
            downtime=now - crash_time,
            indoubt=len(report.indoubt),
        )

    def _crash_volatile(self, report):
        """Wipe engine-specific volatile state; returns lost txn ids.

        Subclass hook: lock-based engines truncate their WAL to the
        durable horizon (returning commits the crash erased), clear the
        lock table and drop the buffer pool.  The base engine has none of
        those, so nothing is lost.
        """
        return ()

    def _held_locks(self, ctx):
        """Snapshot ``{obj_id: mode}`` held by ``ctx`` (subclass hook)."""
        return {}

    def _regrant_locks(self, ctx, held):
        """Re-grant an in-doubt branch's locks into the fresh lock table.

        Requests into an empty table grant instantaneously and draw no
        randomness; the recorder keeps the original grant time, so the
        lock-interval oracle sees one continuous hold across the crash.
        """
        for obj_id, mode in held.items():
            self.lockmgr.request(ctx, obj_id, mode)

    def _recovery_replay(self):
        """Generator: replay the durable WAL prefix; returns bytes read.

        Subclass hook — the base engine has no WAL, so recovery is
        instantaneous.
        """
        return 0
        yield  # pragma: no cover -- unreachable; makes this a generator

    # ------------------------------------------------------------------
    # Per-reason accounting
    # ------------------------------------------------------------------

    def _count_abort(self, reason):
        self.aborts_by_reason[reason] = self.aborts_by_reason.get(reason, 0) + 1
        self.telemetry.counter("%s.aborts.%s" % (self.name, reason)).inc()

    def _count_failed(self, reason):
        self.failed_by_reason[reason] = self.failed_by_reason.get(reason, 0) + 1
        self.telemetry.counter("%s.failed.%s" % (self.name, reason)).inc()

    def _give_up(self, ctx, reason):
        """Reject ``ctx`` without executing it (shed / missed deadline)."""
        ctx.abort_reason = reason
        self._count_failed(reason)
        if reason == "shed":
            self._t_shed.inc()
        self.tracer.begin_transaction(ctx)
        self.tracer.end_transaction(ctx, committed=False)
        self.observe_txn(ctx, committed=False)

    @property
    def aborts(self):
        """Total per-attempt aborts across reasons (derived)."""
        return sum(self.aborts_by_reason.values())

    @property
    def failed_txns(self):
        """Transactions that never committed, across reasons (derived)."""
        return sum(self.failed_by_reason.values())

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def observe_txn(self, ctx, committed):
        """Publish one finished transaction's outcome and latency.

        Engines call this right after ``tracer.end_transaction``.  The
        latency histogram is keyed by transaction type, so a snapshot
        carries per-type tails (NewOrder vs Payment ...) without keeping
        per-transaction samples.
        """
        if self.check.enabled:
            self.check.finish(ctx, committed)
        tm = self.telemetry
        if not tm.enabled:
            return
        if committed:
            self._t_committed.inc()
            tm.histogram(
                "%s.latency.%s" % (self.name, ctx.txn_type)
            ).observe(self.sim.now - ctx.birth)
        else:
            self._t_failed.inc()
            tm.event(
                "engine.txn_failed",
                engine=self.name,
                txn=ctx.txn_id,
                txn_type=ctx.txn_type,
                attempts=ctx.attempts,
                reason=ctx.abort_reason or "abort",
            )
