"""Shared engine machinery: the worker pool and driver protocol.

Engines process transactions with a fixed pool of worker processes
consuming a submission queue — the thread-per-connection (MySQL) and
process-per-connection (Postgres) architectures collapse to this shape
once clients are rate-limited terminals, and it bounds simulator process
count.  VoltDB overrides the worker loop with its task-concurrent model.

Driver protocol::

    engine.submit(ctx, spec)   # called by the load driver per arrival
    ...
    engine.drain()             # after the last submission: workers stop
                               # once the queue empties

Each worker owns the per-thread state the substrates need (the Lazy LRU
Update backlog lives here, matching the paper's "thread-local backlog of
deferred LRU updates").
"""

from repro.sim.resources import WaitQueue


class _Shutdown:
    """Queue sentinel telling a worker to exit."""


class Worker:
    """One server thread: identity + thread-local state."""

    __slots__ = ("worker_id", "llu_backlog", "txns_executed")

    def __init__(self, worker_id):
        self.worker_id = worker_id
        self.llu_backlog = []
        self.txns_executed = 0


class Engine:
    """Base engine: submission queue + N workers running ``_execute``."""

    name = "abstract"

    def __init__(self, sim, tracer, n_workers):
        self.sim = sim
        self.tracer = tracer
        self.telemetry = sim.telemetry
        self.n_workers = n_workers
        self.queue = WaitQueue(sim, name=self.name + ".submit")
        self.workers = [Worker(i) for i in range(n_workers)]
        self._worker_procs = [
            sim.spawn(self._worker_loop(worker), name="%s.worker%d" % (self.name, i))
            for i, worker in enumerate(self.workers)
        ]
        self._draining = False
        self._t_committed = self.telemetry.counter(self.name + ".txns_committed")
        self._t_failed = self.telemetry.counter(self.name + ".txns_failed")
        self._t_submit_depth = self.telemetry.gauge(self.name + ".submit_queue_depth")

    # ------------------------------------------------------------------
    # Driver protocol
    # ------------------------------------------------------------------

    def submit(self, ctx, spec):
        """Enqueue one transaction for execution."""
        if self._draining:
            raise RuntimeError("submit after drain on %s" % (self.name,))
        self.queue.put((ctx, spec))
        self._t_submit_depth.set(len(self.queue))

    def drain(self):
        """No more submissions; workers exit once the queue empties."""
        self._draining = True
        for _ in self.workers:
            self.queue.put(_Shutdown)

    @property
    def queue_depth(self):
        return len(self.queue)

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------

    def _worker_loop(self, worker):
        while True:
            item = yield from self.queue.get()
            if item is _Shutdown:
                return
            ctx, spec = item
            worker.txns_executed += 1
            yield from self._execute(worker, ctx, spec)

    def _execute(self, worker, ctx, spec):
        """Generator: run one transaction to completion (subclass hook)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def observe_txn(self, ctx, committed):
        """Publish one finished transaction's outcome and latency.

        Engines call this right after ``tracer.end_transaction``.  The
        latency histogram is keyed by transaction type, so a snapshot
        carries per-type tails (NewOrder vs Payment ...) without keeping
        per-transaction samples.
        """
        tm = self.telemetry
        if not tm.enabled:
            return
        if committed:
            self._t_committed.inc()
            tm.histogram(
                "%s.latency.%s" % (self.name, ctx.txn_type)
            ).observe(self.sim.now - ctx.birth)
        else:
            self._t_failed.inc()
            tm.event(
                "engine.txn_failed",
                engine=self.name,
                txn=ctx.txn_id,
                txn_type=ctx.txn_type,
                attempts=ctx.attempts,
            )
