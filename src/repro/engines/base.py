"""Shared engine machinery: the worker pool and driver protocol.

Engines process transactions with a fixed pool of worker processes
consuming a submission queue — the thread-per-connection (MySQL) and
process-per-connection (Postgres) architectures collapse to this shape
once clients are rate-limited terminals, and it bounds simulator process
count.  VoltDB overrides the worker loop with its task-concurrent model.

Driver protocol::

    engine.submit(ctx, spec)   # called by the load driver per arrival
    ...
    engine.drain()             # after the last submission: workers stop
                               # once the queue empties

Each worker owns the per-thread state the substrates need (the Lazy LRU
Update backlog lives here, matching the paper's "thread-local backlog of
deferred LRU updates").
"""

from repro.sim.resources import WaitQueue


class _Shutdown:
    """Queue sentinel telling a worker to exit."""


class Worker:
    """One server thread: identity + thread-local state."""

    __slots__ = ("worker_id", "llu_backlog", "txns_executed")

    def __init__(self, worker_id):
        self.worker_id = worker_id
        self.llu_backlog = []
        self.txns_executed = 0


class Engine:
    """Base engine: submission queue + N workers running ``_execute``."""

    name = "abstract"

    def __init__(self, sim, tracer, n_workers):
        self.sim = sim
        self.tracer = tracer
        self.n_workers = n_workers
        self.queue = WaitQueue(sim, name=self.name + ".submit")
        self.workers = [Worker(i) for i in range(n_workers)]
        self._worker_procs = [
            sim.spawn(self._worker_loop(worker), name="%s.worker%d" % (self.name, i))
            for i, worker in enumerate(self.workers)
        ]
        self._draining = False

    # ------------------------------------------------------------------
    # Driver protocol
    # ------------------------------------------------------------------

    def submit(self, ctx, spec):
        """Enqueue one transaction for execution."""
        if self._draining:
            raise RuntimeError("submit after drain on %s" % (self.name,))
        self.queue.put((ctx, spec))

    def drain(self):
        """No more submissions; workers exit once the queue empties."""
        self._draining = True
        for _ in self.workers:
            self.queue.put(_Shutdown)

    @property
    def queue_depth(self):
        return len(self.queue)

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------

    def _worker_loop(self, worker):
        while True:
            item = yield from self.queue.get()
            if item is _Shutdown:
                return
            ctx, spec = item
            worker.txns_executed += 1
            yield from self._execute(worker, ctx, spec)

    def _execute(self, worker, ctx, spec):
        """Generator: run one transaction to completion (subclass hook)."""
        raise NotImplementedError
