"""The three simulated database engines the paper studies.

Each engine composes the substrates (lock manager, buffer pool, WAL,
B-tree storage) into a server with the architecture and — critically for
TProfiler — the *call graph* of the real system, so profiles read like
the paper's tables:

- :mod:`repro.engines.mysql` — thread-per-connection InnoDB model:
  FCFS/VATS/RS record locks, young/old buffer pool (optionally with Lazy
  LRU Update), redo log with the three flush policies.
- :mod:`repro.engines.postgres` — process-per-connection model: row
  locks, SSI-style predicate locks released at commit, and the global
  WALWriteLock serialising redo flushes (optionally parallel logging).
- :mod:`repro.engines.voltdb` — event-based model: transactions are
  stored-procedure tasks waiting in a queue for one of N worker threads.

All engines implement the same driver protocol: ``submit(ctx, spec)``
enqueues a transaction, ``drain()`` ends the run, and the shared
``tracer`` / ``txn_log`` expose traces to TProfiler and the bench
harness.
"""

from repro.engines.base import Engine
from repro.engines.mysql import MySQLConfig, MySQLEngine
from repro.engines.postgres import PostgresConfig, PostgresEngine
from repro.engines.voltdb import VoltDBConfig, VoltDBEngine

__all__ = [
    "Engine",
    "MySQLConfig",
    "MySQLEngine",
    "PostgresConfig",
    "PostgresEngine",
    "VoltDBConfig",
    "VoltDBEngine",
]
