"""The simulated Postgres engine (process-per-connection).

Architecture per the paper's Section 4.2 study: backends execute
statements over a large shared buffer (the 30 GB pool caches the whole
working set, so buffer contention is not a factor here), take row locks
through the regular lock manager, register SSI predicate locks as they
read, and at commit must flush WAL behind the single global
WALWriteLock — the ``LWLockAcquireOrWait`` call that Table 2 charges
with 76.8% of overall latency variance.  ``ReleasePredicateLocks`` runs
at commit with a cost that varies with the number of predicate locks and
conflicts discovered (the remaining 6%).

Call graph::

    exec_simple_query
      PortalRun
        ExecutorRun
          index_fetch                  (per-statement work)
          PredicateLockTuple           (selects register SIREAD locks)
          heap_lock_tuple -> LockAcquireExtended -> ProcSleep
        CommitTransaction
          RecordTransactionCommit -> XLogFlush
            LWLockAcquireOrWait / XLogWrite
          ReleasePredicateLocks

``parallel_wal=True`` swaps the single WAL stream for the paper's
two-disk parallel-logging scheme (Section 6.2).
"""

from repro.core.callgraph import CallGraph
from repro.engines.base import Engine
from repro.exec.schema import register_config
from repro.faults.retry import RetryPolicy
from repro.lockmgr.locks import LockMode
from repro.lockmgr.manager import LockManager, RequestStatus
from repro.lockmgr.scheduling import make_scheduler
from repro.sim.disk import Disk, DiskConfig
from repro.sim.rand import LogNormal
from repro.storage.tables import TableCatalog
from repro.wal.pg_wal import ParallelWAL, WALConfig, WALWriter


def postgres_callgraph():
    edges = {
        "exec_simple_query": ["PortalRun"],
        "PortalRun": ["ExecutorRun", "CommitTransaction"],
        "ExecutorRun": ["index_fetch", "PredicateLockTuple", "heap_lock_tuple"],
        "heap_lock_tuple": ["LockAcquireExtended"],
        "LockAcquireExtended": ["ProcSleep"],
        "CommitTransaction": ["RecordTransactionCommit", "ReleasePredicateLocks"],
        "RecordTransactionCommit": ["XLogFlush"],
        "XLogFlush": ["LWLockAcquireOrWait", "XLogWrite"],
    }
    return CallGraph.from_dict("exec_simple_query", edges)


@register_config
class PostgresConfig:
    """Engine configuration (times in microseconds)."""

    def __init__(
        self,
        scheduler="FCFS",
        n_workers=64,
        wal_block_size=8192,
        parallel_wal=False,
        row_bytes=800,
        log_disk=None,
        statement_cpu=10.0,
        index_cpu_mean=6.0,
        index_cpu_cv=0.4,
        predicate_lock_cpu=0.4,
        predicate_release_cpu=0.6,
        predicate_conflict_prob=0.05,
        predicate_conflict_cpu=40.0,
        commit_cpu=8.0,
        lock_wait_timeout=10_000_000.0,
        max_attempts=12,
        backoff_range=(500.0, 2000.0),
        max_queue_depth=None,
        txn_deadline=None,
    ):
        self.scheduler = scheduler
        self.n_workers = n_workers
        self.wal_block_size = wal_block_size
        self.parallel_wal = parallel_wal
        # Full-page-ish WAL records (row images + index entries): TPC-C
        # on Postgres writes kilobytes of WAL per transaction, which is
        # what makes the block-size knob (Figure 4 right) matter.
        self.row_bytes = row_bytes
        self.log_disk = log_disk or DiskConfig()
        self.statement_cpu = statement_cpu
        self.index_cpu_mean = index_cpu_mean
        self.index_cpu_cv = index_cpu_cv
        self.predicate_lock_cpu = predicate_lock_cpu
        self.predicate_release_cpu = predicate_release_cpu
        self.predicate_conflict_prob = predicate_conflict_prob
        self.predicate_conflict_cpu = predicate_conflict_cpu
        self.commit_cpu = commit_cpu
        self.lock_wait_timeout = lock_wait_timeout
        self.max_attempts = max_attempts
        self.backoff_range = backoff_range
        self.max_queue_depth = max_queue_depth
        self.txn_deadline = txn_deadline


class PostgresEngine(Engine):
    name = "postgres"
    supports_branches = True

    def __init__(self, sim, tracer, workload, streams, config=None):
        self.config = config or PostgresConfig()
        cfg = self.config
        super().__init__(
            sim,
            tracer,
            cfg.n_workers,
            retry_policy=RetryPolicy(
                max_attempts=cfg.max_attempts,
                base_backoff=cfg.backoff_range[0],
                max_backoff=cfg.backoff_range[1],
            ),
            retry_rng=streams.stream("postgres.retry"),
            max_queue_depth=cfg.max_queue_depth,
            txn_deadline=cfg.txn_deadline,
        )
        self.workload = workload
        self.catalog = TableCatalog.from_schema(
            workload.schema, row_bytes=self.config.row_bytes
        )
        self.rng = streams.stream("postgres.engine")
        self.lockmgr = LockManager(
            sim,
            make_scheduler(
                self.config.scheduler, rng=streams.stream("postgres.scheduler")
            ),
            wait_timeout=self.config.lock_wait_timeout,
            release_rng=streams.stream("postgres.lockmgr_release"),
        )
        wal_config = WALConfig(block_size=self.config.wal_block_size)
        if self.config.parallel_wal:
            disks = [
                Disk(sim, streams.stream("pg.wal_disk0"), self.config.log_disk, "wal0"),
                Disk(sim, streams.stream("pg.wal_disk1"), self.config.log_disk, "wal1"),
            ]
            self.wal = ParallelWAL(sim, tracer, disks, config=wal_config)
        else:
            disk = Disk(sim, streams.stream("pg.wal_disk0"), self.config.log_disk, "wal0")
            self.wal = WALWriter(sim, tracer, disk, config=wal_config)
        self._index_cpu = LogNormal(
            self.config.index_cpu_mean, self.config.index_cpu_cv
        )

    # ------------------------------------------------------------------
    # Transaction execution
    # ------------------------------------------------------------------

    def _attempt(self, worker, ctx, spec):
        """One attempt; retries run in the base engine's loop.

        With no probes instrumented every ``tracer.traced`` call in the
        delegation chain below is a passthrough, so the whole chain can
        run in one generator frame: ``_postgres_execute_fast`` performs
        the identical yields, RNG draws and state mutations without the
        per-statement frame churn.  The traced chain is authoritative —
        the fast path must mirror it exactly (the fast-vs-traced digest
        tests pin this byte for byte).
        """
        if not self.tracer.instrumented:
            return self._postgres_execute_fast(ctx, spec)
        return self._traced_attempt(worker, ctx, spec)

    def _traced_attempt(self, worker, ctx, spec):
        """Generator: the instrumented ``exec_simple_query`` chain."""
        ok = yield from self.tracer.traced(
            ctx, "exec_simple_query", self._exec_query(ctx, spec)
        )
        return ok

    def _postgres_execute_fast(self, ctx, spec):
        """The uninstrumented statement loop in a single generator frame.

        Flattens ``_exec_query -> _portal_run -> _executor_run`` /
        ``_commit_transaction`` with all ``tracer.traced`` passthroughs
        removed.  Yield sequence, RNG draw order and lock-manager calls
        are identical to the traced chain; only Python-level frame and
        call overhead differs.  WAL commit and the replication barrier
        stay as ``yield from`` — they are shared subsystems with their
        own internal state, not per-statement overhead.
        """
        config = self.config
        statement_cpu = config.statement_cpu
        predicate_lock_cpu = config.predicate_lock_cpu
        sample = self._index_cpu.sample
        rng = self.rng
        tables = self.catalog._tables
        lockmgr = self.lockmgr
        lock_request = lockmgr.request
        check = self.check
        mode_s = LockMode.S
        mode_x = LockMode.X
        waiting = RequestStatus.WAITING
        granted = RequestStatus.GRANTED
        deadlock = RequestStatus.DEADLOCK

        predicate_locks = 0
        redo_bytes = 0
        for op in spec.ops:
            table = tables[op.table]
            # _executor_run: per-statement CPU then the index descent.
            yield statement_cpu
            yield sample(rng)
            lock = op.lock
            kind = op.kind
            if kind == "select":
                # Serializable reads register SIREAD predicate locks.
                predicate_locks += 1
                yield predicate_lock_cpu
            if lock is not None or kind in ("update", "insert"):
                request = lock_request(
                    ctx, table.lock_id(op.key), mode_s if lock == "S" else mode_x
                )
                status = request.status
                if status is waiting:
                    yield from lockmgr.wait(request)
                    status = request.status
                if status is not granted:
                    ctx.abort_reason = (
                        "deadlock" if status is deadlock else "timeout"
                    )
                    lockmgr.release_all(ctx)
                    return False
            redo_bytes += table.redo_bytes(kind)
            if check.enabled:
                check.record_op(ctx, op, lock is not None)
        # _commit_transaction, inlined.
        yield config.commit_cpu
        if redo_bytes:
            yield from self.wal.commit(ctx, redo_bytes)
        if predicate_locks:
            yield predicate_locks * config.predicate_release_cpu
            conflict_prob = config.predicate_conflict_prob
            conflict_cpu = config.predicate_conflict_cpu
            for _ in range(predicate_locks):
                if rng.random() < conflict_prob:
                    yield conflict_cpu
        repl = self.replication
        if repl is not None and redo_bytes:
            yield from repl.commit_barrier(ctx, redo_bytes)
        lockmgr.release_all(ctx)
        return True

    def _exec_query(self, ctx, spec):
        ok = yield from self.tracer.traced(
            ctx, "PortalRun", self._portal_run(ctx, spec)
        )
        return ok

    def _portal_run(self, ctx, spec):
        predicate_locks = 0
        redo_bytes = 0
        check = self.check
        for op in spec.ops:
            table = self.catalog[op.table]
            ok, locks = yield from self.tracer.traced(
                ctx, "ExecutorRun", self._executor_run(ctx, op, table)
            )
            if not ok:
                self.lockmgr.release_all(ctx)
                return False
            predicate_locks += locks
            redo_bytes += table.redo_bytes(op.kind)
            if check.enabled:
                check.record_op(ctx, op, op.lock is not None)
        yield from self.tracer.traced(
            ctx,
            "CommitTransaction",
            self._commit_transaction(ctx, redo_bytes, predicate_locks),
        )
        repl = self.replication
        if repl is not None and redo_bytes:
            # Synchronous-replication semantics: the ack wait happens
            # with locks still held (PostgreSQL releases at true commit
            # return), so replication latency stretches lock hold times.
            yield from repl.commit_barrier(ctx, redo_bytes)
        self.lockmgr.release_all(ctx)
        return True

    def _executor_run(self, ctx, op, table):
        """Generator: one statement.  Evaluates to (ok, predicate_locks)."""
        yield self.config.statement_cpu
        yield from self.tracer.traced(ctx, "index_fetch", self._index_fetch())
        locks = 0
        if op.kind == "select":
            # Serializable reads register SIREAD predicate locks.
            locks = 1
            yield from self.tracer.traced(
                ctx, "PredicateLockTuple", self._predicate_lock()
            )
        if op.lock is not None or op.kind in ("update", "insert"):
            mode = LockMode.S if op.lock == "S" else LockMode.X
            ok = yield from self.tracer.traced(
                ctx, "heap_lock_tuple", self._heap_lock_tuple(ctx, op, table, mode)
            )
            if not ok:
                return False, locks
        return True, locks

    def _index_fetch(self):
        yield self._index_cpu.sample(self.rng)

    def _predicate_lock(self):
        yield self.config.predicate_lock_cpu

    def _heap_lock_tuple(self, ctx, op, table, mode):
        ok = yield from self.tracer.traced(
            ctx, "LockAcquireExtended", self._lock_acquire(ctx, table.lock_id(op.key), mode)
        )
        return ok

    def _lock_acquire(self, ctx, obj_id, mode):
        request = self.lockmgr.request(ctx, obj_id, mode)
        if request.status is RequestStatus.WAITING:
            yield from self.tracer.traced(
                ctx, "ProcSleep", self.lockmgr.wait(request)
            )
        if request.status is RequestStatus.GRANTED:
            return True
        ctx.abort_reason = (
            "deadlock" if request.status is RequestStatus.DEADLOCK else "timeout"
        )
        return False

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------

    def _commit_transaction(self, ctx, redo_bytes, predicate_locks):
        yield self.config.commit_cpu
        if redo_bytes:
            # Read-only transactions write no commit record and never
            # touch the WALWriteLock.
            yield from self.tracer.traced(
                ctx,
                "RecordTransactionCommit",
                self._record_commit(ctx, redo_bytes),
            )
        yield from self.tracer.traced(
            ctx,
            "ReleasePredicateLocks",
            self._release_predicate_locks(predicate_locks),
        )

    def _record_commit(self, ctx, redo_bytes):
        yield from self.tracer.traced(
            ctx, "XLogFlush", self.wal.commit(ctx, redo_bytes)
        )

    def _release_predicate_locks(self, count):
        """Release SIREAD locks; cost varies with conflicts discovered."""
        if count == 0:
            return
        yield count * self.config.predicate_release_cpu
        for _ in range(count):
            if self.rng.random() < self.config.predicate_conflict_prob:
                yield self.config.predicate_conflict_cpu

    # ------------------------------------------------------------------
    # 2PC participant branches (PREPARE TRANSACTION)
    # ------------------------------------------------------------------

    #: The prepare / commit-prepared WAL record per participant round.
    TWOPHASE_RECORD_BYTES = 64

    def _branch_execute(self, worker, ctx, branch):
        """One participant slice: ``_portal_run``'s statement loop minus
        commit and minus lock release."""
        predicate_locks = 0
        redo_bytes = 0
        check = self.check
        for op in branch.spec.ops:
            table = self.catalog[op.table]
            ok, locks = yield from self.tracer.traced(
                ctx, "ExecutorRun", self._executor_run(ctx, op, table)
            )
            if not ok:
                return False
            predicate_locks += locks
            redo_bytes += table.redo_bytes(op.kind)
            if check.enabled:
                check.record_op(ctx, op, op.lock is not None)
        branch.redo_bytes = redo_bytes
        branch.predicate_locks = predicate_locks
        return True

    def _branch_prepare(self, ctx, branch):
        # PREPARE TRANSACTION: flush the branch's WAL plus the two-phase
        # state record before voting yes.
        yield self.config.commit_cpu
        if branch.redo_bytes:
            yield from self.wal.commit(
                ctx, branch.redo_bytes + self.TWOPHASE_RECORD_BYTES
            )

    def _branch_commit(self, ctx, branch):
        # COMMIT PREPARED: a second forced record seals the decision.
        yield self.config.commit_cpu
        if branch.redo_bytes:
            yield from self.wal.commit(ctx, self.TWOPHASE_RECORD_BYTES)

    def _branch_release(self, ctx, branch):
        yield from self._release_predicate_locks(branch.predicate_locks)
        self.lockmgr.release_all(ctx)

    # ------------------------------------------------------------------
    # Node crash and recovery hooks (repro.recovery)
    # ------------------------------------------------------------------

    def _crash_volatile(self, report):
        # The WAL tail past each stream's durable horizon and the lock
        # table are process memory; the wal devices survive.
        lost = self.wal.crash()
        self.lockmgr.crash()
        return lost

    def _held_locks(self, ctx):
        return self.lockmgr.held_locks(ctx)

    def _recovery_replay(self):
        # Redo: scan each stream's durable prefix on its own device
        # (parallel logging still replays both logs on restart).
        writers = self.wal.writers if isinstance(self.wal, ParallelWAL) else (self.wal,)
        total = 0
        for writer in writers:
            total += yield from writer.disk.read_sequential(int(writer.durable_lsn))
        return total
