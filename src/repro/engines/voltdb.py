"""The simulated VoltDB engine (event-based, task-concurrent).

Transactions arrive as stored-procedure invocations and wait in a task
queue until one of ``n_workers`` worker threads picks them up; execution
itself is serial per worker with no locking or buffer management (the
VoltDB design).  Appendix A's finding: ~99.9% of latency variance is the
*queue waiting time*, so the tuning knob is the worker-thread count
(Figure 7 sweeps 2 -> 24).

Transactions here are task-concurrent: the queue wait happens in no
thread, so this engine exercises TProfiler's interval-concatenation
annotations (``begin_interval``/``end_interval``) and the tracer's
manual recording path rather than stack-based frames.
"""

from repro.core.callgraph import CallGraph
from repro.engines.base import Engine
from repro.exec.schema import register_config
from repro.sim.rand import HeavyTail, LogNormal, Pareto


QUEUE_WAIT = "[waiting in queue]"


def voltdb_callgraph():
    edges = {
        "transaction": [QUEUE_WAIT, "execute_procedure"],
        "execute_procedure": ["init_procedure", "run_plan_fragments"],
    }
    return CallGraph.from_dict("transaction", edges)


@register_config
class VoltDBConfig:
    """Engine configuration (times in microseconds)."""

    def __init__(
        self,
        n_workers=2,
        base_cpu=400.0,
        per_op_cpu=105.0,
        service_cv=0.9,
        stall_prob=0.012,
        stall_scale=7_000.0,
        stall_alpha=2.2,
        init_fraction=0.15,
        max_queue_depth=None,
        txn_deadline=None,
    ):
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.n_workers = n_workers
        self.base_cpu = base_cpu
        self.per_op_cpu = per_op_cpu
        self.service_cv = service_cv
        # JVM-style execution stalls (GC, JIT) that persist regardless of
        # the worker count — the irreducible variance floor that bounds
        # how much adding workers can help (Figure 7's 2.6x, not more).
        self.stall_prob = stall_prob
        self.stall_scale = stall_scale
        self.stall_alpha = stall_alpha
        self.init_fraction = init_fraction
        self.max_queue_depth = max_queue_depth
        self.txn_deadline = txn_deadline


class VoltDBEngine(Engine):
    name = "voltdb"

    def __init__(self, sim, tracer, workload, streams, config=None):
        self.config = config or VoltDBConfig()
        super().__init__(
            sim,
            tracer,
            self.config.n_workers,
            max_queue_depth=self.config.max_queue_depth,
            txn_deadline=self.config.txn_deadline,
        )
        self.workload = workload
        self.rng = streams.stream("voltdb.engine")
        self.queue_waits = []
        # Service-time distributions are immutable and fully determined
        # by (config, n_ops), so one instance per op count serves every
        # transaction with bit-identical draws — no per-txn allocation.
        self._service_dists = {}
        # Appendix A: queue wait is ~99.9% of VoltDB's latency variance,
        # so it gets its own histogram next to the per-type latencies.
        self._t_queue_wait = self.telemetry.histogram("voltdb.queue_wait")

    def _service_dist(self, n_ops):
        dist = self._service_dists.get(n_ops)
        if dist is None:
            cfg = self.config
            dist = LogNormal(cfg.base_cpu + cfg.per_op_cpu * n_ops, cfg.service_cv)
            if cfg.stall_prob:
                dist = HeavyTail(
                    dist,
                    Pareto(cfg.stall_scale, cfg.stall_alpha),
                    cfg.stall_prob,
                )
            self._service_dists[n_ops] = dist
        return dist

    def _service_time(self, spec):
        return self._service_dist(len(spec.ops)).sample(self.rng)

    def _execute(self, worker, ctx, spec):
        """One stored-procedure invocation; retries never happen here.

        With no probes instrumented every ``tracer.record`` call in the
        traced body is a no-op, so the partition-serial execution can
        run in ``_voltdb_execute_fast`` — same yields, same RNG draws,
        same bookkeeping, minus the dead record calls and key tuples.
        """
        if not self.tracer.instrumented:
            return self._voltdb_execute_fast(worker, ctx, spec)
        return self._voltdb_execute_traced(worker, ctx, spec)

    def _voltdb_execute_fast(self, worker, ctx, spec):
        """The uninstrumented invocation in a single generator frame."""
        queue_wait = self.sim.now - ctx.birth
        self.queue_waits.append(queue_wait)
        self._t_queue_wait.observe(queue_wait)
        ctx.begin_interval()
        service = self._service_dist(len(spec.ops)).sample(self.rng)
        init_time = service * self.config.init_fraction
        yield init_time
        yield service - init_time
        ctx.end_interval()
        check = self.check
        if check.enabled:
            check.begin_attempt(ctx)
            for op in spec.ops:
                check.record_op(ctx, op, False)
        self.tracer.end_transaction(ctx, committed=True)
        self.observe_txn(ctx, committed=True)

    def _voltdb_execute_traced(self, worker, ctx, spec):
        tracer = self.tracer
        queue_wait = self.sim.now - ctx.birth
        self.queue_waits.append(queue_wait)
        self._t_queue_wait.observe(queue_wait)
        ctx.begin_interval()
        service = self._service_time(spec)
        init_time = service * self.config.init_fraction
        run_time = service - init_time
        yield init_time
        yield run_time
        ctx.end_interval()
        check = self.check
        if check.enabled:
            # Single-threaded-per-partition execution: the whole
            # transaction runs (and commits) atomically at this instant,
            # so its reads observe committed state as of now and no
            # record locks exist to report.
            check.begin_attempt(ctx)
            for op in spec.ops:
                check.record_op(ctx, op, False)
        root_key = ("transaction", "<root>")
        proc_key = ("execute_procedure", "transaction")
        tracer.record(ctx, QUEUE_WAIT, queue_wait, parent=root_key)
        tracer.record(
            ctx, "execute_procedure", service, site="transaction", parent=root_key
        )
        tracer.record(
            ctx, "init_procedure", init_time, site="execute_procedure", parent=proc_key
        )
        tracer.record(
            ctx,
            "run_plan_fragments",
            run_time,
            site="execute_procedure",
            parent=proc_key,
        )
        tracer.record(ctx, "transaction", self.sim.now - ctx.birth)
        tracer.end_transaction(ctx, committed=True)
        self.observe_txn(ctx, committed=True)

    # ------------------------------------------------------------------
    # Node crash and recovery hooks (repro.recovery)
    # ------------------------------------------------------------------

    def _crash_volatile(self, report):
        """VoltDB models a synchronous command log: commits are durable
        the instant they are reported, so a crash loses no committed
        work — only the in-flight and queued transactions the base
        :meth:`Engine.crash` already failed.  The site queue itself is
        rebuilt by the base recovery path (fresh workers draining the
        surviving submission queue)."""
        return ()
