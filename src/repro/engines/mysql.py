"""The simulated MySQL/InnoDB engine (thread-per-connection).

Composes the full substrate stack — 2PL lock manager with pluggable
scheduler, young/old buffer pool (optionally Lazy LRU Update), redo log
with the three ``innodb_flush_log_at_trx_commit`` policies, and B-tree
storage — under the call graph of the real server, so TProfiler's
profiles name the functions Table 1 names:

    do_command
      dispatch_command
        mysql_execute_command
          row_search_for_mysql        (selects)
            btr_cur_search_to_nth_level
              buf_page_make_young -> buf_pool_mutex_enter [make_young]
                                     buf_LRU_make_block_young
              buf_read_page       -> buf_pool_mutex_enter [read_page]
                                     buf_LRU_get_free_block
            sel_set_rec_lock -> lock_rec_lock
              lock_wait_suspend_thread -> os_event_wait   [site A]
          row_upd_step                (updates)
            lock_rec_lock -> lock_wait_suspend_thread -> os_event_wait [B]
            btr_cur_search_to_nth_level ...
          row_ins                     (inserts)
            lock_rec_lock ...
            row_ins_clust_index_entry_low
              btr_cur_search_to_nth_level ...
          innobase_commit -> trx_commit
            log_write_up_to -> fil_flush

Locks are held to commit (strict 2PL); a deadlock or lock-wait timeout
aborts the attempt, releases everything, and retries under the base
engine's :class:`~repro.faults.RetryPolicy` (exponential backoff with
jitter from the dedicated ``mysql.retry`` stream) — latency is measured
from first submission to final commit, as the paper's client does.
"""

from repro.core.callgraph import CallGraph
from repro.engines.base import Engine
from repro.faults.retry import RetryPolicy
from repro.lockmgr.locks import LockMode
from repro.lockmgr.manager import LockManager, RequestStatus
from repro.lockmgr.scheduling import make_scheduler
from repro.bufferpool.pool import BufferPool, BufferPoolConfig
from repro.sim.disk import Disk, DiskConfig
from repro.sim.kernel import Timeout
from repro.sim.rand import LogNormal
from repro.sim.resources import CoreSet
from repro.storage.tables import TableCatalog
from repro.wal.mysql_log import FlushPolicy, RedoLog, RedoLogConfig


def mysql_callgraph():
    """The static call graph TProfiler navigates."""
    edges = {
        "do_command": ["dispatch_command"],
        "dispatch_command": ["mysql_execute_command"],
        "mysql_execute_command": [
            "row_search_for_mysql",
            "row_upd_step",
            "row_ins",
            "innobase_commit",
        ],
        "row_search_for_mysql": [
            "btr_cur_search_to_nth_level",
            "sel_set_rec_lock",
        ],
        "sel_set_rec_lock": ["lock_rec_lock"],
        "row_upd_step": ["lock_rec_lock", "btr_cur_search_to_nth_level"],
        "row_ins": ["lock_rec_lock", "row_ins_clust_index_entry_low"],
        "row_ins_clust_index_entry_low": ["btr_cur_search_to_nth_level"],
        "lock_rec_lock": ["lock_wait_suspend_thread"],
        "lock_wait_suspend_thread": ["os_event_wait"],
        "btr_cur_search_to_nth_level": ["buf_page_make_young", "buf_read_page"],
        "buf_page_make_young": [
            "buf_pool_mutex_enter",
            "buf_LRU_make_block_young",
        ],
        "buf_read_page": ["buf_pool_mutex_enter", "buf_LRU_get_free_block"],
        "innobase_commit": ["trx_commit"],
        "trx_commit": ["log_write_up_to"],
        "log_write_up_to": ["fil_flush"],
    }
    return CallGraph.from_dict("do_command", edges)


class MySQLConfig:
    """Engine configuration (times in microseconds)."""

    def __init__(
        self,
        scheduler="FCFS",
        strict_vats_arrival=False,
        n_workers=64,
        buffer_pool_fraction=1.2,
        buffer_pool_pages=None,
        lazy_lru=False,
        llu_spin_timeout=10.0,
        flush_policy=FlushPolicy.EAGER_FLUSH,
        group_commit=True,
        log_disk=None,
        data_disk=None,
        n_cores=16,
        statement_cpu=300.0,
        statement_cpu_cv=0.5,
        row_cpu=2.0,
        commit_cpu=6.0,
        prewarm=True,
        lock_sys_bookkeeping=True,
        lock_wait_timeout=10_000_000.0,
        max_attempts=12,
        backoff_range=(500.0, 2000.0),
        max_queue_depth=None,
        txn_deadline=None,
    ):
        self.scheduler = scheduler
        self.strict_vats_arrival = strict_vats_arrival
        self.n_workers = n_workers
        self.buffer_pool_fraction = buffer_pool_fraction
        self.buffer_pool_pages = buffer_pool_pages
        self.lazy_lru = lazy_lru
        self.llu_spin_timeout = llu_spin_timeout
        self.flush_policy = flush_policy
        self.group_commit = group_commit
        self.log_disk = log_disk or DiskConfig.battery_backed()
        self.data_disk = data_disk or DiskConfig.page_cache()
        self.n_cores = n_cores
        self.statement_cpu = statement_cpu
        self.statement_cpu_cv = statement_cpu_cv
        self.row_cpu = row_cpu
        self.commit_cpu = commit_cpu
        self.prewarm = prewarm
        self.lock_sys_bookkeeping = lock_sys_bookkeeping
        self.lock_wait_timeout = lock_wait_timeout
        self.max_attempts = max_attempts
        self.backoff_range = backoff_range
        self.max_queue_depth = max_queue_depth
        self.txn_deadline = txn_deadline


class MySQLEngine(Engine):
    name = "mysql"

    def __init__(self, sim, tracer, workload, streams, config=None):
        self.config = config or MySQLConfig()
        cfg = self.config
        super().__init__(
            sim,
            tracer,
            cfg.n_workers,
            retry_policy=RetryPolicy(
                max_attempts=cfg.max_attempts,
                base_backoff=cfg.backoff_range[0],
                max_backoff=cfg.backoff_range[1],
            ),
            retry_rng=streams.stream("mysql.retry"),
            max_queue_depth=cfg.max_queue_depth,
            txn_deadline=cfg.txn_deadline,
        )
        self.workload = workload
        self.catalog = TableCatalog.from_schema(workload.schema)
        self.rng = streams.stream("mysql.engine")
        scheduler = make_scheduler(
            self.config.scheduler,
            rng=streams.stream("mysql.scheduler"),
            strict_arrival=self.config.strict_vats_arrival,
        )
        self.lockmgr = LockManager(
            sim,
            scheduler,
            wait_timeout=self.config.lock_wait_timeout,
            bookkeeping=self.config.lock_sys_bookkeeping,
            release_rng=streams.stream("mysql.lockmgr_release"),
        )
        self.data_disk = Disk(
            sim, streams.stream("mysql.data_disk"), self.config.data_disk, "data"
        )
        self.log_disk = Disk(
            sim, streams.stream("mysql.log_disk"), self.config.log_disk, "log"
        )
        capacity = self.config.buffer_pool_pages
        if capacity is None:
            capacity = max(
                16, int(self.catalog.total_pages * self.config.buffer_pool_fraction)
            )
        pool_config = BufferPoolConfig(
            capacity_pages=capacity,
            lazy_lru=self.config.lazy_lru,
            llu_spin_timeout=self.config.llu_spin_timeout,
        )
        self.pool = BufferPool(sim, tracer, self.data_disk, pool_config)
        if self.config.prewarm:
            self.pool.prewarm(self.catalog.iter_pages())
        self.cpu = CoreSet(sim, self.config.n_cores)
        self._stmt_cpu_dist = LogNormal(
            self.config.statement_cpu, self.config.statement_cpu_cv
        )
        self.redo = RedoLog(
            sim,
            tracer,
            self.log_disk,
            RedoLogConfig(
                policy=self.config.flush_policy,
                group_commit=self.config.group_commit,
            ),
        )

    # ------------------------------------------------------------------
    # Transaction execution
    # ------------------------------------------------------------------

    def _attempt(self, worker, ctx, spec):
        """Generator: one attempt; retries run in the base engine's loop."""
        ok = yield from self.tracer.traced(
            ctx, "do_command", self._do_command(worker, ctx, spec)
        )
        return ok

    def _do_command(self, worker, ctx, spec):
        ok = yield from self.tracer.traced(
            ctx, "dispatch_command", self._dispatch_command(worker, ctx, spec)
        )
        return ok

    def _dispatch_command(self, worker, ctx, spec):
        ok = yield from self.tracer.traced(
            ctx, "mysql_execute_command", self._mysql_execute(worker, ctx, spec)
        )
        return ok

    def _mysql_execute(self, worker, ctx, spec):
        redo_bytes = 0
        for op in spec.ops:
            # Parse/plan/execute CPU runs on a finite core set: near
            # saturation, CPU queueing stretches statements and therefore
            # lock hold times — the paper's hardware regime.
            yield from self.cpu.consume(self._stmt_cpu_dist.sample(self.rng))
            table = self.catalog[op.table]
            if op.kind == "select":
                ok = yield from self.tracer.traced(
                    ctx, "row_search_for_mysql", self._row_search(worker, ctx, op, table)
                )
            elif op.kind == "update":
                ok = yield from self.tracer.traced(
                    ctx, "row_upd_step", self._row_update(worker, ctx, op, table)
                )
            else:
                ok = yield from self.tracer.traced(
                    ctx, "row_ins", self._row_insert(worker, ctx, op, table)
                )
            if not ok:
                yield from self.lockmgr.release_all_timed(ctx)
                return False
            redo_bytes += table.redo_bytes(op.kind)
        yield from self.tracer.traced(
            ctx, "innobase_commit", self._commit(ctx, redo_bytes)
        )
        yield from self.lockmgr.release_all_timed(ctx)
        return True

    # -- statement implementations --------------------------------------

    def _row_search(self, worker, ctx, op, table):
        yield from self.tracer.traced(
            ctx,
            "btr_cur_search_to_nth_level",
            table.index.search(
                ctx, op.key, self.pool, dirty=False, backlog=worker.llu_backlog
            ),
        )
        yield Timeout(self.config.row_cpu)
        if op.lock is not None:
            ok = yield from self.tracer.traced(
                ctx, "sel_set_rec_lock", self._sel_set_rec_lock(ctx, op, table)
            )
            return ok
        return True

    def _sel_set_rec_lock(self, ctx, op, table):
        mode = LockMode.X if op.lock == "X" else LockMode.S
        ok = yield from self.tracer.traced(
            ctx,
            "lock_rec_lock",
            self._lock_rec_lock(ctx, table.lock_id(op.key), mode, "A"),
        )
        return ok

    def _row_update(self, worker, ctx, op, table):
        ok = yield from self.tracer.traced(
            ctx,
            "lock_rec_lock",
            self._lock_rec_lock(ctx, table.lock_id(op.key), LockMode.X, "B"),
        )
        if not ok:
            return False
        yield from self.tracer.traced(
            ctx,
            "btr_cur_search_to_nth_level",
            table.index.search(
                ctx, op.key, self.pool, dirty=True, backlog=worker.llu_backlog
            ),
        )
        yield Timeout(self.config.row_cpu)
        return True

    def _row_insert(self, worker, ctx, op, table):
        ok = yield from self.tracer.traced(
            ctx,
            "lock_rec_lock",
            self._lock_rec_lock(ctx, table.lock_id(op.key), LockMode.X, "B"),
        )
        if not ok:
            return False
        table.inserts += 1
        yield from self.tracer.traced(
            ctx,
            "row_ins_clust_index_entry_low",
            self._clust_index_insert(worker, ctx, op, table),
        )
        return True

    def _clust_index_insert(self, worker, ctx, op, table):
        yield from self.tracer.traced(
            ctx,
            "btr_cur_search_to_nth_level",
            table.index.search(
                ctx, op.key, self.pool, dirty=True, backlog=worker.llu_backlog
            ),
        )
        yield from table.index.insert_body(self.rng)

    def _lock_rec_lock(self, ctx, obj_id, mode, site):
        """Generator: take a record lock; False means abort this attempt."""
        request = yield from self.lockmgr.request_timed(ctx, obj_id, mode)
        if request.status is RequestStatus.WAITING:
            yield from self.tracer.traced(
                ctx,
                "lock_wait_suspend_thread",
                self._lock_wait_suspend(ctx, request, site),
                site=site,
            )
        if request.status is RequestStatus.GRANTED:
            return True
        ctx.abort_reason = (
            "deadlock" if request.status is RequestStatus.DEADLOCK else "timeout"
        )
        return False

    def _lock_wait_suspend(self, ctx, request, site):
        yield from self.tracer.traced(
            ctx, "os_event_wait", self.lockmgr.wait(request), site=site
        )

    # -- commit ----------------------------------------------------------

    def _commit(self, ctx, redo_bytes):
        yield Timeout(self.config.commit_cpu)
        if redo_bytes == 0:
            return  # read-only transaction: nothing to make durable
        yield from self.tracer.traced(
            ctx, "trx_commit", self.redo.commit(ctx, redo_bytes)
        )
