"""The simulated MySQL/InnoDB engine (thread-per-connection).

Composes the full substrate stack — 2PL lock manager with pluggable
scheduler, young/old buffer pool (optionally Lazy LRU Update), redo log
with the three ``innodb_flush_log_at_trx_commit`` policies, and B-tree
storage — under the call graph of the real server, so TProfiler's
profiles name the functions Table 1 names:

    do_command
      dispatch_command
        mysql_execute_command
          row_search_for_mysql        (selects)
            btr_cur_search_to_nth_level
              buf_page_make_young -> buf_pool_mutex_enter [make_young]
                                     buf_LRU_make_block_young
              buf_read_page       -> buf_pool_mutex_enter [read_page]
                                     buf_LRU_get_free_block
            sel_set_rec_lock -> lock_rec_lock
              lock_wait_suspend_thread -> os_event_wait   [site A]
          row_upd_step                (updates)
            lock_rec_lock -> lock_wait_suspend_thread -> os_event_wait [B]
            btr_cur_search_to_nth_level ...
          row_ins                     (inserts)
            lock_rec_lock ...
            row_ins_clust_index_entry_low
              btr_cur_search_to_nth_level ...
          innobase_commit -> trx_commit
            log_write_up_to -> fil_flush

Locks are held to commit (strict 2PL); a deadlock or lock-wait timeout
aborts the attempt, releases everything, and retries under the base
engine's :class:`~repro.faults.RetryPolicy` (exponential backoff with
jitter from the dedicated ``mysql.retry`` stream) — latency is measured
from first submission to final commit, as the paper's client does.
"""

from repro.core.callgraph import CallGraph
from repro.engines.base import Engine
from repro.exec.schema import register_config
from repro.faults.retry import RetryPolicy
from repro.lockmgr.locks import LockMode
from repro.lockmgr.manager import LockManager, RequestStatus
from repro.lockmgr.scheduling import make_scheduler
from repro.bufferpool.pool import BufferPool, BufferPoolConfig
from repro.sim.disk import Disk, DiskConfig
from repro.sim.rand import LogNormal
from repro.sim.resources import CoreSet
from repro.storage.tables import TableCatalog
from repro.wal.mysql_log import FlushPolicy, RedoLog, RedoLogConfig


def mysql_callgraph():
    """The static call graph TProfiler navigates."""
    edges = {
        "do_command": ["dispatch_command"],
        "dispatch_command": ["mysql_execute_command"],
        "mysql_execute_command": [
            "row_search_for_mysql",
            "row_upd_step",
            "row_ins",
            "innobase_commit",
        ],
        "row_search_for_mysql": [
            "btr_cur_search_to_nth_level",
            "sel_set_rec_lock",
        ],
        "sel_set_rec_lock": ["lock_rec_lock"],
        "row_upd_step": ["lock_rec_lock", "btr_cur_search_to_nth_level"],
        "row_ins": ["lock_rec_lock", "row_ins_clust_index_entry_low"],
        "row_ins_clust_index_entry_low": ["btr_cur_search_to_nth_level"],
        "lock_rec_lock": ["lock_wait_suspend_thread"],
        "lock_wait_suspend_thread": ["os_event_wait"],
        "btr_cur_search_to_nth_level": ["buf_page_make_young", "buf_read_page"],
        "buf_page_make_young": [
            "buf_pool_mutex_enter",
            "buf_LRU_make_block_young",
        ],
        "buf_read_page": ["buf_pool_mutex_enter", "buf_LRU_get_free_block"],
        "innobase_commit": ["trx_commit"],
        "trx_commit": ["log_write_up_to"],
        "log_write_up_to": ["fil_flush"],
    }
    return CallGraph.from_dict("do_command", edges)


@register_config
class MySQLConfig:
    """Engine configuration (times in microseconds)."""

    def __init__(
        self,
        scheduler="FCFS",
        strict_vats_arrival=False,
        n_workers=64,
        buffer_pool_fraction=1.2,
        buffer_pool_pages=None,
        lazy_lru=False,
        llu_spin_timeout=10.0,
        flush_policy=FlushPolicy.EAGER_FLUSH,
        group_commit=True,
        log_disk=None,
        data_disk=None,
        n_cores=16,
        statement_cpu=300.0,
        statement_cpu_cv=0.5,
        row_cpu=2.0,
        commit_cpu=6.0,
        prewarm=True,
        lock_sys_bookkeeping=True,
        lock_wait_timeout=10_000_000.0,
        max_attempts=12,
        backoff_range=(500.0, 2000.0),
        max_queue_depth=None,
        txn_deadline=None,
    ):
        self.scheduler = scheduler
        self.strict_vats_arrival = strict_vats_arrival
        self.n_workers = n_workers
        self.buffer_pool_fraction = buffer_pool_fraction
        self.buffer_pool_pages = buffer_pool_pages
        self.lazy_lru = lazy_lru
        self.llu_spin_timeout = llu_spin_timeout
        self.flush_policy = flush_policy
        self.group_commit = group_commit
        self.log_disk = log_disk or DiskConfig.battery_backed()
        self.data_disk = data_disk or DiskConfig.page_cache()
        self.n_cores = n_cores
        self.statement_cpu = statement_cpu
        self.statement_cpu_cv = statement_cpu_cv
        self.row_cpu = row_cpu
        self.commit_cpu = commit_cpu
        self.prewarm = prewarm
        self.lock_sys_bookkeeping = lock_sys_bookkeeping
        self.lock_wait_timeout = lock_wait_timeout
        self.max_attempts = max_attempts
        self.backoff_range = backoff_range
        self.max_queue_depth = max_queue_depth
        self.txn_deadline = txn_deadline


class MySQLEngine(Engine):
    name = "mysql"
    supports_branches = True

    def __init__(self, sim, tracer, workload, streams, config=None):
        self.config = config or MySQLConfig()
        cfg = self.config
        super().__init__(
            sim,
            tracer,
            cfg.n_workers,
            retry_policy=RetryPolicy(
                max_attempts=cfg.max_attempts,
                base_backoff=cfg.backoff_range[0],
                max_backoff=cfg.backoff_range[1],
            ),
            retry_rng=streams.stream("mysql.retry"),
            max_queue_depth=cfg.max_queue_depth,
            txn_deadline=cfg.txn_deadline,
        )
        self.workload = workload
        self.catalog = TableCatalog.from_schema(workload.schema)
        self.rng = streams.stream("mysql.engine")
        scheduler = make_scheduler(
            self.config.scheduler,
            rng=streams.stream("mysql.scheduler"),
            strict_arrival=self.config.strict_vats_arrival,
        )
        self.lockmgr = LockManager(
            sim,
            scheduler,
            wait_timeout=self.config.lock_wait_timeout,
            bookkeeping=self.config.lock_sys_bookkeeping,
            release_rng=streams.stream("mysql.lockmgr_release"),
        )
        self.data_disk = Disk(
            sim, streams.stream("mysql.data_disk"), self.config.data_disk, "data"
        )
        self.log_disk = Disk(
            sim, streams.stream("mysql.log_disk"), self.config.log_disk, "log"
        )
        capacity = self.config.buffer_pool_pages
        if capacity is None:
            capacity = max(
                16, int(self.catalog.total_pages * self.config.buffer_pool_fraction)
            )
        pool_config = BufferPoolConfig(
            capacity_pages=capacity,
            lazy_lru=self.config.lazy_lru,
            llu_spin_timeout=self.config.llu_spin_timeout,
        )
        self.pool = BufferPool(sim, tracer, self.data_disk, pool_config)
        if self.config.prewarm:
            self.pool.prewarm(self.catalog.iter_pages())
        self.cpu = CoreSet(sim, self.config.n_cores)
        self._stmt_cpu_dist = LogNormal(
            self.config.statement_cpu, self.config.statement_cpu_cv
        )
        self.redo = RedoLog(
            sim,
            tracer,
            self.log_disk,
            RedoLogConfig(
                policy=self.config.flush_policy,
                group_commit=self.config.group_commit,
            ),
        )

    # ------------------------------------------------------------------
    # Transaction execution
    # ------------------------------------------------------------------

    def _attempt(self, worker, ctx, spec):
        """One attempt (returns a generator); retries run in the base loop.

        With no instrumentation active the ``do_command`` ->
        ``dispatch_command`` levels are pure pass-throughs, so the
        command body is returned directly — same yields, two fewer
        generator frames on every one of the run's hottest resumes.
        """
        if not self.tracer.instrumented:
            return self._mysql_execute_fast(worker, ctx, spec)
        return self._traced_attempt(worker, ctx, spec)

    def _traced_attempt(self, worker, ctx, spec):
        ok = yield from self.tracer.traced(
            ctx, "do_command", self._do_command(worker, ctx, spec)
        )
        return ok

    def _do_command(self, worker, ctx, spec):
        ok = yield from self.tracer.traced(
            ctx, "dispatch_command", self._dispatch_command(worker, ctx, spec)
        )
        return ok

    def _dispatch_command(self, worker, ctx, spec):
        ok = yield from self.tracer.traced(
            ctx, "mysql_execute_command", self._mysql_execute(worker, ctx, spec)
        )
        return ok

    def _mysql_execute(self, worker, ctx, spec):
        redo_bytes = 0
        consume = self.cpu.consume
        sample = self._stmt_cpu_dist.sample
        rng = self.rng
        catalog = self.catalog
        traced = self.tracer.traced
        check = self.check
        for op in spec.ops:
            # Parse/plan/execute CPU runs on a finite core set: near
            # saturation, CPU queueing stretches statements and therefore
            # lock hold times — the paper's hardware regime.
            yield from consume(sample(rng))
            table = catalog[op.table]
            if op.kind == "select":
                ok = yield from traced(
                    ctx, "row_search_for_mysql", self._row_search(worker, ctx, op, table)
                )
            elif op.kind == "update":
                ok = yield from traced(
                    ctx, "row_upd_step", self._row_update(worker, ctx, op, table)
                )
            else:
                ok = yield from traced(
                    ctx, "row_ins", self._row_insert(worker, ctx, op, table)
                )
            if not ok:
                yield from self.lockmgr.release_all_timed(ctx)
                return False
            redo_bytes += table.redo_bytes(op.kind)
            if check.enabled:
                check.record_op(ctx, op, op.lock is not None)
        yield from self.tracer.traced(
            ctx, "innobase_commit", self._commit(ctx, redo_bytes)
        )
        repl = self.replication
        if repl is not None and redo_bytes:
            # Lossless semisync (AFTER_SYNC): the ack wait happens with
            # locks still held, so replication latency stretches lock
            # hold times — a cross-layer coupling the variance tree
            # surfaces as repl_ack_wait feeding lock waits downstream.
            yield from repl.commit_barrier(ctx, redo_bytes)
        yield from self.lockmgr.release_all_timed(ctx)
        return True

    def _mysql_execute_fast(self, worker, ctx, spec):
        """Uninstrumented ``_mysql_execute`` with the hot chain flattened.

        With no instrumentation active every ``traced()`` wrapper below
        ``_mysql_execute`` is a pass-through, so the per-statement
        delegation frames (``_row_search`` / ``_row_update`` /
        ``_row_insert`` / ``_clust_index_insert`` / ``_lock_rec_lock``,
        the B-tree ``search`` descent, ``fix_page``, ``CoreSet.consume``
        and ``request_timed``) are inlined into one generator: the kernel
        resumes every yield through each frame of the delegation chain,
        and chain depth is the single largest wall-clock cost of a run.
        The yield sequence and every state mutation are identical to the
        traced chain — the equivalence goldens and differential tests pin
        the two together.
        """
        redo_bytes = 0
        sim = self.sim
        check = self.check
        cpu = self.cpu
        busy = cpu._busy_until
        sample = self._stmt_cpu_dist.sample
        rng = self.rng
        tables = self.catalog._tables
        pool = self.pool
        pages_get = pool._pages.get
        hit_cost = pool._hit_cost
        lru = pool._lru
        backlog = worker.llu_backlog
        lockmgr = self.lockmgr
        bookkeeping = lockmgr.bookkeeping
        if bookkeeping:
            objects_get = lockmgr._objects.get
            bk_base = lockmgr.bookkeeping_base
            bk_per_entry = lockmgr.bookkeeping_per_entry
            scan_frac = lockmgr._scan_fraction()
            mutex = lockmgr.lock_sys_mutex
        row_cpu = self.config.row_cpu
        WAITING = RequestStatus.WAITING
        GRANTED = RequestStatus.GRANTED
        DEADLOCK = RequestStatus.DEADLOCK
        for op in spec.ops:
            # CoreSet.consume(sample(rng)), inline.
            cost = sample(rng)
            if cost > 0:
                cpu.total_bursts += 1
                cpu.total_busy += cost
                index = busy.index(min(busy))
                now = sim.now
                start = busy[index]
                if now > start:
                    start = now
                end = start + cost
                busy[index] = end
                yield end - now
            table = tables[op.table]
            kind = op.kind
            key = op.key
            if kind == "select":
                dirty = False
            else:
                # Updates and inserts take the record lock *before* the
                # descent (_row_update / _row_insert): request_timed +
                # lock_rec_lock, inline.
                obj_id = table.lock_id(key)
                if bookkeeping:
                    obj = objects_get(obj_id)
                    entries = (
                        0 if obj is None else len(obj.granted) + len(obj.waiting)
                    )
                    if mutex.holder is None:
                        mutex.holder = sim.current
                        mutex.total_acquisitions += 1
                    else:
                        yield from mutex.acquire()
                    bk_cost = bk_base + bk_per_entry * entries * scan_frac
                    lockmgr.bookkeeping_time += bk_cost
                    yield bk_cost
                    mutex.release()
                request = lockmgr.request(ctx, obj_id, LockMode.X)
                status = request.status
                if status is WAITING:
                    yield from lockmgr.wait(request)
                    status = request.status
                if status is not GRANTED:
                    ctx.abort_reason = (
                        "deadlock" if status is DEADLOCK else "timeout"
                    )
                    yield from self.lockmgr.release_all_timed(ctx)
                    return False
                dirty = True
                if kind != "update":
                    table.inserts += 1
            # BTreeIndex.search, inline: one buffer-pool access per
            # interior level plus the leaf, with fix_page's hit protocol
            # flattened (miss / make-young delegate to the pool).  The
            # descent-path cache of ``interior_pages`` and the slot math
            # of ``leaf_page`` are inlined too — both recompute the same
            # leaf slot.
            index_obj = table.index
            level_cost = index_obj.level_cpu_cost
            slot = (key % index_obj.n_keys) // index_obj.keys_per_leaf
            path = index_obj._full_path_cache.get(slot)
            if path is None:
                path = index_obj._full_path_cache[slot] = (
                    index_obj.interior_pages(key)
                    + ((index_obj.name, "leaf", slot),)
                )
            last = len(path) - 1
            for i, page_id in enumerate(path):
                dirty_here = dirty and i == last
                yield level_cost
                while True:
                    page = pages_get(page_id)
                    if page is None:
                        pool.misses += 1
                        page = yield from pool._read_in(ctx, page_id)
                        if dirty_here:
                            page.dirty = True
                        break
                    pool.hits += 1
                    yield hit_cost
                    if pages_get(page_id) is not page:
                        # Evicted while paused: take the miss path.
                        continue
                    if dirty_here:
                        page.dirty = True
                    if page_id in lru._old:
                        promote = True
                    else:
                        young = lru._young
                        if page_id not in young:
                            raise KeyError("page %r not in LRU" % (page_id,))
                        promote = (lru._clock - lru._stamp.get(page_id, 0)) > (
                            lru.young_reorder_depth * len(young)
                        )
                    if promote:
                        yield from pool._make_young(ctx, page_id, backlog)
                    break
            if kind == "select":
                yield row_cpu
                if op.lock is not None:
                    # sel_set_rec_lock -> lock_rec_lock, inline.
                    mode = LockMode.X if op.lock == "X" else LockMode.S
                    obj_id = table.lock_id(key)
                    if bookkeeping:
                        obj = objects_get(obj_id)
                        entries = (
                            0
                            if obj is None
                            else len(obj.granted) + len(obj.waiting)
                        )
                        if mutex.holder is None:
                            mutex.holder = sim.current
                            mutex.total_acquisitions += 1
                        else:
                            yield from mutex.acquire()
                        bk_cost = bk_base + bk_per_entry * entries * scan_frac
                        lockmgr.bookkeeping_time += bk_cost
                        yield bk_cost
                        mutex.release()
                    request = lockmgr.request(ctx, obj_id, mode)
                    status = request.status
                    if status is WAITING:
                        yield from lockmgr.wait(request)
                        status = request.status
                    if status is not GRANTED:
                        ctx.abort_reason = (
                            "deadlock" if status is DEADLOCK else "timeout"
                        )
                        yield from self.lockmgr.release_all_timed(ctx)
                        return False
            elif kind == "update":
                yield row_cpu
            else:
                # BTreeIndex.insert_body, inline.
                draw = rng.random()
                if draw < index_obj.reorg_probability:
                    yield index_obj.reorg_cpu_cost
                elif draw < index_obj.reorg_probability + index_obj.split_probability:
                    yield index_obj.split_cpu_cost
                else:
                    yield index_obj.insert_cpu_cost
            redo_bytes += table.redo_bytes(kind)
            if check.enabled:
                check.record_op(ctx, op, op.lock is not None)
        # innobase_commit (_commit), inline.
        yield self.config.commit_cpu
        if redo_bytes:
            yield from self.redo.commit(ctx, redo_bytes)
        repl = self.replication
        if repl is not None and redo_bytes:
            yield from repl.commit_barrier(ctx, redo_bytes)
        yield from self.lockmgr.release_all_timed(ctx)
        return True

    # -- statement implementations --------------------------------------

    def _row_search(self, worker, ctx, op, table):
        yield from self.tracer.traced(
            ctx,
            "btr_cur_search_to_nth_level",
            table.index.search(
                ctx, op.key, self.pool, dirty=False, backlog=worker.llu_backlog
            ),
        )
        yield self.config.row_cpu
        if op.lock is not None:
            ok = yield from self.tracer.traced(
                ctx, "sel_set_rec_lock", self._sel_set_rec_lock(ctx, op, table)
            )
            return ok
        return True

    def _sel_set_rec_lock(self, ctx, op, table):
        mode = LockMode.X if op.lock == "X" else LockMode.S
        ok = yield from self.tracer.traced(
            ctx,
            "lock_rec_lock",
            self._lock_rec_lock(ctx, table.lock_id(op.key), mode, "A"),
        )
        return ok

    def _row_update(self, worker, ctx, op, table):
        ok = yield from self.tracer.traced(
            ctx,
            "lock_rec_lock",
            self._lock_rec_lock(ctx, table.lock_id(op.key), LockMode.X, "B"),
        )
        if not ok:
            return False
        yield from self.tracer.traced(
            ctx,
            "btr_cur_search_to_nth_level",
            table.index.search(
                ctx, op.key, self.pool, dirty=True, backlog=worker.llu_backlog
            ),
        )
        yield self.config.row_cpu
        return True

    def _row_insert(self, worker, ctx, op, table):
        ok = yield from self.tracer.traced(
            ctx,
            "lock_rec_lock",
            self._lock_rec_lock(ctx, table.lock_id(op.key), LockMode.X, "B"),
        )
        if not ok:
            return False
        table.inserts += 1
        yield from self.tracer.traced(
            ctx,
            "row_ins_clust_index_entry_low",
            self._clust_index_insert(worker, ctx, op, table),
        )
        return True

    def _clust_index_insert(self, worker, ctx, op, table):
        yield from self.tracer.traced(
            ctx,
            "btr_cur_search_to_nth_level",
            table.index.search(
                ctx, op.key, self.pool, dirty=True, backlog=worker.llu_backlog
            ),
        )
        yield from table.index.insert_body(self.rng)

    def _lock_rec_lock(self, ctx, obj_id, mode, site):
        """Generator: take a record lock; False means abort this attempt."""
        request = yield from self.lockmgr.request_timed(ctx, obj_id, mode)
        if request.status is RequestStatus.WAITING:
            yield from self.tracer.traced(
                ctx,
                "lock_wait_suspend_thread",
                self._lock_wait_suspend(ctx, request, site),
                site=site,
            )
        if request.status is RequestStatus.GRANTED:
            return True
        ctx.abort_reason = (
            "deadlock" if request.status is RequestStatus.DEADLOCK else "timeout"
        )
        return False

    def _lock_wait_suspend(self, ctx, request, site):
        yield from self.tracer.traced(
            ctx, "os_event_wait", self.lockmgr.wait(request), site=site
        )

    # -- commit ----------------------------------------------------------

    def _commit(self, ctx, redo_bytes):
        yield self.config.commit_cpu
        if redo_bytes == 0:
            return  # read-only transaction: nothing to make durable
        yield from self.tracer.traced(
            ctx, "trx_commit", self.redo.commit(ctx, redo_bytes)
        )

    # ------------------------------------------------------------------
    # 2PC participant branches (XA)
    # ------------------------------------------------------------------

    #: The XA prepare / commit record appended per participant round.
    XA_RECORD_BYTES = 64

    def _branch_execute(self, worker, ctx, branch):
        """One participant slice: the statement bodies of
        ``_mysql_execute``, minus commit and minus lock release — locks
        stay held until the global decision arrives."""
        redo_bytes = 0
        consume = self.cpu.consume
        sample = self._stmt_cpu_dist.sample
        rng = self.rng
        catalog = self.catalog
        traced = self.tracer.traced
        check = self.check
        for op in branch.spec.ops:
            yield from consume(sample(rng))
            table = catalog[op.table]
            if op.kind == "select":
                ok = yield from traced(
                    ctx, "row_search_for_mysql", self._row_search(worker, ctx, op, table)
                )
            elif op.kind == "update":
                ok = yield from traced(
                    ctx, "row_upd_step", self._row_update(worker, ctx, op, table)
                )
            else:
                ok = yield from traced(
                    ctx, "row_ins", self._row_insert(worker, ctx, op, table)
                )
            if not ok:
                return False
            redo_bytes += table.redo_bytes(op.kind)
            if check.enabled:
                check.record_op(ctx, op, op.lock is not None)
        branch.redo_bytes = redo_bytes
        return True

    def _branch_prepare(self, ctx, branch):
        # XA PREPARE: the branch's redo plus a prepare record must be on
        # stable storage before the yes vote leaves the node.
        yield self.config.commit_cpu
        if branch.redo_bytes:
            yield from self.redo.commit(
                ctx, branch.redo_bytes + self.XA_RECORD_BYTES
            )

    def _branch_commit(self, ctx, branch):
        # XA COMMIT: the decision is sealed with a second forced record —
        # the per-participant cost that makes distributed commit waits a
        # first-order variance source.
        yield self.config.commit_cpu
        if branch.redo_bytes:
            yield from self.redo.commit(ctx, self.XA_RECORD_BYTES)

    def _branch_release(self, ctx, branch):
        yield from self.lockmgr.release_all_timed(ctx)

    # ------------------------------------------------------------------
    # Node crash and recovery hooks (repro.recovery)
    # ------------------------------------------------------------------

    def _crash_volatile(self, report):
        # Redo tail past the durable LSN, the lock table and every cached
        # page die with the server; the devices themselves survive.
        lost = self.redo.crash()
        self.lockmgr.crash()
        self.pool.crash()
        return lost

    def _held_locks(self, ctx):
        return self.lockmgr.held_locks(ctx)

    def _recovery_replay(self):
        # ARIES analysis + redo collapsed to a sequential scan of the
        # durable redo prefix on the log device.
        replayed = yield from self.log_disk.read_sequential(
            int(self.redo.durable_lsn)
        )
        return replayed
