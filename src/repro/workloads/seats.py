"""SEATS: airline ticketing (Stonebraker & Pavlo), scale factor 50.

The paper uses SEATS as its second highly contended workload: customers
search flights and make reservations, and reservation traffic
concentrates on a small set of *active* flights (departures in the near
future).  We model that with a Zipfian choice over the flight table, so a
handful of flight rows absorb most of the X locks.
"""

from repro.sim.rand import Zipfian
from repro.workloads.base import Operation, Workload


class SEATS(Workload):
    name = "seats"

    def __init__(self, scale_factor=50, flights_per_sf=10, hot_theta=0.95):
        super().__init__()
        self.scale_factor = scale_factor
        n_flights = max(10, scale_factor * flights_per_sf)
        n_customers = scale_factor * 1_000
        n_reservations = n_flights * 100
        self.schema = {
            "flight": n_flights,
            "customer": n_customers,
            "reservation": n_reservations,
            "airport": 300,
        }
        self._flight_zipf = Zipfian(n_flights, theta=hot_theta)
        self.mix = [
            ("FindFlights", 10, self._find_flights),
            ("FindOpenSeats", 35, self._find_open_seats),
            ("NewReservation", 20, self._new_reservation),
            ("UpdateReservation", 15, self._update_reservation),
            ("UpdateCustomer", 10, self._update_customer),
            ("DeleteReservation", 10, self._delete_reservation),
        ]
        self.finalize()

    def _flight(self, rng):
        return self._flight_zipf.sample(rng)

    def _find_flights(self, rng):
        ops = [Operation("select", "airport", rng.randrange(self.schema["airport"]))]
        for _ in range(5):
            ops.append(Operation("select", "flight", self._flight(rng)))
        return ops

    def _find_open_seats(self, rng):
        f = self._flight(rng)
        ops = [Operation("select", "flight", f)]
        for _ in range(10):
            ops.append(
                Operation("select", "reservation", rng.randrange(self.schema["reservation"]))
            )
        return ops

    def _new_reservation(self, rng):
        f = self._flight(rng)
        c = rng.randrange(self.schema["customer"])
        return [
            # Seat map check-and-claim: a locking read on the hot flight
            # row, held to commit.
            Operation("select", "flight", f, lock="X"),
            Operation("update", "flight", f),
            Operation("select", "customer", c),
            Operation("insert", "reservation", self.fresh_key("reservation")),
            Operation("update", "customer", c),
        ]

    def _update_reservation(self, rng):
        f = self._flight(rng)
        r = rng.randrange(self.schema["reservation"])
        return [
            Operation("select", "reservation", r, lock="X"),
            Operation("update", "reservation", r),
            Operation("update", "flight", f),
        ]

    def _update_customer(self, rng):
        c = rng.randrange(self.schema["customer"])
        return [
            Operation("select", "customer", c, lock="X"),
            Operation("update", "customer", c),
        ]

    def _delete_reservation(self, rng):
        f = self._flight(rng)
        r = rng.randrange(self.schema["reservation"])
        return [
            Operation("select", "reservation", r, lock="X"),
            Operation("update", "reservation", r),
            Operation("update", "flight", f),
            Operation("update", "customer", rng.randrange(self.schema["customer"])),
        ]
