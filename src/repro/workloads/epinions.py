"""Epinions: customer-review website workload, scale factor 500.

Users browse reviews and occasionally write one; reads dominate and
writes land on essentially distinct rows, so there is very little lock
contention — the paper uses it (with YCSB) to show VATS is harmless when
the scheduler has nothing to decide.
"""

from repro.workloads.base import Operation, Workload


class Epinions(Workload):
    name = "epinions"

    def __init__(self, scale_factor=500, users_per_sf=200, items_per_sf=40):
        super().__init__()
        self.scale_factor = scale_factor
        n_users = scale_factor * users_per_sf
        n_items = scale_factor * items_per_sf
        self.schema = {
            "useracct": n_users,
            "item": n_items,
            "review": n_items * 10,
            "trust": n_users * 5,
        }
        self.mix = [
            ("GetReviewItemById", 25, self._reviews_by_item),
            ("GetReviewsByUser", 20, self._reviews_by_user),
            ("GetAverageRatingByTrustedUser", 15, self._avg_rating),
            ("GetItemAverageRating", 15, self._item_rating),
            ("GetItemReviewsByTrustedUser", 10, self._item_reviews_trusted),
            ("UpdateUserName", 5, self._update_user),
            ("UpdateItemTitle", 5, self._update_item),
            ("UpdateReviewRating", 5, self._update_review),
        ]
        self.finalize()

    def _reviews_by_item(self, rng):
        item = rng.randrange(self.schema["item"])
        ops = [Operation("select", "item", item)]
        for _ in range(10):
            ops.append(Operation("select", "review", rng.randrange(self.schema["review"])))
        return ops

    def _reviews_by_user(self, rng):
        user = rng.randrange(self.schema["useracct"])
        ops = [Operation("select", "useracct", user)]
        for _ in range(10):
            ops.append(Operation("select", "review", rng.randrange(self.schema["review"])))
        return ops

    def _avg_rating(self, rng):
        ops = [Operation("select", "useracct", rng.randrange(self.schema["useracct"]))]
        for _ in range(5):
            ops.append(Operation("select", "trust", rng.randrange(self.schema["trust"])))
            ops.append(Operation("select", "review", rng.randrange(self.schema["review"])))
        return ops

    def _item_rating(self, rng):
        item = rng.randrange(self.schema["item"])
        ops = [Operation("select", "item", item)]
        for _ in range(8):
            ops.append(Operation("select", "review", rng.randrange(self.schema["review"])))
        return ops

    def _item_reviews_trusted(self, rng):
        ops = [
            Operation("select", "item", rng.randrange(self.schema["item"])),
            Operation("select", "useracct", rng.randrange(self.schema["useracct"])),
        ]
        for _ in range(5):
            ops.append(Operation("select", "review", rng.randrange(self.schema["review"])))
        return ops

    def _update_user(self, rng):
        return [Operation("update", "useracct", rng.randrange(self.schema["useracct"]))]

    def _update_item(self, rng):
        return [Operation("update", "item", rng.randrange(self.schema["item"]))]

    def _update_review(self, rng):
        return [Operation("update", "review", rng.randrange(self.schema["review"]))]
