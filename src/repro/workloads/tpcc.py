"""TPC-C: the paper's representative contended workload.

Standard five-transaction mix (NewOrder 45%, Payment 43%, OrderStatus 4%,
Delivery 4%, StockLevel 4%) with the contention structure of the
OLTP-Bench implementation on MySQL:

- NewOrder takes ``SELECT ... FOR UPDATE`` on its district row (an X lock
  from a *select* statement — the paper's ``os_event_wait [A]`` call
  site) and holds it to commit: the district rows (10 per warehouse) are
  the primary hot spot.
- Payment updates the warehouse row directly (X from an *update*
  statement — call site [B]): W rows shared by 43% of transactions.
- Delivery walks all 10 districts of a warehouse, making it the long,
  lock-hungry transaction.
- NewOrder's 5-15 order lines are the benchmark's *inherent* work
  variance; ``fixed_order_lines`` pins them for the Appendix C.1
  pure-workload experiment.

Every operation is tagged with its ``home`` warehouse, so the workload
shards naturally by warehouse under the cluster router.  Two knobs
create genuine cross-shard transactions: ``remote_warehouse_prob``
(spec 2.4.1.5: ~1% of NewOrder order lines draw stock from a remote
warehouse) and ``remote_payment_prob`` (spec 2.5.1.2: a Payment for a
customer homed at another warehouse; the spec says 15%, default here is
0 so single-node runs mint byte-identical specs).  ``item`` is the
replicated read-only table — its selects carry ``home=None``.

Row counts are scaled down from the spec (3000 customers/district ->
``customers_per_district``) — contention depends on the *hot* row counts
(W warehouses, 10W districts), which are kept exact, not on the cold
table sizes.
"""

from repro.sim.rand import Zipfian
from repro.workloads.base import Operation, Workload


class TPCC(Workload):
    name = "tpcc"

    ITEMS = 10_000

    def __init__(
        self,
        warehouses=128,
        customers_per_district=300,
        items_per_warehouse=2_000,
        fixed_order_lines=None,
        remote_warehouse_prob=0.01,
        remote_payment_prob=0.0,
        warehouse_zipf_theta=0.99,
        item_zipf_theta=0.8,
        payment_name_scan=10,
    ):
        super().__init__()
        if warehouses < 1:
            raise ValueError("need at least one warehouse")
        self.warehouses = warehouses
        # Warehouse activity is skewed (terminals are not equally busy);
        # this is the contention-calibration knob that puts the simulated
        # 128-WH run in the paper's lock-bound regime.  None = uniform.
        if warehouse_zipf_theta and warehouses > 1:
            self._warehouse_zipf = Zipfian(warehouses, theta=warehouse_zipf_theta)
        else:
            self._warehouse_zipf = None
        self.payment_name_scan = payment_name_scan
        # Item popularity is skewed (best-sellers): stock rows of popular
        # items are locked mid-NewOrder, *after* the district wait, which
        # is what makes transaction ages diverge from queue-arrival order
        # — the regime where the scheduling discipline matters.
        if item_zipf_theta:
            self._item_zipf = Zipfian(self.ITEMS, theta=item_zipf_theta)
        else:
            self._item_zipf = None
        self.customers_per_district = customers_per_district
        self.items_per_warehouse = items_per_warehouse
        self.fixed_order_lines = fixed_order_lines
        self.remote_warehouse_prob = remote_warehouse_prob
        self.remote_payment_prob = remote_payment_prob
        w = warehouses
        self.schema = {
            "warehouse": w,
            "district": w * 10,
            "customer": w * 10 * customers_per_district,
            "stock": w * items_per_warehouse,
            "item": self.ITEMS,
            "orders": w * 10 * customers_per_district,
            "order_line": w * 10 * customers_per_district * 10,
            "new_order": w * 10,
            "history": w * 10 * customers_per_district,
        }
        self.mix = [
            ("NewOrder", 45, self._new_order),
            ("Payment", 43, self._payment),
            ("OrderStatus", 4, self._order_status),
            ("Delivery", 4, self._delivery),
            ("StockLevel", 4, self._stock_level),
        ]
        self.finalize()

    # ------------------------------------------------------------------
    # Key helpers
    # ------------------------------------------------------------------

    def _warehouse(self, rng):
        if self._warehouse_zipf is not None:
            return self._warehouse_zipf.sample(rng)
        return rng.randrange(self.warehouses)

    def _district(self, rng, w):
        return w * 10 + rng.randrange(10)

    def _customer(self, rng, d):
        return d * self.customers_per_district + rng.randrange(
            self.customers_per_district
        )

    def _item(self, rng):
        if self._item_zipf is not None:
            return self._item_zipf.sample(rng)
        return rng.randrange(self.ITEMS)

    def _stock(self, rng, w, item):
        return w * self.items_per_warehouse + item % self.items_per_warehouse

    # ------------------------------------------------------------------
    # Transaction makers
    # ------------------------------------------------------------------

    def _order_line_count(self, rng):
        if self.fixed_order_lines is not None:
            return self.fixed_order_lines
        return rng.randint(5, 15)

    def _new_order(self, rng):
        w = self._warehouse(rng)
        d = self._district(rng, w)
        c = self._customer(rng, d)
        ops = [
            Operation("select", "warehouse", w, home=w),
            Operation("select", "customer", c, home=w),
            # SELECT ... FOR UPDATE on the district row (hot!): an X lock
            # taken from a select statement -> os_event_wait call site A.
            Operation("select", "district", d, lock="X", home=w),
            Operation("update", "district", d, home=w),
        ]
        for _ in range(self._order_line_count(rng)):
            item = self._item(rng)
            if rng.random() < self.remote_warehouse_prob and self.warehouses > 1:
                supply_w = rng.randrange(self.warehouses)
            else:
                supply_w = w
            # ITEM is read-only and replicated everywhere: home=None.
            ops.append(Operation("select", "item", item))
            ops.append(
                Operation(
                    "select",
                    "stock",
                    self._stock(rng, supply_w, item),
                    lock="X",
                    home=supply_w,
                )
            )
            ops.append(
                Operation(
                    "update", "stock", self._stock(rng, supply_w, item), home=supply_w
                )
            )
            ops.append(
                Operation(
                    "insert", "order_line", self.fresh_key("order_line"), home=w
                )
            )
        ops.append(Operation("insert", "orders", self.fresh_key("orders"), home=w))
        # Inserting into NEW_ORDER takes a next-key lock on the district's
        # insertion point — the classic TPC-C conflict with Delivery,
        # which locks the same spot while consuming the oldest order.
        ops.append(Operation("update", "new_order", d, home=w))
        ops.append(
            Operation("insert", "new_order", self.fresh_key("new_order"), home=w)
        )
        return ops

    def _payment(self, rng):
        w = self._warehouse(rng)
        d = self._district(rng, w)
        # Remote payment (spec 2.5.1.2): the paying customer is homed at
        # another warehouse — the canonical TPC-C cross-shard write.  The
        # short-circuit keeps the draw (and the RNG stream) out of
        # single-node runs, where the default probability is 0.
        if (
            self.remote_payment_prob
            and self.warehouses > 1
            and rng.random() < self.remote_payment_prob
        ):
            cw = (w + 1 + rng.randrange(self.warehouses - 1)) % self.warehouses
            cd = self._district(rng, cw)
        else:
            cw = w
            cd = d
        c = self._customer(rng, cd)
        ops = [
            # UPDATE WAREHOUSE ... : X lock from an update statement (site B)
            Operation("update", "warehouse", w, home=w),
            Operation("update", "district", d, home=w),
        ]
        if rng.random() < 0.6:
            # Lookup by last name: a secondary-index range scan over the
            # namesakes before the update (the expensive Payment variant).
            for _ in range(self.payment_name_scan):
                ops.append(
                    Operation("select", "customer", self._customer(rng, cd), home=cw)
                )
        ops.append(Operation("update", "customer", c, home=cw))
        ops.append(Operation("insert", "history", self.fresh_key("history"), home=w))
        return ops

    def _order_status(self, rng):
        w = self._warehouse(rng)
        d = self._district(rng, w)
        c = self._customer(rng, d)
        ops = [Operation("select", "customer", c, home=w)]
        for _ in range(rng.randint(5, 15)):
            ops.append(
                Operation(
                    "select",
                    "order_line",
                    rng.randrange(self.schema["order_line"]),
                    home=w,
                )
            )
        return ops

    def _delivery(self, rng):
        w = self._warehouse(rng)
        ops = []
        for dd in range(10):
            d = w * 10 + dd
            # The oldest NEW_ORDER row per district is found with a
            # locking select (site A) before being consumed.
            ops.append(Operation("select", "new_order", d, lock="X", home=w))
            ops.append(Operation("update", "new_order", d, home=w))
            ops.append(
                Operation(
                    "update", "orders", rng.randrange(self.schema["orders"]), home=w
                )
            )
            ops.append(Operation("update", "customer", self._customer(rng, d), home=w))
        return ops

    def _stock_level(self, rng):
        w = self._warehouse(rng)
        d = self._district(rng, w)
        ops = [Operation("select", "district", d, home=w)]
        for _ in range(20):
            item = rng.randrange(self.ITEMS)
            ops.append(Operation("select", "stock", self._stock(rng, w, item), home=w))
        return ops
