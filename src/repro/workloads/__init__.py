"""The five OLTP-Bench workloads the paper evaluates (Section 7.1).

Each workload is a transaction-mix generator with the benchmark's schema,
per-type operation lists, and — crucially for this study — its
*contention profile*: which rows are hot, which statements take locks,
and how much work varies between transactions of the same type.

- :mod:`repro.workloads.tpcc` — TPC-C, the paper's representative
  workload (highly contended: district and warehouse hot rows).
- :mod:`repro.workloads.seats` — SEATS airline ticketing at scale 50
  (highly contended: hot flight rows).
- :mod:`repro.workloads.tatp` — TATP caller-location at scale 10
  (contended, but less than TPC-C).
- :mod:`repro.workloads.epinions` — Epinions review site at scale 500
  (very low contention).
- :mod:`repro.workloads.ycsb` — YCSB microbenchmark at scale 1200
  (little or no contention).

:mod:`repro.workloads.driver` provides the OLTP-Bench-style open-loop
client that sustains a constant offered throughput (the paper's 500
transactions per second) regardless of server latency.
"""

from repro.workloads.base import Operation, TxnSpec, Workload
from repro.workloads.driver import LoadDriver
from repro.workloads.tpcc import TPCC
from repro.workloads.seats import SEATS
from repro.workloads.tatp import TATP
from repro.workloads.epinions import Epinions
from repro.workloads.ycsb import YCSB

WORKLOADS = {
    "tpcc": TPCC,
    "seats": SEATS,
    "tatp": TATP,
    "epinions": Epinions,
    "ycsb": YCSB,
}


def make_workload(name, **kwargs):
    """Factory: build a workload by its lowercase benchmark name."""
    try:
        cls = WORKLOADS[name.lower()]
    except KeyError:
        raise ValueError("unknown workload %r" % (name,)) from None
    return cls(**kwargs)


__all__ = [
    "Epinions",
    "LoadDriver",
    "Operation",
    "SEATS",
    "TATP",
    "TPCC",
    "TxnSpec",
    "WORKLOADS",
    "Workload",
    "YCSB",
    "make_workload",
]
