"""TATP: the telecom caller-location benchmark, scale factor 10.

TATP is read-dominated (~80% reads in the standard mix) with short
point transactions; the paper classifies it as contended, but less so
than TPC-C.  Updates target subscriber rows chosen with a mild Zipfian
skew (busy subscribers), which generates occasional lock conflicts at
500 tps without TPC-C's structural hot rows.
"""

from repro.sim.rand import Zipfian
from repro.workloads.base import Operation, Workload


class TATP(Workload):
    name = "tatp"

    def __init__(self, scale_factor=10, subscribers_per_sf=10_000, hot_theta=0.8):
        super().__init__()
        self.scale_factor = scale_factor
        n_subscribers = scale_factor * subscribers_per_sf
        self.schema = {
            "subscriber": n_subscribers,
            "access_info": n_subscribers * 2,
            "special_facility": n_subscribers * 2,
            "call_forwarding": n_subscribers * 3,
        }
        self._sub_zipf = Zipfian(n_subscribers, theta=hot_theta)
        self.mix = [
            ("GetSubscriberData", 35, self._get_subscriber_data),
            ("GetNewDestination", 10, self._get_new_destination),
            ("GetAccessData", 35, self._get_access_data),
            ("UpdateSubscriberData", 2, self._update_subscriber_data),
            ("UpdateLocation", 14, self._update_location),
            ("InsertCallForwarding", 2, self._insert_call_forwarding),
            ("DeleteCallForwarding", 2, self._delete_call_forwarding),
        ]
        self.finalize()

    def _subscriber(self, rng):
        return self._sub_zipf.sample(rng)

    def _get_subscriber_data(self, rng):
        return [Operation("select", "subscriber", self._subscriber(rng))]

    def _get_new_destination(self, rng):
        s = self._subscriber(rng)
        return [
            Operation("select", "special_facility", s * 2),
            Operation("select", "call_forwarding", s * 3),
        ]

    def _get_access_data(self, rng):
        return [Operation("select", "access_info", self._subscriber(rng) * 2)]

    def _update_subscriber_data(self, rng):
        s = self._subscriber(rng)
        return [
            Operation("update", "subscriber", s),
            Operation("update", "special_facility", s * 2),
        ]

    def _update_location(self, rng):
        return [Operation("update", "subscriber", self._subscriber(rng))]

    def _insert_call_forwarding(self, rng):
        s = self._subscriber(rng)
        return [
            Operation("select", "subscriber", s),
            Operation("select", "special_facility", s * 2, lock="S"),
            Operation("insert", "call_forwarding", self.fresh_key("call_forwarding")),
        ]

    def _delete_call_forwarding(self, rng):
        s = self._subscriber(rng)
        return [
            Operation("select", "subscriber", s),
            Operation("update", "call_forwarding", s * 3),
        ]
