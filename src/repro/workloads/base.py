"""Workload building blocks: operations, transaction specs, mixes.

An :class:`Operation` is one statement's worth of work as the engines see
it:

- ``select`` with ``lock=None`` — an MVCC consistent read (no record
  lock; InnoDB's plain SELECT);
- ``select`` with ``lock="X"``/``"S"`` — a locking read (SELECT ... FOR
  UPDATE / LOCK IN SHARE MODE); lock waits here are the paper's
  ``os_event_wait [A]`` call site;
- ``update`` — an X record lock (call site [B]) plus a dirty page write
  and redo bytes;
- ``insert`` — an X lock on a fresh key, the variable-path clustered
  index insert, and redo bytes.

A :class:`TxnSpec` is the ordered operation list of one transaction plus
its type name.  A :class:`Workload` owns the schema (``{table: rows}``)
and the weighted transaction mix, and mints specs from a seeded RNG.

Operations optionally carry a ``home`` — the partition-key value (a
TPC-C warehouse id) the row lives under.  Single-node runs ignore it;
the cluster router (:mod:`repro.cluster.router`) uses it to split a
spec into per-shard branches.  ``home=None`` marks rows on replicated
read-mostly tables (TPC-C's ``item``) that any shard can serve.
"""

import itertools


class Operation:
    """One statement: kind, table, key, and the lock it takes (if any)."""

    __slots__ = ("kind", "table", "key", "lock", "home")

    KINDS = ("select", "update", "insert")

    def __init__(self, kind, table, key, lock=None, home=None):
        if kind not in self.KINDS:
            raise ValueError("unknown operation kind %r" % (kind,))
        if kind == "update" and lock is None:
            lock = "X"
        if kind == "insert" and lock is None:
            lock = "X"
        if lock not in (None, "S", "X"):
            raise ValueError("unknown lock mode %r" % (lock,))
        self.kind = kind
        self.table = table
        self.key = key
        self.lock = lock
        self.home = home

    def __repr__(self):
        lock = "" if self.lock is None else " lock=%s" % self.lock
        home = "" if self.home is None else " home=%s" % self.home
        return "<%s %s[%s]%s%s>" % (self.kind, self.table, self.key, lock, home)


class TxnSpec:
    """One transaction to execute: its type and ordered operations."""

    __slots__ = ("txn_type", "ops")

    def __init__(self, txn_type, ops):
        self.txn_type = txn_type
        self.ops = ops

    def __len__(self):
        return len(self.ops)

    def __repr__(self):
        return "TxnSpec(%s, %d ops)" % (self.txn_type, len(self.ops))


class Workload:
    """Base class: schema + weighted mix + per-type spec makers.

    Subclasses set ``name``, ``schema`` and ``mix`` — a list of
    ``(txn_type, weight, maker)`` where ``maker(rng)`` returns the
    operation list — in ``__init__`` and get transaction minting and
    insert-key allocation for free.
    """

    name = "abstract"

    def __init__(self):
        self.schema = {}
        self.mix = []
        self._insert_counters = {}
        self._cumulative = None

    def finalize(self):
        """Precompute the mix CDF; call at the end of subclass __init__."""
        total = float(sum(weight for _, weight, _ in self.mix))
        acc = 0.0
        self._cumulative = []
        for txn_type, weight, maker in self.mix:
            acc += weight / total
            self._cumulative.append((acc, txn_type, maker))

    def make_txn(self, rng):
        """Mint one :class:`TxnSpec` according to the mix."""
        if self._cumulative is None:
            raise RuntimeError("%s.finalize() was never called" % (self.name,))
        draw = rng.random()
        for acc, txn_type, maker in self._cumulative:
            if draw <= acc:
                return TxnSpec(txn_type, maker(rng))
        _acc, txn_type, maker = self._cumulative[-1]
        return TxnSpec(txn_type, maker(rng))

    def fresh_key(self, table):
        """A never-before-used key for an insert into ``table``."""
        counter = self._insert_counters.get(table)
        if counter is None:
            counter = itertools.count(self.schema.get(table, 0))
            self._insert_counters[table] = counter
        return next(counter)

    @property
    def txn_types(self):
        return [txn_type for txn_type, _weight, _maker in self.mix]

    def __repr__(self):
        return "<Workload %s tables=%d types=%d>" % (
            self.name,
            len(self.schema),
            len(self.mix),
        )
