"""The open-loop, constant-rate load driver (OLTP-Bench style).

The paper holds offered throughput constant (500 transactions per
second) across all systems and algorithms, using OLTP-Bench's
rate-limited client so that latency variance is not confounded by load
changes.  :class:`LoadDriver` reproduces that: arrivals occur at a fixed
interarrival time (with optional small jitter to avoid phase-locking
with periodic server activity), independently of how fast the server is
responding — so server-side queueing shows up as latency, exactly as in
the paper's measurement methodology.

Fault injection: during a configured arrival-burst window the interarrival
gap is divided by the plan's rate factor — a deterministic overload pulse
that exercises the engines' bounded-queue shedding and deadline paths.

The driver is engine-agnostic: anything with ``submit(ctx, spec)`` /
``drain()`` can sit behind it, which is how clustered runs work — the
runner hands it a :class:`~repro.cluster.Cluster` (router + 2PC
coordinator) instead of a bare engine, and the driver never knows.
"""

from repro.core.annotations import TransactionContext


class LoadDriver:
    """Submit ``n_txns`` transactions at ``rate_tps`` to an engine."""

    def __init__(
        self,
        sim,
        engine,
        workload,
        streams,
        rate_tps=500.0,
        n_txns=2000,
        jitter_fraction=0.1,
    ):
        if rate_tps <= 0:
            raise ValueError("rate_tps must be positive")
        self.sim = sim
        self.engine = engine
        self.workload = workload
        self.rate_tps = rate_tps
        self.n_txns = n_txns
        self.jitter_fraction = jitter_fraction
        self._rng = streams.stream("driver")
        self._faults = sim.faults
        self.submitted = 0
        self.shed = 0

    @property
    def interarrival(self):
        """Mean microseconds between arrivals."""
        return 1_000_000.0 / self.rate_tps

    def start(self):
        """Spawn the arrival process; returns its Process."""
        return self.sim.spawn(self._arrivals(), name="driver")

    def _arrivals(self):
        base = self.interarrival
        spread = base * self.jitter_fraction
        for i in range(self.n_txns):
            spec = self.workload.make_txn(self._rng)
            ctx = TransactionContext(self.sim, i, spec.txn_type)
            accepted = self.engine.submit(ctx, spec)
            self.submitted += 1
            if accepted is False:
                self.shed += 1
            gap = base
            if spread:
                gap += self._rng.uniform(-spread, spread)
            if self._faults.enabled:
                gap /= self._faults.arrival_rate_factor(self.sim.now)
            yield max(0.0, gap)
        self.engine.drain()
