"""YCSB: the cloud-serving microbenchmark, scale factor 1200.

Simple single-table point operations over a huge uniform key space —
with 500 tps spread over ~a million keys there is effectively no lock
contention, making YCSB the paper's null case: the choice of lock
scheduling algorithm is immaterial here (Table 4 bottom).
"""

from repro.sim.rand import Zipfian
from repro.workloads.base import Operation, Workload


class YCSB(Workload):
    name = "ycsb"

    def __init__(
        self,
        scale_factor=1200,
        rows_per_sf=200,
        read_fraction=0.5,
        ops_per_txn=4,
        zipf_theta=None,
    ):
        super().__init__()
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        self.scale_factor = scale_factor
        n_rows = scale_factor * rows_per_sf
        self.schema = {"usertable": n_rows}
        self.read_fraction = read_fraction
        self.ops_per_txn = ops_per_txn
        self._zipf = Zipfian(n_rows, theta=zipf_theta) if zipf_theta else None
        read_weight = int(round(read_fraction * 100))
        self.mix = [
            ("ReadRecord", read_weight, self._read_txn),
            ("UpdateRecord", 100 - read_weight, self._update_txn),
        ]
        self.finalize()

    def _key(self, rng):
        if self._zipf is not None:
            return self._zipf.sample(rng)
        return rng.randrange(self.schema["usertable"])

    def _read_txn(self, rng):
        return [
            Operation("select", "usertable", self._key(rng))
            for _ in range(self.ops_per_txn)
        ]

    def _update_txn(self, rng):
        ops = []
        for i in range(self.ops_per_txn):
            if i % 2 == 0:
                ops.append(Operation("update", "usertable", self._key(rng)))
            else:
                ops.append(Operation("select", "usertable", self._key(rng)))
        return ops
