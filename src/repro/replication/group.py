"""One shard's replica group: log shipping, acks, apply loops, failover.

The primary is the shard's ordinary :class:`~repro.engines.base.Engine`;
replicas are *log consumers*, not engine stacks — each one owns a relay
disk and two simulation processes:

- a **ship loop**: takes the next committed record from the group's
  replication log, pays the network transfer primary → replica (per-link
  FIFO + heavy-tail latency, the same fabric 2PC messages ride), marks
  it received, hands it to the apply loop, and sends the ack back;
- an **apply loop**: replays received records as virtual-time relay-disk
  writes (the same sequential-I/O modelling recovery replay uses),
  advancing the replica's applied LSN and its staleness clock.  A
  ``replica_lag`` fault window stalls this loop, which is how lag is
  injected without touching the primary.

Commit-side coupling: the engines call :meth:`ReplicaGroup
.commit_barrier` after the commit record is durable but *before*
releasing locks — MySQL's lossless-semisync (AFTER_SYNC) point, so
replication latency stretches lock hold times and couples into lock
waits downstream, not just the client response.  The barrier
appends the commit's redo to the replication log, wakes the shippers and
blocks until the mode's required ack count
(:meth:`~repro.replication.config.ReplicationConfig.required_acks`) is
reached; the wait is recorded as the ``repl_ack_wait`` variance-tree
frame, ranking commit-ack round trips against ``os_event_wait`` and
``fil_flush`` exactly as the paper's methodology demands.

Failover: when the primary crashes, :meth:`ReplicaGroup.promote` picks
the most-caught-up live replica (max received LSN, lowest index on a
tie — deterministic), replays its shipped-but-unapplied tail as
sequential disk reads, retires it from the group and bumps the *epoch*.
The engine then restarts warm (no WAL replay — the promotee's state is
current); transactions queued across the outage record the stall as
``promote_wait`` frames.  Everything the group does is recorded for the
replication oracles (:func:`repro.check.oracles.check_replication`).
"""

from repro.sim.disk import Disk, DiskConfig
from repro.sim.kernel import WaitEvent

#: Variance-tree frames replication adds.  The runner instruments them
#: only when the experiment configures replicas, so replica-free runs
#: keep their fast paths (and their golden digests).
REPLICATION_FRAMES = ("repl_ack_wait", "promote_wait")

#: Replica network identities live far above any shard id (shards are
#: 0..N-1 and the coordinator is -1): ``BASE + shard * 1000 + idx``.
REPLICA_NET_BASE = 1_000_000


class Replica:
    """One log consumer: relay disk + shipping/apply cursors.

    Received-but-unapplied records are not queued separately: the apply
    loop indexes the group's shared replication log directly, so the
    window between ``apply_cursor`` and ``recv_cursor`` *is* the apply
    backlog — no per-record tuple is ever copied out of the log.
    """

    __slots__ = (
        "shard", "idx", "net_id", "disk", "cursor", "received_lsn",
        "acked_lsn", "applied_lsn", "applied_origin", "recv_cursor",
        "apply_cursor", "retired", "ship_wakeup", "apply_wakeup",
        "lag_gauge",
    )

    def __init__(self, shard, idx, net_id, disk, lag_gauge):
        self.shard = shard
        self.idx = idx
        self.net_id = net_id
        self.disk = disk
        self.cursor = 0
        self.received_lsn = 0
        self.acked_lsn = 0
        self.applied_lsn = 0
        #: Primary-side commit time of the last applied record — the
        #: age of this replica's view is ``now - applied_origin``.
        self.applied_origin = 0.0
        #: Log indices: records below ``recv_cursor`` have arrived over
        #: the network; records below ``apply_cursor`` are replayed.
        self.recv_cursor = 0
        self.apply_cursor = 0
        self.retired = False
        self.ship_wakeup = None
        self.apply_wakeup = None
        self.lag_gauge = lag_gauge

    def __repr__(self):
        return "<Replica s%dr%d recv=%d applied=%d%s>" % (
            self.shard, self.idx, self.received_lsn, self.applied_lsn,
            " retired" if self.retired else "",
        )


class ReplicaGroup:
    """Primary + N replicas for one shard, over the shared network."""

    def __init__(self, sim, tracer, shard, net_id, network, streams,
                 config, n_replicas):
        self.sim = sim
        self.tracer = tracer
        self.shard = shard
        #: The primary's network identity (its shard id).
        self.net_id = net_id
        self.network = network
        self.config = config
        self.check = sim.check
        self.faults = sim.faults
        self.telemetry = sim.telemetry
        #: The replication log: ``(lsn_end, nbytes, origin_time)`` per
        #: committed batch.  LSNs are cumulative shipped bytes.
        self.log = []
        self.ship_lsn = 0
        #: Promotion epoch: bumped on every failover; commit records
        #: carry it so the split-brain oracle can audit primacy.
        self.epoch = 0
        self.promotions = 0
        self.replica_reads = 0
        #: Lazily allocated: only exists while a commit barrier is
        #: parked, so the common no-waiter ack costs no event object.
        self._ack_event = None
        disk_config = config.apply_disk or DiskConfig.battery_backed()
        self._t_shipped = self.telemetry.counter(
            "repl.s%d.shipped_bytes" % (shard,)
        )
        self._t_acks = self.telemetry.counter("repl.s%d.acks" % (shard,))
        # Both counters shadow plain accounting attributes one-for-one
        # and fire on every commit/ack; fold them in bulk at registry
        # flush instead of paying a Counter.inc per replicated record.
        self.shipped_bytes = 0
        self.acks = 0
        self._flushed_shipped = 0
        self._flushed_acks = 0
        self.telemetry.add_flush_hook(self._flush_counters)
        self.replicas = []
        for idx in range(n_replicas):
            label = "repl.s%dr%d" % (shard, idx)
            replica = Replica(
                shard,
                idx,
                net_id=REPLICA_NET_BASE + shard * 1_000 + idx,
                disk=Disk(sim, streams.stream(label + ".disk"),
                          disk_config, label),
                lag_gauge=self.telemetry.gauge(label + ".lag_us"),
            )
            self.replicas.append(replica)
            sim.spawn(self._ship_loop(replica), name=label + ".ship")
            sim.spawn(self._apply_loop(replica), name=label + ".apply")

    # ------------------------------------------------------------------
    # Wakeup plumbing (condition-variable pattern on kernel events)
    # ------------------------------------------------------------------

    def _wake(self, replica, attr):
        event = getattr(replica, attr)
        if event is not None:
            setattr(replica, attr, None)
            event.fire(None)

    def _flush_counters(self):
        """Fold the deferred shipped/ack totals into their counters."""
        delta = self.shipped_bytes - self._flushed_shipped
        if delta:
            self._t_shipped.inc(delta)
            self._flushed_shipped = self.shipped_bytes
        delta = self.acks - self._flushed_acks
        if delta:
            self._t_acks.inc(delta)
            self._flushed_acks = self.acks

    def _fire_acks(self):
        # Broadcast: detach the event, fire it so every parked commit
        # barrier re-checks its ack predicate.  ``None`` means nobody is
        # parked — the common case — and costs nothing; scheduling is
        # cooperative, so a barrier cannot park between this check and
        # the fire.
        event = self._ack_event
        if event is not None:
            self._ack_event = None
            event.fire(None)

    # ------------------------------------------------------------------
    # Shipping and apply loops (one pair per replica)
    # ------------------------------------------------------------------

    def _ship_loop(self, replica):
        cfg = self.config
        net = self.network
        while True:
            if replica.retired:
                return
            if replica.cursor >= len(self.log):
                event = self.sim.event()
                replica.ship_wakeup = event
                yield WaitEvent(event)
                continue
            lsn_end, nbytes, origin = self.log[replica.cursor]
            replica.cursor += 1
            if net._faults.enabled:
                yield from net.send(
                    self.net_id, replica.net_id,
                    nbytes + cfg.ship_record_bytes,
                )
            else:
                yield net.send_delay(
                    self.net_id, replica.net_id,
                    nbytes + cfg.ship_record_bytes,
                )
            if replica.retired:
                continue
            replica.received_lsn = lsn_end
            # Hand the record to the apply loop by cursor: it replays
            # straight out of ``self.log``, so no per-record tuple is
            # copied.  This loop is serial, so ``cursor`` is exactly the
            # count of records shipped to this replica.
            replica.recv_cursor = replica.cursor
            self._wake(replica, "apply_wakeup")
            if net._faults.enabled:
                yield from net.send(
                    replica.net_id, self.net_id, cfg.ack_bytes
                )
            else:
                yield net.send_delay(
                    replica.net_id, self.net_id, cfg.ack_bytes
                )
            if replica.retired:
                continue
            replica.acked_lsn = lsn_end
            self.acks += 1
            self._fire_acks()

    def _apply_loop(self, replica):
        sim = self.sim
        faults = self.faults
        while True:
            if replica.retired:
                return
            if replica.apply_cursor >= replica.recv_cursor:
                event = sim.event()
                replica.apply_wakeup = event
                yield WaitEvent(event)
                continue
            lsn_end, nbytes, origin = self.log[replica.apply_cursor]
            replica.apply_cursor += 1
            yield from replica.disk.write(nbytes)
            if faults.enabled:
                stall = faults.replica_apply_stall(sim.now)
                if stall > 0.0:
                    yield stall
            replica.applied_lsn = lsn_end
            replica.applied_origin = origin
            replica.lag_gauge.set(sim.now - origin)

    # ------------------------------------------------------------------
    # Commit-side barrier (called by the engines after lock release)
    # ------------------------------------------------------------------

    def _acks_at(self, target):
        count = 0
        for replica in self.replicas:
            if not replica.retired and replica.acked_lsn >= target:
                count += 1
        return count

    def commit_barrier(self, ctx, redo_bytes):
        """Generator: ship one commit's redo, wait for the mode's acks.

        Runs in the committing worker's process with locks still held
        (lossless semisync, AFTER_SYNC): the transaction is durable
        locally, and both the lock release and the client response wait
        for the ack quota.
        """
        sim = self.sim
        self.ship_lsn += redo_bytes
        target = self.ship_lsn
        self.log.append((target, redo_bytes, sim.now))
        self.shipped_bytes += redo_bytes
        live = 0
        for replica in self.replicas:
            if not replica.retired:
                live += 1
                self._wake(replica, "ship_wakeup")
        required = self.config.required_acks(live)
        epoch = self.epoch
        if required > 0:
            t0 = sim.now
            while self._acks_at(target) < required:
                event = self._ack_event
                if event is None:
                    event = self._ack_event = sim.event()
                yield WaitEvent(event)
            dt = sim.now - t0
            tracer = self.tracer
            if dt > 0.0 and "repl_ack_wait" in tracer.instrumented:
                tracer.record(ctx, "repl_ack_wait", dt, site="replication")
        check = self.check
        if check.enabled:
            check.repl_commit(
                ctx.txn_id, self.shard, epoch, target, required,
                self._acks_at(target),
            )

    # ------------------------------------------------------------------
    # Read routing support
    # ------------------------------------------------------------------

    def staleness(self, replica, now):
        """Age of ``replica``'s view: 0 when fully applied, else the
        time since its last applied record committed on the primary."""
        if replica.applied_lsn >= self.ship_lsn:
            return 0.0
        return now - replica.applied_origin

    def pick_replica(self, now):
        """The most-caught-up live replica within the staleness bound.

        Highest applied LSN wins, lowest index on a tie (deterministic);
        ``None`` when no live replica qualifies — the caller falls back
        to the primary, so bounded-staleness reads never fail.
        """
        bound = self.config.staleness_bound_us
        best = None
        for replica in self.replicas:
            if replica.retired:
                continue
            if self.staleness(replica, now) > bound:
                continue
            if best is None or replica.applied_lsn > best.applied_lsn:
                best = replica
        return best

    def live_replicas(self):
        return [r for r in self.replicas if not r.retired]

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------

    def promote(self, crash_time):
        """Generator: promote the most-caught-up replica; returns it.

        Deterministic choice (max received LSN, lowest index on a tie).
        The promotee replays its shipped-but-unapplied tail as
        sequential relay-disk reads — that replay is the failover stall
        the ``promote_wait`` frames account — then leaves the group
        (its apply state *is* the new primary's state) and the epoch
        advances.  Callers must check :meth:`live_replicas` first.
        """
        live = self.live_replicas()
        promotee = live[0]
        for replica in live[1:]:
            if replica.received_lsn > promotee.received_lsn:
                promotee = replica
        tail = promotee.received_lsn - promotee.applied_lsn
        if tail > 0:
            yield from promotee.disk.read_sequential(int(tail))
        promotee.apply_cursor = promotee.recv_cursor
        promotee.applied_lsn = promotee.received_lsn
        promotee.retired = True
        self._wake(promotee, "ship_wakeup")
        self._wake(promotee, "apply_wakeup")
        self.epoch += 1
        self.promotions += 1
        if self.check.enabled:
            self.check.repl_promote(
                self.shard, self.epoch, promotee.idx,
                promotee.received_lsn, self.sim.now,
            )
        self.telemetry.event(
            "repl.promoted",
            shard=self.shard,
            epoch=self.epoch,
            replica=promotee.idx,
            tail_bytes=tail,
            crash_at=crash_time,
            at=self.sim.now,
        )
        return promotee

    def __repr__(self):
        return "<ReplicaGroup s%d %s replicas=%d epoch=%d>" % (
            self.shard, self.config.mode, len(self.replicas), self.epoch,
        )
