"""Primary/replica replication: WAL log shipping, acks, failover.

Each shard of a clustered run becomes a *replica group* — the shard's
engine as primary plus N log-consuming replicas fed over the simulated
network.  See :mod:`repro.replication.group` for the machinery and
:mod:`repro.replication.config` for the mode/read-policy knobs;
``docs/replication.md`` documents the semantics.

Runs with ``replicas=0`` (the default) construct nothing from this
package — the equivalence goldens pin that.
"""

from repro.replication.config import ReplicationConfig
from repro.replication.group import (
    REPLICATION_FRAMES,
    Replica,
    ReplicaGroup,
)

__all__ = [
    "REPLICATION_FRAMES",
    "Replica",
    "ReplicaGroup",
    "ReplicationConfig",
]
