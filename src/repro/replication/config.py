"""Replication configuration: pure knobs, no simulator references.

One :class:`ReplicationConfig` describes every shard's replica group —
the cluster is symmetric, like production primary/replica fleets usually
are.  Three shipping modes, named after the MySQL semisync family:

- ``"sync"`` — the primary's commit waits until *every* live replica has
  durably applied (relay-logged) the transaction's records and acked;
- ``"semi_sync"`` — wait for acks from ``ack_k`` replicas (MySQL's
  ``rpl_semi_sync_master_wait_for_slave_count``);
- ``"async"`` — ship in the background, never wait (classic MySQL
  statement-stream replication; commits are fast and lossy).

``semi_sync`` with ``ack_k >= replicas`` is definitionally ``sync`` and
with ``ack_k == 0`` definitionally ``async`` — the property tests in
``tests/test_replication.py`` pin both identities byte-for-byte.

Read routing: ``read_policy="primary"`` sends everything to the primary
(replicas are pure failover spares); ``"replica_ok"`` lets the router
send a read-only transaction to the most-caught-up replica whose
*staleness bound* holds.  Staleness of a replica at virtual time ``t``
is ``0`` when it has applied everything ever shipped, else ``t -
commit_time(last applied record)`` — the age of its view.  A replica
whose staleness exceeds ``staleness_bound_us`` is skipped; if no replica
qualifies the read falls back to the primary (never fails).  The
recorder logs every replica read with its staleness so the
``repl-stale-read-beyond-bound`` oracle can audit the bound offline.
"""


from repro.exec.schema import register_config


@register_config
class ReplicationConfig:
    """Per-shard replica-group shape + cost knobs (pure configuration)."""

    MODES = ("sync", "semi_sync", "async")
    READ_POLICIES = ("primary", "replica_ok")

    def __init__(
        self,
        mode="semi_sync",
        ack_k=1,
        read_policy="primary",
        staleness_bound_us=5_000.0,
        ship_record_bytes=64,
        ack_bytes=64,
        read_request_bytes=256,
        replica_read_cpu=3.0,
        apply_disk=None,
    ):
        if mode not in self.MODES:
            raise ValueError("unknown replication mode %r" % (mode,))
        if read_policy not in self.READ_POLICIES:
            raise ValueError("unknown read policy %r" % (read_policy,))
        if ack_k < 0:
            raise ValueError("ack_k must be >= 0")
        if staleness_bound_us < 0:
            raise ValueError("staleness_bound_us must be >= 0")
        self.mode = mode
        self.ack_k = ack_k
        self.read_policy = read_policy
        self.staleness_bound_us = staleness_bound_us
        #: Shipping overhead per commit batch (log-event header + GTID).
        self.ship_record_bytes = ship_record_bytes
        self.ack_bytes = ack_bytes
        self.read_request_bytes = read_request_bytes
        #: CPU per statement served by a replica read.
        self.replica_read_cpu = replica_read_cpu
        #: Relay-log device config; defaults to the battery-backed profile
        #: (relay appends are sequential, short and synchronous).
        self.apply_disk = apply_disk

    def required_acks(self, live_replicas):
        """How many replica acks a commit must collect before returning.

        Capped at the live replica count so a group that lost replicas
        to failover degrades instead of deadlocking — the same choice
        MySQL semisync makes when the last semisync slave disconnects.
        """
        if live_replicas <= 0:
            return 0
        if self.mode == "sync":
            return live_replicas
        if self.mode == "async":
            return 0
        return min(self.ack_k, live_replicas)

    def __repr__(self):
        return "<ReplicationConfig %s ack_k=%d read=%s bound=%.0fus>" % (
            self.mode,
            self.ack_k,
            self.read_policy,
            self.staleness_bound_us,
        )
