"""The history recorder: the oracle subsystem's view of one run.

:class:`HistoryRecorder` hangs off the simulator as ``sim.check``
(mirroring ``sim.telemetry`` and ``sim.faults``) and receives hook
calls from the engines, the lock manager and the cluster coordinator as
a run executes.  It captures, in virtual-time order:

- per-transaction read/write sets, with the *version* each read
  observed (tracked in a shadow store the recorder maintains — the
  engines model costs, not values, so the recorder supplies the value
  semantics the serializability oracle replays against);
- commit/abort outcomes with reasons, plus per-object lock hold
  intervals reported by the lock manager;
- 2PC round records: participant votes, the coordinator's decision and
  whether it reached the decision log, and each participant's commit
  seal.

Ordering is captured by a global event sequence number (``seq``): the
simulator dispatches one process at a time, so hook-call order *is* a
linearisation of the run, and virtual timestamps alone cannot order
events that share an instant.

Zero-cost-when-disabled discipline: the shared :data:`NO_CHECK` null
object answers ``enabled = False`` and every subsystem guards its hooks
with one attribute test, exactly like ``NO_FAULTS`` / the null metrics
registry.  The recorder itself consumes no virtual time, draws no
randomness and emits no telemetry, so enabling it can never change a
run's results — ``tests/test_check_fuzz.py`` pins a digest across the
flag to keep that true.
"""

from repro.check import _test_hooks

#: Sentinel observation for a read that saw the transaction's own
#: uncommitted write (read-your-own-write never consults the store).
OWN = "<own-write>"


class _NullCheck:
    """Shared no-op stand-in wired as ``sim.check`` by default."""

    enabled = False

    def __repr__(self):
        return "<NO_CHECK>"


NO_CHECK = _NullCheck()


class OpRec:
    """One executed statement: what it touched and what it observed.

    ``observed`` is meaningful for selects only: the version token the
    read saw (``None`` = initial database state, :data:`OWN` = the
    transaction's own pending write).  ``locked`` records whether the
    statement held a record lock when it ran — locking reads must
    replay exactly against the sequential model; non-locking reads only
    need read-committed consistency (the MVCC engines read snapshots).
    """

    __slots__ = ("seq", "t", "kind", "table", "key", "locked", "observed")

    def __init__(self, seq, t=0.0, kind="select", table="t", key=0,
                 locked=False, observed=None):
        self.seq = seq
        self.t = t
        self.kind = kind
        self.table = table
        self.key = key
        self.locked = locked
        self.observed = observed

    def __repr__(self):
        return "<OpRec #%d %s %s[%r]%s>" % (
            self.seq, self.kind, self.table, self.key,
            " locked" if self.locked else "",
        )


class TxnRec:
    """One finished transaction (or 2PC branch) in the history.

    ``commit_seq`` is the global event sequence at which the outcome was
    observed (``None`` for aborts); committed transactions replay in
    ``commit_seq`` order.  Branches carry their parent's global id in
    ``gid`` plus the 2PC round index and shard; top-level transactions
    have ``gid is None``.
    """

    __slots__ = (
        "txn_id", "txn_type", "committed", "reason", "ops", "commit_seq",
        "commit_time", "lock_intervals", "gid", "round_index", "node",
    )

    def __init__(self, txn_id, txn_type="txn", committed=True, reason=None,
                 ops=(), commit_seq=None, commit_time=0.0, lock_intervals=(),
                 gid=None, round_index=None, node=None):
        self.txn_id = txn_id
        self.txn_type = txn_type
        self.committed = committed
        self.reason = reason
        self.ops = tuple(ops)
        self.commit_seq = commit_seq
        self.commit_time = commit_time
        self.lock_intervals = tuple(lock_intervals)
        self.gid = gid
        self.round_index = round_index
        self.node = node

    def __repr__(self):
        return "<TxnRec %r %s ops=%d%s>" % (
            self.txn_id,
            "committed" if self.committed else "aborted:%s" % (self.reason,),
            len(self.ops),
            "" if self.gid is None else " gid=%r" % (self.gid,),
        )


class RoundRec:
    """One 2PC round: the shards involved, their votes, the decision.

    ``votes`` maps shard id to ``(vote, reason, t)``; ``decision`` is
    ``None`` until made, then ``(commit, logged, t)`` where ``logged``
    is True/False for a presumed-nothing coordinator and ``None`` when
    the decision log is configured off (the durability check is then
    vacuous by design, not violated).  ``seals`` maps shard id to the
    virtual time its commit record was forced; ``outcomes`` maps shard
    id to ``(committed, t)`` after the branch fully finished.
    """

    __slots__ = ("gid", "round_index", "shards", "votes", "decision",
                 "seals", "outcomes")

    def __init__(self, gid, round_index, shards, votes=None, decision=None,
                 seals=None, outcomes=None):
        self.gid = gid
        self.round_index = round_index
        self.shards = tuple(shards)
        self.votes = dict(votes or {})
        self.decision = decision
        self.seals = dict(seals or {})
        self.outcomes = dict(outcomes or {})

    def __repr__(self):
        return "<RoundRec gid=%r round=%d shards=%r decision=%r>" % (
            self.gid, self.round_index, self.shards, self.decision,
        )


class CrashRec:
    """One whole-node crash: when, what it erased, what it left in doubt.

    ``lost`` are txn ids whose commits were reported but whose WAL never
    became durable (the durability oracle flags any that the recorder
    saw commit); ``indoubt`` are branch txn ids that had voted yes and
    must eventually resolve to a recorded outcome after recovery.
    """

    __slots__ = ("target", "t", "lost", "indoubt")

    def __init__(self, target, t, lost=(), indoubt=()):
        self.target = target
        self.t = t
        self.lost = tuple(lost)
        self.indoubt = tuple(indoubt)

    def __repr__(self):
        return "<CrashRec %r t=%.1f lost=%d indoubt=%d>" % (
            self.target, self.t, len(self.lost), len(self.indoubt),
        )


class ReplRec:
    """One replication event (repro.replication), discriminated by ``kind``:

    - ``"commit"`` — a commit barrier returned: ``txn_id``, ``shard``,
      ``epoch`` (the group's promotion epoch at barrier entry), ``lsn``
      (the commit's replication-log end position), ``required`` (the
      mode's ack quota against live replicas) and ``acks`` (acks actually
      counted when the barrier released);
    - ``"read"`` — a replica served a read-only transaction: ``txn_id``,
      ``shard``, ``replica`` index, the routing-time ``staleness`` and
      the policy ``bound`` it was admitted under;
    - ``"promote"`` — a failover promoted ``replica`` on ``shard`` to
      primary at epoch ``epoch``, having received up to ``lsn``.
    """

    __slots__ = ("seq", "kind", "t", "txn_id", "shard", "epoch", "lsn",
                 "required", "acks", "replica", "staleness", "bound")

    def __init__(self, seq, kind, t, txn_id=None, shard=None, epoch=None,
                 lsn=None, required=None, acks=None, replica=None,
                 staleness=None, bound=None):
        self.seq = seq
        self.kind = kind
        self.t = t
        self.txn_id = txn_id
        self.shard = shard
        self.epoch = epoch
        self.lsn = lsn
        self.required = required
        self.acks = acks
        self.replica = replica
        self.staleness = staleness
        self.bound = bound

    def __repr__(self):
        return "<ReplRec #%d %s s%r t=%.1f>" % (
            self.seq, self.kind, self.shard, self.t,
        )


class History:
    """Everything one run recorded: transaction, 2PC, crash and
    replication records."""

    __slots__ = ("txns", "rounds", "crashes", "repl")

    def __init__(self, txns=None, rounds=None, crashes=None, repl=None):
        self.txns = list(txns or [])
        self.rounds = list(rounds or [])
        self.crashes = list(crashes or [])
        self.repl = list(repl or [])

    def committed(self):
        """Committed records in commit order (the replay order)."""
        return sorted(
            (t for t in self.txns if t.committed),
            key=lambda t: t.commit_seq,
        )

    def __repr__(self):
        return "<History txns=%d rounds=%d>" % (len(self.txns), len(self.rounds))


class _Pending:
    """Per-in-flight-transaction scratch state (discarded on retry)."""

    __slots__ = ("ops", "written", "intervals", "grants")

    def __init__(self):
        self.ops = []
        self.written = set()
        self.intervals = []
        self.grants = {}


class HistoryRecorder:
    """Live hook sink building a :class:`History`; ``enabled`` is True.

    ``max_outcomes`` bounds the per-transaction outcome listing exposed
    as ``RunResult.txn_outcomes`` (the aggregate ``outcome_counts`` stay
    exact past the bound); history records themselves are unbounded —
    checking is a test-time mode, not a production one.
    """

    enabled = True

    def __init__(self, sim, corruption=None, max_outcomes=100_000):
        self.sim = sim
        self.corruption = (
            corruption if corruption is not None else _test_hooks.CORRUPTION
        )
        self.history = History()
        self.max_outcomes = max_outcomes
        self.outcomes = []
        self.outcome_counts = {}
        self.outcomes_dropped = 0
        self._seq = 0
        # Shadow committed store: (table, key) -> version token
        # (writer_txn_id, op_index).  Never iterated, so hash order
        # cannot leak into results.
        self._store = {}
        self._pending = {}
        # 2PC branch bookkeeping: branch ctx -> (RoundRec, shard id).
        self._branch_info = {}
        self._rounds_started = {}
        self._live_round = {}

    # ------------------------------------------------------------------
    # Engine hooks: attempts, statements, outcomes
    # ------------------------------------------------------------------

    def begin_attempt(self, ctx):
        """A (re)attempt starts: discard any partial earlier attempt."""
        self._pending[ctx] = _Pending()

    def _pending_for(self, ctx):
        p = self._pending.get(ctx)
        if p is None:
            p = self._pending[ctx] = _Pending()
        return p

    def record_op(self, ctx, op, locked):
        """One statement completed successfully under ``ctx``."""
        p = self._pending_for(ctx)
        key = (op.table, op.key)
        self._seq += 1
        if op.kind == "select":
            observed = OWN if key in p.written else self._store.get(key)
        else:
            observed = None
            p.written.add(key)
            if self.corruption == "dirty_read":
                # Planted bug: make the uncommitted write visible now.
                self._store[key] = (ctx.txn_id, len(p.ops))
        p.ops.append(OpRec(
            self._seq, self.sim.now, op.kind, op.table, op.key, locked, observed,
        ))

    def finish(self, ctx, committed, outcome=None):
        """The transaction's final outcome (engine/cluster observe_txn).

        ``outcome`` overrides the outcome-count bucket for recovery
        terminations (``recovered_commit`` / ``resolved_abort``) without
        changing the committed/aborted semantics of the record itself.
        """
        p = self._pending.pop(ctx, None) or _Pending()
        self._seq += 1
        reason = None if committed else (ctx.abort_reason or "abort")
        rec = TxnRec(
            ctx.txn_id, ctx.txn_type, committed, reason, tuple(p.ops),
            self._seq if committed else None, self.sim.now,
            self._close_intervals(p),
        )
        if committed:
            self._install(rec)
        self.history.txns.append(rec)
        if outcome is None:
            outcome = "committed" if committed else reason
        self.outcome_counts[outcome] = self.outcome_counts.get(outcome, 0) + 1
        if len(self.outcomes) < self.max_outcomes:
            self.outcomes.append((ctx.txn_id, ctx.txn_type, outcome))
        else:
            self.outcomes_dropped += 1
        return rec

    def _close_intervals(self, p):
        # Locks are normally all released before finish; anything still
        # open (hand-driven unit tests) closes at the current instant.
        if p.grants:
            now = self.sim.now
            for obj_id, (mode, t0) in p.grants.items():
                p.intervals.append((obj_id, mode, t0, now))
            p.grants.clear()
        return tuple(p.intervals)

    def _install(self, rec):
        if self.corruption == "lost_update":
            return  # Planted bug: committed writes vanish.
        if self.corruption == "dirty_read":
            return  # Already (wrongly) installed at execution time.
        for i, op in enumerate(rec.ops):
            if op.kind != "select":
                self._store[(op.table, op.key)] = (rec.txn_id, i)

    # ------------------------------------------------------------------
    # Lock-manager hooks: precise per-object hold intervals
    # ------------------------------------------------------------------

    def lock_granted(self, ctx, obj_id, mode, upgrade):
        """``ctx`` now holds ``obj_id`` in ``mode`` ("S"/"X")."""
        p = self._pending_for(ctx)
        now = self.sim.now
        current = p.grants.get(obj_id)
        if current is None:
            p.grants[obj_id] = (mode, now)
        elif upgrade and current[0] != mode:
            # S -> X upgrade: close the shared interval, open exclusive.
            p.intervals.append((obj_id, current[0], current[1], now))
            p.grants[obj_id] = (mode, now)

    def locks_released(self, ctx, now):
        """``ctx`` released everything (2PL shrink at commit/abort)."""
        p = self._pending.get(ctx)
        if p is None:
            return
        for obj_id, (mode, t0) in p.grants.items():
            p.intervals.append((obj_id, mode, t0, now))
        p.grants.clear()

    # ------------------------------------------------------------------
    # 2PC hooks (cluster coordinator + participant engines)
    # ------------------------------------------------------------------

    def twopc_begin(self, ctx, branches):
        """A 2PC round starts; ``branches`` is ``[(branch_ctx, shard)]``."""
        gid = ctx.txn_id
        index = self._rounds_started.get(gid, 0)
        self._rounds_started[gid] = index + 1
        rec = RoundRec(gid, index, [shard for _ctx, shard in branches])
        self.history.rounds.append(rec)
        self._live_round[gid] = rec
        for branch_ctx, shard in branches:
            self._branch_info[branch_ctx] = (rec, shard)
            self.begin_attempt(branch_ctx)
        return rec

    def branch_vote(self, ctx, vote, reason=None):
        """A participant voted; a no vote also ends the branch."""
        info = self._branch_info.get(ctx)
        if info is None:
            return
        rec, shard = info
        rec.votes[shard] = (bool(vote), reason, self.sim.now)
        if not vote:
            self._finish_branch(ctx, False, reason)

    def twopc_decision(self, ctx, commit, logged):
        """The coordinator decided; ``logged`` None = no decision log."""
        rec = self._live_round.get(ctx.txn_id)
        if rec is None:
            return
        if self.corruption == "decision_log_gap" and logged:
            logged = False  # Planted bug: the forced record never happened.
        rec.decision = (bool(commit), logged, self.sim.now)

    def branch_sealed(self, ctx):
        """The participant forced its commit record (locks still held)."""
        info = self._branch_info.get(ctx)
        if info is None:
            return
        rec, shard = info
        if self.corruption == "partial_commit" and shard == max(rec.shards):
            return  # Planted bug: one shard's seal is lost.
        rec.seals[shard] = self.sim.now

    def branch_finished(self, ctx, committed):
        """The branch released everything and reported its outcome."""
        if ctx in self._branch_info:
            self._finish_branch(ctx, committed, None)

    # ------------------------------------------------------------------
    # Replication hooks (repro.replication)
    # ------------------------------------------------------------------

    def repl_commit(self, txn_id, shard, epoch, lsn, required, acks):
        """A commit barrier released (after collecting its ack quota)."""
        self._seq += 1
        if self.corruption == "repl_lost_ack" and required > 0:
            acks = required - 1  # Planted bug: an ack was counted early.
        self.history.repl.append(ReplRec(
            self._seq, "commit", self.sim.now, txn_id=txn_id, shard=shard,
            epoch=epoch, lsn=lsn, required=required, acks=acks,
        ))

    def repl_read(self, txn_id, shard, replica, staleness, bound):
        """A replica served a read-only transaction."""
        self._seq += 1
        if self.corruption == "repl_stale_read":
            # Planted bug: the router admitted an arbitrarily stale view.
            staleness = bound + 1.0e9
        self.history.repl.append(ReplRec(
            self._seq, "read", self.sim.now, txn_id=txn_id, shard=shard,
            replica=replica, staleness=staleness, bound=bound,
        ))

    def repl_promote(self, shard, epoch, replica, received_lsn, t):
        """A failover promoted ``replica`` to primary at ``epoch``."""
        self._seq += 1
        self.history.repl.append(ReplRec(
            self._seq, "promote", t, shard=shard, epoch=epoch,
            replica=replica, lsn=received_lsn,
        ))

    # ------------------------------------------------------------------
    # Crash hooks (repro.recovery)
    # ------------------------------------------------------------------

    def node_crash(self, target, now, lost, indoubt):
        """A whole node died at ``now`` (crash controller hook).

        ``lost`` are txn ids whose reported commits did not survive;
        ``indoubt`` are prepared branch txn ids awaiting termination.
        The durability oracle judges both after the run.
        """
        self.history.crashes.append(CrashRec(target, now, lost, indoubt))

    def _finish_branch(self, ctx, committed, reason):
        rec, shard = self._branch_info.pop(ctx)
        p = self._pending.pop(ctx, None) or _Pending()
        self._seq += 1
        final_reason = None if committed else (
            reason or ctx.abort_reason or "abort"
        )
        trec = TxnRec(
            ctx.txn_id, ctx.txn_type, committed, final_reason, tuple(p.ops),
            self._seq if committed else None, self.sim.now,
            self._close_intervals(p),
            gid=rec.gid, round_index=rec.round_index, node=shard,
        )
        if committed:
            self._install(trec)
        rec.outcomes[shard] = (committed, self.sim.now)
        self.history.txns.append(trec)

    def __repr__(self):
        return "<HistoryRecorder seq=%d txns=%d rounds=%d>" % (
            self._seq, len(self.history.txns), len(self.history.rounds),
        )
