"""repro.check — the simulation-testing oracle subsystem.

A FoundationDB-style correctness layer for the simulated engines:

- :mod:`repro.check.recorder` — a zero-cost-when-disabled history
  recorder (``sim.check``) capturing read/write sets, outcomes, lock
  intervals and 2PC rounds in virtual-time order;
- :mod:`repro.check.oracles` — offline checkers over that history
  (model-based serializability, 2PC atomicity/durability, lock-manager
  invariants);
- :mod:`repro.check.fuzz` — a seeded chaos fuzzer that generates
  (workload, fault plan, topology, scheduler) configurations, runs them
  with the oracles on, and shrinks any failure to a minimal reproducer.

Enable per run with ``ExperimentConfig(check=True)``; the oracles then
run over ``RunResult.history``::

    from repro import ExperimentConfig, run_experiment
    from repro.check import check_all

    result = run_experiment(ExperimentConfig(engine="mysql", check=True))
    assert check_all(result.history) == []

This package's ``__init__`` imports only the recorder (stdlib-only), so
the simulator kernel can wire :data:`NO_CHECK` without import cycles;
the oracle and fuzzer symbols load lazily on first attribute access.
"""

from repro.check.recorder import (
    NO_CHECK,
    OWN,
    History,
    HistoryRecorder,
    OpRec,
    ReplRec,
    RoundRec,
    TxnRec,
)

_ORACLE_SYMBOLS = (
    "Violation",
    "check_all",
    "check_serializability",
    "check_2pc_atomicity",
    "check_lock_intervals",
    "check_durability",
    "check_replication",
)

__all__ = [
    "NO_CHECK",
    "OWN",
    "History",
    "HistoryRecorder",
    "OpRec",
    "ReplRec",
    "RoundRec",
    "TxnRec",
] + list(_ORACLE_SYMBOLS)


def __getattr__(name):
    if name in _ORACLE_SYMBOLS:
        from repro.check import oracles

        return getattr(oracles, name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))
