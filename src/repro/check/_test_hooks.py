"""Test-only corruption knobs for the correctness oracles.

The oracle subsystem must itself be testable: a checker that never
rejects anything is indistinguishable from a correct system.  Setting
``CORRUPTION`` makes the :class:`~repro.check.recorder.HistoryRecorder`
*misrecord* a run in a precisely-known way, so the oracles can be shown
to catch each anomaly class and the fuzzer's shrinking loop can be
exercised against a deterministic planted bug — without touching the
engines themselves (the simulation stays correct; only its recorded
history lies).

Modes:

- ``"lost_update"`` — committed writes are never installed into the
  shadow store, so every later read observes a stale version.
- ``"dirty_read"`` — writes are installed at execution time instead of
  commit time, making uncommitted (and aborted) data visible.
- ``"partial_commit"`` — the highest-numbered shard's commit seal is
  dropped from the 2PC round record.
- ``"decision_log_gap"`` — the coordinator's decision is recorded as
  never having reached its log.
- ``"repl_lost_ack"`` — replication commit barriers are recorded with
  one ack fewer than their mode required (an ack counted early).
- ``"repl_stale_read"`` — replica reads are recorded with an
  arbitrarily large staleness, as if the router ignored its bound.

``None`` (the default) records faithfully.  Production code never reads
this module except through the recorder's constructor.
"""

import contextlib

MODES = (
    None,
    "lost_update",
    "dirty_read",
    "partial_commit",
    "decision_log_gap",
    "repl_lost_ack",
    "repl_stale_read",
)

#: Active corruption mode; see module docstring.
CORRUPTION = None


@contextlib.contextmanager
def corrupted(mode):
    """Context manager: plant ``mode`` for the duration of a block."""
    global CORRUPTION
    if mode not in MODES:
        raise ValueError("unknown corruption mode %r" % (mode,))
    previous = CORRUPTION
    CORRUPTION = mode
    try:
        yield
    finally:
        CORRUPTION = previous
