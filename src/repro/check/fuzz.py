"""The seeded chaos fuzzer: generate, run, check, shrink.

One integer seed determines one :class:`FuzzCase` — engine, topology,
workload, scheduler, chaos plan and run seed — via a dedicated
``random.Random`` (never the global RNG, never hash order), so the same
seed produces the same case and the same violations in any process.

:func:`fuzz_one` runs the case with the oracles on.  On a violation it
greedily **shrinks**: fewer transactions, then earlier crash instants
(for node-crash plans), then no fault plan, then no replication (or a
simpler mode: anything → sync, replica reads → primary), then fewer
shards —
re-running after each candidate and keeping it only if the failure
survives — and renders the minimal case as a ready-to-paste
pytest function (:func:`reproducer_source`).

The engines draw from per-purpose seeded streams, so a shrunk config is
not guaranteed to preserve the *same* interleaving — it preserves the
*failure*, which is what the oracles define.  Greedy shrinking is
deterministic: candidates are tried in a fixed order and the first
survivor restarts the loop.

CLI front-end: ``scripts/fuzz_check.py``.
"""

import random

from repro.faults.plan import (
    FUZZ_FAULT_KINDS,
    FUZZ_NETWORK_FAULT_KINDS,
    FUZZ_REPLICATION_FAULT_KINDS,
    FaultPlan,
    random_plan_kwargs,
)

from repro.check import _test_hooks
from repro.check.oracles import check_all

ENGINES = ("mysql", "postgres", "voltdb")

#: Shrink effort cap: each step re-runs the simulation once.
MAX_SHRINK_STEPS = 64


class FuzzCase:
    """One generated configuration (plain literals; repr round-trips)."""

    FIELDS = (
        "seed", "engine", "workload", "workload_kwargs", "scheduler",
        "n_txns", "rate_tps", "num_shards", "fault_kind", "fault_kwargs",
        "run_seed", "replicas", "repl_kwargs",
    )

    __slots__ = FIELDS

    def __init__(self, seed, engine, workload, workload_kwargs, scheduler,
                 n_txns, rate_tps, num_shards, fault_kind, fault_kwargs,
                 run_seed, replicas=0, repl_kwargs=None):
        self.seed = seed
        self.engine = engine
        self.workload = workload
        self.workload_kwargs = dict(workload_kwargs)
        self.scheduler = scheduler
        self.n_txns = n_txns
        self.rate_tps = rate_tps
        self.num_shards = num_shards
        self.fault_kind = fault_kind
        self.fault_kwargs = dict(fault_kwargs)
        self.run_seed = run_seed
        self.replicas = replicas
        self.repl_kwargs = dict(repl_kwargs or {})

    def replaced(self, **overrides):
        fields = {name: getattr(self, name) for name in self.FIELDS}
        fields.update(overrides)
        return FuzzCase(**fields)

    def astuple(self):
        return tuple(
            tuple(sorted(value.items())) if isinstance(value, dict) else value
            for value in (getattr(self, name) for name in self.FIELDS)
        )

    def __eq__(self, other):
        return isinstance(other, FuzzCase) and self.astuple() == other.astuple()

    def __hash__(self):
        return hash(self.astuple())

    def __repr__(self):
        return "<FuzzCase seed=%d %s/%s shards=%d replicas=%d fault=%s n=%d>" % (
            self.seed, self.engine, self.workload, self.num_shards,
            self.replicas, self.fault_kind or "none", self.n_txns,
        )


def make_case(seed):
    """The pure function from seed to configuration.

    Engines rotate round-robin and clustered shard counts cycle with the
    seed, so any contiguous seed range covers all three engines and
    shard counts 1-4 deterministically; everything else is drawn from a
    ``random.Random(seed)``.
    """
    rng = random.Random(seed)
    engine = ENGINES[seed % 3]
    if engine == "voltdb":
        num_shards = 1  # no 2PC branch support (task-concurrent model)
    else:
        num_shards = (seed % 4) + 1
    if num_shards > 1:
        workload = "tpcc"
        workload_kwargs = {
            "warehouses": 4 * num_shards,
            "remote_payment_prob": round(rng.uniform(0.1, 0.4), 2),
        }
    elif rng.random() < 0.5:
        # Hot YCSB: a tiny key space forces lock conflicts.
        workload = "ycsb"
        workload_kwargs = {
            "scale_factor": 1,
            "rows_per_sf": rng.randrange(8, 65),
            "read_fraction": round(rng.uniform(0.2, 0.8), 2),
        }
    else:
        workload = "tpcc"
        workload_kwargs = {"warehouses": rng.randrange(2, 9)}
    scheduler = rng.choice(("FCFS", "VATS")) if engine == "mysql" else None
    n_txns = rng.randrange(30, 121)
    rate_tps = round(rng.uniform(200.0, 900.0), 1)
    kinds = FUZZ_FAULT_KINDS
    if num_shards > 1:
        kinds = kinds + FUZZ_NETWORK_FAULT_KINDS
    fault_kind = rng.choice(kinds)
    horizon_us = n_txns / rate_tps * 1_000_000.0
    fault_kwargs = random_plan_kwargs(rng, fault_kind, horizon_us)
    run_seed = rng.randrange(1_000_000)
    # Replication draws come *last* so every pre-replication field of a
    # legacy seed is unchanged — shrink corpora and pinned reproducers
    # from before the subsystem existed still map to the same base case.
    if engine == "voltdb":
        # No redo stream to ship (synchronous command log): replication
        # is a no-op there, so the fuzzer never configures it.
        replicas = 0
    else:
        replicas = rng.choice((0, 0, 1, 2))
    repl_kwargs = {}
    if replicas:
        repl_kwargs = {
            "mode": rng.choice(("sync", "semi_sync", "async")),
            "ack_k": 1,
            "read_policy": rng.choice(("primary", "replica_ok")),
            "staleness_bound_us": round(rng.uniform(1_000.0, 20_000.0), 1),
        }
        if rng.random() < 0.25:
            # Replicated cases trade their drawn fault for a replica-lag
            # window a quarter of the time — the one fault class that
            # only exists with replicas attached.
            (replication_kind,) = FUZZ_REPLICATION_FAULT_KINDS
            fault_kind = replication_kind
            fault_kwargs = random_plan_kwargs(rng, fault_kind, horizon_us)
    return FuzzCase(
        seed, engine, workload, workload_kwargs, scheduler, n_txns,
        rate_tps, num_shards, fault_kind, fault_kwargs, run_seed,
        replicas, repl_kwargs,
    )


def build_config(case):
    """The :class:`~repro.bench.runner.ExperimentConfig` for a case."""
    from repro.bench.runner import ExperimentConfig

    engine_config = None
    if case.scheduler is not None:
        from repro.engines.mysql import MySQLConfig

        engine_config = MySQLConfig(scheduler=case.scheduler)
    fault_plan = None
    if case.fault_kwargs:
        fault_plan = FaultPlan(
            name="fuzz-%s" % (case.fault_kind,), **case.fault_kwargs
        )
    replication = None
    if case.replicas:
        from repro.replication import ReplicationConfig

        replication = ReplicationConfig(**case.repl_kwargs)
    return ExperimentConfig(
        engine=case.engine,
        workload=case.workload,
        workload_kwargs=dict(case.workload_kwargs),
        engine_config=engine_config,
        seed=case.run_seed,
        n_txns=case.n_txns,
        rate_tps=case.rate_tps,
        num_shards=case.num_shards,
        fault_plan=fault_plan,
        replicas=case.replicas,
        replication=replication,
        check=True,
    )


def run_case(case):
    """Run one case with oracles on; returns (violations, result)."""
    from repro.bench.runner import run_experiment

    result = run_experiment(build_config(case))
    return check_all(result.history), result


def _shrink_candidates(case):
    """Smaller variants, most aggressive first (deterministic order)."""
    n = case.n_txns
    for smaller in (n // 2, n - max(1, n // 4), n - 1):
        if 2 <= smaller < n:
            yield case.replaced(n_txns=smaller)
    crashes = case.fault_kwargs.get("node_crash_times")
    if crashes:
        # Earlier crash instants mean less pre-crash history to wade
        # through in the reproducer (and a shorter WAL at the crash).
        halved = tuple(
            (target, round(t / 2.0, 1)) for target, t in crashes
        )
        if halved != tuple((target, t) for target, t in crashes):
            kwargs = dict(case.fault_kwargs)
            kwargs["node_crash_times"] = halved
            yield case.replaced(fault_kwargs=kwargs)
    if case.fault_kwargs:
        yield case.replaced(fault_kind=None, fault_kwargs={})
    if case.replicas:
        # Dropping replication entirely is the big shrink; failing that,
        # collapsing the mode to sync removes the ack-quota and
        # staleness dimensions while keeping the replica machinery.
        yield case.replaced(replicas=0, repl_kwargs={})
        if case.repl_kwargs.get("mode") != "sync":
            simpler = dict(case.repl_kwargs)
            simpler["mode"] = "sync"
            yield case.replaced(repl_kwargs=simpler)
        if case.repl_kwargs.get("read_policy") == "replica_ok":
            simpler = dict(case.repl_kwargs)
            simpler["read_policy"] = "primary"
            yield case.replaced(repl_kwargs=simpler)
    if case.num_shards > 2:
        yield case.replaced(num_shards=2)
    if case.num_shards == 2:
        # Collapsing to one shard removes 2PC entirely; keep the
        # workload as-is (single-node tpcc is still valid).
        shrunk = dict(case.workload_kwargs)
        shrunk.pop("remote_payment_prob", None)
        yield case.replaced(num_shards=1, workload_kwargs=shrunk)


def shrink(case, max_steps=MAX_SHRINK_STEPS):
    """Greedy deterministic shrink; returns the minimal failing case."""
    best = case
    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        for candidate in _shrink_candidates(best):
            steps += 1
            violations, _result = run_case(candidate)
            if violations:
                best = candidate
                improved = True
                break
            if steps >= max_steps:
                break
    return best


def reproducer_source(case, violations=()):
    """A ready-to-paste pytest function reproducing the failure."""
    lines = []
    lines.append("def test_fuzz_reproducer_seed_%d():" % (case.seed,))
    lines.append(
        '    """Shrunk from fuzz seed %d (%s, %d shards, fault=%s).'
        % (case.seed, case.engine, case.num_shards, case.fault_kind or "none")
    )
    for violation in list(violations)[:3]:
        lines.append("    %r" % (violation,))
    lines.append('    """')
    lines.append("    from repro.bench.runner import ExperimentConfig, run_experiment")
    lines.append("    from repro.check import check_all")
    if _test_hooks.CORRUPTION is not None:
        lines.append("    from repro.check import _test_hooks")
    if case.fault_kwargs:
        lines.append("    from repro.faults.plan import FaultPlan")
    if case.scheduler is not None:
        lines.append("    from repro.engines.mysql import MySQLConfig")
    if case.replicas:
        lines.append("    from repro.replication import ReplicationConfig")
    lines.append("")
    if _test_hooks.CORRUPTION is not None:
        lines.append(
            "    _test_hooks.CORRUPTION = %r  # planted test corruption"
            % (_test_hooks.CORRUPTION,)
        )
    lines.append("    config = ExperimentConfig(")
    lines.append("        engine=%r," % (case.engine,))
    lines.append("        workload=%r," % (case.workload,))
    lines.append("        workload_kwargs=%r," % (case.workload_kwargs,))
    if case.scheduler is not None:
        lines.append(
            "        engine_config=MySQLConfig(scheduler=%r)," % (case.scheduler,)
        )
    lines.append("        seed=%r," % (case.run_seed,))
    lines.append("        n_txns=%r," % (case.n_txns,))
    lines.append("        rate_tps=%r," % (case.rate_tps,))
    if case.num_shards > 1:
        lines.append("        num_shards=%r," % (case.num_shards,))
    if case.fault_kwargs:
        lines.append(
            "        fault_plan=FaultPlan(name=%r, **%r),"
            % ("fuzz-%s" % (case.fault_kind,), case.fault_kwargs)
        )
    if case.replicas:
        lines.append("        replicas=%r," % (case.replicas,))
        lines.append(
            "        replication=ReplicationConfig(**%r)," % (case.repl_kwargs,)
        )
    lines.append("        check=True,")
    lines.append("    )")
    lines.append("    violations = check_all(run_experiment(config).history)")
    lines.append(
        '    assert violations == [], "\\n".join(map(repr, violations))'
    )
    return "\n".join(lines) + "\n"


class FuzzReport:
    """Outcome of fuzzing one seed."""

    __slots__ = ("seed", "case", "violations", "shrunk", "reproducer")

    def __init__(self, seed, case, violations, shrunk=None, reproducer=None):
        self.seed = seed
        self.case = case
        self.violations = violations
        self.shrunk = shrunk
        self.reproducer = reproducer

    @property
    def failed(self):
        return bool(self.violations)

    def __repr__(self):
        return "<FuzzReport seed=%d %s>" % (
            self.seed, "FAIL" if self.failed else "ok",
        )


def fuzz_one(seed, shrink_on_failure=True, max_shrink_steps=MAX_SHRINK_STEPS):
    """Generate, run and (on failure) shrink one seed."""
    case = make_case(seed)
    violations, _result = run_case(case)
    if not violations:
        return FuzzReport(seed, case, [])
    shrunk = case
    if shrink_on_failure:
        shrunk = shrink(case, max_steps=max_shrink_steps)
    final_violations, _result = run_case(shrunk)
    return FuzzReport(
        seed, case, violations, shrunk,
        reproducer_source(shrunk, final_violations),
    )


def fuzz_many(seeds, jobs=1, shrink_on_failure=True,
              max_shrink_steps=MAX_SHRINK_STEPS, executor=None,
              progress=None):
    """Fuzz a batch of seeds through the execution layer.

    Every case is an independent deterministic run, so the sweep fans
    out across an :class:`~repro.exec.executor.Executor` (``jobs > 1``
    runs in a process pool); reports come back in seed order,
    identical to ``[fuzz_one(s) for s in seeds]`` by the determinism
    argument.  Shrinking stays serial — each step's candidate depends
    on the previous verdict — and only failures pay for it.

    Planted-corruption test hooks (``repro.check._test_hooks``) are
    process-local state, so sweeps that set them must use ``jobs=1``.
    """
    seeds = list(seeds)
    cases = [make_case(seed) for seed in seeds]
    if executor is None:
        from repro.exec.executor import Executor

        executor = Executor(jobs=jobs)
    artifacts = executor.run(
        [build_config(case) for case in cases], progress=progress
    )
    reports = []
    for seed, case, artifact in zip(seeds, cases, artifacts):
        violations = artifact.check_report()
        if not violations:
            reports.append(FuzzReport(seed, case, []))
            continue
        shrunk = case
        if shrink_on_failure:
            shrunk = shrink(case, max_steps=max_shrink_steps)
        final_violations, _result = run_case(shrunk)
        reports.append(FuzzReport(
            seed, case, violations, shrunk,
            reproducer_source(shrunk, final_violations),
        ))
    return reports
