"""Offline correctness oracles over a recorded :class:`History`.

Three independent checkers, one entry point (:func:`check_all`):

- :func:`check_serializability` — model-based replay in the style of
  Elle/FoundationDB: committed transactions replay in commit order
  against a :class:`~repro.storage.tables.SequentialTableModel`, and
  every committed read must be explainable.  Locking (2PL) reads must
  equal the sequential model exactly — a mismatch is a lost update or a
  lock-discipline hole.  Non-locking reads (the MVCC engines read
  snapshots without record locks) must observe a version whose writer
  committed *before* the read — anything else is a dirty read.
- :func:`check_2pc_atomicity` — no partial cross-shard commits: a
  commit decision requires unanimous yes votes and a commit seal on
  every shard; the decision must be on the coordinator log before any
  participant seals; an aborted round must seal nothing and an aborted
  global transaction must never have a committed round (no resurrection
  after crash-and-retry).
- :func:`check_lock_intervals` — strict 2PL as recorded by the lock
  manager itself: no committed transaction's exclusive hold interval on
  an object may overlap another committed transaction's hold on the
  same object.

Each violation is a :class:`Violation` with a stable ``rule`` slug, so
tests (and fuzzer reproducers) can assert on anomaly classes without
string-matching prose.
"""

from repro.storage.tables import SequentialTableModel

from repro.check.recorder import OWN


class Violation:
    """One oracle failure: which rule, which transaction, and why."""

    __slots__ = ("rule", "txn_id", "detail")

    def __init__(self, rule, txn_id, detail):
        self.rule = rule
        self.txn_id = txn_id
        self.detail = detail

    def __repr__(self):
        return "Violation(%r, txn=%r, %s)" % (self.rule, self.txn_id, self.detail)

    def __eq__(self, other):
        return (
            isinstance(other, Violation)
            and self.rule == other.rule
            and self.txn_id == other.txn_id
            and self.detail == other.detail
        )

    def __hash__(self):
        return hash((self.rule, self.txn_id, self.detail))


def check_serializability(history):
    """Replay committed transactions against the sequential model."""
    violations = []
    committed = history.committed()
    # Version bookkeeping: which versions exist, when their writer
    # committed, and the per-key install sequence (ascending commit_seq).
    installs = {}
    version_commit = {}
    for txn in committed:
        final = {}
        for i, op in enumerate(txn.ops):
            if op.kind != "select":
                final[(op.table, op.key)] = (txn.txn_id, i)
        for key, version in final.items():
            installs.setdefault(key, []).append((txn.commit_seq, version))
            version_commit[version] = txn.commit_seq
        # Overwritten-within-txn intermediate versions still "exist" for
        # the dirty-read check (they commit when their txn does).
        for i, op in enumerate(txn.ops):
            if op.kind != "select":
                version_commit.setdefault((txn.txn_id, i), txn.commit_seq)
    model = SequentialTableModel()
    for txn in committed:
        written = set()
        for op in txn.ops:
            key = (op.table, op.key)
            if op.kind != "select":
                written.add(key)
                continue
            if key in written:
                if op.observed != OWN:
                    violations.append(Violation(
                        "read-own-write", txn.txn_id,
                        "read of %r after own write observed %r"
                        % (key, op.observed),
                    ))
                continue
            if op.observed == OWN:
                violations.append(Violation(
                    "read-own-write", txn.txn_id,
                    "read of %r marked own-write without a prior write" % (key,),
                ))
                continue
            if op.observed is not None:
                writer_commit = version_commit.get(op.observed)
                if writer_commit is None:
                    violations.append(Violation(
                        "dirty-read", txn.txn_id,
                        "read of %r observed %r whose writer never committed"
                        % (key, op.observed),
                    ))
                    continue
                if writer_commit >= op.seq:
                    violations.append(Violation(
                        "dirty-read", txn.txn_id,
                        "read of %r observed %r before its writer committed "
                        "(commit seq %d >= read seq %d)"
                        % (key, op.observed, writer_commit, op.seq),
                    ))
                    continue
            if op.locked:
                expected = model.read(op.table, op.key)
                if op.observed != expected:
                    violations.append(Violation(
                        "stale-locking-read", txn.txn_id,
                        "locking read of %r observed %r, sequential model "
                        "says %r (lost update?)"
                        % (key, op.observed, expected),
                    ))
            else:
                # Read-committed floor for snapshot reads: the latest
                # version installed before this read.
                expected = None
                for commit_seq, version in installs.get(key, ()):
                    if commit_seq < op.seq:
                        expected = version
                    else:
                        break
                if op.observed != expected:
                    violations.append(Violation(
                        "stale-read", txn.txn_id,
                        "non-locking read of %r observed %r, latest "
                        "committed version at read time was %r"
                        % (key, op.observed, expected),
                    ))
        for i, op in enumerate(txn.ops):
            if op.kind != "select":
                model.write(op.table, op.key, (txn.txn_id, i))
    return violations


def check_2pc_atomicity(history):
    """No partial commits, durable decisions, no resurrected aborts."""
    violations = []
    for rnd in history.rounds:
        if rnd.decision is None:
            if rnd.seals:
                violations.append(Violation(
                    "2pc-seal-without-decision", rnd.gid,
                    "round %d sealed shards %r with no coordinator decision"
                    % (rnd.round_index, sorted(rnd.seals)),
                ))
            continue
        commit, logged, decided_at = rnd.decision
        if commit:
            if logged is False:
                violations.append(Violation(
                    "2pc-decision-log-gap", rnd.gid,
                    "round %d commit decision never reached the "
                    "coordinator log" % (rnd.round_index,),
                ))
            for shard in rnd.shards:
                vote = rnd.votes.get(shard)
                if vote is None or not vote[0]:
                    violations.append(Violation(
                        "2pc-commit-despite-no-vote", rnd.gid,
                        "round %d committed but shard %r voted %r"
                        % (rnd.round_index, shard,
                           None if vote is None else vote[0]),
                    ))
                sealed_at = rnd.seals.get(shard)
                if sealed_at is None:
                    violations.append(Violation(
                        "2pc-partial-commit", rnd.gid,
                        "round %d committed but shard %r never sealed"
                        % (rnd.round_index, shard),
                    ))
                elif logged and sealed_at < decided_at:
                    violations.append(Violation(
                        "2pc-seal-before-decision-logged", rnd.gid,
                        "round %d shard %r sealed at %r before the decision "
                        "was logged at %r"
                        % (rnd.round_index, shard, sealed_at, decided_at),
                    ))
                outcome = rnd.outcomes.get(shard)
                if outcome is not None and not outcome[0]:
                    violations.append(Violation(
                        "2pc-partial-commit", rnd.gid,
                        "round %d committed but shard %r aborted its branch"
                        % (rnd.round_index, shard),
                    ))
        else:
            if rnd.seals:
                violations.append(Violation(
                    "2pc-aborted-round-sealed", rnd.gid,
                    "round %d aborted but shards %r sealed commit records"
                    % (rnd.round_index, sorted(rnd.seals)),
                ))
            for shard, outcome in rnd.outcomes.items():
                if outcome[0]:
                    violations.append(Violation(
                        "2pc-resurrected-abort", rnd.gid,
                        "round %d aborted but shard %r committed its branch"
                        % (rnd.round_index, shard),
                    ))
    # Global-outcome consistency: exactly the committed transactions
    # have a committed round, and never more than one.
    rounds_by_gid = {}
    for rnd in history.rounds:
        rounds_by_gid.setdefault(rnd.gid, []).append(rnd)
    globals_by_id = {t.txn_id: t for t in history.txns if t.gid is None}
    for gid, rounds in rounds_by_gid.items():
        committed_rounds = [
            r for r in rounds if r.decision is not None and r.decision[0]
        ]
        if len(committed_rounds) > 1:
            violations.append(Violation(
                "2pc-double-commit", gid,
                "%d rounds committed for one transaction"
                % (len(committed_rounds),),
            ))
        top = globals_by_id.get(gid)
        if top is None:
            continue
        if top.committed and not committed_rounds:
            violations.append(Violation(
                "2pc-commit-mismatch", gid,
                "transaction reported committed but no round committed",
            ))
        elif not top.committed and committed_rounds:
            violations.append(Violation(
                "2pc-resurrected-abort", gid,
                "transaction reported failed (%r) but round %d committed"
                % (top.reason, committed_rounds[0].round_index),
            ))
    return violations


def check_lock_intervals(history):
    """No conflicting lock holds overlap in time among committed txns."""
    violations = []
    per_object = {}
    for txn in history.txns:
        if not txn.committed:
            continue
        for obj_id, mode, t0, t1 in txn.lock_intervals:
            per_object.setdefault(obj_id, []).append((t0, t1, mode, txn.txn_id))
    for obj_id, intervals in per_object.items():
        intervals.sort(key=lambda entry: (entry[0], entry[1]))
        active = []
        for t0, t1, mode, txn_id in intervals:
            # Touching endpoints are legal: release and re-grant can
            # share a virtual instant (strict inequality = true overlap).
            active = [a for a in active if a[1] > t0]
            for _a0, _a1, other_mode, other_txn in active:
                if other_txn == txn_id:
                    continue
                if mode == "X" or other_mode == "X":
                    violations.append(Violation(
                        "lock-overlap", txn_id,
                        "%s hold on %r during [%r, %r] overlaps %s hold by "
                        "txn %r" % (mode, obj_id, t0, t1, other_mode, other_txn),
                    ))
            active.append((t0, t1, mode, txn_id))
    return violations


def check_durability(history):
    """Crash-recovery oracle: commits survive, in-doubt branches resolve.

    For every recorded node crash (``History.crashes``):

    - ``durability-lost-commit`` — a transaction the recorder saw commit
      before the crash appears in the crash's lost set (its log never
      became durable).  Structurally impossible under eager-flush
      policies; under the lazy policies this is the forward-progress
      risk of Appendix B made into a checkable violation.
    - ``recovery-unresolved-indoubt`` — a branch that had voted yes at
      the crash instant never reached a recorded outcome afterwards: the
      2PC termination protocol leaked a prepared transaction (and its
      re-granted locks) forever.

    Aborted and in-doubt-resolved-abort transactions leaving no trace is
    covered jointly with :func:`check_serializability`: only committed
    records install writes into the replay model, so any surviving
    effect of an aborted branch shows up as a stale or dirty read there.
    """
    violations = []
    if not history.crashes:
        return violations
    branch_recs = {}
    for txn in history.txns:
        if txn.gid is not None:
            branch_recs.setdefault(txn.txn_id, []).append(txn)
    committed_at = {t.txn_id: t.commit_time for t in history.txns if t.committed}
    for crash in history.crashes:
        for txn_id in crash.lost:
            at = committed_at.get(txn_id)
            if at is not None and at <= crash.t:
                violations.append(Violation(
                    "durability-lost-commit", txn_id,
                    "reported committed at t=%r but its log was not durable "
                    "at the crash (t=%r, target %r)"
                    % (at, crash.t, crash.target),
                ))
        for txn_id in crash.indoubt:
            recs = branch_recs.get(txn_id, ())
            if not any(r.commit_time >= crash.t for r in recs):
                violations.append(Violation(
                    "recovery-unresolved-indoubt", txn_id,
                    "branch was in doubt at the crash (t=%r, target %r) and "
                    "never resolved to an outcome" % (crash.t, crash.target),
                ))
    return violations


def check_replication(history):
    """Replication oracle: acks, staleness bounds and failover safety.

    Judges the replication records (``History.repl``) a replicated run
    leaves behind; replica-free runs record none, so the oracle is free:

    - ``repl-stale-read-beyond-bound`` — a replica served a read whose
      routing-time staleness exceeded the policy bound it was admitted
      under (the router's bounded-staleness promise was broken).
    - ``repl-lost-ack-commit`` — a sync/semisync commit barrier released
      before collecting its required ack quota: the client was told
      "replicated" while the guarantee did not hold.
    - ``repl-split-brain-double-primary`` — a commit was recorded under
      a primacy epoch that a promotion had already superseded (two
      primaries accepting commits for one shard), or promotion epochs
      failed to advance strictly.
    - ``repl-promotion-lost-durable-record`` — a promotion installed a
      replica that had not received some earlier commit whose ack quota
      was satisfied: failover dropped a transaction the mode had
      promised to preserve.  (Async commits carry no such promise and
      are legitimately lossy on failover.)
    """
    violations = []
    if not history.repl:
        return violations
    shards = {}
    for rec in sorted(history.repl, key=lambda r: r.seq):
        shards.setdefault(rec.shard, []).append(rec)
    for shard, recs in sorted(shards.items()):
        epoch = 0
        acked = []  # (lsn, txn_id) of ack-satisfied commits, in seq order
        for rec in recs:
            if rec.kind == "read":
                if rec.staleness > rec.bound:
                    violations.append(Violation(
                        "repl-stale-read-beyond-bound", rec.txn_id,
                        "replica %r on shard %r served staleness %r beyond "
                        "bound %r" % (rec.replica, shard, rec.staleness,
                                      rec.bound),
                    ))
            elif rec.kind == "commit":
                if rec.required > 0 and rec.acks < rec.required:
                    violations.append(Violation(
                        "repl-lost-ack-commit", rec.txn_id,
                        "commit on shard %r released with %r acks of %r "
                        "required" % (shard, rec.acks, rec.required),
                    ))
                if rec.epoch != epoch:
                    violations.append(Violation(
                        "repl-split-brain-double-primary", rec.txn_id,
                        "commit on shard %r under epoch %r while epoch %r "
                        "was active" % (shard, rec.epoch, epoch),
                    ))
                if rec.required > 0 and rec.acks >= rec.required:
                    acked.append((rec.lsn, rec.txn_id))
            else:  # promote
                if rec.epoch != epoch + 1:
                    violations.append(Violation(
                        "repl-split-brain-double-primary", None,
                        "promotion on shard %r jumped epoch %r -> %r"
                        % (shard, epoch, rec.epoch),
                    ))
                epoch = rec.epoch
                for lsn, txn_id in acked:
                    if lsn > rec.lsn:
                        violations.append(Violation(
                            "repl-promotion-lost-durable-record", txn_id,
                            "promotion on shard %r installed replica %r at "
                            "lsn %r, losing an ack-satisfied commit at lsn "
                            "%r" % (shard, rec.replica, rec.lsn, lsn),
                        ))
    return violations


def check_all(history):
    """Run every oracle; returns the combined violation list."""
    return (
        check_serializability(history)
        + check_2pc_atomicity(history)
        + check_lock_intervals(history)
        + check_durability(history)
        + check_replication(history)
    )
