"""InnoDB-style buffer pool with a young/old LRU and Lazy LRU Update.

The paper's second MySQL finding (Section 4.1): under memory pressure,
``buf_pool_mutex_enter`` — the mutex protecting the LRU list — becomes a
dominant variance source, because every access that promotes a page to
the head of the young sublist must take the global pool mutex, and
evictions (which in MySQL 5.6 could write a dirty victim while holding
the mutex) make hold times highly variable.

- :mod:`repro.bufferpool.lru` — the split LRU: old sublist holds 3/8 of
  pages, replacement victims come from the old tail, newly read pages
  enter at the old head, and an access to an old-sublist page moves it to
  the young head (``buf_page_make_young``).
- :mod:`repro.bufferpool.pool` — the pool itself: page table, pool mutex,
  miss path (evict + read), and the traced functions the MySQL engine
  exposes to TProfiler.
- :mod:`repro.bufferpool.lazy_lru` — the paper's Lazy LRU Update (LLU,
  Section 6.1): a spin lock with a 0.01 ms bound; on timeout the update
  is deferred to a thread-local backlog processed on the next successful
  acquisition.
"""

from repro.bufferpool.lru import LRUList
from repro.bufferpool.pool import BufferPool, BufferPoolConfig, Page

__all__ = ["BufferPool", "BufferPoolConfig", "LRUList", "Page"]
