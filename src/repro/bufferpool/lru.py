"""The split (young/old) LRU list.

MySQL does not keep a strict LRU: the list is split into a *young* and an
*old* sublist, with the old sublist holding (by default) 3/8 of the pages.
Newly read pages enter at the head of the old sublist; a subsequent access
to an old page promotes it to the head of the young list (make-young);
replacement victims are taken from the old tail.  Within the young list,
pages near the head are not re-ordered on access (to limit mutex traffic),
only pages deeper than ``young_reorder_depth`` fraction are moved.

This module is pure data structure — all virtual-time costs and the mutex
live in :mod:`repro.bufferpool.pool`.
"""

from collections import OrderedDict


class LRUList:
    """Young/old split LRU over opaque page ids."""

    def __init__(self, capacity, old_ratio=3.0 / 8.0, young_reorder_depth=0.25):
        if capacity < 2:
            raise ValueError("LRU capacity must be >= 2")
        if not 0.0 < old_ratio < 1.0:
            raise ValueError("old_ratio must be in (0, 1)")
        self.capacity = capacity
        self.old_ratio = old_ratio
        self.young_reorder_depth = young_reorder_depth
        # First item = head (most recently used end) of each sublist.
        self._young = OrderedDict()
        self._old = OrderedDict()
        # Promotion clock (InnoDB's freed_page_clock heuristic): each
        # promotion ticks the clock; a young page is re-promoted only when
        # enough promotions have happened since its last one that it has
        # sunk past the no-reorder zone.  O(1) instead of a list scan.
        self._clock = 0
        self._stamp = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self):
        return len(self._young) + len(self._old)

    def __contains__(self, page_id):
        return page_id in self._young or page_id in self._old

    @property
    def old_target(self):
        """Desired old-sublist size for the current population."""
        return int(len(self) * self.old_ratio)

    @property
    def young_pages(self):
        return list(self._young)

    @property
    def old_pages(self):
        return list(self._old)

    def in_old(self, page_id):
        return page_id in self._old

    # ------------------------------------------------------------------
    # Mutations (call under the pool mutex)
    # ------------------------------------------------------------------

    def insert_old(self, page_id):
        """A newly read page enters at the head of the old sublist."""
        if page_id in self:
            raise KeyError("page %r already in LRU" % (page_id,))
        if len(self) >= self.capacity:
            raise RuntimeError("LRU full; evict first")
        self._old[page_id] = True
        self._old.move_to_end(page_id, last=False)
        self._stamp[page_id] = self._clock
        self._rebalance()

    def make_young(self, page_id):
        """Promote a page to the head of the young sublist."""
        if page_id in self._old:
            del self._old[page_id]
        elif page_id in self._young:
            del self._young[page_id]
        else:
            raise KeyError("page %r not in LRU" % (page_id,))
        self._young[page_id] = True
        self._young.move_to_end(page_id, last=False)
        self._clock += 1
        self._stamp[page_id] = self._clock
        self._rebalance()

    def needs_make_young(self, page_id):
        """Should an access to this page take the mutex and promote it?

        True for pages in the old sublist, and for young pages that have
        sunk past ``young_reorder_depth`` of the young list since their
        last promotion (pages near the young head are left alone —
        MySQL's re-ordering-avoidance / freed_page_clock heuristic).
        """
        if page_id in self._old:
            return True
        if page_id not in self._young:
            raise KeyError("page %r not in LRU" % (page_id,))
        threshold = self.young_reorder_depth * len(self._young)
        return (self._clock - self._stamp.get(page_id, 0)) > threshold

    def victim(self):
        """The replacement victim: tail of the old sublist."""
        if self._old:
            return next(reversed(self._old))
        if self._young:
            return next(reversed(self._young))
        return None

    def remove(self, page_id):
        if page_id in self._old:
            del self._old[page_id]
        elif page_id in self._young:
            del self._young[page_id]
        else:
            raise KeyError("page %r not in LRU" % (page_id,))
        self._stamp.pop(page_id, None)
        self._rebalance()

    def _rebalance(self):
        """Keep the old sublist at its target share by demoting young tails."""
        target = self.old_target
        while len(self._old) < target and len(self._young) > 0:
            tail = next(reversed(self._young))
            del self._young[tail]
            self._old[tail] = True
            self._old.move_to_end(tail, last=False)
        while len(self._old) > target + 1 and len(self._old) > 0:
            head = next(iter(self._old))
            del self._old[head]
            self._young[head] = True
            # Promoted boundary pages join the young *tail*.
            self._young.move_to_end(head, last=True)

    def __repr__(self):
        return "<LRUList young=%d old=%d cap=%d>" % (
            len(self._young),
            len(self._old),
            self.capacity,
        )
