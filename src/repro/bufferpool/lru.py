"""The split (young/old) LRU list.

MySQL does not keep a strict LRU: the list is split into a *young* and an
*old* sublist, with the old sublist holding (by default) 3/8 of the pages.
Newly read pages enter at the head of the old sublist; a subsequent access
to an old page promotes it to the head of the young list (make-young);
replacement victims are taken from the old tail.  Within the young list,
pages near the head are not re-ordered on access (to limit mutex traffic),
only pages deeper than ``young_reorder_depth`` fraction are moved.

This module is pure data structure — all virtual-time costs and the mutex
live in :mod:`repro.bufferpool.pool`.
"""

from collections import OrderedDict

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a baked-in dependency
    _np = None


class LRUList:
    """Young/old split LRU over opaque page ids."""

    def __init__(self, capacity, old_ratio=3.0 / 8.0, young_reorder_depth=0.25):
        if capacity < 2:
            raise ValueError("LRU capacity must be >= 2")
        if not 0.0 < old_ratio < 1.0:
            raise ValueError("old_ratio must be in (0, 1)")
        self.capacity = capacity
        self.old_ratio = old_ratio
        self.young_reorder_depth = young_reorder_depth
        # First item = head (most recently used end) of each sublist.
        self._young = OrderedDict()
        self._old = OrderedDict()
        # Promotion clock (InnoDB's freed_page_clock heuristic): each
        # promotion ticks the clock; a young page is re-promoted only when
        # enough promotions have happened since its last one that it has
        # sunk past the no-reorder zone.  O(1) instead of a list scan.
        self._clock = 0
        self._stamp = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self):
        return len(self._young) + len(self._old)

    def __contains__(self, page_id):
        return page_id in self._young or page_id in self._old

    @property
    def old_target(self):
        """Desired old-sublist size for the current population."""
        return int(len(self) * self.old_ratio)

    @property
    def young_pages(self):
        return list(self._young)

    @property
    def old_pages(self):
        return list(self._old)

    def in_old(self, page_id):
        return page_id in self._old

    # ------------------------------------------------------------------
    # Mutations (call under the pool mutex)
    # ------------------------------------------------------------------

    def insert_old(self, page_id):
        """A newly read page enters at the head of the old sublist."""
        young = self._young
        old = self._old
        if page_id in young or page_id in old:
            raise KeyError("page %r already in LRU" % (page_id,))
        if len(young) + len(old) >= self.capacity:
            raise RuntimeError("LRU full; evict first")
        old[page_id] = True
        old.move_to_end(page_id, last=False)
        self._stamp[page_id] = self._clock
        self._rebalance()

    def insert_old_many(self, page_ids):
        """Insert many new pages, exactly as ``insert_old`` one by one.

        The bulk prewarm path: one call instead of tens of thousands,
        with the per-insert rebalance inlined and its bookkeeping kept
        in locals.  Final list state is identical to the loop of
        ``insert_old`` calls (the equivalence goldens pin this).
        """
        young = self._young
        old = self._old
        stamp = self._stamp
        clock = self._clock
        old_ratio = self.old_ratio
        capacity = self.capacity
        if not young and not old and not clock:
            # From-empty bulk fill (the prewarm path) admits a closed
            # form.  Per insert, the rebalance reduces to at most one
            # promotion of the just-inserted old head: the old sublist
            # only ever *exceeds* its target (n_old >= target is an
            # invariant from empty, so the demote loop is dead), and a
            # single promotion restores n_old <= target + 1.  Hence the
            # final young order is the promotion (= insertion) order of
            # the promoted pages, and the final old order is the other
            # pages newest-first.
            page_ids = list(page_ids)
            n = len(page_ids)
            if (
                _np is not None
                and n > 512
                and n <= capacity
                and not stamp
                and len(set(page_ids)) == n
            ):
                # Vectorised form of the loop below.  From empty,
                # n_old after insert i (1-based) is always
                # ``int(i * old_ratio) + 1``, so insert i promotes its
                # old head iff ``int(i*r) == int((i-1)*r)`` — a pure
                # function of i computable in one numpy pass.  (Guarded
                # to the duplicate-free, within-capacity case so the
                # scalar loop keeps its exact partial-state exception
                # behaviour.)
                fl = _np.floor(
                    _np.arange(1, n + 1, dtype=_np.float64) * old_ratio
                )
                promote = _np.empty(n, dtype=bool)
                promote[0] = False
                _np.equal(fl[1:], fl[:-1], out=promote[1:])
                promote = promote.tolist()
                stayers = [p for p, m in zip(page_ids, promote) if not m]
                young.update(
                    dict.fromkeys(
                        (p for p, m in zip(page_ids, promote) if m), True
                    )
                )
                old.update(dict.fromkeys(reversed(stayers), True))
                stamp.update(dict.fromkeys(page_ids, clock))
                return
            stayers = []
            n_old = 0
            i = 0
            for page_id in page_ids:
                if page_id in stamp:
                    raise KeyError("page %r already in LRU" % (page_id,))
                if i >= capacity:
                    raise RuntimeError("LRU full; evict first")
                i += 1
                n_old += 1
                if n_old > int(i * old_ratio) + 1:
                    young[page_id] = True
                    n_old -= 1
                else:
                    stayers.append(page_id)
                stamp[page_id] = clock
            for page_id in reversed(stayers):
                old[page_id] = True
            return
        n_young = len(young)
        n_old = len(old)
        for page_id in page_ids:
            if page_id in young or page_id in old:
                raise KeyError("page %r already in LRU" % (page_id,))
            if n_young + n_old >= capacity:
                raise RuntimeError("LRU full; evict first")
            old[page_id] = True
            old.move_to_end(page_id, last=False)
            stamp[page_id] = clock
            n_old += 1
            target = int((n_young + n_old) * old_ratio)
            while n_old < target and n_young > 0:
                tail = next(reversed(young))
                del young[tail]
                old[tail] = True
                old.move_to_end(tail, last=False)
                n_old += 1
                n_young -= 1
            while n_old > target + 1:
                head = next(iter(old))
                del old[head]
                young[head] = True
                n_old -= 1
                n_young += 1

    def make_young(self, page_id):
        """Promote a page to the head of the young sublist."""
        young = self._young
        old = self._old
        if page_id in old:
            del old[page_id]
        elif page_id in young:
            del young[page_id]
        else:
            raise KeyError("page %r not in LRU" % (page_id,))
        young[page_id] = True
        young.move_to_end(page_id, last=False)
        self._clock += 1
        self._stamp[page_id] = self._clock
        self._rebalance()

    def needs_make_young(self, page_id):
        """Should an access to this page take the mutex and promote it?

        True for pages in the old sublist, and for young pages that have
        sunk past ``young_reorder_depth`` of the young list since their
        last promotion (pages near the young head are left alone —
        MySQL's re-ordering-avoidance / freed_page_clock heuristic).
        """
        if page_id in self._old:
            return True
        young = self._young
        if page_id not in young:
            raise KeyError("page %r not in LRU" % (page_id,))
        return (self._clock - self._stamp.get(page_id, 0)) > (
            self.young_reorder_depth * len(young)
        )

    def victim(self):
        """The replacement victim: tail of the old sublist."""
        if self._old:
            return next(reversed(self._old))
        if self._young:
            return next(reversed(self._young))
        return None

    def remove(self, page_id):
        if page_id in self._old:
            del self._old[page_id]
        elif page_id in self._young:
            del self._young[page_id]
        else:
            raise KeyError("page %r not in LRU" % (page_id,))
        self._stamp.pop(page_id, None)
        self._rebalance()

    def _rebalance(self):
        """Keep the old sublist at its target share by demoting young tails."""
        young = self._young
        old = self._old
        n_young = len(young)
        n_old = len(old)
        target = int((n_young + n_old) * self.old_ratio)
        while n_old < target and n_young > 0:
            tail = next(reversed(young))
            del young[tail]
            old[tail] = True
            old.move_to_end(tail, last=False)
            n_old += 1
            n_young -= 1
        while n_old > target + 1:
            head = next(iter(old))
            del old[head]
            # Promoted boundary pages join the young *tail* (the lists
            # are disjoint, so plain insertion appends at the end).
            young[head] = True
            n_old -= 1

    def __repr__(self):
        return "<LRUList young=%d old=%d cap=%d>" % (
            len(self._young),
            len(self._old),
            self.capacity,
        )
