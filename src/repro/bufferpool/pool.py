"""The buffer pool: page table, pool mutex, miss path, traced functions.

Cost model (virtual time):

- a page-table hit costs ``hit_cost`` (hash lookup + frame pin);
- promoting a page (make-young) takes the pool mutex and holds it for
  ``list_op_cost`` — the *wait* for that mutex is the variance source the
  paper attributes to ``buf_pool_mutex_enter``;
- a miss takes the mutex to find a victim (``evict_op_cost`` hold time),
  and — as in MySQL 5.6's single-page-flush pathology — if the victim is
  dirty the evicting thread writes it back *while holding the mutex*;
  the subsequent read of the wanted page happens outside the mutex;
- with Lazy LRU Update enabled, make-young uses a spin lock bounded by
  ``llu_spin_timeout`` (paper: 0.01 ms); on timeout the update is pushed
  to the caller's backlog and applied on a later successful acquisition.

The traced function names match InnoDB so TProfiler's findings read like
Table 1: ``buf_page_make_young`` -> ``buf_pool_mutex_enter`` ->
``buf_LRU_make_block_young``; the miss path is ``buf_read_page`` ->
``buf_pool_mutex_enter`` / ``buf_LRU_get_free_block``.
"""

from repro.bufferpool.lru import LRUList
from repro.sim.resources import Mutex, SpinLock


class Page:
    """A buffered page frame."""

    __slots__ = ("page_id", "dirty")

    def __init__(self, page_id):
        self.page_id = page_id
        self.dirty = False

    def __repr__(self):
        return "<Page %r%s>" % (self.page_id, " dirty" if self.dirty else "")


class BufferPoolConfig:
    """Pool sizing and cost parameters (times in microseconds)."""

    def __init__(
        self,
        capacity_pages=1000,
        page_bytes=16384,
        old_ratio=3.0 / 8.0,
        young_reorder_depth=0.25,
        hit_cost=1.0,
        list_op_cost=2.0,
        evict_op_cost=5.0,
        lazy_lru=False,
        llu_spin_timeout=10.0,
        llu_backlog_apply_cost=1.0,
    ):
        self.capacity_pages = capacity_pages
        self.page_bytes = page_bytes
        self.old_ratio = old_ratio
        self.young_reorder_depth = young_reorder_depth
        self.hit_cost = hit_cost
        self.list_op_cost = list_op_cost
        self.evict_op_cost = evict_op_cost
        self.lazy_lru = lazy_lru
        self.llu_spin_timeout = llu_spin_timeout
        self.llu_backlog_apply_cost = llu_backlog_apply_cost


class BufferPool:
    """An InnoDB-style buffer pool bound to a data disk and a tracer."""

    def __init__(self, sim, tracer, disk, config=None, name="buf_pool"):
        self.sim = sim
        self.tracer = tracer
        self.disk = disk
        self.config = config or BufferPoolConfig()
        self.name = name
        self._pages = {}
        self._lru = LRUList(
            self.config.capacity_pages,
            old_ratio=self.config.old_ratio,
            young_reorder_depth=self.config.young_reorder_depth,
        )
        if self.config.lazy_lru:
            self.mutex = SpinLock(
                sim,
                name=name + ".mutex",
                spin_timeout=self.config.llu_spin_timeout,
            )
        else:
            self.mutex = Mutex(sim, name=name + ".mutex")
        # Accounting.
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_writebacks = 0
        self.make_youngs = 0
        self.llu_deferrals = 0
        self.llu_applied = 0
        # Telemetry instruments.  The hold-time histogram measures how
        # long the pool mutex stays held per critical section — the
        # quantity LLU shrinks and the paper's Table 1 indicts.
        self._hit_cost = float(self.config.hit_cost)
        tm = sim.telemetry
        self._tm = tm
        self._t_hits = tm.counter(name + ".hits")
        self._t_misses = tm.counter(name + ".misses")
        # The hit/miss counters shadow the plain accounting attributes
        # one-for-one; the hit counter is the single hottest instrument
        # in a run, so both are folded in bulk at registry flush (always
        # before a snapshot) instead of paying an inc per page access.
        self._flushed_hits = 0
        self._flushed_misses = 0
        tm.add_flush_hook(self._flush_counters)
        self._t_evictions = tm.counter(name + ".evictions")
        self._t_writebacks = tm.counter(name + ".dirty_writebacks")
        self._t_deferrals = tm.counter(name + ".llu_deferrals")
        self._t_hold_hist = tm.histogram(name + ".mutex_hold_time")
        self._t_resident = tm.gauge(name + ".resident_pages")

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def hit_ratio(self):
        total = self.hits + self.misses
        return self.hits / total if total else 1.0

    def _flush_counters(self):
        """Fold the deferred hit/miss totals into their counters."""
        delta = self.hits - self._flushed_hits
        if delta:
            self._t_hits.inc(delta)
            self._flushed_hits = self.hits
        delta = self.misses - self._flushed_misses
        if delta:
            self._t_misses.inc(delta)
            self._flushed_misses = self.misses

    def contains(self, page_id):
        return page_id in self._pages

    def crash(self):
        """Whole-node crash: every cached page is gone (cold restart).

        The pool restarts empty — no prewarm; the first transactions
        after recovery pay miss-path disk reads, which is part of the
        crash's latency footprint.  The pool mutex is reset directly
        (``release`` would refuse: its holder died with the worker pool)
        and parked waiters are dropped — they are dead processes.
        """
        self._pages.clear()
        self._lru = LRUList(
            self.config.capacity_pages,
            old_ratio=self.config.old_ratio,
            young_reorder_depth=self.config.young_reorder_depth,
        )
        mutex = self.mutex._mutex if self.config.lazy_lru else self.mutex
        mutex.holder = None
        mutex._waiters.clear()
        self._t_resident.set(0)

    def prewarm(self, page_ids):
        """Populate the pool (up to capacity) without virtual time or I/O.

        Models a warmed server: the paper measures steady state, not the
        cold-start transient.  Pages are inserted clean at the old head;
        the LRU will sort itself out as traffic arrives.  Returns the
        number of pages resident afterwards.
        """
        pages = self._pages
        capacity = self.config.capacity_pages
        n = len(pages)
        fresh = []
        append = fresh.append
        for page_id in page_ids:
            if n >= capacity:
                break
            if page_id in pages:
                continue
            pages[page_id] = Page(page_id)
            n += 1
            append(page_id)
        self._lru.insert_old_many(fresh)
        return len(pages)

    def fix_page(self, ctx, page_id, dirty=False, backlog=None):
        """Generator: pin ``page_id``, reading it in on a miss.

        ``backlog`` is the calling worker's deferred-LRU-update list; it is
        only consulted when the pool runs with Lazy LRU Update.
        """
        pages_get = self._pages.get
        while True:
            page = pages_get(page_id)
            if page is None:
                break
            self.hits += 1
            yield self._hit_cost
            if pages_get(page_id) is not page:
                # Evicted (or replaced) while we paused: take the miss path.
                continue
            if dirty:
                page.dirty = True
            # Inlined ``self._lru.needs_make_young(page_id)`` — the hit
            # path runs once per page access and the call overhead alone
            # shows up in run wall time.
            lru = self._lru
            if page_id in lru._old:
                promote = True
            else:
                young = lru._young
                if page_id not in young:
                    raise KeyError("page %r not in LRU" % (page_id,))
                promote = (lru._clock - lru._stamp.get(page_id, 0)) > (
                    lru.young_reorder_depth * len(young)
                )
            if promote:
                yield from self.tracer.traced(
                    ctx, "buf_page_make_young", self._make_young(ctx, page_id, backlog)
                )
            return page
        self.misses += 1
        page = yield from self.tracer.traced(
            ctx, "buf_read_page", self._read_in(ctx, page_id)
        )
        if dirty:
            page.dirty = True
        return page

    def flush_page(self, page_id):
        """Generator: write a dirty page back (used by checkpointing tests)."""
        page = self._pages.get(page_id)
        if page is None or not page.dirty:
            return
        yield from self.disk.write(self.config.page_bytes)
        page.dirty = False

    # ------------------------------------------------------------------
    # Make-young path (buf_page_make_young)
    # ------------------------------------------------------------------

    def _make_young(self, ctx, page_id, backlog):
        if self.config.lazy_lru:
            yield from self._make_young_lazy(ctx, page_id, backlog)
        else:
            yield from self._make_young_eager(ctx, page_id)

    def _make_young_eager(self, ctx, page_id):
        yield from self.tracer.traced(
            ctx, "buf_pool_mutex_enter", self.mutex.acquire(), site="make_young"
        )
        held_since = self.sim.now
        yield from self.tracer.traced(
            ctx, "buf_LRU_make_block_young", self._apply_make_young(page_id)
        )
        self._t_hold_hist.observe(self.sim.now - held_since)
        self.mutex.release()

    def _make_young_lazy(self, ctx, page_id, backlog):
        acquired = yield from self.tracer.traced(
            ctx, "buf_pool_mutex_enter", self.mutex.try_acquire(), site="make_young"
        )
        if not acquired:
            self.llu_deferrals += 1
            self._t_deferrals.inc()
            if backlog is not None:
                backlog.append(page_id)
            return
        held_since = self.sim.now
        if backlog:
            yield from self._apply_backlog(backlog)
        yield from self.tracer.traced(
            ctx, "buf_LRU_make_block_young", self._apply_make_young(page_id)
        )
        self._t_hold_hist.observe(self.sim.now - held_since)
        self.mutex.release()

    def _apply_backlog(self, backlog):
        """Apply deferred updates (skipping pages evicted meanwhile)."""
        pending, backlog[:] = list(backlog), []
        for page_id in pending:
            if page_id not in self._pages:
                continue  # evicted since the deferral; nothing to do
            self.llu_applied += 1
            yield self.config.llu_backlog_apply_cost
            self._lru.make_young(page_id)

    def _apply_make_young(self, page_id):
        self.make_youngs += 1
        yield self.config.list_op_cost
        if page_id in self._pages:
            self._lru.make_young(page_id)

    # ------------------------------------------------------------------
    # Miss path (buf_read_page)
    # ------------------------------------------------------------------

    def _read_in(self, ctx, page_id):
        yield from self.tracer.traced(
            ctx, "buf_pool_mutex_enter", self.mutex.acquire(), site="read_page"
        )
        held_since = self.sim.now
        # Somebody else may have read the page in while we waited.
        page = self._pages.get(page_id)
        if page is not None:
            self._t_hold_hist.observe(self.sim.now - held_since)
            self.mutex.release()
            yield self.config.hit_cost
            return page
        yield from self.tracer.traced(
            ctx, "buf_LRU_get_free_block", self._evict_for_free_frame()
        )
        # Reserve the slot so concurrent missers don't double-read, then
        # read the page contents outside the mutex.
        page = Page(page_id)
        self._pages[page_id] = page
        self._lru.insert_old(page_id)
        self._t_hold_hist.observe(self.sim.now - held_since)
        self._t_resident.set(len(self._pages))
        self.mutex.release()
        yield from self.disk.read(self.config.page_bytes)
        return page

    def _evict_for_free_frame(self):
        """Find a free frame, evicting (and flushing) a victim if needed.

        Runs while holding the pool mutex; a dirty victim is written back
        under the mutex (the MySQL 5.6 single-page-flush pathology that
        makes hold times heavy-tailed under memory pressure).
        """
        yield self.config.evict_op_cost
        if len(self._lru) < self._lru.capacity:
            return
        victim_id = self._lru.victim()
        if victim_id is None:
            return
        victim = self._pages.pop(victim_id)
        self._lru.remove(victim_id)
        self.evictions += 1
        self._t_evictions.inc()
        if victim.dirty:
            self.dirty_writebacks += 1
            self._t_writebacks.inc()
            yield from self.disk.write(self.config.page_bytes)

    def __repr__(self):
        return "<BufferPool %s pages=%d/%d hit_ratio=%.2f>" % (
            self.name,
            len(self._pages),
            self.config.capacity_pages,
            self.hit_ratio,
        )
