"""The TProfiler iterative-refinement driver (Section 3.1).

Each iteration: run the system with the current instrumented subset,
build the variance tree, score factors, pick the top-k informative ones,
and expand their children into the instrumented set for the next run.
The loop stops when no chosen factor has unexplored children (or after
``max_iterations``, the paper's "perhaps as much as ten").

A :class:`ProfiledSystem` adapter supplies the system under study: its
static call graph and a ``run(instrumented, probe_cost)`` method that
executes the workload and returns a
:class:`~repro.core.annotations.TransactionLog`.

:class:`NaiveProfiler` is the Figure 5 (right) baseline: it decomposes
*every* factor rather than only the high-scoring ones, so the number of
runs needed scales with the size of the call graph instead of with the
depth of the variance-relevant path.
"""

import math

from repro.core.scoring import score_factors, top_k_factors
from repro.core.variance_tree import VarianceTree


class ProfiledSystem:
    """Adapter protocol the profiler drives.

    Subclasses provide:

    - ``callgraph`` — a :class:`~repro.core.callgraph.CallGraph`;
    - ``run(instrumented, probe_cost)`` — execute the workload with the
      given instrumented function names and return a ``TransactionLog``.

    ``run_many`` executes a batch of independent instrumented subsets
    and returns one log per subset, in order.  The default is a serial
    loop over ``run``; adapters backed by the execution layer
    (:class:`~repro.bench.profiled.EngineProfiledSystem`) override it to
    fan the batch out across an :class:`~repro.exec.Executor`.
    """

    callgraph = None

    def run(self, instrumented, probe_cost):
        raise NotImplementedError

    def run_many(self, batches, probe_cost):
        return [self.run(frozenset(batch), probe_cost) for batch in batches]


class FactorReport:
    """One row of the final profile (the Table 1 / Table 2 rows)."""

    __slots__ = ("name", "site", "share", "variance", "score", "height")

    def __init__(self, name, site, share, variance, score, height):
        self.name = name
        self.site = site
        self.share = share
        self.variance = variance
        self.score = score
        self.height = height

    def __repr__(self):
        return "FactorReport(%s@%s, share=%.1f%%)" % (
            self.name,
            self.site,
            100.0 * self.share,
        )


class ProfileResult:
    """Outcome of a full profiling session."""

    def __init__(self, factors, tree, instrumented, iterations, runs):
        self.factors = factors
        self.tree = tree
        self.instrumented = instrumented
        self.iterations = iterations
        self.runs = runs

    def top(self, k):
        return self.factors[:k]

    def share_of(self, name):
        """Combined share of overall variance across call sites of ``name``."""
        return self.tree.name_shares().get(name, 0.0)

    def __repr__(self):
        return "<ProfileResult %d factors after %d runs>" % (
            len(self.factors),
            self.runs,
        )


class TProfiler:
    """Iterative-refinement profiler with score-guided expansion."""

    def __init__(
        self,
        system,
        k=5,
        max_iterations=10,
        probe_cost=0.05,
        expand_share_threshold=0.01,
        specificity_exponent=2,
    ):
        self.system = system
        self.k = k
        self.max_iterations = max_iterations
        self.probe_cost = probe_cost
        self.expand_share_threshold = expand_share_threshold
        self.specificity_exponent = specificity_exponent
        self.runs = 0

    def profile(self):
        """Run the full instrument-collect-analyze-expand loop."""
        graph = self.system.callgraph
        instrumented = {graph.root}
        tree = None
        iterations = 0
        for _ in range(self.max_iterations):
            iterations += 1
            log = self.system.run(frozenset(instrumented), self.probe_cost)
            self.runs += 1
            tree = VarianceTree(log.traces)
            added = self._expand(tree, graph, instrumented)
            if not added:
                break
        return ProfileResult(
            factors=self._final_factors(tree, graph),
            tree=tree,
            instrumented=frozenset(instrumented),
            iterations=iterations,
            runs=self.runs,
        )

    def _expand(self, tree, graph, instrumented):
        """Choose top-k informative factors and instrument their children."""
        shares = tree.name_shares()
        scores = score_factors(tree, graph, self.specificity_exponent)
        # Candidates: measured functions that still have unexplored
        # children and account for a non-trivial share of overall variance.
        candidates = {}
        for name, score in scores.items():
            base = name[: -len("::body")] if name.endswith("::body") else name
            unexplored = [c for c in graph.children(base) if c not in instrumented]
            if not unexplored:
                continue
            if shares.get(name, 0.0) < self.expand_share_threshold:
                continue
            candidates[base] = max(candidates.get(base, 0.0), score)
        chosen = top_k_factors(candidates, self.k)
        added = set()
        for name in chosen:
            for child in graph.children(name):
                if child not in instrumented:
                    instrumented.add(child)
                    added.add(child)
        return added

    def _final_factors(self, tree, graph):
        """Rank all measured factors for the final report."""
        scores = score_factors(tree, graph, self.specificity_exponent)
        shares = tree.shares()
        rows = []
        for key in tree.factor_keys:
            name, site = key
            base = name[: -len("::body")] if name.endswith("::body") else name
            if base not in graph:
                continue
            rows.append(
                FactorReport(
                    name=name,
                    site=site,
                    share=shares[key],
                    variance=tree.factor_variance(key),
                    score=scores.get(name, 0.0),
                    height=graph.height(base),
                )
            )
        rows.sort(key=lambda r: (-r.score, -r.share, r.name))
        return rows


class NaiveProfiler:
    """The expand-everything baseline (Figure 5, right).

    To keep instrumentation overhead bounded, any profiler can instrument
    at most ``budget`` functions per run; the naive strategy must
    decompose every non-leaf function (parent plus all children measured
    together), so its run count scales with the call-graph size.
    """

    def __init__(self, system=None, budget=100):
        self.system = system
        self.budget = budget

    def runs_needed(self, callgraph, expanded=False):
        """Number of runs to decompose every factor.

        With ``expanded=True``, counts over the fully expanded call *tree*
        (every root-to-node path its own node) — the paper's 2e15-node
        figure for MySQL; otherwise over the static DAG's functions.
        """
        if expanded:
            total, leaves = callgraph.expanded_tree_counts()
            non_leaves = total - leaves
            # Each expanded non-leaf must appear in some run together with
            # its children; a run holds at most `budget` probes.
            return max(1, math.ceil(non_leaves / self.budget))
        probes = 0
        for name in callgraph.functions:
            children = callgraph.children(name)
            if children:
                probes += 1 + len(children)
        return max(1, math.ceil(probes / self.budget))

    def batches(self, callgraph=None):
        """The budget-bounded instrumented subsets, in decomposition order.

        Every non-leaf function must be measured together with all of
        its children; groups pack into batches of at most ``budget``
        probes.  The batches are mutually independent — each is its own
        deterministic run — which is what lets :meth:`profile` fan them
        out across the execution layer instead of looping serially.
        """
        graph = callgraph if callgraph is not None else self.system.callgraph
        batches = []
        batch = []
        for name in graph.functions:
            children = graph.children(name)
            if not children:
                continue
            group = [name] + children
            if len(batch) + len(group) > self.budget and batch:
                batches.append(frozenset(batch))
                batch = []
            batch.extend(group)
        if batch:
            batches.append(frozenset(batch))
        return batches

    def profile(self, probe_cost=0.05):
        """Actually run the naive strategy against a (small) system."""
        if self.system is None:
            raise RuntimeError("NaiveProfiler.profile needs a system")
        batches = self.batches()
        if not batches:
            return None, 0
        logs = self.system.run_many(batches, probe_cost)
        tree = VarianceTree(logs[-1].traces)
        return tree, len(batches)
