"""Factor scoring: specificity x variance (Section 3.2, eqs. 2-3).

The variance of a parent is always at least that of any child's
contribution, so the highest-variance factors sit uselessly at the root of
the call hierarchy.  TProfiler therefore ranks factors by

    score(phi) = specificity(phi) * sum_i V(phi_i)                  (3)
    specificity(phi) = (height(call graph) - height(phi)) ** 2      (2)

where V(phi_i) is the variance (or covariance) of call site i of the
factor, aggregated across sites, and height is the static call-graph
height (leaves = 0).  The square gives deep, specific functions a strong
edge — the paper's ablation knob ``exponent`` is exposed here.
"""


def specificity(callgraph, name, exponent=2):
    """Eq. (2): ``(graph_height - height(name)) ** exponent``."""
    return float(callgraph.graph_height - callgraph.height(name)) ** exponent


def score_factors(tree, callgraph, exponent=2):
    """Score every measured function name in a variance tree.

    Returns ``{function_name: score}``.  Per the paper, the variance of a
    function is aggregated across its call sites before scoring; the root
    function and synthetic body factors score like their function.
    """
    # Aggregate variance across sites: sum the per-site per-transaction
    # vectors, then take the variance of the sum (matching name_shares).
    by_name = {}
    for key in tree.factor_keys:
        name = key[0]
        arr = tree._factor_samples[key]
        if name in by_name:
            by_name[name] = by_name[name] + arr
        else:
            by_name[name] = arr.copy()
    scores = {}
    for name, arr in by_name.items():
        base = name[: -len("::body")] if name.endswith("::body") else name
        if base not in callgraph:
            continue
        scores[name] = specificity(callgraph, base, exponent) * float(arr.var())
    return scores


def top_k_factors(scores, k):
    """The k highest-scoring names, best first (ties broken by name)."""
    ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
    return [name for name, _score in ranked[:k]]
