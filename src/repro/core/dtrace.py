"""A DTrace-style baseline profiler (Figure 5, left).

DTrace instruments the *binary* at run time: it needs no source access,
but every probe firing traps into a generalized tracing framework, which
costs microseconds rather than the tens of nanoseconds of TProfiler's
compiled-in source probes.  We model exactly that difference: the same
selective tracer, with a per-probe virtual-time cost two orders of
magnitude higher.  The Figure 5 experiment varies the number of
instrumented children from 1 to 100 and measures the relative drop in
throughput and rise in mean latency for both tools.
"""

# Per-probe costs in microseconds of virtual time.  TProfiler's source
# probe is a pair of rdtsc-and-store sequences (~tens of ns); DTrace's pid
# provider fires a trap into the kernel tracing framework per entry/return.
TPROFILER_PROBE_COST = 0.04
DTRACE_PROBE_COST = 15.0


def overhead_experiment(system, child_counts, probe_cost):
    """Measure instrumentation overhead as a function of probe count.

    For each ``n`` in ``child_counts``, instruments the ``n`` hottest
    functions (by static-graph breadth-first order, mimicking 'a parent
    and its first n children') and returns rows of
    ``(n, latency_overhead, throughput_overhead)`` relative to an
    uninstrumented run.

    ``system`` is a :class:`~repro.core.profiler.ProfiledSystem` whose
    ``run`` returns a TransactionLog; throughput is completed transactions
    per unit virtual time over the run's span.
    """
    baseline = _measure(system, frozenset(), 0.0)
    rows = []
    ordering = _breadth_first(system.callgraph)
    for n in child_counts:
        chosen = frozenset(ordering[: n + 1])  # parent + n children
        mean, tput = _measure(system, chosen, probe_cost)
        rows.append(
            (
                n,
                mean / baseline[0] - 1.0,
                1.0 - tput / baseline[1],
            )
        )
    return rows


def _measure(system, instrumented, probe_cost):
    log = system.run(instrumented, probe_cost)
    latencies = log.latencies()
    span = max(t.end for t in log.traces) - min(t.birth for t in log.traces)
    mean = sum(latencies) / len(latencies)
    throughput = len(latencies) / span
    return mean, throughput


def _breadth_first(callgraph):
    order = []
    seen = set()
    frontier = [callgraph.root]
    while frontier:
        nxt = []
        for name in frontier:
            if name in seen:
                continue
            seen.add(name)
            order.append(name)
            nxt.extend(callgraph.children(name))
        frontier = nxt
    return order
