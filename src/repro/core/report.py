"""Rendering of profile results in the paper's table format."""


def render_profile(result, top=6, config_label=""):
    """Render a :class:`~repro.core.profiler.ProfileResult` like Table 1.

    Columns: configuration label, factor (function @ site), and its share
    of overall transaction latency variance.
    """
    lines = []
    header = "%-10s %-48s %s" % ("Config", "Function Name", "% of Overall Variance")
    lines.append(header)
    lines.append("-" * len(header))
    for row in result.top(top):
        label = row.name if row.site in ("<root>", "") else "%s [%s]" % (
            row.name,
            row.site,
        )
        lines.append(
            "%-10s %-48s %6.2f%%" % (config_label, label, 100.0 * row.share)
        )
    return "\n".join(lines)


def render_ratio_table(title, rows):
    """Render a ratio table like Table 4 / Figure 2.

    ``rows`` is ``[(label, {"mean": r, "variance": r, "p99": r}), ...]``;
    ratios are baseline/candidate, so > 1 means the candidate improves.
    """
    lines = [title]
    header = "%-14s %10s %10s %10s" % ("Workload", "Mean", "Variance", "99th %ile")
    lines.append(header)
    lines.append("-" * len(header))
    for label, ratios in rows:
        lines.append(
            "%-14s %9.1fx %9.1fx %9.1fx"
            % (label, ratios["mean"], ratios["variance"], ratios["p99"])
        )
    return "\n".join(lines)


def render_summary_table(title, rows):
    """Render absolute latency summaries like Figure 6.

    ``rows`` is ``[(label, LatencySummary), ...]``; times are reported in
    milliseconds for readability (the simulator's clock is microseconds).
    """
    lines = [title]
    header = "%-14s %12s %12s %12s %8s" % (
        "System",
        "Mean (ms)",
        "Std (ms)",
        "p99 (ms)",
        "CV",
    )
    lines.append(header)
    lines.append("-" * len(header))
    for label, summary in rows:
        lines.append(
            "%-14s %12.2f %12.2f %12.2f %8.2f"
            % (
                label,
                summary.mean / 1000.0,
                summary.std / 1000.0,
                summary.p99 / 1000.0,
                summary.cv,
            )
        )
    return "\n".join(lines)
