"""Selective instrumentation of simulated engine functions.

Engines route every "named function" through :meth:`Tracer.traced`::

    def fil_flush(self, ctx):
        yield from self.tracer.traced(ctx, "fil_flush", self._do_flush(ctx))

When ``"fil_flush"`` is not in the instrumented set the call is delegated
with zero overhead and nothing is recorded — this is the paper's key
mechanism for keeping the latency profile representative (Section 3):
only a carefully selected subset of the call graph is timed per run.

When instrumented, entry and exit timestamps on the virtual clock are
recorded into the transaction's trace, and each probe charges
``probe_cost`` of virtual time.  TProfiler's source-level probes cost a
few tens of nanoseconds; the DTrace baseline (binary rewriting, trap into
the tracing framework) costs microseconds per probe — the difference
behind Figure 5 (left).

Factor identity: a factor is ``(function_name, site_label)``.  The site
label defaults to the name of the innermost *instrumented* caller, so the
same function invoked from two contexts (the paper's os_event_wait [A] vs
[B]) shows up as two factors; engines can pass an explicit ``site=`` for
finer splits (e.g. the select vs update call sites inside
lock_wait_suspend_thread).
"""

from repro.core.annotations import _Frame


class Tracer:
    """Records per-transaction time attribution for an instrumented subset."""

    def __init__(self, sim, callgraph, instrumented=(), probe_cost=0.0, log=None):
        self.sim = sim
        self.callgraph = callgraph
        self.instrumented = set(instrumented)
        # Kept a float so probes can use the kernel's bare-float yield.
        self.probe_cost = float(probe_cost)
        self.log = log
        self.probe_firings = 0
        # Exited frames are recycled through this freelist instead of
        # allocated per traced call — instrumented runs make one frame
        # per probe invocation, which is pure garbage the moment the
        # frame exits.  Frames abandoned mid-flight (crash paths clear
        # ``ctx.stack`` wholesale) simply escape the pool; correctness
        # never depends on recycling.
        self._frame_pool = []

    # ------------------------------------------------------------------
    # Transaction demarcation passthrough
    # ------------------------------------------------------------------

    def begin_transaction(self, ctx):
        ctx.begin()

    def end_transaction(self, ctx, committed=True):
        ctx.end()
        if self.log is not None:
            self.log.record(ctx, committed)

    # ------------------------------------------------------------------
    # Function tracing
    # ------------------------------------------------------------------

    def traced(self, ctx, name, subgen, site=None):
        """Run ``subgen`` as the body of function ``name``.

        Delegates with zero overhead when ``name`` is not instrumented:
        the sub-generator itself is returned for the caller to ``yield
        from`` directly, so an uninstrumented call adds no generator
        frame at all (engines make millions of these calls per run —
        wrapping each in a pass-through ``yield from`` generator used to
        double the delegation depth of every hot path).  Otherwise an
        instrumenting wrapper records the invocation's duration into
        ``ctx`` under the factor key and charges the probe cost at entry
        and exit.
        """
        if ctx is None or name not in self.instrumented:
            return subgen
        return self._traced(ctx, name, subgen, site)

    def _traced(self, ctx, name, subgen, site):
        parent = ctx.stack[-1] if ctx.stack else None
        if site is None:
            site = parent.key[0] if parent is not None else "<root>"
        key = (name, site)

        if self.probe_cost:
            self.probe_firings += 1
            yield self.probe_cost
        pool = self._frame_pool
        if pool:
            frame = pool.pop()
            frame.key = key
            frame.start = self.sim.now
            frame.parent = parent
        else:
            frame = _Frame(key, self.sim.now, parent)
        ctx.stack.append(frame)
        try:
            result = yield from subgen
        except BaseException:
            self._exit_frame(ctx, frame)
            raise
        if self.probe_cost:
            self.probe_firings += 1
            yield self.probe_cost
        self._exit_frame(ctx, frame)
        return result

    def _exit_frame(self, ctx, frame):
        if not ctx.stack or ctx.stack[-1] is not frame:
            raise RuntimeError(
                "traced frames exited out of order in txn %r" % (ctx.txn_id,)
            )
        ctx.stack.pop()
        duration = self.sim.now - frame.start
        key = frame.key
        ctx.durations[key] = ctx.durations.get(key, 0.0) + duration
        parent = frame.parent
        if parent is not None:
            per_child = ctx.under.setdefault(parent.key, {})
            per_child[key] = per_child.get(key, 0.0) + duration
        # Recycle: children always exit before their parent (enforced
        # above), so nothing can still read this frame's fields.  Drop
        # the parent link to keep the pool from pinning frame chains.
        frame.parent = None
        self._frame_pool.append(frame)

    def record(self, ctx, name, duration, site="<root>", parent=None):
        """Record a measured duration for ``name`` without a live frame.

        Used by task-concurrent engines (VoltDB) where the time on behalf
        of a transaction is not spent inside one process's call stack —
        e.g. the queue-wait interval between submission and pickup.
        ``parent`` optionally attributes the time under an instrumented
        parent factor key for variance-tree decomposition.
        """
        if ctx is None or name not in self.instrumented:
            return
        key = (name, site)
        ctx.durations[key] = ctx.durations.get(key, 0.0) + duration
        if parent is not None and parent[0] in self.instrumented:
            per_child = ctx.under.setdefault(parent, {})
            per_child[key] = per_child.get(key, 0.0) + duration

    # ------------------------------------------------------------------
    # Instrumentation control (the iterative-refinement knob)
    # ------------------------------------------------------------------

    def instrument(self, names):
        """Add functions to the instrumented set (validated against the graph)."""
        for name in names:
            if self.callgraph is not None and name not in self.callgraph:
                raise KeyError("unknown function %r" % (name,))
            self.instrumented.add(name)

    def clear(self):
        self.instrumented.clear()

    def __repr__(self):
        return "<Tracer instrumented=%d probe_cost=%r>" % (
            len(self.instrumented),
            self.probe_cost,
        )
