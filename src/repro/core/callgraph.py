"""Static call-graph registry.

TProfiler's scoring (Section 3.2) needs each function's *height* — the
maximum depth of the call tree beneath it — so that specificity can favour
deep, specific functions over uninformative roots.  Engines declare their
static call graph as data (name -> children names); the registry computes
heights, exposes parent/child navigation for the iterative-refinement
expansion step, and can count nodes of the *expanded* call tree (every
root-to-node path counted separately), which is the quantity the paper's
"2 x 10^15 nodes in MySQL's static call graph" refers to and the input to
the naive-profiling run-count comparison (Figure 5, right).
"""


class CallGraph:
    """A DAG of function names with a single designated root."""

    def __init__(self, root):
        self.root = root
        self._children = {root: []}
        self._parents = {root: []}
        self._version = 0
        self._height_cache = None
        self._height_cache_version = -1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _ensure(self, name):
        if name not in self._children:
            self._children[name] = []
            self._parents[name] = []
            self._version += 1

    def add(self, name, children=()):
        """Declare ``name``'s children (creating nodes as needed)."""
        self._ensure(name)
        for child in children:
            self.add_edge(name, child)
        return self

    def add_edge(self, parent, child):
        self._ensure(parent)
        self._ensure(child)
        if child not in self._children[parent]:
            self._children[parent].append(child)
            self._parents[child].append(parent)
            self._version += 1
        return self

    @classmethod
    def from_dict(cls, root, edges):
        """Build from ``{parent: [children, ...]}``."""
        graph = cls(root)
        for parent, children in edges.items():
            graph.add(parent, children)
        return graph

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __contains__(self, name):
        return name in self._children

    @property
    def functions(self):
        return list(self._children)

    def children(self, name):
        return list(self._children.get(name, ()))

    def parents(self, name):
        return list(self._parents.get(name, ()))

    def is_leaf(self, name):
        return not self._children.get(name)

    def height(self, name):
        """Max depth of the call tree beneath ``name`` (leaf = 0)."""
        return self._heights()[name]

    @property
    def graph_height(self):
        """Height of the root — ``height(call graph)`` in eq. (2)."""
        return self._heights()[self.root]

    def _heights(self):
        if (
            self._height_cache is not None
            and self._height_cache_version == self._version
        ):
            return self._height_cache
        heights = {}
        state = {}

        def visit(node):
            if node in heights:
                return heights[node]
            if state.get(node) == "visiting":
                raise ValueError("call graph contains a cycle at %r" % (node,))
            state[node] = "visiting"
            kids = self._children[node]
            heights[node] = 0 if not kids else 1 + max(visit(k) for k in kids)
            state[node] = "done"
            return heights[node]

        for node in self._children:
            visit(node)
        self._height_cache = heights
        self._height_cache_version = self._version
        return heights

    def descendants(self, name):
        """All functions reachable beneath ``name`` (not including it)."""
        seen = set()
        stack = list(self._children.get(name, ()))
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._children.get(node, ()))
        return seen

    # ------------------------------------------------------------------
    # Expanded-tree accounting (Figure 5, right)
    # ------------------------------------------------------------------

    def expanded_tree_counts(self):
        """Count (total, leaf) nodes of the fully expanded call tree.

        Each node of the expanded tree is a root-to-function *path*; a
        function reached along k distinct paths contributes k nodes.  This
        is the sense in which MySQL's static call graph has ~2e15 nodes
        while having only ~30K functions.  Computed by dynamic programming
        on the DAG (paths(root)=1; paths(child) += paths(parent)).
        """
        order = self._topological_order()
        paths = {name: 0 for name in self._children}
        paths[self.root] = 1
        for node in order:
            for child in self._children[node]:
                paths[child] += paths[node]
        reachable = {n for n, p in paths.items() if p > 0}
        total = sum(paths[n] for n in reachable)
        leaves = sum(paths[n] for n in reachable if self.is_leaf(n))
        return total, leaves

    def _topological_order(self):
        indegree = {name: 0 for name in self._children}
        for node, kids in self._children.items():
            for child in kids:
                indegree[child] += 1
        ready = [n for n, d in indegree.items() if d == 0]
        order = []
        while ready:
            node = ready.pop()
            order.append(node)
            for child in self._children[node]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(child)
        if len(order) != len(self._children):
            raise ValueError("call graph contains a cycle")
        return order

    def __repr__(self):
        return "<CallGraph root=%s functions=%d>" % (self.root, len(self._children))
