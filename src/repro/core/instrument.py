"""Automatic source instrumentation (the paper's Section 3.1 step).

TProfiler "automatically instruments the source code" of the system
under study so that a selected subset of functions reports entry/exit
times; the developer only annotates transaction boundaries.  For
simulated engines written as plain generator functions — with *no*
explicit tracer calls — this module provides the same automation: an
AST rewrite that wraps every call-graph function in
:meth:`repro.core.tracing.Tracer.traced`.

Convention: an instrumentable function is a generator function whose
first parameter is the transaction context (``ctx``).  The rewrite
renames the original to an implementation alias and synthesises a
wrapper::

    def fil_flush(ctx, ...):            def fil_flush(ctx, *a, **k):
        yield from disk.flush()   ->        result = yield from __tprofiler_tracer__.traced(
                                                ctx, "fil_flush",
                                                __tprofiler_impl_fil_flush(ctx, *a, **k))
                                            return result

The tracer is attached afterwards with :func:`set_tracer`; which
functions actually record anything is still governed by the tracer's
instrumented *subset*, so the profiler's selective-overhead property is
preserved — the rewrite is a one-time, whole-module operation.
"""

import ast
import types

TRACER_GLOBAL = "__tprofiler_tracer__"
IMPL_PREFIX = "__tprofiler_impl_"


def _is_generator(node):
    for inner in ast.walk(node):
        if isinstance(inner, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def _first_arg_is_ctx(node):
    args = node.args.args
    if not args:
        return False
    first = args[0].arg
    return first in ("ctx", "self_ctx") or first.endswith("_ctx")


def _wrapper_for(name):
    source = (
        "def {name}(ctx, *args, **kwargs):\n"
        "    result = yield from {tracer}.traced(\n"
        "        ctx, {name!r}, {impl}{name}(ctx, *args, **kwargs)\n"
        "    )\n"
        "    return result\n"
    ).format(name=name, tracer=TRACER_GLOBAL, impl=IMPL_PREFIX)
    return ast.parse(source).body[0]


class SourceInstrumenter:
    """Rewrite a module's source so call-graph functions are traced."""

    def __init__(self, callgraph):
        self.callgraph = callgraph
        self.instrumented_functions = []

    # ------------------------------------------------------------------
    # Source-to-source
    # ------------------------------------------------------------------

    def instrument_source(self, source, filename="<instrumented>"):
        """Return transformed source text (also records what it wrapped)."""
        tree = ast.parse(source, filename)
        self.instrumented_functions = []
        new_body = []
        for node in tree.body:
            new_body.append(node)
            if not isinstance(node, ast.FunctionDef):
                continue
            if node.name.startswith(IMPL_PREFIX):
                continue
            if node.name not in self.callgraph:
                continue
            if not _is_generator(node) or not _first_arg_is_ctx(node):
                continue
            node.name = IMPL_PREFIX + node.name
            original = node.name[len(IMPL_PREFIX):]
            new_body.append(_wrapper_for(original))
            self.instrumented_functions.append(original)
        tree.body = new_body
        ast.fix_missing_locations(tree)
        return ast.unparse(tree)

    # ------------------------------------------------------------------
    # Module-level convenience
    # ------------------------------------------------------------------

    def instrument_module_source(self, source, module_name="instrumented"):
        """Compile transformed source into a fresh module object.

        The module's ``__tprofiler_tracer__`` starts as a no-op passthrough;
        attach a real tracer with :func:`set_tracer`.
        """
        transformed = self.instrument_source(source)
        module = types.ModuleType(module_name)
        module.__dict__[TRACER_GLOBAL] = _PassthroughTracer()
        exec(compile(transformed, "<%s>" % module_name, "exec"), module.__dict__)
        return module


def set_tracer(module, tracer):
    """Attach a real :class:`~repro.core.tracing.Tracer` to an
    instrumented module."""
    module.__dict__[TRACER_GLOBAL] = tracer


class _PassthroughTracer:
    """Default tracer: delegate with zero recording (pre-attachment)."""

    def traced(self, ctx, name, subgen, site=None):
        result = yield from subgen
        return result
