"""Transaction demarcation — TProfiler's only manual annotation.

The paper (Section 3.1) requires the programmer to mark where a
transaction begins and ends.  In the simulated engines this is the
:class:`TransactionContext` handed to the engine by the workload driver:

- MySQL / Postgres (one worker per connection): ``begin()`` at dispatch,
  ``end()`` at commit — one contiguous interval.
- VoltDB (task-concurrent): workers call ``begin_interval()`` /
  ``end_interval()`` around each execution interval they run on behalf of
  the transaction; the transaction spans the first interval's start to the
  last interval's end, exactly the concatenation rule of Section 3.1.

The context also carries everything the rest of the system hangs off a
transaction: its birth time (VATS schedules by age = now - birth, kept
across restarts), retry count, and the tracing state the
:class:`~repro.core.tracing.Tracer` fills in.
"""


class TxnTrace:
    """An immutable record of one finished transaction.

    ``durations`` maps factor key ``(function_name, site_label)`` to the
    total virtual time spent in that factor during the transaction;
    ``under`` maps an instrumented parent's key to the per-child totals
    observed while that parent was the innermost instrumented frame —
    the raw material of the variance tree.
    """

    __slots__ = (
        "txn_id",
        "txn_type",
        "birth",
        "start",
        "end",
        "attempts",
        "durations",
        "under",
        "committed",
    )

    def __init__(
        self, txn_id, txn_type, birth, start, end, attempts, durations, under, committed
    ):
        self.txn_id = txn_id
        self.txn_type = txn_type
        self.birth = birth
        self.start = start
        self.end = end
        self.attempts = attempts
        self.durations = durations
        self.under = under
        self.committed = committed

    @property
    def latency(self):
        """User-perceived latency: birth (submission) to completion."""
        return self.end - self.birth

    def __repr__(self):
        return "TxnTrace(%s, %s, latency=%.1f)" % (
            self.txn_id,
            self.txn_type,
            self.latency,
        )


class _Frame:
    """One active instrumented invocation on a context's frame stack."""

    __slots__ = ("key", "start", "parent")

    def __init__(self, key, start, parent):
        self.key = key
        self.start = start
        self.parent = parent


class TransactionContext:
    """The live state of a transaction inside an engine."""

    __slots__ = (
        "sim",
        "txn_id",
        "txn_type",
        "birth",
        "start_time",
        "end_time",
        "attempts",
        "abort_reason",
        "durations",
        "under",
        "stack",
        "intervals",
        "_interval_start",
        "payload",
    )

    def __init__(self, sim, txn_id, txn_type, birth=None):
        self.sim = sim
        self.txn_id = txn_id
        self.txn_type = txn_type
        self.birth = sim.now if birth is None else birth
        self.start_time = None
        self.end_time = None
        self.attempts = 0
        # Why the most recent attempt aborted ("deadlock", "timeout",
        # "shed", "deadline"); None while no abort has happened.  The
        # engines' per-reason abort/failure accounting keys off this.
        self.abort_reason = None
        self.durations = {}
        self.under = {}
        self.stack = []
        self.intervals = []
        self._interval_start = None
        # Free-form slot for engine- or workload-specific baggage
        # (e.g. the operation list, or a VoltDB task payload).
        self.payload = None

    @property
    def age(self):
        """Time since birth — the quantity VATS schedules by."""
        return self.sim.now - self.birth

    def begin(self):
        """Mark transaction (attempt) start; the birth time is kept."""
        self.attempts += 1
        if self.start_time is None:
            self.start_time = self.sim.now

    def end(self):
        """Mark transaction completion."""
        if self.start_time is None:
            raise RuntimeError("end() before begin() on %r" % (self.txn_id,))
        if self.stack:
            raise RuntimeError(
                "transaction %r ended with open traced frames: %r"
                % (self.txn_id, [f.key for f in self.stack])
            )
        self.end_time = self.sim.now

    # -- VoltDB-style interval concatenation ---------------------------

    def begin_interval(self):
        """A worker starts executing on behalf of this transaction."""
        if self._interval_start is not None:
            raise RuntimeError("nested begin_interval on %r" % (self.txn_id,))
        self._interval_start = self.sim.now
        if self.start_time is None:
            self.start_time = self.sim.now
            self.attempts += 1

    def end_interval(self):
        """The worker stops; the transaction may resume on another worker."""
        if self._interval_start is None:
            raise RuntimeError("end_interval without begin_interval")
        self.intervals.append((self._interval_start, self.sim.now))
        self._interval_start = None
        self.end_time = self.sim.now

    @property
    def busy_time(self):
        """Total time inside execution intervals (VoltDB engines)."""
        return sum(end - start for start, end in self.intervals)

    def finish(self, committed=True):
        """Freeze into a :class:`TxnTrace`."""
        end = self.end_time if self.end_time is not None else self.sim.now
        start = self.start_time if self.start_time is not None else self.birth
        return TxnTrace(
            txn_id=self.txn_id,
            txn_type=self.txn_type,
            birth=self.birth,
            start=start,
            end=end,
            attempts=self.attempts,
            durations=self.durations,
            under=self.under,
            committed=committed,
        )

    def __repr__(self):
        return "<TransactionContext %s type=%s age=%.1f>" % (
            self.txn_id,
            self.txn_type,
            self.age,
        )


class TransactionLog:
    """Collector of finished transaction traces for one run."""

    def __init__(self):
        self.traces = []

    def record(self, ctx, committed=True):
        self.traces.append(ctx.finish(committed))

    @property
    def committed(self):
        return [t for t in self.traces if t.committed]

    def latencies(self, txn_type=None):
        """Latency vector of committed transactions (optionally one type)."""
        return [
            t.latency
            for t in self.traces
            if t.committed and (txn_type is None or t.txn_type == txn_type)
        ]

    def __len__(self):
        return len(self.traces)
