"""TProfiler — the paper's primary contribution.

The package implements the full TProfiler pipeline from Section 3:

- :mod:`repro.core.annotations` — the transaction demarcation API
  (``begin``/``end``, plus interval concatenation for task-concurrent
  engines like VoltDB) and the per-transaction trace records.
- :mod:`repro.core.callgraph` — the static call-graph registry used for
  factor heights and expansion decisions.
- :mod:`repro.core.tracing` — selective instrumentation: only the chosen
  subset of functions is timed, each probe charging a configurable
  virtual-time cost (the mechanism behind the Figure 5 overhead study).
- :mod:`repro.core.variance_tree` — the variance tree:
  ``Var(sum X_i) = sum Var(X_i) + 2 sum Cov(X_i, X_j)`` decomposed over a
  parent's body and instrumented children.
- :mod:`repro.core.scoring` — specificity ``(H - h)^2`` and the joint
  specificity-times-variance score; top-k factor selection.
- :mod:`repro.core.profiler` — the iterative refinement driver
  (instrument, collect, analyze, expand) and the naive expand-everything
  baseline.
- :mod:`repro.core.dtrace` — a DTrace-style binary-probe baseline with an
  order-of-magnitude higher per-probe cost.
- :mod:`repro.core.report` — Table 1 / Table 2 style rendering.
"""

from repro.core.annotations import TransactionContext, TransactionLog, TxnTrace
from repro.core.callgraph import CallGraph
from repro.core.instrument import SourceInstrumenter, set_tracer
from repro.core.tracing import Tracer
from repro.core.variance_tree import VarianceTree, VarianceNode
from repro.core.scoring import score_factors, specificity, top_k_factors
from repro.core.profiler import NaiveProfiler, ProfiledSystem, TProfiler
from repro.core.report import render_profile

__all__ = [
    "CallGraph",
    "NaiveProfiler",
    "ProfiledSystem",
    "SourceInstrumenter",
    "TProfiler",
    "Tracer",
    "TransactionContext",
    "TransactionLog",
    "TxnTrace",
    "VarianceNode",
    "VarianceTree",
    "render_profile",
    "score_factors",
    "specificity",
    "set_tracer",
    "top_k_factors",
]
