"""The variance tree (Section 3.2).

Given per-transaction time attribution for the instrumented subset of the
call graph, the variance tree decomposes a parent's latency variance into
the variances of its components plus twice their pairwise covariances:

    Var(sum_i X_i) = sum_i Var(X_i) + 2 sum_{i<j} Cov(X_i, X_j)      (1)

where the components of an instrumented parent are its instrumented
children plus its *body* (own time), defined as the residual
``parent_total - sum(child totals observed under it)`` so the identity
holds exactly on finite samples (population moments throughout).

Because a parent's variance is always at least as large as any single
child's contribution, raw variance cannot identify root causes — that is
why scoring (``repro.core.scoring``) combines variance with specificity.
"""

import numpy as np

from repro.sim.stats import covariance


def body_key(parent_key):
    """The factor key for a parent's own (self) time."""
    name, site = parent_key
    return (name + "::body", site)


class VarianceNode:
    """One factor's sample vector and variance across transactions."""

    __slots__ = ("key", "samples", "variance")

    def __init__(self, key, samples):
        self.key = key
        self.samples = samples
        self.variance = float(samples.var())

    @property
    def name(self):
        return self.key[0]

    @property
    def site(self):
        return self.key[1]

    def __repr__(self):
        return "VarianceNode(%s@%s, var=%.1f)" % (
            self.key[0],
            self.key[1],
            self.variance,
        )


class Decomposition:
    """A parent factor broken into body + instrumented children."""

    def __init__(self, parent, components):
        self.parent = parent
        self.components = components

    @property
    def component_variances(self):
        return {node.key: node.variance for node in self.components}

    def covariances(self):
        """Pairwise population covariances among the components."""
        pairs = {}
        comps = self.components
        for i in range(len(comps)):
            for j in range(i + 1, len(comps)):
                pairs[(comps[i].key, comps[j].key)] = covariance(
                    comps[i].samples, comps[j].samples
                )
        return pairs

    def reconstructed_variance(self):
        """Right-hand side of eq. (1); equals the parent variance exactly."""
        total = sum(node.variance for node in self.components)
        total += 2.0 * sum(self.covariances().values())
        return total

    def __repr__(self):
        return "Decomposition(%s -> %d components)" % (
            self.parent.key[0],
            len(self.components),
        )


class VarianceTree:
    """Variance analysis over a set of finished transaction traces."""

    def __init__(self, traces):
        self.traces = [t for t in traces if t.committed]
        if not self.traces:
            raise ValueError("variance tree needs at least one committed trace")
        self.latencies = np.array([t.latency for t in self.traces], dtype=float)
        self.overall_variance = float(self.latencies.var())
        self._factor_samples = self._collect_factors()

    def _collect_factors(self):
        keys = set()
        for trace in self.traces:
            keys.update(trace.durations)
        samples = {}
        n = len(self.traces)
        for key in keys:
            arr = np.zeros(n, dtype=float)
            for i, trace in enumerate(self.traces):
                arr[i] = trace.durations.get(key, 0.0)
            samples[key] = arr
        return samples

    # ------------------------------------------------------------------
    # Factor-level queries
    # ------------------------------------------------------------------

    @property
    def factor_keys(self):
        return list(self._factor_samples)

    def node(self, key):
        return VarianceNode(key, self._factor_samples[key])

    def factor_variance(self, key):
        return float(self._factor_samples[key].var())

    def share(self, key):
        """This factor's variance as a fraction of overall latency variance."""
        if self.overall_variance == 0.0:
            return 0.0
        return self.factor_variance(key) / self.overall_variance

    def shares(self):
        """``{factor key: share of overall variance}`` for all factors."""
        return {key: self.share(key) for key in self._factor_samples}

    def name_shares(self):
        """Shares aggregated across call sites, keyed by function name.

        Aggregation sums the per-site sample vectors first (a transaction's
        total time in the function), then takes the variance — matching the
        paper's per-function aggregation rule.
        """
        by_name = {}
        for (name, _site), arr in self._factor_samples.items():
            if name in by_name:
                by_name[name] = by_name[name] + arr
            else:
                by_name[name] = arr.copy()
        if self.overall_variance == 0.0:
            return {name: 0.0 for name in by_name}
        return {
            name: float(arr.var()) / self.overall_variance
            for name, arr in by_name.items()
        }

    # ------------------------------------------------------------------
    # Parent decomposition
    # ------------------------------------------------------------------

    def decompose(self, parent_key):
        """Break ``parent_key`` into body + children components (eq. 1)."""
        if parent_key not in self._factor_samples:
            raise KeyError("factor %r was not instrumented" % (parent_key,))
        parent = self.node(parent_key)
        n = len(self.traces)
        child_keys = set()
        for trace in self.traces:
            child_keys.update(trace.under.get(parent_key, ()))
        components = []
        children_total = np.zeros(n, dtype=float)
        for key in sorted(child_keys):
            arr = np.zeros(n, dtype=float)
            for i, trace in enumerate(self.traces):
                arr[i] = trace.under.get(parent_key, {}).get(key, 0.0)
            children_total += arr
            components.append(VarianceNode(key, arr))
        body = VarianceNode(body_key(parent_key), parent.samples - children_total)
        components.insert(0, body)
        return Decomposition(parent, components)
