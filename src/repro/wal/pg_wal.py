"""Postgres-style WAL: the WALWriteLock bottleneck and parallel logging.

Before a transaction commits, its redo must reach disk; Postgres
serialises flushers behind one global lock, acquired via
``LWLockAcquireOrWait``.  That function's semantics matter for variance:
if the lock is busy, the caller *waits for it to be released without
acquiring it* and then re-checks whether somebody else's flush already
covered its LSN — commits therefore ride each other's flushes, but the
wait time under contention is highly variable (Table 2: 76.8% of overall
latency variance).

``XLogWrite`` writes whole blocks of ``block_size`` bytes; sweeping the
block size reproduces Figure 4 (right): bigger blocks mean fewer
per-call overheads but more padding when records are small.

:class:`ParallelWAL` is the paper's two-disk scheme (Section 6.2): a
transaction uses whichever log is free; only when both are busy does it
wait — on the one with fewer waiters.
"""

import math

from repro.sim.kernel import WaitEvent
from repro.wal.retry_io import RetryingDisk


class WALConfig:
    """WAL parameters (times in microseconds, sizes in bytes)."""

    def __init__(self, block_size=8192, append_cost=0.5, record_overhead=64):
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.block_size = block_size
        self.append_cost = append_cost
        self.record_overhead = record_overhead


class WALWriter:
    """One WAL stream: a write lock, a durable horizon, one disk."""

    def __init__(self, sim, tracer, disk, config=None, name="wal"):
        self.sim = sim
        self.tracer = tracer
        self.disk = disk
        self.config = config or WALConfig()
        self.name = name
        self.current_lsn = 0
        self.written_lsn = 0
        self.durable_lsn = 0
        self._locked = False
        self._wait_queue = []
        self.flush_rounds = 0
        self.lock_waits = 0
        self._commits = []
        # Telemetry: WALWriteLock contention and per-round flush sizes.
        tm = sim.telemetry
        prefix = "wal.%s" % name
        self._rdisk = RetryingDisk(sim, disk, prefix)
        self._t_commits = tm.counter(prefix + ".commits")
        self._t_lock_waits = tm.counter(prefix + ".lock_waits")
        self._t_flush_rounds = tm.counter(prefix + ".flush_rounds")
        self._t_flush_bytes = tm.histogram(prefix + ".flush_bytes")
        self._t_wait_depth = tm.gauge(prefix + ".lock_queue_depth")

    @property
    def busy(self):
        return self._locked

    @property
    def waiters(self):
        """Transactions parked on the write lock (the paper's tiebreak)."""
        return len(self._wait_queue)

    def append(self, nbytes):
        self.current_lsn += nbytes + self.config.record_overhead
        return self.current_lsn

    # ------------------------------------------------------------------
    # Commit path
    # ------------------------------------------------------------------

    def commit(self, ctx, nbytes, txn_id=None):
        """Generator: flush this transaction's WAL (possibly by proxy)."""
        yield self.config.append_cost
        lsn = self.append(nbytes)
        while self.durable_lsn < lsn:
            acquired = yield from self.tracer.traced(
                ctx, "LWLockAcquireOrWait", self._acquire_or_wait()
            )
            if not acquired:
                # The holder's flush round covered our LSN while we waited.
                continue
            try:
                if self.current_lsn > self.durable_lsn:
                    target = self.current_lsn
                    yield from self.tracer.traced(
                        ctx, "XLogWrite", self._xlog_write(target)
                    )
                    self.durable_lsn = max(self.durable_lsn, target)
                    self.flush_rounds += 1
                    self._t_flush_rounds.inc()
            finally:
                self._release()
        self._t_commits.inc()
        self._commits.append((lsn, txn_id if txn_id is not None else ctx.txn_id))
        return lsn

    def _acquire_or_wait(self):
        """Generator implementing LWLockAcquireOrWait.

        Evaluates to True with the lock held.  A parked waiter is woken
        either by a direct lock hand-off (True) or because a flush round
        completed and may have covered its LSN (False, re-check).  Hand-off
        is FIFO: fresh arrivals cannot starve parked waiters, because a
        release with a non-empty queue passes the lock on directly.
        """
        if not self._locked and not self._wait_queue:
            self._locked = True
            return True
        self.lock_waits += 1
        self._t_lock_waits.inc()
        event = self.sim.event()
        self._wait_queue.append(event)
        self._t_wait_depth.set(len(self._wait_queue))
        yield WaitEvent(event)
        return bool(event.value)

    def _release(self):
        """Release the lock, handing it to the eldest waiter if any.

        The new holder's round (if needed) covers everything appended so
        far, so satisfied waiters drain through the hand-off chain in
        O(1) each.
        """
        if self._wait_queue:
            event = self._wait_queue.pop(0)
            event.fire(True)  # lock stays locked; ownership transfers
            return
        self._locked = False

    def _xlog_write(self, target_lsn):
        """Generator: write pending WAL up to ``target_lsn`` in whole blocks."""
        pending = max(0, target_lsn - self.written_lsn)
        self._t_flush_bytes.observe(pending)
        if pending:
            nblocks = int(math.ceil(pending / float(self.config.block_size)))
            yield from self._rdisk.write_blocks(nblocks, self.config.block_size)
            self.written_lsn = max(self.written_lsn, target_lsn)
        yield from self._rdisk.flush()

    def lost_on_crash(self):
        """Commits reported durable... that actually were (sanity: empty)."""
        return [txn_id for lsn, txn_id in self._commits if lsn > self.durable_lsn]

    def crash(self):
        """Whole-node crash: drop the volatile tail and the lock state.

        The WALWriteLock and its wait queue are process memory — their
        holder and waiters died with the backend pool — and written-but-
        unflushed blocks lived in the dying page cache.  Returns the txn
        ids whose commits were lost (structurally empty: ``commit`` only
        records a commit after its flush round covered the LSN).
        """
        self._locked = False
        del self._wait_queue[:]
        lost = self.lost_on_crash()
        self.current_lsn = self.durable_lsn
        self.written_lsn = self.durable_lsn
        self._commits = [
            (lsn, txn_id) for lsn, txn_id in self._commits if lsn <= self.durable_lsn
        ]
        return lost

    def __repr__(self):
        return "<WALWriter %s lsn=%d durable=%d waits=%d>" % (
            self.name,
            self.current_lsn,
            self.durable_lsn,
            self.lock_waits,
        )


class ParallelWAL:
    """The paper's simple parallel-logging scheme over two WAL streams.

    A committing transaction writes to any free log; when all are busy it
    queues on the one with the fewest waiters.  Durability of a commit is
    provided by whichever stream it wrote to, so no cross-stream ordering
    is required for this variance study (as in the paper's variant).
    """

    def __init__(self, sim, tracer, disks, config=None, name="pwal"):
        if len(disks) < 2:
            raise ValueError("ParallelWAL needs at least two disks")
        self.sim = sim
        self.writers = [
            WALWriter(sim, tracer, disk, config=config, name="%s.%d" % (name, i))
            for i, disk in enumerate(disks)
        ]

    def commit(self, ctx, nbytes, txn_id=None):
        """Generator: commit on a free stream, else the least-crowded one."""
        chosen = min(
            enumerate(self.writers),
            key=lambda pair: (pair[1].busy, pair[1].waiters, pair[0]),
        )[1]
        lsn = yield from chosen.commit(ctx, nbytes, txn_id=txn_id)
        return lsn

    @property
    def flush_rounds(self):
        return sum(writer.flush_rounds for writer in self.writers)

    @property
    def lock_waits(self):
        return sum(writer.lock_waits for writer in self.writers)

    def lost_on_crash(self):
        lost = []
        for writer in self.writers:
            lost.extend(writer.lost_on_crash())
        return lost

    def crash(self):
        """Crash every stream; returns the union of lost commits."""
        lost = []
        for writer in self.writers:
            lost.extend(writer.crash())
        return lost

    @property
    def durable_lsn(self):
        """Total durable bytes across streams (recovery-replay length)."""
        return sum(writer.durable_lsn for writer in self.writers)
