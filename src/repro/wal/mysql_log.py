"""InnoDB-style redo log with the three commit-durability policies.

MySQL's buffered-I/O redo path has two steps — a ``write`` system call and
a ``flush`` (fsync) — and ``innodb_flush_log_at_trx_commit`` chooses who
performs them (Appendix B):

- **eager flush** (``=1``): the transaction's worker writes *and* flushes
  before reporting commit.  Durable, but the flush's highly variable disk
  latency lands on the transaction's critical path (``fil_flush`` in
  Table 1).  Group commit amortises concurrent committers into one flush.
- **lazy flush** (``=2``): the worker writes; a background flusher thread
  fsyncs about once per second.  A crash can lose transactions whose logs
  were written but not yet flushed.
- **lazy write** (``=0``): both write and flush are deferred to the
  background thread; cheapest and least durable.

The log tracks ``durable_lsn`` so tests can quantify exactly how much
forward progress each policy risks (``lost_on_crash``).

All device I/O goes through a :class:`~repro.wal.retry_io.RetryingDisk`:
an injected transient error on the log device is retried with backoff
instead of losing durability (``wal.<name>.io_retries`` counts them).
"""

import enum

from repro.exec.schema import register_enum
from repro.sim.kernel import WaitEvent
from repro.wal.retry_io import RetryingDisk


@register_enum
class FlushPolicy(enum.Enum):
    EAGER_FLUSH = "eager_flush"
    LAZY_FLUSH = "lazy_flush"
    LAZY_WRITE = "lazy_write"


class RedoLogConfig:
    """Redo log parameters (times in microseconds, sizes in bytes)."""

    def __init__(
        self,
        policy=FlushPolicy.EAGER_FLUSH,
        append_cost=0.5,
        flusher_interval=1_000_000.0,
        group_commit=True,
    ):
        self.policy = policy
        self.append_cost = append_cost
        self.flusher_interval = flusher_interval
        self.group_commit = group_commit


class RedoLog:
    """The redo log: LSN allocation, commit durability, group commit."""

    def __init__(self, sim, tracer, disk, config=None, name="redo"):
        self.sim = sim
        self.tracer = tracer
        self.disk = disk
        self.config = config or RedoLogConfig()
        self.name = name
        self.current_lsn = 0
        self.written_lsn = 0
        self.durable_lsn = 0
        # Group-commit round state (eager policy).
        self._flush_in_progress = False
        self._round_done = None
        # Commit horizon bookkeeping for crash-loss accounting.
        self._commits = []  # (lsn, txn_id)
        self.flush_rounds = 0
        self.group_sizes = []
        self._flusher_started = False
        self._flusher_proc = None
        # Commits reported to the client before their redo was durable —
        # each one was exposed to a crash for some window (Appendix B's
        # forward-progress risk of the lazy policies).
        self.exposed_commits = 0
        # Telemetry: flush sizes and group-commit batching are the two
        # levers behind the eager policy's amortisation.
        tm = sim.telemetry
        prefix = "wal.%s" % name
        self._rdisk = RetryingDisk(sim, disk, prefix)
        self._t_commits = tm.counter(prefix + ".commits")
        self._t_flush_rounds = tm.counter(prefix + ".flush_rounds")
        self._t_exposed = tm.counter(prefix + ".exposed_commits")
        self._t_flush_bytes = tm.histogram(prefix + ".flush_bytes")
        self._t_group_size = tm.histogram(prefix + ".group_commit_size")

    # ------------------------------------------------------------------
    # Transaction-side API
    # ------------------------------------------------------------------

    def append(self, nbytes):
        """Reserve log space; returns the record's end LSN."""
        self.current_lsn += nbytes
        return self.current_lsn

    def commit(self, ctx, nbytes, txn_id=None):
        """Generator: make a transaction's redo durable per the policy.

        The traced frame names mirror InnoDB: ``log_write_up_to`` wraps
        the whole commit wait and ``fil_flush`` wraps the actual fsync.
        """
        yield self.config.append_cost
        lsn = self.append(nbytes)
        self._maybe_start_flusher()
        policy = self.config.policy
        if policy is FlushPolicy.LAZY_WRITE:
            pass  # both write and flush deferred to the background thread
        elif policy is FlushPolicy.LAZY_FLUSH:
            yield from self._rdisk.write(nbytes)
            self.written_lsn = max(self.written_lsn, lsn)
        else:
            yield from self.tracer.traced(
                ctx, "log_write_up_to", self._write_up_to(ctx, lsn)
            )
        if lsn > self.durable_lsn:
            self.exposed_commits += 1
            self._t_exposed.inc()
        self._t_commits.inc()
        self._commits.append((lsn, txn_id if txn_id is not None else ctx.txn_id))
        return lsn

    # ------------------------------------------------------------------
    # Eager path with group commit
    # ------------------------------------------------------------------

    def _write_up_to(self, ctx, lsn):
        while self.durable_lsn < lsn:
            if self._flush_in_progress:
                if self.config.group_commit:
                    # Follower: ride the next leader's flush round.
                    yield WaitEvent(self._round_done)
                    continue
                # Without group commit, queue for the device directly.
                self._t_flush_bytes.observe(max(0, lsn - self.written_lsn))
                yield from self._rdisk.write(lsn - self.written_lsn)
                self.written_lsn = max(self.written_lsn, lsn)
                yield from self.tracer.traced(
                    ctx, "fil_flush", self._rdisk.flush()
                )
                self.durable_lsn = max(self.durable_lsn, lsn)
                self._t_flush_rounds.inc()
                self._t_group_size.observe(1)
                return
            # Leader: flush everything appended so far.
            self._flush_in_progress = True
            self._round_done = self.sim.event()
            target = self.current_lsn
            pending = max(0, target - self.written_lsn)
            self._t_flush_bytes.observe(pending)
            if pending:
                yield from self._rdisk.write(pending)
            self.written_lsn = max(self.written_lsn, target)
            yield from self.tracer.traced(ctx, "fil_flush", self._rdisk.flush())
            self.durable_lsn = max(self.durable_lsn, target)
            self.flush_rounds += 1
            self._t_flush_rounds.inc()
            done, self._round_done = self._round_done, None
            self._flush_in_progress = False
            # Followers still parked on the round event rode this flush:
            # leader + followers is the group-commit batch size.
            group = 1 + sum(1 for w in done._waiters if w.active)
            self.group_sizes.append(group)
            self._t_group_size.observe(group)
            done.fire()

    # ------------------------------------------------------------------
    # Background flusher (lazy policies)
    # ------------------------------------------------------------------

    def _maybe_start_flusher(self):
        if self._flusher_started:
            return
        if self.config.policy is FlushPolicy.EAGER_FLUSH:
            return
        self._flusher_started = True
        self._flusher_proc = self.sim.spawn(
            self._flusher_loop(), name=self.name + ".flusher"
        )

    def _flusher_loop(self):
        """Background write/flush rounds, one per ``flusher_interval``.

        The thread parks itself (and is restarted by the next commit)
        after an idle round, so a finished simulation drains instead of
        ticking forever.
        """
        while True:
            yield self.config.flusher_interval
            target = self.current_lsn
            pending_write = max(0, target - self.written_lsn)
            if pending_write and self.config.policy is FlushPolicy.LAZY_WRITE:
                yield from self._rdisk.write(pending_write)
            self.written_lsn = max(self.written_lsn, target)
            if self.written_lsn > self.durable_lsn:
                self._t_flush_bytes.observe(self.written_lsn - self.durable_lsn)
                yield from self._rdisk.flush()
                self.durable_lsn = self.written_lsn
                self.flush_rounds += 1
                self._t_flush_rounds.inc()
            elif self.current_lsn == target:
                # Idle round and nothing arrived meanwhile: park.
                self._flusher_started = False
                return

    # ------------------------------------------------------------------
    # Crash accounting
    # ------------------------------------------------------------------

    def lost_on_crash(self):
        """Transaction ids reported committed but not durable right now."""
        return [txn_id for lsn, txn_id in self._commits if lsn > self.durable_lsn]

    def crash(self):
        """Whole-node crash: the in-memory log tail evaporates.

        Kills the background flusher, truncates every LSN horizon back to
        the durable one (buffered writes live in the dying OS page cache)
        and resets the group-commit round state — its leader and
        followers died with the worker pool.  Returns the txn ids whose
        commits the crash erased: reported committed, redo not yet
        durable — the lazy policies' forward-progress risk made concrete
        (empty under ``EAGER_FLUSH``).  Counters survive; they are
        run-level accounting, not node memory.
        """
        if self._flusher_proc is not None and not self._flusher_proc.done.fired:
            self._flusher_proc.done.fire()
        self._flusher_proc = None
        self._flusher_started = False
        lost = self.lost_on_crash()
        self.current_lsn = self.durable_lsn
        self.written_lsn = self.durable_lsn
        self._commits = [
            (lsn, txn_id) for lsn, txn_id in self._commits if lsn <= self.durable_lsn
        ]
        self._flush_in_progress = False
        self._round_done = None
        return lost

    def __repr__(self):
        return "<RedoLog %s policy=%s lsn=%d durable=%d>" % (
            self.name,
            self.config.policy.value,
            self.current_lsn,
            self.durable_lsn,
        )
