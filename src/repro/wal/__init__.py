"""Write-ahead logging substrates.

Two models, matching the two engines whose logging the paper studies:

- :mod:`repro.wal.mysql_log` — InnoDB-style redo log with the three
  ``innodb_flush_log_at_trx_commit`` policies (eager flush, lazy flush,
  lazy write), group commit, and the traced ``fil_flush`` call whose
  inherent I/O variance Table 1 reports.
- :mod:`repro.wal.pg_wal` — Postgres-style WAL: one global WALWriteLock
  serialises flushes (the ``LWLockAcquireOrWait`` variance source of
  Table 2, 76.8%), writes happen in whole blocks of a configurable size
  (the Figure 4-right tuning knob), and
  :class:`~repro.wal.pg_wal.ParallelWAL` implements the paper's simple
  two-disk parallel-logging scheme (Section 6.2).

Both track the committed-vs-durable horizon so crash-loss tests can
verify the lazy policies' forward-progress risk (Appendix B).
"""

from repro.wal.mysql_log import FlushPolicy, RedoLog, RedoLogConfig
from repro.wal.pg_wal import ParallelWAL, WALConfig, WALWriter

__all__ = [
    "FlushPolicy",
    "ParallelWAL",
    "RedoLog",
    "RedoLogConfig",
    "WALConfig",
    "WALWriter",
]
