"""Retrying disk operations for the WAL durability paths.

The log writers are the one place an injected
:class:`~repro.faults.TransientIOError` cannot simply abort the caller:
a commit that already reported success must eventually reach stable
storage.  :class:`RetryingDisk` wraps a :class:`~repro.sim.disk.Disk`
and retries failed operations under a :class:`~repro.faults.RetryPolicy`,
with backoff jitter drawn from the injector's dedicated ``faults.retry``
stream (``sim.faults.retry_rng``) so retry activity never perturbs the
device's own latency draws.

With :data:`~repro.faults.NO_FAULTS` active no ``TransientIOError`` can
be raised, the retry loop body runs exactly once per call, and no RNG is
touched — the disabled path stays byte-identical.

Exhausting the policy re-raises the final ``TransientIOError``: a log
device that stays broken past the retry budget is a media failure, which
this model treats as fatal.
"""

from repro.faults.injector import TransientIOError
from repro.faults.retry import RetryPolicy


def default_wal_retry_policy():
    """Short, aggressive retries: the commit path is latency-critical."""
    return RetryPolicy(
        max_attempts=6, base_backoff=100.0, multiplier=2.0, max_backoff=5_000.0
    )


class RetryingDisk:
    """A Disk facade whose write/write_blocks/flush survive injected errors."""

    def __init__(self, sim, disk, telemetry_prefix, policy=None):
        self.sim = sim
        self.disk = disk
        self.policy = policy or default_wal_retry_policy()
        self.io_retries = 0
        self._t_retries = sim.telemetry.counter(telemetry_prefix + ".io_retries")

    def write(self, nbytes):
        yield from self._run("write", (nbytes,))

    def write_blocks(self, nblocks, block_bytes):
        yield from self._run("write_blocks", (nblocks, block_bytes))

    def flush(self):
        yield from self._run("flush", ())

    def _run(self, op_name, op_args):
        """Generator: run one disk op, retrying TransientIOError."""
        policy = self.policy
        op = getattr(self.disk, op_name)
        attempt = 1
        while True:
            try:
                yield from op(*op_args)
                return
            except TransientIOError:
                if attempt >= policy.max_attempts:
                    policy.note_give_up("io_error")
                    raise
                self.io_retries += 1
                self._t_retries.inc()
                policy.note_retry("io_error")
                yield policy.backoff(attempt, self.sim.faults.retry_rng)
                attempt += 1
