"""Variance-aware tuning (Section 6.3 / Appendix B), codified.

The paper observes that several culprit functions TProfiler finds map
directly onto external tuning parameters: ``buf_pool_mutex_enter`` to
the buffer-pool size, ``fil_flush`` to ``innodb_flush_log_at_trx_commit``,
``LWLockAcquireOrWait`` to the WAL block size, and VoltDB's queue wait
to the worker-thread count.  This package turns those guidelines into a
programmatic advisor:

- :class:`~repro.tuning.advisor.TuningAdvisor` maps a variance profile
  (factor shares from TProfiler) to concrete parameter recommendations;
- :class:`~repro.tuning.sweep.ParameterSweep` runs the corresponding
  experiment sweep and reports which setting minimises variance without
  sacrificing mean latency (the paper's "ideal solution" constraint).
"""

from repro.tuning.advisor import Recommendation, TuningAdvisor
from repro.tuning.sweep import ParameterSweep, SweepPoint

__all__ = ["ParameterSweep", "Recommendation", "SweepPoint", "TuningAdvisor"]
