"""Map TProfiler findings to tuning recommendations (Section 6.3).

The advisor encodes the paper's table of culprit-function -> knob
mappings.  Given a variance profile (``{function_name: share of overall
variance}``, e.g. from ``VarianceTree.name_shares()``), it emits ranked
:class:`Recommendation` objects: which parameter to change, in which
direction, what the paper observed, and what trade-off (if any) the
change carries.
"""


class Recommendation:
    """One actionable tuning suggestion."""

    __slots__ = ("factor", "share", "parameter", "action", "rationale", "tradeoff")

    def __init__(self, factor, share, parameter, action, rationale, tradeoff=None):
        self.factor = factor
        self.share = share
        self.parameter = parameter
        self.action = action
        self.rationale = rationale
        self.tradeoff = tradeoff

    def __repr__(self):
        return "<Recommendation %s -> %s (%.0f%%)>" % (
            self.factor,
            self.parameter,
            100.0 * self.share,
        )

    def render(self):
        lines = [
            "%s accounts for %.1f%% of latency variance" % (self.factor, 100 * self.share),
            "  -> %s: %s" % (self.parameter, self.action),
            "     why: %s" % self.rationale,
        ]
        if self.tradeoff:
            lines.append("     trade-off: %s" % self.tradeoff)
        return "\n".join(lines)


# The paper's culprit -> knob table.  Each entry: the parameter it leads
# to, the action, the rationale, and any durability/capacity trade-off.
_KNOWN_FACTORS = {
    "os_event_wait": (
        "lock scheduling algorithm",
        "replace FCFS with VATS (eldest transaction first)",
        "lock-wait variance is a scheduling artifact; VATS minimises the "
        "Lp norm of latencies without prior knowledge of remaining times "
        "(Theorem 1) and needs no tuning",
        None,
    ),
    "lock_wait_suspend_thread": (
        "lock scheduling algorithm",
        "replace FCFS with VATS (eldest transaction first)",
        "same finding as os_event_wait, one level up the call chain",
        None,
    ),
    "buf_pool_mutex_enter": (
        "buffer pool size / LRU policy",
        "grow the buffer pool toward 100% of the working set, or enable "
        "Lazy LRU Update (bounded spin + deferred-update backlog)",
        "the LRU-list mutex is contended only when the working set "
        "exceeds ~5/8 of the pool, so capacity removes the contention "
        "and LLU bounds the wait when capacity is not an option",
        "memory cost; LLU slightly relaxes LRU precision",
    ),
    "buf_read_page": (
        "buffer pool size",
        "grow the buffer pool (fewer evictions and read-ins)",
        "miss-path variance scales with eviction traffic",
        "memory cost",
    ),
    "fil_flush": (
        "innodb_flush_log_at_trx_commit",
        "defer flushing (lazy flush) or both write+flush (lazy write) to "
        "the background thread, or move the log to faster stable storage",
        "eager flushing puts highly variable device latency on every "
        "commit's critical path",
        "lazy policies can lose the last ~1 s of commits on a crash",
    ),
    "log_write_up_to": (
        "innodb_flush_log_at_trx_commit",
        "see fil_flush: lazier flush policy or faster log device",
        "commit-path log waits inherit the flush device's variance",
        "durability exposure window",
    ),
    "LWLockAcquireOrWait": (
        "WAL block size / parallel logging",
        "increase wal_block_size moderately (8K-32K) and/or add a second "
        "log stream (parallel logging)",
        "one global WALWriteLock serialises flushes; fewer, larger "
        "writes and a second stream cut the wait",
        "block-size benefit reverses when records are much smaller than "
        "a block (padding)",
    ),
    "XLogWrite": (
        "WAL block size",
        "increase wal_block_size moderately (8K-32K)",
        "per-call overhead dominates small-block writes",
        "padding at large block sizes",
    ),
    "[waiting in queue]": (
        "worker thread count",
        "increase the number of worker threads until queue waits stop "
        "improving (diminishing returns past ~8 in the paper's setup)",
        "queue waiting is pure capacity shortfall; threads are cheap "
        "relative to tail latency",
        "more threads increase context-switch overhead eventually",
    ),
}


class TuningAdvisor:
    """Rank tuning recommendations from a variance profile."""

    def __init__(self, min_share=0.03):
        self.min_share = min_share

    def recommend(self, name_shares):
        """Return :class:`Recommendation` objects, largest share first.

        ``name_shares`` is ``{function_name: share}`` as produced by
        :meth:`repro.core.variance_tree.VarianceTree.name_shares`.
        Synthetic body factors (``foo::body``) are folded into ``foo``.
        """
        folded = {}
        for name, share in name_shares.items():
            base = name[: -len("::body")] if name.endswith("::body") else name
            folded[base] = max(folded.get(base, 0.0), share)
        recommendations = []
        for name, share in folded.items():
            if share < self.min_share:
                continue
            entry = _KNOWN_FACTORS.get(name)
            if entry is None:
                continue
            parameter, action, rationale, tradeoff = entry
            recommendations.append(
                Recommendation(name, share, parameter, action, rationale, tradeoff)
            )
        recommendations.sort(key=lambda r: -r.share)
        return recommendations

    def render(self, name_shares):
        """A human-readable advisory report."""
        recommendations = self.recommend(name_shares)
        if not recommendations:
            return "No actionable variance sources above %.0f%%." % (
                100.0 * self.min_share
            )
        return "\n\n".join(r.render() for r in recommendations)
