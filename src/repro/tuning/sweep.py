"""Parameter sweeps with the paper's "ideal solution" acceptance rule.

Section 2: a desirable change *reduces variance without negatively
impacting mean latency or throughput*.  :class:`ParameterSweep` runs an
experiment at each candidate setting and picks the best setting under
exactly that rule: among settings whose mean latency and throughput are
within tolerance of the best observed, choose the one with the lowest
variance.
"""

from repro.exec.executor import Executor


class SweepPoint:
    """One setting's outcome."""

    __slots__ = ("label", "value", "summary", "throughput")

    def __init__(self, label, value, summary, throughput):
        self.label = label
        self.value = value
        self.summary = summary
        self.throughput = throughput

    def __repr__(self):
        return "<SweepPoint %s mean=%.1f var=%.1f>" % (
            self.label,
            self.summary.mean,
            self.summary.variance,
        )


class ParameterSweep:
    """Sweep one knob over candidate values and pick the ideal setting.

    ``make_config(value)`` builds the
    :class:`~repro.bench.runner.ExperimentConfig` for a candidate value.

    Candidates are independent deterministic runs, so the sweep routes
    through the execution layer: ``jobs > 1`` (or an explicit
    ``executor``) fans them out across a process pool, with results in
    candidate order either way.
    """

    def __init__(self, make_config, mean_tolerance=0.10,
                 throughput_tolerance=0.05, jobs=1, executor=None):
        self.make_config = make_config
        self.mean_tolerance = mean_tolerance
        self.throughput_tolerance = throughput_tolerance
        self.executor = executor if executor is not None else Executor(jobs=jobs)
        self.points = []

    def run(self, candidates):
        """Run every candidate; returns the list of :class:`SweepPoint`."""
        candidates = list(candidates)
        artifacts = self.executor.run(
            [self.make_config(value) for value in candidates]
        )
        self.points = [
            SweepPoint(str(value), value, artifact.summary,
                       artifact.throughput_tps)
            for value, artifact in zip(candidates, artifacts)
        ]
        return self.points

    def best(self):
        """The ideal setting per the paper's rule.

        Eligible settings keep mean latency within ``mean_tolerance`` of
        the sweep's best mean and throughput within
        ``throughput_tolerance`` of the sweep's best throughput; among
        the eligible, minimum variance wins.
        """
        if not self.points:
            raise RuntimeError("run() the sweep first")
        best_mean = min(p.summary.mean for p in self.points)
        best_tput = max(p.throughput for p in self.points)
        eligible = [
            p
            for p in self.points
            if p.summary.mean <= best_mean * (1.0 + self.mean_tolerance)
            and p.throughput >= best_tput * (1.0 - self.throughput_tolerance)
        ]
        if not eligible:
            eligible = self.points
        return min(eligible, key=lambda p: p.summary.variance)

    def render(self):
        lines = ["%-12s %12s %12s %12s %10s" % ("setting", "mean(ms)", "var", "p99(ms)", "tput")]
        for point in self.points:
            s = point.summary
            lines.append(
                "%-12s %12.2f %12.0f %12.2f %10.0f"
                % (point.label, s.mean / 1e3, s.variance / 1e6, s.p99 / 1e3, point.throughput)
            )
        best = self.best()
        lines.append("ideal setting: %s (lowest variance within mean/throughput tolerance)" % best.label)
        return "\n".join(lines)
