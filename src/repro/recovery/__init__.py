"""Crash recovery: node/coordinator crashes and deterministic restart.

The crash-side primitives live where the state lives — every engine
subsystem knows how to discard its own volatile state
(:meth:`Engine.crash`, ``RedoLog.crash``, ``BufferPool.crash``,
``LockManager.crash``, :meth:`Cluster.crash_coordinator`) — and this
package supplies the *controller* that drives them: a simulation process
that kills the configured target at each planned virtual-time instant,
waits out the restart delay, and runs the recovery protocol
(:meth:`Engine.recover` / :meth:`Cluster.recover_coordinator` plus
per-branch in-doubt resolution).

See ``docs/recovery.md`` for the durability boundary, the termination
protocol, and the determinism guarantees.
"""

from repro.recovery.controller import RECOVERY_FRAMES, crash_controller

__all__ = ["RECOVERY_FRAMES", "crash_controller"]
