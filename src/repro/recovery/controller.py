"""The crash controller: plan-driven node and coordinator crashes.

One simulation process walks the plan's ``node_crash_times`` in order.
At each instant it kills the target — discarding volatile state exactly
as a power cut would — then models the restart: a fixed restart delay
(process respawn, listener up) followed by ARIES-style log replay whose
cost is real virtual-time disk reads.  Crash instants come straight from
the plan (no RNG draw), so scheduling a crash perturbs nothing before
the crash itself: a run whose plan has no ``node_crash_times`` is
byte-identical to one without this module.

Determinism: the crash is a pure function of (plan, virtual time).  The
kill primitive fires each victim process's ``done`` event — the kernel
never resumes a done process, and killed generators' ``finally`` blocks
never run, which is precisely the crash semantics we want (a real crash
runs no destructors either).  Everything recovery does afterwards is
ordinary simulation code drawing from the same seeded streams, so the
same seed and plan replay to the same post-recovery digest in any
process.
"""

# Variance-tree frames recovery adds.  The runner instruments these only
# when the plan actually schedules a node crash, so uninstrumented runs
# keep their fast paths (and their golden digests).
RECOVERY_FRAMES = ("recovery_replay", "indoubt_wait")


def crash_controller(sim, plan, engine=None, cluster=None):
    """Generator: execute every planned crash, in time order.

    Exactly one of ``engine`` (single-node run) / ``cluster`` must be
    the run's top-level submission target.  Targets in the plan:

    - ``"coord"`` — kill the 2PC coordinator (clustered runs only;
      silently skipped single-node, where there is no coordinator).
    - ``int`` — kill that node's engine.  Single-node runs only have
      node 0; out-of-range indices are skipped rather than raised so a
      fuzzer-drawn plan can run against any topology.

    Crashes are handled sequentially: if a second crash instant falls
    inside an earlier recovery, it slips until that recovery finishes
    (documented caveat in ``docs/recovery.md``; the fuzzer draws single
    crashes).
    """
    if cluster is not None:
        engines = [(node, node.engine) for node in cluster.nodes]
    else:
        engines = [(None, engine)]
    for target, crash_at in plan.node_crash_times:
        if crash_at > sim.now:
            yield crash_at - sim.now
        if target == "coord":
            if cluster is None:
                continue
            yield from _crash_coordinator(sim, plan, cluster)
            continue
        if not 0 <= target < len(engines):
            continue
        node, victim = engines[target]
        yield from _crash_node(sim, plan, cluster, node, victim, target)


def _crash_node(sim, plan, cluster, node, victim, target):
    """Kill one engine, restart it, replay its log, resolve in-doubts."""
    crash_time = sim.now
    sim.faults.note_node_crash(target, crash_time)
    report = victim.crash()
    if sim.check.enabled:
        sim.check.node_crash(
            target,
            crash_time,
            report.lost,
            tuple(branch.ctx.txn_id for branch, _held in report.indoubt),
        )
    group = cluster.groups.get(target) if cluster is not None else None
    if group is not None and group.live_replicas():
        # Failover instead of restart-in-place: promote the most-caught-up
        # replica (it replays its shipped-but-unapplied tail), then bring
        # the engine back *warm* — the promotee's state is current, so
        # there is no restart delay and no WAL replay.  Transactions
        # queued across the outage record the stall as ``promote_wait``.
        yield from group.promote(crash_time)
        yield from victim.recover(
            report, crash_time, replay=False, stall_frame="promote_wait"
        )
    else:
        yield plan.node_restart_delay
        yield from victim.recover(report, crash_time)
    if cluster is None:
        return
    # The node is back and its in-doubt branches hold their re-granted
    # locks; each now re-contacts the coordinator for the outcome.  The
    # resolvers run concurrently — they are ordinary processes, not part
    # of the controller, so a later planned crash can kill them too.
    for branch, _held in report.indoubt:
        sim.spawn(
            cluster.resolve_indoubt(node, branch, crash_time),
            name="recovery.indoubt.%s" % (branch.ctx.txn_id,),
        )


def _crash_coordinator(sim, plan, cluster):
    """Kill the coordinator, restart it, terminate orphaned rounds."""
    crash_time = sim.now
    sim.faults.note_node_crash("coord", crash_time)
    live = cluster.crash_coordinator()
    if sim.check.enabled:
        # The coordinator's only durable state is its decision log,
        # which survives by construction: nothing is lost, and branch
        # in-doubt states belong to the (still-alive) participants.
        sim.check.node_crash("coord", crash_time, (), ())
    yield plan.node_restart_delay
    yield from cluster.recover_coordinator(live, crash_time)
