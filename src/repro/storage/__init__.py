"""Storage structures: the clustered B-tree index and table metadata.

Two of the variance sources TProfiler finds in MySQL are *inherent* to
storage (Section 4.1): ``btr_cur_search_to_nth_level`` varies with the
depth the tree must be traversed, and ``row_ins_clust_index_entry_low``
varies with the code path the insert takes (in-page insert vs page
split vs reorganisation).  This package models exactly those cost
shapes, and maps keys to buffer-pool pages so the buffer-pool regime
(2-WH vs 128-WH) determines which accesses hit disk.
"""

from repro.storage.btree import BTreeIndex, InsertOutcome
from repro.storage.tables import Table, TableCatalog

__all__ = ["BTreeIndex", "InsertOutcome", "Table", "TableCatalog"]
