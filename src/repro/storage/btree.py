"""A clustered B-tree index cost model.

The tree is modelled by its *shape* (fanout + key count -> depth) rather
than by materialised nodes: what the variance study needs is (a) the
number of levels a search descends — each level being a buffer-pool page
access — and (b) the distribution of insert code paths.  Keys map
deterministically to leaf pages so that hot keys translate into hot
pages for the buffer pool.

Insert paths (``row_ins_clust_index_entry_low``):

- *fits in page* (common): cheap body cost;
- *page split* (probability ~ 1/keys_per_page): allocate + copy halves;
- *tree reorganisation* (rare): split propagates upward.

These paths give the function the inherent, non-pathological variance
the paper reports (9.3% of overall variance in the 128-WH config).
"""

import enum
import math


class InsertOutcome(enum.Enum):
    IN_PAGE = "in_page"
    PAGE_SPLIT = "page_split"
    TREE_REORG = "tree_reorg"


class BTreeIndex:
    """Index over ``n_keys`` with the given fanout.

    ``page_of(key)`` returns the page id a search for ``key`` lands on;
    interior levels are represented by a per-level page id so that the
    (few) interior pages stay hot in the buffer pool.
    """

    def __init__(
        self,
        name,
        n_keys,
        fanout=100,
        keys_per_leaf=64,
        level_cpu_cost=1.5,
        insert_cpu_cost=4.0,
        split_cpu_cost=60.0,
        reorg_cpu_cost=400.0,
        split_probability=None,
        reorg_probability=0.002,
    ):
        if n_keys <= 0:
            raise ValueError("n_keys must be positive")
        self.name = name
        self.n_keys = n_keys
        self.fanout = fanout
        self.keys_per_leaf = keys_per_leaf
        self.level_cpu_cost = level_cpu_cost
        self.insert_cpu_cost = insert_cpu_cost
        self.split_cpu_cost = split_cpu_cost
        self.reorg_cpu_cost = reorg_cpu_cost
        self.split_probability = (
            split_probability
            if split_probability is not None
            else 1.0 / keys_per_leaf
        )
        self.reorg_probability = reorg_probability
        self.n_leaves = max(1, int(math.ceil(n_keys / float(keys_per_leaf))))
        # Depth counts the levels *above* the leaf level.
        self.depth = self._compute_depth()
        # slot -> tuple of interior page ids (see interior_pages).
        self._path_cache = {}
        # slot -> full descent path (interior pages + leaf), for callers
        # that walk the whole path at once.  Bounded by n_leaves.
        self._full_path_cache = {}

    def _compute_depth(self):
        depth = 0
        width = self.n_leaves
        while width > 1:
            width = int(math.ceil(width / float(self.fanout)))
            depth += 1
        return depth

    # ------------------------------------------------------------------
    # Page mapping
    # ------------------------------------------------------------------

    def leaf_page(self, key):
        """Page id of the leaf holding ``key``."""
        leaf = (key % self.n_keys) // self.keys_per_leaf
        return (self.name, "leaf", leaf)

    def interior_pages(self, key):
        """Page ids of the interior nodes a search for ``key`` descends.

        Pure function of the leaf slot, so descents are cached: hot keys
        hit the same few slots (that is the point of the workload skew)
        and rebuild the same path tuples millions of times otherwise.
        The cache is bounded by ``n_leaves``.
        """
        slot = (key % self.n_keys) // self.keys_per_leaf
        pages = self._path_cache.get(slot)
        if pages is None:
            path = []
            level_slot = slot
            for level in range(self.depth, 0, -1):
                level_slot = level_slot // self.fanout
                path.append((self.name, "int%d" % level, level_slot))
            pages = self._path_cache[slot] = tuple(path)
        return pages

    def iter_pages(self):
        """All page ids, interior levels first (they should stay hottest)."""
        width = self.n_leaves
        for level in range(self.depth, 0, -1):
            width_above = int(math.ceil(self.n_leaves / float(self.fanout) ** (self.depth - level + 1)))
            for slot in range(width_above):
                yield (self.name, "int%d" % level, slot)
            width = width_above
        for leaf in range(self.n_leaves):
            yield (self.name, "leaf", leaf)

    @property
    def total_pages(self):
        """Leaf + interior page count (the table's working-set footprint)."""
        pages = self.n_leaves
        width = self.n_leaves
        while width > 1:
            width = int(math.ceil(width / float(self.fanout)))
            pages += width
        return pages

    # ------------------------------------------------------------------
    # Traversal / mutation cost generators
    # ------------------------------------------------------------------

    def search(self, ctx, key, pool, dirty=False, backlog=None):
        """Generator: descend the tree to ``key``'s leaf.

        Touches one buffer-pool page per level plus the leaf (the caller
        wraps this in a ``btr_cur_search_to_nth_level`` traced frame).
        Evaluates to the leaf page id.
        """
        for page_id in self.interior_pages(key):
            yield self.level_cpu_cost
            yield from pool.fix_page(ctx, page_id, dirty=False, backlog=backlog)
        yield self.level_cpu_cost
        leaf = self.leaf_page(key)
        yield from pool.fix_page(ctx, leaf, dirty=dirty, backlog=backlog)
        return leaf

    def insert_body(self, rng):
        """Generator: the variable-path body of a clustered-index insert.

        Evaluates to the :class:`InsertOutcome` taken (the inherent
        variance of ``row_ins_clust_index_entry_low``).
        """
        draw = rng.random()
        if draw < self.reorg_probability:
            yield self.reorg_cpu_cost
            return InsertOutcome.TREE_REORG
        if draw < self.reorg_probability + self.split_probability:
            yield self.split_cpu_cost
            return InsertOutcome.PAGE_SPLIT
        yield self.insert_cpu_cost
        return InsertOutcome.IN_PAGE

    def __repr__(self):
        return "<BTreeIndex %s keys=%d depth=%d pages=%d>" % (
            self.name,
            self.n_keys,
            self.depth,
            self.total_pages,
        )
