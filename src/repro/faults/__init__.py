"""Deterministic fault injection: plans, the injector, retry/backoff.

The paper's testbed held faults constant to isolate the scheduling,
buffer and logging variance sources; production systems add fault-driven
variance on top — fsync brownouts, transient I/O errors, worker crashes,
overload, and (once a cluster is involved) network delay and partitions.
This package injects those *controllably*: every fault comes
from a declarative :class:`FaultPlan` executed by a :class:`FaultInjector`
that draws only from its own seeded streams, so a chaos run is as
reproducible as a clean one and fault-driven variance can be attributed
with the same variance-tree machinery as everything else.

- :class:`FaultPlan` / :func:`named_plan` — what goes wrong, when.
- :class:`FaultInjector` / :data:`NO_FAULTS` — runtime injection; the
  null object keeps the disabled path byte-identical to no subsystem.
- :class:`RetryPolicy` — the one retry/backoff discipline (engines'
  deadlock retries, WAL I/O retries), with per-reason accounting.
- :class:`TransientIOError` — the retryable injected I/O failure.

See ``docs/faults.md`` for the fault catalogue and determinism rules.
"""

from repro.faults.plan import NAMED_PLANS, FaultPlan, named_plan
from repro.faults.retry import RetryPolicy
from repro.faults.injector import (
    FaultInjector,
    NO_FAULTS,
    NullFaultInjector,
    TransientIOError,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "NAMED_PLANS",
    "NO_FAULTS",
    "NullFaultInjector",
    "RetryPolicy",
    "TransientIOError",
    "named_plan",
]
