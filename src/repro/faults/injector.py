"""The fault injector: seeded draws + window checks behind one object.

A :class:`FaultInjector` is the run-time half of a :class:`~repro.faults
.plan.FaultPlan`.  It is attached to the :class:`~repro.sim.kernel
.Simulator` (``sim.faults``), exactly as telemetry is, so every subsystem
reaches it without new constructor plumbing.

Determinism rules (the same discipline as ``repro.sim.rand.Streams``):

- Every random decision draws from a *dedicated* named stream
  (``faults.io_error``, ``faults.crash``, ``faults.retry``), so enabling
  one fault class never perturbs another, and none of them perturbs the
  base simulation's streams.
- Window-based faults (brownouts, lock storms, arrival bursts) draw no
  random numbers at all: they are pure virtual-clock comparisons.
- The disabled path is the shared :data:`NO_FAULTS` null object whose
  predicates are constant; subsystems check ``faults.enabled`` first, so
  a run without a fault plan executes the identical instruction sequence
  it did before this module existed.

Every injected fault is published through the run's telemetry: an event
per occurrence (``fault.io_error``, ``fault.worker_crash``), a one-shot
``fault.window_active`` event the first time each configured window is
observed active, per-class counters, and a recovery-time histogram for
worker restarts.
"""

from repro.faults.plan import in_window
from repro.telemetry.registry import NULL_REGISTRY


class TransientIOError(Exception):
    """An injected, retryable I/O failure on a simulated device."""


class FaultInjector:
    """Draws and window checks for one run's :class:`FaultPlan`."""

    enabled = True

    def __init__(self, plan, streams, telemetry=None):
        self.plan = plan
        self._tm = telemetry if telemetry is not None else NULL_REGISTRY
        self._io_rng = streams.stream("faults.io_error")
        self._crash_rng = streams.stream("faults.crash")
        #: Dedicated stream for retry-backoff jitter in layers that have
        #: no Streams of their own (the WAL writers).  Engines use their
        #: own ``<engine>.retry`` stream.
        self.retry_rng = streams.stream("faults.retry")
        self.io_errors = 0
        self.worker_crashes = 0
        self.node_crashes = 0
        self._t_io_errors = self._tm.counter("faults.io_errors")
        self._t_crashes = self._tm.counter("faults.worker_crashes")
        self._t_restart = self._tm.histogram("faults.worker_restart_time")
        self._announced = set()

    def _announce(self, kind, index, start, duration):
        key = (kind, index)
        if key in self._announced:
            return
        self._announced.add(key)
        self._tm.event(
            "fault.window_active", fault=kind, index=index, start=start, window=duration
        )

    # ------------------------------------------------------------------
    # Disk faults (sim/disk.py)
    # ------------------------------------------------------------------

    def disk_latency_factor(self, disk_name, now):
        """Service-time multiplier for ``disk_name`` at virtual time ``now``."""
        plan = self.plan
        if not plan.brownout_windows or disk_name not in plan.brownout_disks:
            return 1.0
        index = in_window(plan.brownout_windows, now)
        if index is None:
            return 1.0
        start, duration = plan.brownout_windows[index]
        self._announce("brownout", index, start, duration)
        return plan.brownout_factor

    def io_error(self, disk_name, op):
        """Seeded coin: should this disk operation fail transiently?"""
        plan = self.plan
        if (
            plan.io_error_prob <= 0.0
            or disk_name not in plan.io_error_disks
            or op not in plan.io_error_ops
        ):
            return False
        if self._io_rng.random() >= plan.io_error_prob:
            return False
        self.io_errors += 1
        self._t_io_errors.inc()
        self._tm.event("fault.io_error", disk=disk_name, op=op)
        return True

    # ------------------------------------------------------------------
    # Lock manager faults (lockmgr/manager.py)
    # ------------------------------------------------------------------

    def lock_wait_timeout(self, now, timeout):
        """Effective lock-wait timeout at ``now`` (shrinks during storms)."""
        plan = self.plan
        if not plan.lock_storm_windows:
            return timeout
        index = in_window(plan.lock_storm_windows, now)
        if index is None:
            return timeout
        start, duration = plan.lock_storm_windows[index]
        self._announce("lock_storm", index, start, duration)
        return min(timeout, plan.lock_storm_timeout)

    # ------------------------------------------------------------------
    # Worker faults (engines/base.py)
    # ------------------------------------------------------------------

    def worker_crash(self, engine_name, worker_id):
        """Seeded coin: crash the dequeuing worker?

        Returns the restart delay (microseconds) when the worker crashes,
        or None.  The delay is drawn from the same dedicated stream as the
        coin, so one crash consumes exactly two draws.
        """
        plan = self.plan
        if plan.crash_prob <= 0.0:
            return None
        if self._crash_rng.random() >= plan.crash_prob:
            return None
        lo, hi = plan.restart_delay_range
        delay = self._crash_rng.uniform(lo, hi)
        self.worker_crashes += 1
        self._t_crashes.inc()
        self._t_restart.observe(delay)
        self._tm.event(
            "fault.worker_crash",
            engine=engine_name,
            worker=worker_id,
            restart=delay,
        )
        return delay

    # ------------------------------------------------------------------
    # Network faults (sim/network.py)
    # ------------------------------------------------------------------

    def net_latency_factor(self, now):
        """Propagation-latency multiplier at ``now`` (> 1 during delay)."""
        plan = self.plan
        if not plan.net_delay_windows:
            return 1.0
        index = in_window(plan.net_delay_windows, now)
        if index is None:
            return 1.0
        start, duration = plan.net_delay_windows[index]
        self._announce("net_delay", index, start, duration)
        return plan.net_delay_factor

    def net_partition_until(self, src, dst, now):
        """Heal time if the ``src -> dst`` link is cut at ``now``, else None.

        Messages are held, not dropped: the network delivers them once the
        window closes, so a partitioned 2PC decision stalls deterministically
        instead of forking.
        """
        plan = self.plan
        if not plan.partition_windows:
            return None
        index = in_window(plan.partition_windows, now)
        if index is None:
            return None
        links = plan.partition_links
        if "*" not in links and (src, dst) not in links:
            return None
        start, duration = plan.partition_windows[index]
        self._announce("partition", index, start, duration)
        return start + duration

    # ------------------------------------------------------------------
    # Replica apply lag (repro/replication)
    # ------------------------------------------------------------------

    def replica_apply_stall(self, now):
        """Extra stall per applied record at ``now`` (0 outside windows)."""
        plan = self.plan
        if not plan.replica_lag_windows:
            return 0.0
        index = in_window(plan.replica_lag_windows, now)
        if index is None:
            return 0.0
        start, duration = plan.replica_lag_windows[index]
        self._announce("replica_lag", index, start, duration)
        return plan.replica_lag_stall_us

    # ------------------------------------------------------------------
    # Node crashes (repro/recovery)
    # ------------------------------------------------------------------

    def note_node_crash(self, target, now):
        """Record one whole-node crash (no draws; instants are plan literals)."""
        self.node_crashes += 1
        self._tm.counter("faults.node_crashes").inc()
        self._tm.event("fault.node_crash", target=target, at=now)

    # ------------------------------------------------------------------
    # Driver faults (workloads/driver.py)
    # ------------------------------------------------------------------

    def arrival_rate_factor(self, now):
        """Offered-rate multiplier at ``now`` (> 1 during bursts)."""
        plan = self.plan
        if not plan.burst_windows:
            return 1.0
        index = in_window(plan.burst_windows, now)
        if index is None:
            return 1.0
        start, duration = plan.burst_windows[index]
        self._announce("burst", index, start, duration)
        return plan.burst_rate_factor

    def __repr__(self):
        return "<FaultInjector %s io_errors=%d crashes=%d>" % (
            self.plan.name,
            self.io_errors,
            self.worker_crashes,
        )


class NullFaultInjector:
    """The disabled injector: constant predicates, zero draws, zero time.

    Shared as :data:`NO_FAULTS`.  Subsystems check ``enabled`` before
    calling anything else, so the per-operation cost of the disabled path
    is one attribute read — and the simulated instruction sequence is
    identical to a build without the fault subsystem.
    """

    enabled = False
    plan = None
    retry_rng = None
    io_errors = 0
    worker_crashes = 0
    node_crashes = 0

    def disk_latency_factor(self, disk_name, now):
        return 1.0

    def io_error(self, disk_name, op):
        return False

    def lock_wait_timeout(self, now, timeout):
        return timeout

    def worker_crash(self, engine_name, worker_id):
        return None

    def net_latency_factor(self, now):
        return 1.0

    def net_partition_until(self, src, dst, now):
        return None

    def replica_apply_stall(self, now):
        return 0.0

    def arrival_rate_factor(self, now):
        return 1.0

    def __repr__(self):
        return "<NullFaultInjector>"


#: Shared disabled injector; the simulator defaults to this when the run
#: carries no fault plan (mirrors ``telemetry.NULL_REGISTRY``).
NO_FAULTS = NullFaultInjector()
