"""Declarative fault plans: what goes wrong, when, and how badly.

A :class:`FaultPlan` is pure configuration — plain numbers and virtual-time
windows, no RNG state and no simulator references — so two runs built from
equal plans and equal seeds are byte-identical.  The plan describes five
fault classes, each injected at a different layer of the stack:

- **Disk brownouts** (``sim/disk.py``): during a window, every service
  time on the named disks is multiplied by ``brownout_factor`` — the
  fsync-brownout / noisy-neighbour regime.
- **Transient I/O errors** (``sim/disk.py`` → retried in ``wal/``): a
  seeded per-operation coin makes a write or flush fail after paying an
  error-detection latency; the WAL layers retry with backoff.
- **Worker crash-and-restart** (``engines/base.py``): a seeded per-task
  coin crashes the dequeuing worker, which loses its thread-local state
  and pays a restart delay before picking the task back up.
- **Lock-wait-timeout storms** (``lockmgr/manager.py``): during a window
  the effective lock-wait timeout collapses to ``lock_storm_timeout``,
  turning long waits into timeout-abort-retry storms.
- **Arrival bursts** (``workloads/driver.py``): during a window the open
  loop compresses interarrival gaps by ``burst_rate_factor`` — the
  overload regime that exercises load shedding and deadlines.
- **Network delay** (``sim/network.py``): during a window every message's
  propagation latency is multiplied by ``net_delay_factor`` — the
  congested-fabric / failing-NIC regime that stretches the cluster's 2PC
  prepare and commit waits.
- **Network partitions** (``sim/network.py``): messages submitted on an
  affected link during a partition window are held and delivered when
  the window heals (plus normal latency) — deterministic, no drops, so
  2PC decisions stall rather than diverge.  ``partition_links`` limits
  the cut to specific ``(src, dst)`` node pairs; the default ``("*",)``
  severs every cross-node link.
- **Node crashes** (``repro.recovery``): at a planned virtual-time
  instant an entire node (or the 2PC coordinator, target ``"coord"``)
  loses all volatile state — buffer pool, lock table, in-flight
  transactions, submission queue — keeping only WAL/decision-log disk
  contents whose flushes completed.  After ``node_restart_delay`` the
  recovery manager replays the durable WAL prefix and resolves in-doubt
  2PC branches before the node rejoins (see docs/recovery.md).  Crash
  instants are plain plan literals: scheduling one draws no RNG.
- **Replica apply lag** (``repro.replication``): during a window every
  record applied by a replica's apply loop pays an extra stall — the
  slow-replica regime that grows staleness, diverts bounded-staleness
  reads back to the primary, and stretches sync/semisync commit acks.

Windows are ``(start, duration)`` pairs in virtual microseconds.  Windows
and probability-zero faults cost *nothing* when inactive: window checks
are pure clock comparisons and draw no random numbers, so a plan whose
windows never overlap the run is indistinguishable from no plan at all.
"""

import math

from repro.exec.schema import register_config


def _check_windows(name, windows):
    out = []
    for window in windows:
        try:
            start, duration = window
        except (TypeError, ValueError):
            raise ValueError(
                "%s entries must be (start, duration) pairs, got %r" % (name, window)
            )
        start = float(start)
        duration = float(duration)
        if not (math.isfinite(start) and math.isfinite(duration)):
            raise ValueError("%s window must be finite, got %r" % (name, window))
        if start < 0 or duration <= 0:
            raise ValueError(
                "%s window needs start >= 0 and duration > 0, got %r" % (name, window)
            )
        out.append((start, duration))
    return tuple(out)


def _check_prob(name, value):
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError("%s must be in [0, 1], got %r" % (name, value))
    return value


def in_window(windows, now):
    """Index of the window containing ``now`` (half-open), or None."""
    for index, (start, duration) in enumerate(windows):
        if start <= now < start + duration:
            return index
    return None


@register_config
class FaultPlan:
    """One run's fault configuration (times in virtual microseconds).

    The default-constructed plan configures nothing and reports
    ``enabled == False``; the runner then wires the shared
    :data:`~repro.faults.injector.NO_FAULTS` null injector, keeping the
    disabled path byte-identical to a build without the subsystem.
    """

    def __init__(
        self,
        name="chaos",
        # -- disk latency brownouts -----------------------------------
        brownout_windows=(),
        brownout_factor=8.0,
        brownout_disks=("log", "wal0", "wal1"),
        # -- transient I/O errors -------------------------------------
        io_error_prob=0.0,
        io_error_disks=("log", "wal0", "wal1"),
        io_error_ops=("write", "flush"),
        io_error_latency=200.0,
        # -- worker crash-and-restart ---------------------------------
        crash_prob=0.0,
        restart_delay_range=(20_000.0, 100_000.0),
        # -- lock-wait-timeout storms ---------------------------------
        lock_storm_windows=(),
        lock_storm_timeout=2_000.0,
        # -- arrival bursts -------------------------------------------
        burst_windows=(),
        burst_rate_factor=3.0,
        # -- network delay / partitions (sim/network.py) --------------
        net_delay_windows=(),
        net_delay_factor=6.0,
        partition_windows=(),
        partition_links=("*",),
        # -- whole-node crashes (repro/recovery) ----------------------
        node_crash_times=(),
        node_restart_delay=5_000.0,
        # -- replica apply lag (repro/replication) --------------------
        replica_lag_windows=(),
        replica_lag_stall_us=500.0,
    ):
        self.name = str(name)
        self.brownout_windows = _check_windows("brownout_windows", brownout_windows)
        self.brownout_factor = float(brownout_factor)
        if not math.isfinite(self.brownout_factor) or self.brownout_factor < 1.0:
            raise ValueError("brownout_factor must be finite and >= 1")
        self.brownout_disks = tuple(brownout_disks)
        self.io_error_prob = _check_prob("io_error_prob", io_error_prob)
        self.io_error_disks = tuple(io_error_disks)
        self.io_error_ops = tuple(io_error_ops)
        self.io_error_latency = float(io_error_latency)
        if not math.isfinite(self.io_error_latency) or self.io_error_latency < 0:
            raise ValueError("io_error_latency must be finite and >= 0")
        self.crash_prob = _check_prob("crash_prob", crash_prob)
        lo, hi = restart_delay_range
        lo, hi = float(lo), float(hi)
        if not (math.isfinite(lo) and math.isfinite(hi)) or not 0 <= lo <= hi:
            raise ValueError(
                "restart_delay_range needs 0 <= lo <= hi, got %r"
                % (restart_delay_range,)
            )
        self.restart_delay_range = (lo, hi)
        self.lock_storm_windows = _check_windows(
            "lock_storm_windows", lock_storm_windows
        )
        self.lock_storm_timeout = float(lock_storm_timeout)
        if not math.isfinite(self.lock_storm_timeout) or self.lock_storm_timeout <= 0:
            raise ValueError("lock_storm_timeout must be finite and > 0")
        self.burst_windows = _check_windows("burst_windows", burst_windows)
        self.burst_rate_factor = float(burst_rate_factor)
        if not math.isfinite(self.burst_rate_factor) or self.burst_rate_factor < 1.0:
            raise ValueError("burst_rate_factor must be finite and >= 1")
        self.net_delay_windows = _check_windows("net_delay_windows", net_delay_windows)
        self.net_delay_factor = float(net_delay_factor)
        if not math.isfinite(self.net_delay_factor) or self.net_delay_factor < 1.0:
            raise ValueError("net_delay_factor must be finite and >= 1")
        self.partition_windows = _check_windows("partition_windows", partition_windows)
        links = tuple(partition_links)
        for link in links:
            if link == "*":
                continue
            try:
                src, dst = link
            except (TypeError, ValueError):
                raise ValueError(
                    "partition_links entries must be (src, dst) node pairs "
                    'or "*", got %r' % (link,)
                )
        self.partition_links = links
        crashes = []
        for entry in node_crash_times:
            try:
                target, when = entry
            except (TypeError, ValueError):
                raise ValueError(
                    "node_crash_times entries must be (target, time_us) "
                    "pairs, got %r" % (entry,)
                )
            if target != "coord":
                target = int(target)
                if target < 0:
                    raise ValueError(
                        "node_crash_times target must be a node id >= 0 "
                        'or "coord", got %r' % (entry,)
                    )
            when = float(when)
            if not math.isfinite(when) or when < 0:
                raise ValueError(
                    "node_crash_times time must be finite and >= 0, got %r"
                    % (entry,)
                )
            crashes.append((target, when))
        crashes.sort(key=lambda tw: tw[1])
        self.node_crash_times = tuple(crashes)
        self.node_restart_delay = float(node_restart_delay)
        if (
            not math.isfinite(self.node_restart_delay)
            or self.node_restart_delay < 0
        ):
            raise ValueError("node_restart_delay must be finite and >= 0")
        self.replica_lag_windows = _check_windows(
            "replica_lag_windows", replica_lag_windows
        )
        self.replica_lag_stall_us = float(replica_lag_stall_us)
        if (
            not math.isfinite(self.replica_lag_stall_us)
            or self.replica_lag_stall_us <= 0
        ):
            raise ValueError("replica_lag_stall_us must be finite and > 0")

    @property
    def enabled(self):
        """True when the plan configures any fault at all."""
        return bool(
            self.brownout_windows
            or self.io_error_prob > 0.0
            or self.crash_prob > 0.0
            or self.lock_storm_windows
            or self.burst_windows
            or self.net_delay_windows
            or self.partition_windows
            or self.node_crash_times
            or self.replica_lag_windows
        )

    def __repr__(self):
        return "<FaultPlan %s%s>" % (
            self.name,
            "" if self.enabled else " (inert)",
        )


# ----------------------------------------------------------------------
# Named plan catalogue (see docs/faults.md)
# ----------------------------------------------------------------------
#
# Window defaults assume the chaos demo regime: ~600+ transactions at
# 500 tps, i.e. at least ~1.2 s of virtual time.  Override via kwargs
# for longer runs.


def _plan_log_brownout(**kw):
    base = dict(
        name="log-brownout",
        brownout_windows=((300_000.0, 300_000.0),),
        brownout_factor=8.0,
    )
    base.update(kw)
    return FaultPlan(**base)


def _plan_io_errors(**kw):
    base = dict(name="io-errors", io_error_prob=0.05)
    base.update(kw)
    return FaultPlan(**base)


def _plan_worker_crashes(**kw):
    base = dict(name="worker-crashes", crash_prob=0.01)
    base.update(kw)
    return FaultPlan(**base)


def _plan_lock_storm(**kw):
    base = dict(
        name="lock-storm",
        lock_storm_windows=((400_000.0, 300_000.0),),
        lock_storm_timeout=2_000.0,
    )
    base.update(kw)
    return FaultPlan(**base)


def _plan_arrival_burst(**kw):
    base = dict(
        name="arrival-burst",
        burst_windows=((300_000.0, 300_000.0),),
        burst_rate_factor=4.0,
    )
    base.update(kw)
    return FaultPlan(**base)


def _plan_full_chaos(**kw):
    base = dict(
        name="full-chaos",
        brownout_windows=((200_000.0, 250_000.0),),
        brownout_factor=6.0,
        io_error_prob=0.02,
        crash_prob=0.003,
        lock_storm_windows=((500_000.0, 200_000.0),),
        lock_storm_timeout=3_000.0,
        burst_windows=((800_000.0, 200_000.0),),
        burst_rate_factor=3.0,
    )
    base.update(kw)
    return FaultPlan(**base)


def _plan_net_delay(**kw):
    base = dict(
        name="net-delay",
        net_delay_windows=((300_000.0, 300_000.0),),
        net_delay_factor=6.0,
    )
    base.update(kw)
    return FaultPlan(**base)


def _plan_net_partition(**kw):
    base = dict(
        name="net-partition",
        partition_windows=((400_000.0, 200_000.0),),
    )
    base.update(kw)
    return FaultPlan(**base)


def _plan_node_crash(**kw):
    base = dict(
        name="node-crash",
        node_crash_times=((0, 400_000.0),),
    )
    base.update(kw)
    return FaultPlan(**base)


def _plan_replica_lag(**kw):
    base = dict(
        name="replica-lag",
        replica_lag_windows=((300_000.0, 300_000.0),),
        replica_lag_stall_us=500.0,
    )
    base.update(kw)
    return FaultPlan(**base)


def _plan_coord_crash(**kw):
    base = dict(
        name="coord-crash",
        node_crash_times=(("coord", 400_000.0),),
    )
    base.update(kw)
    return FaultPlan(**base)


NAMED_PLANS = {
    "log-brownout": _plan_log_brownout,
    "io-errors": _plan_io_errors,
    "worker-crashes": _plan_worker_crashes,
    "lock-storm": _plan_lock_storm,
    "arrival-burst": _plan_arrival_burst,
    "full-chaos": _plan_full_chaos,
    "net-delay": _plan_net_delay,
    "net-partition": _plan_net_partition,
    "node-crash": _plan_node_crash,
    "coord-crash": _plan_coord_crash,
    "replica-lag": _plan_replica_lag,
}


def named_plan(name, **overrides):
    """Build a plan from the catalogue, with keyword overrides."""
    try:
        factory = NAMED_PLANS[name]
    except KeyError:
        raise KeyError(
            "unknown fault plan %r (known: %s)"
            % (name, ", ".join(sorted(NAMED_PLANS)))
        )
    return factory(**overrides)


#: Fault classes the chaos fuzzer draws from.  Network kinds only make
#: sense on clustered topologies; the fuzzer filters by shard count.
FUZZ_FAULT_KINDS = (
    "brownout",
    "io-errors",
    "crashes",
    "lock-storm",
    "burst",
    "node-crash",
)

FUZZ_NETWORK_FAULT_KINDS = ("net-delay", "partition", "coord-crash")

#: Fault kinds that only make sense when the case configures replicas.
FUZZ_REPLICATION_FAULT_KINDS = ("replica-lag",)


def random_plan_kwargs(rng, kind, horizon_us):
    """Draw :class:`FaultPlan` constructor kwargs for one fuzz case.

    ``rng`` is a seeded ``random.Random``; ``horizon_us`` is the run's
    expected length in virtual microseconds, so drawn windows actually
    overlap the run.  Returns a plain-literal kwargs dict — the fuzzer
    embeds its ``repr`` verbatim in generated pytest reproducers, which
    is why values are rounded to keep the source readable.
    """

    def window():
        start = round(rng.uniform(0.0, 0.5) * horizon_us, 1)
        duration = round(max(1.0, rng.uniform(0.1, 0.4) * horizon_us), 1)
        return (start, duration)

    if kind == "brownout":
        return {
            "brownout_windows": (window(),),
            "brownout_factor": round(rng.uniform(2.0, 10.0), 2),
        }
    if kind == "io-errors":
        return {"io_error_prob": round(rng.uniform(0.005, 0.05), 4)}
    if kind == "crashes":
        return {"crash_prob": round(rng.uniform(0.002, 0.02), 4)}
    if kind == "lock-storm":
        return {
            "lock_storm_windows": (window(),),
            "lock_storm_timeout": round(rng.uniform(1_000.0, 5_000.0), 1),
        }
    if kind == "burst":
        return {
            "burst_windows": (window(),),
            "burst_rate_factor": round(rng.uniform(2.0, 5.0), 2),
        }
    if kind == "net-delay":
        return {
            "net_delay_windows": (window(),),
            "net_delay_factor": round(rng.uniform(2.0, 8.0), 2),
        }
    if kind == "partition":
        return {"partition_windows": (window(),)}
    if kind == "node-crash":
        # Crash node 0 somewhere in the meat of the run; works on both
        # single-node and clustered topologies.
        return {
            "node_crash_times": ((0, round(rng.uniform(0.1, 0.6) * horizon_us, 1)),),
            "node_restart_delay": round(rng.uniform(2_000.0, 20_000.0), 1),
        }
    if kind == "replica-lag":
        return {
            "replica_lag_windows": (window(),),
            "replica_lag_stall_us": round(rng.uniform(200.0, 2_000.0), 1),
        }
    if kind == "coord-crash":
        # Crash the 2PC coordinator mid-run (clustered topologies only).
        return {
            "node_crash_times": (
                ("coord", round(rng.uniform(0.1, 0.6) * horizon_us, 1)),
            ),
            "node_restart_delay": round(rng.uniform(2_000.0, 20_000.0), 1),
        }
    raise ValueError("unknown fuzz fault kind %r" % (kind,))
