"""The single retry/backoff policy shared by engines and WAL layers.

Before this module the deadlock-retry loops in ``engines/mysql.py`` and
``engines/postgres.py`` were copy-pasted, each drawing its backoff from
the engine's main RNG stream — so an aborted transaction perturbed every
later engine draw.  :class:`RetryPolicy` centralises the discipline:
exponential backoff with a cap, multiplicative jitter drawn from a
*dedicated* seeded stream (the caller passes the stream; the policy holds
no RNG), a max-attempts bound, and per-reason retry/give-up accounting.

Jitter is deterministic given the stream: two same-seed runs draw the
same jitter sequence, and the dedicated stream means the rest of the
simulation is insensitive to how many retries happened — the same
discipline ``Streams`` enforces everywhere else.
"""

import math


class RetryPolicy:
    """Exponential backoff + jitter + max attempts + give-up accounting.

    ``backoff(attempt, rng)`` returns the delay (microseconds) to sleep
    before retry number ``attempt`` (1-based): ``base * multiplier**(n-1)``
    capped at ``max_backoff``, scaled by a jitter factor uniform in
    ``[1 - jitter, 1 + jitter]`` drawn from ``rng``.
    """

    __slots__ = (
        "max_attempts",
        "base_backoff",
        "multiplier",
        "max_backoff",
        "jitter",
        "retries_by_reason",
        "giveups_by_reason",
    )

    def __init__(
        self,
        max_attempts=12,
        base_backoff=500.0,
        multiplier=2.0,
        max_backoff=2_000.0,
        jitter=0.5,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not math.isfinite(base_backoff) or base_backoff < 0:
            raise ValueError("base_backoff must be finite and >= 0")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not math.isfinite(max_backoff) or max_backoff < base_backoff:
            raise ValueError("max_backoff must be finite and >= base_backoff")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.max_attempts = int(max_attempts)
        self.base_backoff = float(base_backoff)
        self.multiplier = float(multiplier)
        self.max_backoff = float(max_backoff)
        self.jitter = float(jitter)
        self.retries_by_reason = {}
        self.giveups_by_reason = {}

    def backoff(self, attempt, rng):
        """Delay before retry ``attempt`` (1-based); jitter drawn from ``rng``."""
        if attempt < 1:
            raise ValueError("attempt is 1-based, got %r" % (attempt,))
        delay = self.base_backoff * self.multiplier ** (attempt - 1)
        if delay > self.max_backoff:
            delay = self.max_backoff
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay

    # -- per-reason accounting ------------------------------------------

    def note_retry(self, reason):
        self.retries_by_reason[reason] = self.retries_by_reason.get(reason, 0) + 1

    def note_give_up(self, reason):
        self.giveups_by_reason[reason] = self.giveups_by_reason.get(reason, 0) + 1

    @property
    def total_retries(self):
        return sum(self.retries_by_reason.values())

    @property
    def total_giveups(self):
        return sum(self.giveups_by_reason.values())

    def __repr__(self):
        return "RetryPolicy(max_attempts=%d, base=%r, cap=%r, retries=%d)" % (
            self.max_attempts,
            self.base_backoff,
            self.max_backoff,
            self.total_retries,
        )
