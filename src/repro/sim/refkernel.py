"""The reference simulation kernel.

This is the straightforward, pre-optimisation event loop, preserved
verbatim as the executable specification of kernel semantics.  The
production kernel (:mod:`repro.sim.kernel`) is a fast-path rewrite of
this file; ``tests/test_kernel_differential.py`` runs hypothesis-random
process programs on both and requires identical event traces, return
values and final clocks.

Keep this file boring.  Performance work belongs in ``kernel.py``;
the only changes this file should ever see are genuine *semantic*
changes to the simulation model, made in both kernels at once (e.g.
the bare-``float`` yield shorthand and the ``run(until=...)`` clock
clamp, which landed here and in the fast kernel together).
"""

import math
from heapq import heappop, heappush

from repro.check.recorder import NO_CHECK
from repro.faults.injector import NO_FAULTS
from repro.telemetry.registry import NULL_REGISTRY

from repro.sim.kernel import (
    Event,
    Process,
    SimulationError,
    Timeout,
    WaitEvent,
    _TimeoutCheck,
)

_INF = math.inf


class ReferenceSimulator:
    """The event loop: a virtual clock plus a heap of scheduled wakeups.

    Same contract as :class:`repro.sim.kernel.Simulator`; shares the
    command classes (``Timeout``/``WaitEvent``/``Event``/``Process``)
    with the production kernel so programs and events are portable
    between the two.
    """

    def __init__(self, telemetry=None, faults=None):
        self.now = 0.0
        self.current = None
        self.telemetry = telemetry if telemetry is not None else NULL_REGISTRY
        self.faults = faults if faults is not None else NO_FAULTS
        # The run's history recorder (repro.check); the null object by
        # default, so checking off costs one attribute and nothing else.
        self.check = NO_CHECK
        self.dispatch_count = 0
        self._heap = []
        self._seq = 0
        self._spawned = 0
        self._t_enabled = self.telemetry.enabled
        self._t_dispatches = self.telemetry.counter("sim.dispatches")
        self._t_spawns = self.telemetry.counter("sim.spawns")
        self._t_runq_depth = self.telemetry.gauge("sim.runq_depth")

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def spawn(self, gen, name=None):
        """Start ``gen`` as a new process; it first runs at the current time."""
        if name is None:
            name = "proc-%d" % self._spawned
        self._spawned += 1
        if self._t_enabled:
            self._t_spawns.inc()
        process = Process(self, gen, name)
        self._schedule(0, process, None)
        return process

    def event(self):
        """Create a fresh one-shot :class:`Event` bound to this simulator."""
        return Event(self)

    def run(self, until=None):
        """Run until the heap drains or the clock passes ``until``.

        Returns the final virtual time.  The clock never moves
        backwards: an ``until`` already in the past leaves ``now``
        untouched.
        """
        heap = self._heap
        telemetry_on = self._t_enabled
        while heap:
            time, _seq, process, value = heappop(heap)
            if until is not None and time > until:
                # Put it back so a later run() continues from here.
                heappush(heap, (time, _seq, process, value))
                if until > self.now:
                    self.now = until
                return self.now
            self.now = time
            self.dispatch_count += 1
            if telemetry_on:
                self._t_dispatches.inc()
                self._t_runq_depth.set(len(heap))
            self._resume(process, value)
        return self.now

    def run_until_idle(self):
        """Alias of :meth:`run` with no time bound."""
        return self.run()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _schedule(self, delay, process, value):
        self._seq += 1
        heappush(self._heap, (self.now + delay, self._seq, process, value))

    def _schedule_timeout_check(self, delay, waiter):
        """Arrange for ``waiter`` to be woken with False after ``delay``."""
        self._seq += 1
        heappush(self._heap, (self.now + delay, self._seq, _TimeoutCheck(waiter), None))

    def _resume(self, process, value):
        if isinstance(process, _TimeoutCheck):
            waiter = process.waiter
            if waiter.active:
                waiter.active = False
                self._resume(waiter.process, False)
            return
        if not process.alive:
            return
        previous = self.current
        self.current = process
        try:
            command = process.gen.send(value)
        except StopIteration as stop:
            self.current = previous
            process.done.fire(stop.value)
            return
        except BaseException:
            self.current = previous
            raise
        self.current = previous
        self._dispatch(process, command)

    def _dispatch(self, process, command):
        if type(command) in (float, int):
            # Bare-number shorthand for ``Timeout(command)``; rejected
            # with the exact Timeout guard (NaN fails both comparisons,
            # bool is not accepted — `yield True` is always a bug).
            if not (0.0 <= command < _INF):
                raise SimulationError(
                    "Timeout delay must be finite and >= 0, got %r" % (command,)
                )
            self._schedule(command, process, None)
        elif isinstance(command, Timeout):
            self._schedule(command.delay, process, None)
        elif isinstance(command, WaitEvent):
            self._wait(process, command.event, command.timeout)
        elif isinstance(command, Event):
            self._wait(process, command, None)
        elif isinstance(command, Process):
            self._wait(process, command.done, None)
        else:
            raise SimulationError(
                "process %s yielded unsupported command %r" % (process.name, command)
            )

    def _wait(self, process, event, timeout):
        waiter = event._add_waiter(process)
        if waiter is None:
            # Already fired: resume immediately with True.
            self._schedule(0, process, True)
            return
        if timeout is not None:
            self._schedule_timeout_check(timeout, waiter)
