"""A single-server disk model with heavy-tailed flush latency.

The paper's inherent-variance sources (``fil_flush`` in MySQL, the flush
under Postgres's WALWriteLock) are driven by the *latency distribution* of
the underlying device, amplified by FIFO queueing when several requests
pile up.  This model captures both:

- each request's service time = per-call base + bytes / bandwidth, with the
  base drawn from a lognormal body mixed with a Pareto tail (fsync stalls);
- requests are serialised FIFO; a request arriving while the device is busy
  waits until the device drains (tracked with a "busy-until" horizon rather
  than a process, which keeps the model cheap and exactly FIFO).

Fault injection (``repro.faults``): during a configured brownout window
every service time on the device is multiplied by the plan's slowdown
factor, and a seeded coin can make an operation fail with
:class:`~repro.faults.TransientIOError` after paying an error-detection
latency — callers on durability paths (the WAL layers) retry.  Both hooks
are no-ops behind the ``faults.enabled`` check when no plan is active.
"""

from repro.exec.schema import register_config
from repro.faults.injector import TransientIOError
from repro.sim.rand import HeavyTail, LogNormal, Pareto


@register_config
class DiskConfig:
    """Tunable device parameters (times in microseconds, sizes in bytes).

    The defaults describe a SATA-era device behind an OS page cache, the
    regime of the paper's testbed: buffered writes are cheap (~tens of µs),
    a flush (fsync) costs milliseconds with an occasional long stall.
    """

    def __init__(
        self,
        write_base_mean=30.0,
        write_base_cv=0.4,
        bandwidth_bytes_per_us=200.0,
        flush_base_mean=2000.0,
        flush_base_cv=0.6,
        flush_tail_prob=0.02,
        flush_tail_scale=8000.0,
        flush_tail_alpha=1.8,
        read_base_mean=400.0,
        read_base_cv=0.5,
    ):
        self.write_base_mean = write_base_mean
        self.write_base_cv = write_base_cv
        self.bandwidth_bytes_per_us = bandwidth_bytes_per_us
        self.flush_base_mean = flush_base_mean
        self.flush_base_cv = flush_base_cv
        self.flush_tail_prob = flush_tail_prob
        self.flush_tail_scale = flush_tail_scale
        self.flush_tail_alpha = flush_tail_alpha
        self.read_base_mean = read_base_mean
        self.read_base_cv = read_base_cv

    @classmethod
    def page_cache(cls):
        """A data 'disk' fronted by the OS page cache.

        The paper's reduced-scale (2-WH) machine held the whole dataset
        in RAM, so InnoDB buffer-pool misses were served by the OS page
        cache at tens of microseconds, not by the platters — the variance
        under memory pressure came from the pool mutex, not from I/O.
        """
        return cls(
            write_base_mean=25.0,
            write_base_cv=0.3,
            bandwidth_bytes_per_us=2000.0,
            flush_base_mean=2000.0,
            flush_base_cv=0.6,
            flush_tail_prob=0.02,
            flush_tail_scale=8000.0,
            flush_tail_alpha=1.8,
            read_base_mean=45.0,
            read_base_cv=0.35,
        )

    @classmethod
    def battery_backed(cls):
        """A log device behind a battery-backed write cache.

        fsync returns once the controller cache has the data: fast with a
        modest tail — the regime in which the paper's 128-WH profile puts
        ``fil_flush`` *below* the lock waits.
        """
        return cls(
            write_base_mean=15.0,
            write_base_cv=0.3,
            bandwidth_bytes_per_us=1000.0,
            flush_base_mean=350.0,
            flush_base_cv=0.45,
            flush_tail_prob=0.01,
            flush_tail_scale=2000.0,
            flush_tail_alpha=2.0,
            read_base_mean=200.0,
            read_base_cv=0.4,
        )

    @classmethod
    def fast_ssd(cls):
        """A low-latency device (the 'log on faster I/O' mitigation)."""
        return cls(
            write_base_mean=10.0,
            write_base_cv=0.2,
            bandwidth_bytes_per_us=2000.0,
            flush_base_mean=150.0,
            flush_base_cv=0.25,
            flush_tail_prob=0.002,
            flush_tail_scale=600.0,
            flush_tail_alpha=2.5,
            read_base_mean=60.0,
            read_base_cv=0.25,
        )


class Disk:
    """One device: FIFO service, seeded latency draws, op counters."""

    def __init__(self, sim, rng, config=None, name="disk"):
        self.sim = sim
        self.rng = rng
        self.config = config or DiskConfig()
        self.name = name
        self._faults = sim.faults
        self._busy_until = 0.0
        cfg = self.config
        self._write_dist = LogNormal(cfg.write_base_mean, cfg.write_base_cv)
        self._read_dist = LogNormal(cfg.read_base_mean, cfg.read_base_cv)
        self._flush_dist = HeavyTail(
            LogNormal(cfg.flush_base_mean, cfg.flush_base_cv),
            Pareto(cfg.flush_tail_scale, cfg.flush_tail_alpha),
            cfg.flush_tail_prob,
        )
        self.writes = 0
        self.reads = 0
        self.flushes = 0
        self.bytes_written = 0
        self.io_errors = 0
        # Telemetry.  The horizon model has no explicit queue, so depth
        # is reported as the FIFO delay a request pays before service —
        # the quantity that amplifies the flush tail under pile-ups.
        tm = sim.telemetry
        prefix = "disk.%s" % name
        self._t_reads = tm.counter(prefix + ".reads")
        self._t_writes = tm.counter(prefix + ".writes")
        self._t_flushes = tm.counter(prefix + ".flushes")
        self._t_queue_delay = tm.histogram(prefix + ".queue_delay")
        self._t_service = tm.histogram(prefix + ".service_time")

    @property
    def queue_delay(self):
        """Virtual time a request arriving now would wait before service."""
        return max(0.0, self._busy_until - self.sim.now)

    @property
    def busy(self):
        return self._busy_until > self.sim.now

    def _fail(self, op):
        """Generator: should ``op`` fail now, serve the error and raise."""
        if self._faults.enabled and self._faults.io_error(self.name, op):
            self.io_errors += 1
            yield from self._serve(self._faults.plan.io_error_latency)
            raise TransientIOError(
                "injected %s error on disk %r at t=%.1f" % (op, self.name, self.sim.now)
            )

    def _serve(self, service_time):
        """Generator: FIFO-queue then hold for ``service_time``."""
        if self._faults.enabled:
            service_time *= self._faults.disk_latency_factor(self.name, self.sim.now)
        start = max(self.sim.now, self._busy_until)
        self._t_queue_delay.observe(start - self.sim.now)
        self._t_service.observe(service_time)
        self._busy_until = start + service_time
        yield self._busy_until - self.sim.now

    def write(self, nbytes):
        """Generator: a buffered write of ``nbytes`` (no durability)."""
        yield from self._fail("write")
        self.writes += 1
        self._t_writes.inc()
        self.bytes_written += nbytes
        service = (
            self._write_dist.sample(self.rng)
            + nbytes / self.config.bandwidth_bytes_per_us
        )
        yield from self._serve(service)

    def write_blocks(self, nblocks, block_bytes):
        """Generator: ``nblocks`` sequential writes of whole blocks.

        Models Postgres's XLogWrite: each block costs a per-call base
        (syscall + setup) plus transfer time for the *whole* block, even
        when the tail block is only partially filled — the source of the
        Figure 4 block-size tradeoff.
        """
        if nblocks <= 0:
            return
        yield from self._fail("write")
        self.writes += nblocks
        self._t_writes.inc(nblocks)
        self.bytes_written += nblocks * block_bytes
        per_call = self._write_dist.sample(self.rng)
        service = nblocks * (
            per_call + block_bytes / self.config.bandwidth_bytes_per_us
        )
        yield from self._serve(service)

    def read(self, nbytes):
        """Generator: a random read of ``nbytes``."""
        yield from self._fail("read")
        self.reads += 1
        self._t_reads.inc()
        service = (
            self._read_dist.sample(self.rng)
            + nbytes / self.config.bandwidth_bytes_per_us
        )
        yield from self._serve(service)

    def read_sequential(self, nbytes, chunk_bytes=131072):
        """Generator: a sequential scan of ``nbytes`` in fixed-size chunks.

        Recovery replay (``repro.recovery``) reads the durable WAL prefix
        front to back; each chunk pays the per-call base plus transfer
        time, so replay time grows with the durable log length at the
        crash instant.  Evaluates to the byte count read.
        """
        if nbytes <= 0:
            return 0
        remaining = nbytes
        while remaining > 0:
            chunk = chunk_bytes if remaining > chunk_bytes else remaining
            yield from self.read(chunk)
            remaining -= chunk
        return nbytes

    def flush(self):
        """Generator: force previously written data to stable storage.

        This is where the heavy tail lives: the body is a lognormal around
        ``flush_base_mean`` and with probability ``flush_tail_prob`` the
        call hits a Pareto-tailed stall.

        This call is also the *durability boundary* for crash recovery
        (``repro.recovery``): data is crash-proof only once the process
        that issued the flush resumes past this generator.  A node crash
        mid-flush kills the issuing process before it can advance its
        durable horizon, so the write counts as lost — matching a real
        fsync whose completion never reached the caller.
        """
        yield from self._fail("flush")
        self.flushes += 1
        self._t_flushes.inc()
        service = self._flush_dist.sample(self.rng)
        yield from self._serve(service)

    def __repr__(self):
        return "<Disk %s writes=%d reads=%d flushes=%d>" % (
            self.name,
            self.writes,
            self.reads,
            self.flushes,
        )
