"""Named, seeded random streams and latency distributions.

All randomness in a simulation flows through a :class:`Streams` object so
that a run is a pure function of ``(config, seed)``.  Each subsystem asks
for its own named stream (``streams.stream("lockmgr")``), which makes runs
insensitive to the *order* in which unrelated subsystems draw numbers —
adding a draw to the disk model does not perturb the workload generator.

Distributions are small immutable objects with ``sample(rng) -> float``.
The latency-bearing ones (service times, I/O) use a lognormal body —
the canonical shape for storage and queueing service times — optionally
mixed with a Pareto tail to model fsync stalls and write-cache flushes.
"""

import hashlib
import math
import random

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a baked-in dependency
    _np = None


class BufferedRandom(random.Random):
    """``random.Random`` serving ``random()`` from a refillable buffer.

    The buffer is pre-drawn in one block — via ``numpy.random.RandomState``
    when available (its legacy ``random_sample`` consumes the MT19937 core
    word-for-word like CPython's ``random()``), else via a tight scalar
    loop — and the core state is fast-forwarded past the whole block.

    Stream semantics are unchanged: the sequence of variates any mix of
    consumers sees is byte-identical to an unbuffered ``random.Random``
    with the same seed.  Two rules keep that true:

    - ``random()`` (and everything built on it: ``uniform``, ``gauss``,
      ``normalvariate``, ``expovariate``, ``lognormvariate``, Zipfian and
      Pareto draws ...) serves the next pre-drawn variate;
    - consumers that read the MT core *directly* (``getrandbits`` — and
      through it ``randrange``/``randint``/``shuffle``/``sample`` — plus
      ``randbytes`` and ``getstate``) first *rewind-sync*: the core state
      is restored to the block anchor and replayed over the variates
      already served, discarding the unserved remainder.  The next
      ``random()`` starts a fresh block from the synced position.
    """

    #: Class-level defaults so ``seed`` works during ``Random.__init__``
    #: (which runs before instance attributes exist).
    _buf = ()
    _idx = 0
    _anchor = None
    _streak = 0
    _buffer_size = 1024
    #: Consecutive un-synced ``random()`` draws before buffering kicks
    #: in.  Streams that interleave direct-core consumers (``randint``,
    #: ``shuffle`` ...) between short runs of variates never reach it and
    #: stay on the native scalar path — buffering them would pay a block
    #: refill plus a rewind-sync per interleaving and win nothing.
    _warmup = 128

    def __init__(self, seed=None, buffer_size=1024):
        super().__init__(seed)
        self._buffer_size = int(buffer_size)
        self._rs = None

    # -- buffered uniform path -----------------------------------------

    def random(self):
        """The next variate of the stream (buffered after a warm-up)."""
        # Bounds check, not try/except: unbuffered streams (the warm-up
        # never completes on mixed streams) would raise on every draw,
        # and exception dispatch costs ~10x the comparison.
        idx = self._idx
        buf = self._buf
        if idx < len(buf):
            self._idx = idx + 1
            return buf[idx]
        streak = self._streak
        if streak >= self._warmup:
            return self._refill()
        self._streak = streak + 1
        return super().random()

    def _refill(self):
        """Refill the buffer from the core and serve the first variate.

        The core is left *past the whole block*; ``_anchor`` remembers
        the pre-block state so direct core consumers can rewind-sync.
        """
        anchor = random.Random.getstate(self)
        n = self._buffer_size
        if _np is not None:
            core = anchor[1]
            rs = self._rs
            if rs is None:
                rs = self._rs = _np.random.RandomState()
            rs.set_state(("MT19937", core[:-1], core[-1]))
            buf = rs.random_sample(n).tolist()
            after = rs.get_state()
            random.Random.setstate(
                self,
                (
                    anchor[0],
                    tuple(after[1].tolist()) + (int(after[2]),),
                    self.gauss_next,
                ),
            )
        else:
            scalar = super().random
            buf = [scalar() for _ in range(n)]
        self._anchor = anchor
        self._buf = buf
        self._idx = 1
        return buf[0]

    def _sync(self):
        """Rewind the core to the logical stream position, drop the buffer."""
        buf = self._buf
        if buf:
            if self._idx < len(buf):
                # Unserved variates pending: rewind to the block anchor
                # and replay only what was actually served.  Only the
                # core words rewind — ``gauss_next`` lives outside the
                # core and may have been updated since the refill.
                anchor = self._anchor
                random.Random.setstate(
                    self, (anchor[0], anchor[1], self.gauss_next)
                )
                scalar = super().random
                for _ in range(self._idx):
                    scalar()
            # else: the block was fully served; the core already sits at
            # the logical position.
            self._buf = ()
            self._idx = 0
        self._anchor = None
        self._streak = 0

    # -- direct core consumers: sync first -----------------------------

    def getrandbits(self, k):
        # ``_buf`` empty implies no anchor either (invariant), so the
        # no-buffer case only needs the warm-up streak reset — plus the
        # native rebinding: a direct core consumer arriving before the
        # warm-up completes marks the stream as mixed, buffering will
        # never pay, and the Python ``random`` wrapper costs ~1us/draw
        # on streams that stay unbuffered.  Binding the C core
        # ``random`` on the instance skips the wrapper for good; the
        # value stream is identical with or without buffering.
        if self._buf:
            self._sync()
        else:
            self._go_native()
        return super().getrandbits(k)

    def randbytes(self, n):
        if self._buf:
            self._sync()
        else:
            self._go_native()
        return super().randbytes(n)

    def _go_native(self):
        """Mixed stream: bind the core methods, skip the wrappers for good.

        Once a stream is native, ``random()`` never buffers again, so
        the ``getrandbits``/``randbytes`` sync checks are dead too —
        ``randrange``/``randint`` go straight to the C core.
        """
        self._streak = 0
        self.random = super().random
        self.getrandbits = super().getrandbits
        self.randbytes = super().randbytes

    def getstate(self):
        self._sync()
        return super().getstate()

    def setstate(self, state):
        self._buf = ()
        self._idx = 0
        self._anchor = None
        self._streak = 0
        self._undo_native()
        super().setstate(state)

    def seed(self, a=None, version=2):
        self._buf = ()
        self._idx = 0
        self._anchor = None
        self._streak = 0
        self._undo_native()
        super().seed(a, version)

    def _undo_native(self):
        pop = self.__dict__.pop
        pop("random", None)
        pop("getrandbits", None)
        pop("randbytes", None)


class Streams:
    """A family of independent named RNG streams derived from one seed."""

    def __init__(self, seed):
        self.seed = seed
        self._streams = {}

    def stream(self, name):
        """Return (creating on first use) the stream for ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                ("%s/%s" % (self.seed, name)).encode("utf-8")
            ).digest()
            rng = BufferedRandom(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def scoped(self, prefix):
        """A view whose stream names are prefixed with ``prefix``.

        The cluster layer hands each node ``streams.scoped("node3/")``
        so two engines asking for ``"mysql.engine"`` get *independent*
        streams (``node3/mysql.engine`` vs ``node0/mysql.engine``)
        without any engine code knowing about nodes.  Scopes nest.
        """
        return ScopedStreams(self, prefix)


class ScopedStreams:
    """A name-prefixing view over a :class:`Streams` family."""

    __slots__ = ("_base", "_prefix")

    def __init__(self, base, prefix):
        self._base = base
        self._prefix = prefix

    @property
    def seed(self):
        return self._base.seed

    def stream(self, name):
        return self._base.stream(self._prefix + name)

    def scoped(self, prefix):
        return ScopedStreams(self._base, self._prefix + prefix)

    def __repr__(self):
        return "<ScopedStreams %r of %r>" % (self._prefix, self._base)


#: ``random.NV_MAGICCONST`` — the Kinderman-Monahan rejection constant,
#: reproduced here so :class:`LogNormal` can inline the stdlib draw loop.
_NV_MAGICCONST = 4 * math.exp(-0.5) / math.sqrt(2.0)


class Distribution:
    """Base class for latency / size distributions."""

    def sample(self, rng):
        raise NotImplementedError

    @property
    def mean(self):
        raise NotImplementedError


class Constant(Distribution):
    """A degenerate distribution: always ``value``."""

    __slots__ = ("value",)

    def __init__(self, value):
        if value < 0:
            raise ValueError("Constant value must be >= 0")
        self.value = value

    def sample(self, rng):
        return self.value

    @property
    def mean(self):
        return self.value

    def __repr__(self):
        return "Constant(%r)" % (self.value,)


class Uniform(Distribution):
    """Uniform on ``[low, high]``."""

    __slots__ = ("low", "high")

    def __init__(self, low, high):
        if not 0 <= low <= high:
            raise ValueError("need 0 <= low <= high")
        self.low = low
        self.high = high

    def sample(self, rng):
        return rng.uniform(self.low, self.high)

    @property
    def mean(self):
        return (self.low + self.high) / 2.0

    def __repr__(self):
        return "Uniform(%r, %r)" % (self.low, self.high)


class Exponential(Distribution):
    """Exponential with the given mean (used for arrival jitter)."""

    __slots__ = ("_mean",)

    def __init__(self, mean):
        if mean <= 0:
            raise ValueError("Exponential mean must be > 0")
        self._mean = mean

    def sample(self, rng):
        return rng.expovariate(1.0 / self._mean)

    @property
    def mean(self):
        return self._mean

    def __repr__(self):
        return "Exponential(%r)" % (self._mean,)


class LogNormal(Distribution):
    """Lognormal parameterised by its mean and coefficient of variation.

    Given desired mean m and cv c: sigma^2 = ln(1 + c^2) and
    mu = ln(m) - sigma^2 / 2, so that E[X] = m and Std[X]/E[X] = c.
    """

    __slots__ = ("_mean", "cv", "_mu", "_sigma")

    def __init__(self, mean, cv):
        if mean <= 0:
            raise ValueError("LogNormal mean must be > 0")
        if cv <= 0:
            raise ValueError("LogNormal cv must be > 0")
        self._mean = mean
        self.cv = cv
        sigma2 = math.log(1.0 + cv * cv)
        self._sigma = math.sqrt(sigma2)
        self._mu = math.log(mean) - sigma2 / 2.0

    def sample(self, rng):
        # Inlined ``rng.lognormvariate(self._mu, self._sigma)``: the same
        # Kinderman-Monahan rejection loop (and therefore the same draw
        # sequence, bit for bit) as ``random.normalvariate``, minus two
        # Python call layers on the run's hottest distribution.  When the
        # stream is a :class:`BufferedRandom` with pre-drawn variates
        # available, the loop reads them straight off the buffer (each
        # rejection round consumes exactly two uniforms).
        log = math.log
        mu = self._mu
        sigma = self._sigma
        buf = getattr(rng, "_buf", None)
        if buf is not None:
            idx = rng._idx
            n = len(buf)
            while idx + 2 <= n:
                u1 = buf[idx]
                u2 = 1.0 - buf[idx + 1]
                idx += 2
                z = _NV_MAGICCONST * (u1 - 0.5) / u2
                if z * z / 4.0 <= -log(u2):
                    rng._idx = idx
                    return math.exp(mu + z * sigma)
            rng._idx = idx
        random = rng.random
        while True:
            u1 = random()
            u2 = 1.0 - random()
            z = _NV_MAGICCONST * (u1 - 0.5) / u2
            if z * z / 4.0 <= -log(u2):
                return math.exp(mu + z * sigma)

    @property
    def mean(self):
        return self._mean

    def __repr__(self):
        return "LogNormal(mean=%r, cv=%r)" % (self._mean, self.cv)


class Pareto(Distribution):
    """Pareto with scale ``xm`` and shape ``alpha`` (alpha > 1 for finite mean)."""

    __slots__ = ("xm", "alpha")

    def __init__(self, xm, alpha):
        if xm <= 0 or alpha <= 0:
            raise ValueError("Pareto requires xm > 0 and alpha > 0")
        self.xm = xm
        self.alpha = alpha

    def sample(self, rng):
        return self.xm * math.pow(1.0 - rng.random(), -1.0 / self.alpha)

    @property
    def mean(self):
        if self.alpha <= 1.0:
            return math.inf
        return self.alpha * self.xm / (self.alpha - 1.0)

    def __repr__(self):
        return "Pareto(xm=%r, alpha=%r)" % (self.xm, self.alpha)


class HeavyTail(Distribution):
    """Mixture: with probability ``tail_prob`` draw from ``tail``, else ``body``.

    Models fsync / write-cache stalls: a well-behaved lognormal body with
    occasional order-of-magnitude excursions.
    """

    __slots__ = ("body", "tail", "tail_prob")

    def __init__(self, body, tail, tail_prob):
        if not 0.0 <= tail_prob <= 1.0:
            raise ValueError("tail_prob must be in [0, 1]")
        self.body = body
        self.tail = tail
        self.tail_prob = tail_prob

    def sample(self, rng):
        if rng.random() < self.tail_prob:
            return self.tail.sample(rng)
        return self.body.sample(rng)

    @property
    def mean(self):
        return (
            self.tail_prob * self.tail.mean + (1.0 - self.tail_prob) * self.body.mean
        )

    def __repr__(self):
        return "HeavyTail(%r, %r, tail_prob=%r)" % (
            self.body,
            self.tail,
            self.tail_prob,
        )


class Zipfian:
    """YCSB-style Zipfian integer generator over ``[0, n)``.

    Uses the standard Gray et al. quick algorithm with an incrementally
    maintained zeta value; ``theta`` close to 1 means more skew.
    """

    def __init__(self, n, theta=0.99):
        if n <= 0:
            raise ValueError("Zipfian n must be > 0")
        if not 0.0 < theta < 1.0:
            raise ValueError("Zipfian theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self._zeta_n = self._zeta(n, theta)
        self._zeta_2 = self._zeta(min(n, 2), theta)
        self._alpha = 1.0 / (1.0 - theta)
        if n <= 2:
            # Degenerate key spaces: sample from the explicit CDF (the
            # quick algorithm's eta term divides by zero here).
            self._eta = None
        else:
            self._eta = (1.0 - math.pow(2.0 / n, 1.0 - theta)) / (
                1.0 - self._zeta_2 / self._zeta_n
            )

    @staticmethod
    def _zeta(n, theta):
        # Exact for small n, integral approximation for large n: the
        # difference is immaterial for key selection and this keeps setup
        # O(1) for YCSB-scale key spaces.
        if n <= 10000:
            return sum(1.0 / math.pow(i, theta) for i in range(1, n + 1))
        head = sum(1.0 / math.pow(i, theta) for i in range(1, 10001))
        tail = (math.pow(n, 1.0 - theta) - math.pow(10000, 1.0 - theta)) / (
            1.0 - theta
        )
        return head + tail

    def sample(self, rng):
        """Return a key in ``[0, n)``; key 0 is the hottest."""
        u = rng.random()
        uz = u * self._zeta_n
        if uz < 1.0 or self.n == 1:
            return 0
        if uz < 1.0 + math.pow(0.5, self.theta) or self.n == 2:
            return 1
        key = int(self.n * math.pow(self._eta * u - self._eta + 1.0, self._alpha))
        return min(key, self.n - 1)

    def __repr__(self):
        return "Zipfian(n=%r, theta=%r)" % (self.n, self.theta)
