"""Named, seeded random streams and latency distributions.

All randomness in a simulation flows through a :class:`Streams` object so
that a run is a pure function of ``(config, seed)``.  Each subsystem asks
for its own named stream (``streams.stream("lockmgr")``), which makes runs
insensitive to the *order* in which unrelated subsystems draw numbers —
adding a draw to the disk model does not perturb the workload generator.

Distributions are small immutable objects with ``sample(rng) -> float``.
The latency-bearing ones (service times, I/O) use a lognormal body —
the canonical shape for storage and queueing service times — optionally
mixed with a Pareto tail to model fsync stalls and write-cache flushes.
"""

import hashlib
import math
import random


class Streams:
    """A family of independent named RNG streams derived from one seed."""

    def __init__(self, seed):
        self.seed = seed
        self._streams = {}

    def stream(self, name):
        """Return (creating on first use) the stream for ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                ("%s/%s" % (self.seed, name)).encode("utf-8")
            ).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng


class Distribution:
    """Base class for latency / size distributions."""

    def sample(self, rng):
        raise NotImplementedError

    @property
    def mean(self):
        raise NotImplementedError


class Constant(Distribution):
    """A degenerate distribution: always ``value``."""

    __slots__ = ("value",)

    def __init__(self, value):
        if value < 0:
            raise ValueError("Constant value must be >= 0")
        self.value = value

    def sample(self, rng):
        return self.value

    @property
    def mean(self):
        return self.value

    def __repr__(self):
        return "Constant(%r)" % (self.value,)


class Uniform(Distribution):
    """Uniform on ``[low, high]``."""

    __slots__ = ("low", "high")

    def __init__(self, low, high):
        if not 0 <= low <= high:
            raise ValueError("need 0 <= low <= high")
        self.low = low
        self.high = high

    def sample(self, rng):
        return rng.uniform(self.low, self.high)

    @property
    def mean(self):
        return (self.low + self.high) / 2.0

    def __repr__(self):
        return "Uniform(%r, %r)" % (self.low, self.high)


class Exponential(Distribution):
    """Exponential with the given mean (used for arrival jitter)."""

    __slots__ = ("_mean",)

    def __init__(self, mean):
        if mean <= 0:
            raise ValueError("Exponential mean must be > 0")
        self._mean = mean

    def sample(self, rng):
        return rng.expovariate(1.0 / self._mean)

    @property
    def mean(self):
        return self._mean

    def __repr__(self):
        return "Exponential(%r)" % (self._mean,)


class LogNormal(Distribution):
    """Lognormal parameterised by its mean and coefficient of variation.

    Given desired mean m and cv c: sigma^2 = ln(1 + c^2) and
    mu = ln(m) - sigma^2 / 2, so that E[X] = m and Std[X]/E[X] = c.
    """

    __slots__ = ("_mean", "cv", "_mu", "_sigma")

    def __init__(self, mean, cv):
        if mean <= 0:
            raise ValueError("LogNormal mean must be > 0")
        if cv <= 0:
            raise ValueError("LogNormal cv must be > 0")
        self._mean = mean
        self.cv = cv
        sigma2 = math.log(1.0 + cv * cv)
        self._sigma = math.sqrt(sigma2)
        self._mu = math.log(mean) - sigma2 / 2.0

    def sample(self, rng):
        return rng.lognormvariate(self._mu, self._sigma)

    @property
    def mean(self):
        return self._mean

    def __repr__(self):
        return "LogNormal(mean=%r, cv=%r)" % (self._mean, self.cv)


class Pareto(Distribution):
    """Pareto with scale ``xm`` and shape ``alpha`` (alpha > 1 for finite mean)."""

    __slots__ = ("xm", "alpha")

    def __init__(self, xm, alpha):
        if xm <= 0 or alpha <= 0:
            raise ValueError("Pareto requires xm > 0 and alpha > 0")
        self.xm = xm
        self.alpha = alpha

    def sample(self, rng):
        return self.xm * math.pow(1.0 - rng.random(), -1.0 / self.alpha)

    @property
    def mean(self):
        if self.alpha <= 1.0:
            return math.inf
        return self.alpha * self.xm / (self.alpha - 1.0)

    def __repr__(self):
        return "Pareto(xm=%r, alpha=%r)" % (self.xm, self.alpha)


class HeavyTail(Distribution):
    """Mixture: with probability ``tail_prob`` draw from ``tail``, else ``body``.

    Models fsync / write-cache stalls: a well-behaved lognormal body with
    occasional order-of-magnitude excursions.
    """

    __slots__ = ("body", "tail", "tail_prob")

    def __init__(self, body, tail, tail_prob):
        if not 0.0 <= tail_prob <= 1.0:
            raise ValueError("tail_prob must be in [0, 1]")
        self.body = body
        self.tail = tail
        self.tail_prob = tail_prob

    def sample(self, rng):
        if rng.random() < self.tail_prob:
            return self.tail.sample(rng)
        return self.body.sample(rng)

    @property
    def mean(self):
        return (
            self.tail_prob * self.tail.mean + (1.0 - self.tail_prob) * self.body.mean
        )

    def __repr__(self):
        return "HeavyTail(%r, %r, tail_prob=%r)" % (
            self.body,
            self.tail,
            self.tail_prob,
        )


class Zipfian:
    """YCSB-style Zipfian integer generator over ``[0, n)``.

    Uses the standard Gray et al. quick algorithm with an incrementally
    maintained zeta value; ``theta`` close to 1 means more skew.
    """

    def __init__(self, n, theta=0.99):
        if n <= 0:
            raise ValueError("Zipfian n must be > 0")
        if not 0.0 < theta < 1.0:
            raise ValueError("Zipfian theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self._zeta_n = self._zeta(n, theta)
        self._zeta_2 = self._zeta(min(n, 2), theta)
        self._alpha = 1.0 / (1.0 - theta)
        if n <= 2:
            # Degenerate key spaces: sample from the explicit CDF (the
            # quick algorithm's eta term divides by zero here).
            self._eta = None
        else:
            self._eta = (1.0 - math.pow(2.0 / n, 1.0 - theta)) / (
                1.0 - self._zeta_2 / self._zeta_n
            )

    @staticmethod
    def _zeta(n, theta):
        # Exact for small n, integral approximation for large n: the
        # difference is immaterial for key selection and this keeps setup
        # O(1) for YCSB-scale key spaces.
        if n <= 10000:
            return sum(1.0 / math.pow(i, theta) for i in range(1, n + 1))
        head = sum(1.0 / math.pow(i, theta) for i in range(1, 10001))
        tail = (math.pow(n, 1.0 - theta) - math.pow(10000, 1.0 - theta)) / (
            1.0 - theta
        )
        return head + tail

    def sample(self, rng):
        """Return a key in ``[0, n)``; key 0 is the hottest."""
        u = rng.random()
        uz = u * self._zeta_n
        if uz < 1.0 or self.n == 1:
            return 0
        if uz < 1.0 + math.pow(0.5, self.theta) or self.n == 2:
            return 1
        key = int(self.n * math.pow(self._eta * u - self._eta + 1.0, self._alpha))
        return min(key, self.n - 1)

    def __repr__(self):
        return "Zipfian(n=%r, theta=%r)" % (self.n, self.theta)
