"""Synchronisation primitives built on the DES kernel.

These model the constructs whose *wait-time variance* the paper studies:
mutexes (InnoDB's buffer-pool mutex, Postgres's WALWriteLock), spin locks
with bounded wait (the Lazy-LRU-Update modification), and waitable FIFO
queues (VoltDB's task queues and the background log-flusher inbox).
"""

from collections import deque

from repro.sim.kernel import SimulationError, WaitEvent


class _MutexEntry:
    """One parked acquirer; ``cancelled`` marks a timed-out spin waiter."""

    __slots__ = ("process", "event", "cancelled")

    def __init__(self, process, event):
        self.process = process
        self.event = event
        self.cancelled = False


class Mutex:
    """A FIFO mutex with explicit hand-off.

    ``yield from mutex.acquire()`` blocks until the mutex is held by the
    calling process; :meth:`release` hands it to the next non-cancelled
    waiter.  Wait times are pure queueing delay on the virtual clock.
    """

    def __init__(self, sim, name="mutex"):
        self.sim = sim
        self.name = name
        self.holder = None
        self._waiters = deque()
        # Cumulative contention accounting, used by tests and tuning studies.
        self.total_waits = 0
        self.total_wait_time = 0.0
        self.total_acquisitions = 0

    @property
    def queue_length(self):
        return sum(1 for entry in self._waiters if not entry.cancelled)

    def acquire(self):
        """Generator: block until this process holds the mutex."""
        process = self.sim.current
        if self.holder is None:
            self.holder = process
            self.total_acquisitions += 1
            return
        entry = _MutexEntry(process, self.sim.event())
        self._waiters.append(entry)
        started = self.sim.now
        self.total_waits += 1
        yield WaitEvent(entry.event)
        self.total_wait_time += self.sim.now - started
        self.total_acquisitions += 1

    def try_acquire(self, timeout):
        """Generator: like :meth:`acquire` but give up after ``timeout``.

        Evaluates to ``True`` if the mutex was acquired, ``False`` if the
        wait was abandoned.  Used by :class:`SpinLock`.
        """
        process = self.sim.current
        if self.holder is None:
            self.holder = process
            self.total_acquisitions += 1
            return True
        entry = _MutexEntry(process, self.sim.event())
        self._waiters.append(entry)
        started = self.sim.now
        self.total_waits += 1
        fired = yield WaitEvent(entry.event, timeout=timeout)
        self.total_wait_time += self.sim.now - started
        if not fired:
            entry.cancelled = True
            return False
        self.total_acquisitions += 1
        return True

    def release(self):
        """Hand the mutex to the next live waiter, or free it."""
        if self.holder is None:
            raise SimulationError("release of unheld mutex %r" % self.name)
        if self.holder is not self.sim.current:
            raise SimulationError(
                "mutex %r released by %r but held by %r"
                % (self.name, self.sim.current, self.holder)
            )
        while self._waiters:
            entry = self._waiters.popleft()
            if entry.cancelled:
                continue
            self.holder = entry.process
            entry.event.fire()
            return
        self.holder = None

    def __repr__(self):
        return "<Mutex %s holder=%r waiters=%d>" % (
            self.name,
            self.holder,
            self.queue_length,
        )


class SpinLock:
    """A mutex acquired by spinning with a bounded wait.

    This models the Lazy-LRU-Update change (Section 6.1): replace the
    buffer-pool mutex with a spin lock and abandon the wait after
    ``spin_timeout`` microseconds (paper: 0.01 ms = 10 µs), falling back to
    a thread-local backlog of deferred LRU updates.

    Spinning costs ``spin_overhead`` of virtual time per acquisition to
    model the (small) extra CPU burn relative to a sleeping mutex.
    """

    def __init__(self, sim, name="spinlock", spin_timeout=10.0, spin_overhead=0.05):
        self.sim = sim
        self.name = name
        self.spin_timeout = spin_timeout
        self.spin_overhead = spin_overhead
        self._mutex = Mutex(sim, name=name + ".inner")
        self.timeouts = 0

    @property
    def holder(self):
        return self._mutex.holder

    @property
    def total_acquisitions(self):
        return self._mutex.total_acquisitions

    def try_acquire(self):
        """Generator: evaluate to True if acquired within the spin budget."""
        acquired = yield from self._mutex.try_acquire(self.spin_timeout)
        if self.spin_overhead:
            yield self.spin_overhead
        if not acquired:
            self.timeouts += 1
        return acquired

    def acquire(self):
        """Generator: unbounded acquire (spin until granted)."""
        yield from self._mutex.acquire()

    def release(self):
        self._mutex.release()


class CoreSet:
    """A fixed set of CPU cores served FIFO.

    Models the finite processor of the paper's testbed (2 sockets, 16
    cores): a simulated thread's CPU burst occupies one core for its
    duration, and when all cores are busy the burst queues.  Near
    saturation this is what stretches transaction latencies — and
    therefore lock hold times — the way the paper's hardware did.

    Implemented with per-core busy-until horizons rather than processes:
    a burst is assigned the earliest-free core, exactly FIFO in arrival
    order because the event loop is deterministic.
    """

    def __init__(self, sim, n_cores, name="cpu"):
        if n_cores < 1:
            raise ValueError("need at least one core")
        self.sim = sim
        self.name = name
        self.n_cores = n_cores
        self._busy_until = [0.0] * n_cores
        self.total_busy = 0.0
        self.total_bursts = 0

    @property
    def queue_delay(self):
        """Delay a burst arriving now would wait before running."""
        return max(0.0, min(self._busy_until) - self.sim.now)

    def utilization(self, span):
        """Fraction of core-time used over ``span`` microseconds."""
        if span <= 0:
            return 0.0
        return self.total_busy / (span * self.n_cores)

    def consume(self, cost):
        """Generator: run a CPU burst of ``cost`` on the earliest-free core."""
        if cost <= 0:
            return
        self.total_bursts += 1
        self.total_busy += cost
        busy = self._busy_until
        index = busy.index(min(busy))
        now = self.sim.now
        start = busy[index]
        if now > start:
            start = now
        end = start + cost
        busy[index] = end
        yield end - now


class WaitQueue:
    """An unbounded FIFO queue with blocking ``get``.

    Models VoltDB's per-site task queues and the background flusher inbox.
    ``put`` is immediate; ``yield from queue.get()`` parks until an item is
    available.  Items are delivered to getters in FIFO order.
    """

    def __init__(self, sim, name="queue"):
        self.sim = sim
        self.name = name
        self._items = deque()
        self._getters = deque()
        # Peak/total accounting for the VoltDB queueing study.
        self.total_puts = 0
        self.peak_length = 0

    def __len__(self):
        return len(self._items)

    def put(self, item):
        """Enqueue ``item``, waking the longest-waiting getter if any."""
        self.total_puts += 1
        if self._getters:
            event = self._getters.popleft()
            event.fire(item)
            return
        self._items.append(item)
        if len(self._items) > self.peak_length:
            self.peak_length = len(self._items)

    def get(self):
        """Generator: evaluate to the next item, blocking if empty."""
        if self._items:
            return self._items.popleft()
        event = self.sim.event()
        self._getters.append(event)
        yield WaitEvent(event)
        return event.value

    def __repr__(self):
        return "<WaitQueue %s len=%d getters=%d>" % (
            self.name,
            len(self._items),
            len(self._getters),
        )
