"""The discrete-event simulation kernel.

A :class:`Simulator` owns a virtual clock (``now``, in microseconds) and a
priority queue of scheduled wakeups.  Simulated activities are *processes*:
plain Python generator functions that ``yield`` command objects —

- ``yield delay`` — a bare non-negative ``float``: resume after ``delay``
  microseconds of virtual time (the zero-allocation fast path);
- ``yield Timeout(delay)`` — the same, as an explicit command object;
- ``yield WaitEvent(event)`` — block until ``event`` fires; the yield
  evaluates to ``True``;
- ``yield WaitEvent(event, timeout=t)`` — block until the event fires or
  ``t`` microseconds elapse; evaluates to ``True`` if the event fired,
  ``False`` on timeout;
- ``yield event`` — sugar for ``WaitEvent(event)``;
- ``yield proc`` — sugar for waiting on ``proc.done``.

Sub-calls compose with ``yield from``, so simulated "functions" nest like
ordinary Python calls.  Determinism: ties in wakeup time are broken by a
monotonically increasing sequence number, so a run is a pure function of
the initial configuration and the random seeds.

Performance
-----------

Every paper experiment funnels through :meth:`Simulator.run`, so the
dispatch loop is written for wall-clock speed: a single flat loop with
hoisted locals replaces the ``_resume``/``_dispatch`` call chain, exact
class checks replace the ``isinstance`` ladder, same-time wakeups go
through a FIFO ``deque`` instead of heap round-trips, and the
per-dispatch telemetry updates are accumulated locally and flushed when
the loop exits.  None of this may be visible in *virtual* time: the
straightforward loop is preserved in :mod:`repro.sim.refkernel` and
``tests/test_kernel_differential.py`` plus the golden digests in
``tests/test_equivalence_goldens.py`` pin this kernel to its exact
semantics — same (config, seed) ⇒ byte-identical results.

The ready-deque short-cut is order-preserving because the global
sequence counter is monotonic: a wakeup scheduled *for* the current
time was necessarily scheduled *at* the current time, so it carries a
higher sequence number than every heap entry for this same time (those
were pushed before the clock got here) — draining the same-time heap
entries first, then the deque in FIFO order, reproduces exact
``(time, seq)`` heap order without paying ``heappush``/``heappop`` for
the ~half of all wakeups that are same-time resumptions.
"""

import math
from collections import deque
from heapq import heappop, heappush

from repro.check.recorder import NO_CHECK
from repro.faults.injector import NO_FAULTS
from repro.telemetry.registry import NULL_REGISTRY

_INF = math.inf


class SimulationError(Exception):
    """Raised for kernel misuse (e.g. negative delays, re-firing events)."""


class Timeout:
    """Command: resume the yielding process after ``delay`` virtual time."""

    __slots__ = ("delay",)

    def __init__(self, delay):
        # Non-finite delays must be rejected, not just negative ones: a
        # NaN passes every comparison check and then poisons the wakeup
        # heap's ordering invariant silently.
        if not math.isfinite(delay) or delay < 0:
            raise SimulationError(
                "Timeout delay must be finite and >= 0, got %r" % (delay,)
            )
        self.delay = delay

    def __repr__(self):
        return "Timeout(%r)" % (self.delay,)


class WaitEvent:
    """Command: block on ``event``, optionally bounded by ``timeout``.

    The ``yield`` expression evaluates to ``True`` if the event fired and
    ``False`` if the timeout elapsed first.  A timed-out waiter is never
    woken again by a later fire.
    """

    __slots__ = ("event", "timeout")

    def __init__(self, event, timeout=None):
        if timeout is not None and (not math.isfinite(timeout) or timeout < 0):
            raise SimulationError(
                "WaitEvent timeout must be finite and >= 0, got %r" % (timeout,)
            )
        self.event = event
        self.timeout = timeout

    def __repr__(self):
        return "WaitEvent(%r, timeout=%r)" % (self.event, self.timeout)


class _Waiter:
    """A single parked process; ``active`` guards against double wakeup."""

    __slots__ = ("process", "active")

    def __init__(self, process):
        self.process = process
        self.active = True


class Event:
    """A one-shot waitable event.

    Processes park on it via ``yield WaitEvent(event)``; :meth:`fire` wakes
    all active waiters at the current virtual time and records ``value``.
    """

    __slots__ = ("sim", "fired", "value", "_waiters")

    def __init__(self, sim):
        self.sim = sim
        self.fired = False
        self.value = None
        self._waiters = []

    def fire(self, value=None):
        """Fire the event, waking every process still parked on it."""
        if self.fired:
            raise SimulationError("event fired twice")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if waiter.active:
                waiter.active = False
                self.sim._schedule(0, waiter.process, True)

    def _add_waiter(self, process):
        if self.fired:
            return None
        waiter = _Waiter(process)
        self._waiters.append(waiter)
        return waiter

    def __repr__(self):
        state = "fired" if self.fired else "pending"
        return "<Event %s at t=%s>" % (state, self.sim.now)


class Process:
    """A running simulated activity wrapping a generator.

    ``done`` is an :class:`Event` fired with the generator's return value
    when it finishes.  ``alive`` is True until then.
    """

    __slots__ = ("sim", "name", "gen", "done")

    def __init__(self, sim, gen, name):
        self.sim = sim
        self.name = name
        self.gen = gen
        self.done = Event(sim)

    @property
    def alive(self):
        return not self.done.fired

    def __repr__(self):
        state = "alive" if self.alive else "done"
        return "<Process %s (%s)>" % (self.name, state)


class _TimeoutCheck:
    """Heap placeholder that wakes a waiter with False if still parked."""

    __slots__ = ("waiter",)

    def __init__(self, waiter):
        self.waiter = waiter


class Simulator:
    """The event loop: a virtual clock plus a heap of scheduled wakeups.

    ``telemetry`` is the run's :class:`~repro.telemetry.MetricsRegistry`
    (or the shared null registry); every subsystem built on this
    simulator reads it from here, so one constructor argument plumbs
    observability through the whole stack.  ``faults`` is the run's
    :class:`~repro.faults.FaultInjector` (or the shared null injector),
    distributed the same way.

    ``dispatch_count`` is a plain always-maintained int (unlike the
    ``sim.dispatches`` counter it needs no registry), so wall-clock
    harnesses can compute events/sec on telemetry-off runs.
    """

    def __init__(self, telemetry=None, faults=None):
        self.now = 0.0
        self.current = None
        self.telemetry = telemetry if telemetry is not None else NULL_REGISTRY
        self.faults = faults if faults is not None else NO_FAULTS
        # The run's history recorder (repro.check); the null object by
        # default, so checking off costs one attribute and nothing else.
        self.check = NO_CHECK
        self.dispatch_count = 0
        self._heap = []
        # Wakeups due at the current virtual time, in schedule order.
        self._ready = deque()
        self._seq = 0
        self._spawned = 0
        self._t_enabled = self.telemetry.enabled
        self._t_dispatches = self.telemetry.counter("sim.dispatches")
        self._t_spawns = self.telemetry.counter("sim.spawns")
        self._t_runq_depth = self.telemetry.gauge("sim.runq_depth")

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def spawn(self, gen, name=None):
        """Start ``gen`` as a new process; it first runs at the current time."""
        if name is None:
            name = "proc-%d" % self._spawned
        self._spawned += 1
        if self._t_enabled:
            self._t_spawns.inc()
        process = Process(self, gen, name)
        self._schedule(0, process, None)
        return process

    def event(self):
        """Create a fresh one-shot :class:`Event` bound to this simulator."""
        return Event(self)

    def run(self, until=None):
        """Run until all wakeups drain or the clock passes ``until``.

        Returns the final virtual time.  The clock never moves
        backwards: an ``until`` already in the past leaves ``now``
        untouched and runs nothing (everything pending is due at ``now``
        or later).
        """
        now = self.now
        if until is not None and until < now:
            return now
        heap = self._heap
        ready = self._ready
        pop = heappop
        push = heappush
        popleft = ready.popleft
        append = ready.append
        telemetry_on = self._t_enabled
        n_dispatched = 0
        runq_max = -1
        runq_last = 0
        try:
            while True:
                # Pick the next wakeup in exact (time, seq) order: heap
                # entries already due (lower seq than anything in the
                # deque — see module docstring), then the ready deque,
                # then advance the clock to the earliest future entry.
                if heap and heap[0][0] <= now:
                    _, _, process, value = pop(heap)
                elif ready:
                    process, value = popleft()
                elif heap:
                    time = heap[0][0]
                    if until is not None and time > until:
                        now = until
                        break
                    _, _, process, value = pop(heap)
                    self.now = now = time
                else:
                    break

                n_dispatched += 1
                if telemetry_on:
                    depth = len(heap) + len(ready)
                    if depth > runq_max:
                        runq_max = depth
                    runq_last = depth

                if process.__class__ is _TimeoutCheck:
                    waiter = process.waiter
                    if not waiter.active:
                        continue
                    waiter.active = False
                    process = waiter.process
                    value = False
                if process.done.fired:
                    continue

                # Inner resume loop: each command branch either parks the
                # process (``break`` back to the selection above) or —
                # when the wakeup is provably the very next dispatch —
                # advances the clock and resumes the same process
                # directly (``continue``), skipping the heap round-trip.
                # The direct resume preserves exact (time, seq) order: a
                # fresh push would carry the highest seq, so it only
                # fires next when nothing is ready, every heap entry is
                # strictly later, and ``until`` is not crossed.
                while True:
                    self.current = process
                    try:
                        command = process.gen.send(value)
                    except StopIteration as stop:
                        self.current = None
                        process.done.fire(stop.value)
                        break
                    except BaseException:
                        self.current = None
                        raise
                    self.current = None

                    tc = command.__class__
                    if tc is float:
                        # Bare-float shorthand for Timeout(command).  The
                        # chained comparison is the exact Timeout guard:
                        # NaN fails both sides, inf fails the right one.
                        if 0.0 <= command < _INF:
                            t = now + command
                            if t > now:
                                if (
                                    not ready
                                    and (not heap or t < heap[0][0])
                                    and (until is None or t <= until)
                                ):
                                    self.now = now = t
                                    n_dispatched += 1
                                    if telemetry_on:
                                        depth = len(heap) + len(ready)
                                        if depth > runq_max:
                                            runq_max = depth
                                        runq_last = depth
                                    value = None
                                    continue
                                self._seq = seq = self._seq + 1
                                push(heap, (t, seq, process, None))
                            else:
                                append((process, None))
                            break
                        raise SimulationError(
                            "Timeout delay must be finite and >= 0, got %r"
                            % (command,)
                        )
                    if tc is Timeout:
                        t = now + command.delay
                        if t > now:
                            if (
                                not ready
                                and (not heap or t < heap[0][0])
                                and (until is None or t <= until)
                            ):
                                self.now = now = t
                                n_dispatched += 1
                                if telemetry_on:
                                    depth = len(heap) + len(ready)
                                    if depth > runq_max:
                                        runq_max = depth
                                    runq_last = depth
                                value = None
                                continue
                            self._seq = seq = self._seq + 1
                            push(heap, (t, seq, process, None))
                        else:
                            append((process, None))
                        break
                    if tc is WaitEvent:
                        event = command.event
                        if event.fired:
                            if not ready and (not heap or heap[0][0] > now):
                                # Already fired and nothing else is due
                                # at this time: resume without the
                                # ready-deque round-trip.
                                n_dispatched += 1
                                if telemetry_on:
                                    depth = len(heap) + len(ready)
                                    if depth > runq_max:
                                        runq_max = depth
                                    runq_last = depth
                                value = True
                                continue
                            append((process, True))
                        else:
                            waiter = _Waiter(process)
                            event._waiters.append(waiter)
                            timeout = command.timeout
                            if timeout is not None:
                                t = now + timeout
                                if t > now:
                                    self._seq = seq = self._seq + 1
                                    push(
                                        heap, (t, seq, _TimeoutCheck(waiter), None)
                                    )
                                else:
                                    append((_TimeoutCheck(waiter), None))
                        break
                    if tc is Event:
                        if command.fired:
                            if not ready and (not heap or heap[0][0] > now):
                                n_dispatched += 1
                                if telemetry_on:
                                    depth = len(heap) + len(ready)
                                    if depth > runq_max:
                                        runq_max = depth
                                    runq_last = depth
                                value = True
                                continue
                            append((process, True))
                        else:
                            command._waiters.append(_Waiter(process))
                        break
                    if tc is Process:
                        event = command.done
                        if event.fired:
                            if not ready and (not heap or heap[0][0] > now):
                                n_dispatched += 1
                                if telemetry_on:
                                    depth = len(heap) + len(ready)
                                    if depth > runq_max:
                                        runq_max = depth
                                    runq_last = depth
                                value = True
                                continue
                            append((process, True))
                        else:
                            event._waiters.append(_Waiter(process))
                        break
                    if tc is int:
                        # Ints work as bare delays too (config knobs are
                        # sometimes written as ints); bool deliberately
                        # does not — `yield True` is always a bug.
                        if 0 <= command < _INF:
                            t = now + command
                            if t > now:
                                if (
                                    not ready
                                    and (not heap or t < heap[0][0])
                                    and (until is None or t <= until)
                                ):
                                    self.now = now = t
                                    n_dispatched += 1
                                    if telemetry_on:
                                        depth = len(heap) + len(ready)
                                        if depth > runq_max:
                                            runq_max = depth
                                        runq_last = depth
                                    value = None
                                    continue
                                self._seq = seq = self._seq + 1
                                push(heap, (t, seq, process, None))
                            else:
                                append((process, None))
                            break
                        raise SimulationError(
                            "Timeout delay must be finite and >= 0, got %r"
                            % (command,)
                        )
                    self._dispatch_slow(process, command)
                    break
        finally:
            self.now = now
            self.dispatch_count += n_dispatched
            if telemetry_on and n_dispatched:
                self._t_dispatches.inc(n_dispatched)
                gauge = self._t_runq_depth
                gauge.set(runq_max)
                gauge.set(runq_last)
        return now

    def run_until_idle(self):
        """Alias of :meth:`run` with no time bound."""
        return self.run()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _schedule(self, delay, process, value):
        """Queue ``process`` to resume with ``value`` after ``delay``.

        Wakeups due at the current time go to the ready deque (they
        carry a higher notional seq than every same-time heap entry, so
        FIFO order there preserves global (time, seq) order); future
        wakeups take a real sequence number onto the heap.
        """
        now = self.now
        t = now + delay
        if t > now:
            self._seq = seq = self._seq + 1
            heappush(self._heap, (t, seq, process, value))
        else:
            self._ready.append((process, value))

    def _schedule_timeout_check(self, delay, waiter):
        """Arrange for ``waiter`` to be woken with False after ``delay``."""
        self._schedule(delay, _TimeoutCheck(waiter), None)

    def _wait(self, process, event, timeout):
        waiter = event._add_waiter(process)
        if waiter is None:
            # Already fired: resume immediately with True.
            self._schedule(0, process, True)
            return
        if timeout is not None:
            self._schedule_timeout_check(timeout, waiter)

    def _dispatch_slow(self, process, command):
        """Commands the fast loop's exact-class checks missed.

        Subclasses of the command types land here and get the original
        ``isinstance`` treatment; anything else is a genuine error.
        """
        if isinstance(command, Timeout):
            self._schedule(command.delay, process, None)
        elif isinstance(command, WaitEvent):
            self._wait(process, command.event, command.timeout)
        elif isinstance(command, Event):
            self._wait(process, command, None)
        elif isinstance(command, Process):
            self._wait(process, command.done, None)
        else:
            raise SimulationError(
                "process %s yielded unsupported command %r" % (process.name, command)
            )
