"""The discrete-event simulation kernel.

A :class:`Simulator` owns a virtual clock (``now``, in microseconds) and a
priority queue of scheduled wakeups.  Simulated activities are *processes*:
plain Python generator functions that ``yield`` command objects —

- ``yield Timeout(delay)`` — resume after ``delay`` microseconds of
  virtual time;
- ``yield WaitEvent(event)`` — block until ``event`` fires; the yield
  evaluates to ``True``;
- ``yield WaitEvent(event, timeout=t)`` — block until the event fires or
  ``t`` microseconds elapse; evaluates to ``True`` if the event fired,
  ``False`` on timeout;
- ``yield event`` — sugar for ``WaitEvent(event)``;
- ``yield proc`` — sugar for waiting on ``proc.done``.

Sub-calls compose with ``yield from``, so simulated "functions" nest like
ordinary Python calls.  Determinism: ties in wakeup time are broken by a
monotonically increasing sequence number, so a run is a pure function of
the initial configuration and the random seeds.
"""

import math
from heapq import heappop, heappush

from repro.faults.injector import NO_FAULTS
from repro.telemetry.registry import NULL_REGISTRY


class SimulationError(Exception):
    """Raised for kernel misuse (e.g. negative delays, re-firing events)."""


class Timeout:
    """Command: resume the yielding process after ``delay`` virtual time."""

    __slots__ = ("delay",)

    def __init__(self, delay):
        # Non-finite delays must be rejected, not just negative ones: a
        # NaN passes every comparison check and then poisons the wakeup
        # heap's ordering invariant silently.
        if not math.isfinite(delay) or delay < 0:
            raise SimulationError(
                "Timeout delay must be finite and >= 0, got %r" % (delay,)
            )
        self.delay = delay

    def __repr__(self):
        return "Timeout(%r)" % (self.delay,)


class WaitEvent:
    """Command: block on ``event``, optionally bounded by ``timeout``.

    The ``yield`` expression evaluates to ``True`` if the event fired and
    ``False`` if the timeout elapsed first.  A timed-out waiter is never
    woken again by a later fire.
    """

    __slots__ = ("event", "timeout")

    def __init__(self, event, timeout=None):
        if timeout is not None and (not math.isfinite(timeout) or timeout < 0):
            raise SimulationError(
                "WaitEvent timeout must be finite and >= 0, got %r" % (timeout,)
            )
        self.event = event
        self.timeout = timeout

    def __repr__(self):
        return "WaitEvent(%r, timeout=%r)" % (self.event, self.timeout)


class _Waiter:
    """A single parked process; ``active`` guards against double wakeup."""

    __slots__ = ("process", "active")

    def __init__(self, process):
        self.process = process
        self.active = True


class Event:
    """A one-shot waitable event.

    Processes park on it via ``yield WaitEvent(event)``; :meth:`fire` wakes
    all active waiters at the current virtual time and records ``value``.
    """

    __slots__ = ("sim", "fired", "value", "_waiters")

    def __init__(self, sim):
        self.sim = sim
        self.fired = False
        self.value = None
        self._waiters = []

    def fire(self, value=None):
        """Fire the event, waking every process still parked on it."""
        if self.fired:
            raise SimulationError("event fired twice")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if waiter.active:
                waiter.active = False
                self.sim._schedule(0, waiter.process, True)

    def _add_waiter(self, process):
        if self.fired:
            return None
        waiter = _Waiter(process)
        self._waiters.append(waiter)
        return waiter

    def __repr__(self):
        state = "fired" if self.fired else "pending"
        return "<Event %s at t=%s>" % (state, self.sim.now)


class Process:
    """A running simulated activity wrapping a generator.

    ``done`` is an :class:`Event` fired with the generator's return value
    when it finishes.  ``alive`` is True until then.
    """

    __slots__ = ("sim", "name", "gen", "done")

    def __init__(self, sim, gen, name):
        self.sim = sim
        self.name = name
        self.gen = gen
        self.done = Event(sim)

    @property
    def alive(self):
        return not self.done.fired

    def __repr__(self):
        state = "alive" if self.alive else "done"
        return "<Process %s (%s)>" % (self.name, state)


class Simulator:
    """The event loop: a virtual clock plus a heap of scheduled wakeups.

    ``telemetry`` is the run's :class:`~repro.telemetry.MetricsRegistry`
    (or the shared null registry); every subsystem built on this
    simulator reads it from here, so one constructor argument plumbs
    observability through the whole stack.  ``faults`` is the run's
    :class:`~repro.faults.FaultInjector` (or the shared null injector),
    distributed the same way.
    """

    def __init__(self, telemetry=None, faults=None):
        self.now = 0.0
        self.current = None
        self.telemetry = telemetry if telemetry is not None else NULL_REGISTRY
        self.faults = faults if faults is not None else NO_FAULTS
        self._heap = []
        self._seq = 0
        self._spawned = 0
        self._t_enabled = self.telemetry.enabled
        self._t_dispatches = self.telemetry.counter("sim.dispatches")
        self._t_spawns = self.telemetry.counter("sim.spawns")
        self._t_runq_depth = self.telemetry.gauge("sim.runq_depth")

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def spawn(self, gen, name=None):
        """Start ``gen`` as a new process; it first runs at the current time."""
        if name is None:
            name = "proc-%d" % self._spawned
        self._spawned += 1
        if self._t_enabled:
            self._t_spawns.inc()
        process = Process(self, gen, name)
        self._schedule(0, process, None)
        return process

    def event(self):
        """Create a fresh one-shot :class:`Event` bound to this simulator."""
        return Event(self)

    def run(self, until=None):
        """Run until the heap drains or the clock passes ``until``.

        Returns the final virtual time.
        """
        heap = self._heap
        telemetry_on = self._t_enabled
        while heap:
            time, _seq, process, value = heappop(heap)
            if until is not None and time > until:
                # Put it back so a later run() continues from here.
                heappush(heap, (time, _seq, process, value))
                self.now = until
                return self.now
            self.now = time
            if telemetry_on:
                self._t_dispatches.inc()
                self._t_runq_depth.set(len(heap))
            self._resume(process, value)
        return self.now

    def run_until_idle(self):
        """Alias of :meth:`run` with no time bound."""
        return self.run()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _schedule(self, delay, process, value):
        self._seq += 1
        heappush(self._heap, (self.now + delay, self._seq, process, value))

    def _schedule_timeout_check(self, delay, waiter):
        """Arrange for ``waiter`` to be woken with False after ``delay``."""
        self._seq += 1
        heappush(self._heap, (self.now + delay, self._seq, _TimeoutCheck(waiter), None))

    def _resume(self, process, value):
        if isinstance(process, _TimeoutCheck):
            waiter = process.waiter
            if waiter.active:
                waiter.active = False
                self._resume(waiter.process, False)
            return
        if not process.alive:
            return
        previous = self.current
        self.current = process
        try:
            command = process.gen.send(value)
        except StopIteration as stop:
            self.current = previous
            process.done.fire(stop.value)
            return
        except BaseException:
            self.current = previous
            raise
        self.current = previous
        self._dispatch(process, command)

    def _dispatch(self, process, command):
        if isinstance(command, Timeout):
            self._schedule(command.delay, process, None)
        elif isinstance(command, WaitEvent):
            self._wait(process, command.event, command.timeout)
        elif isinstance(command, Event):
            self._wait(process, command, None)
        elif isinstance(command, Process):
            self._wait(process, command.done, None)
        else:
            raise SimulationError(
                "process %s yielded unsupported command %r" % (process.name, command)
            )

    def _wait(self, process, event, timeout):
        waiter = event._add_waiter(process)
        if waiter is None:
            # Already fired: resume immediately with True.
            self._schedule(0, process, True)
            return
        if timeout is not None:
            self._schedule_timeout_check(timeout, waiter)


class _TimeoutCheck:
    """Heap placeholder that wakes a waiter with False if still parked."""

    __slots__ = ("waiter",)

    def __init__(self, waiter):
        self.waiter = waiter
