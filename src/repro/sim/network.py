"""A simulated datacenter network: per-link FIFO queueing + seeded latency.

The cluster layer (``repro.cluster``) sends small control messages —
transaction requests, 2PC votes, decisions, acks — between nodes.  Each
message pays:

- **serialisation** on the sending link: ``nbytes / bandwidth``, FIFO
  behind whatever that directed link is already transmitting (the same
  busy-until horizon model as :class:`~repro.sim.disk.Disk`, so queueing
  under fan-out bursts is exact and cheap);
- **propagation**: a lognormal one-way latency with a heavy tail
  (switch-buffer and kernel-scheduler excursions — Fruth et al.'s
  "Tell-Tale Tail Latencies" regime), drawn from the network's dedicated
  seeded stream.

Links are *directed* ``(src, dst)`` pairs; a node sending to itself pays
a loopback cost only (no link queueing, no fault hooks).

Fault injection (``repro.faults``): during a ``net_delay`` window every
propagation latency is multiplied by the plan's factor; during a
partition window messages on affected links are *held* until the window
heals and then delivered normally — deterministic stalls, never drops,
so a partitioned 2PC run still terminates and stays byte-reproducible.
"""

from repro.exec.schema import register_config
from repro.sim.rand import HeavyTail, LogNormal, Pareto


@register_config
class NetworkConfig:
    """Fabric parameters (times in microseconds, sizes in bytes).

    Defaults describe a same-rack 10 GbE fabric: ~120 µs one-way latency
    with a modest heavy tail, 1250 bytes/µs of per-link bandwidth.
    """

    def __init__(
        self,
        latency_mean=120.0,
        latency_cv=0.35,
        tail_prob=0.005,
        tail_scale=1500.0,
        tail_alpha=2.2,
        bandwidth_bytes_per_us=1250.0,
        loopback_cost=2.0,
    ):
        if latency_mean < 0:
            raise ValueError("latency_mean must be >= 0")
        if bandwidth_bytes_per_us <= 0:
            raise ValueError("bandwidth_bytes_per_us must be > 0")
        self.latency_mean = latency_mean
        self.latency_cv = latency_cv
        self.tail_prob = tail_prob
        self.tail_scale = tail_scale
        self.tail_alpha = tail_alpha
        self.bandwidth_bytes_per_us = bandwidth_bytes_per_us
        self.loopback_cost = loopback_cost

    @classmethod
    def lan(cls):
        """The default same-rack fabric."""
        return cls()

    @classmethod
    def wan(cls):
        """A cross-site fabric: millisecond latency, fatter tail."""
        return cls(
            latency_mean=2_000.0,
            latency_cv=0.25,
            tail_prob=0.01,
            tail_scale=20_000.0,
            tail_alpha=1.8,
            bandwidth_bytes_per_us=125.0,
        )


class Network:
    """The shared fabric: directed links with FIFO serialisation."""

    def __init__(self, sim, rng, config=None, name="net"):
        self.sim = sim
        self.rng = rng
        self.config = config or NetworkConfig()
        self.name = name
        self._faults = sim.faults
        self._busy_until = {}
        cfg = self.config
        self._latency_dist = HeavyTail(
            LogNormal(cfg.latency_mean, cfg.latency_cv),
            Pareto(cfg.tail_scale, cfg.tail_alpha),
            cfg.tail_prob,
        )
        self.messages = 0
        self.bytes_sent = 0
        self.partition_holds = 0
        tm = sim.telemetry
        prefix = "net.%s" % name
        self._t_messages = tm.counter(prefix + ".messages")
        self._t_bytes = tm.counter(prefix + ".bytes")
        self._t_latency = tm.histogram(prefix + ".latency")
        self._t_queue_delay = tm.histogram(prefix + ".queue_delay")
        self._t_partition_holds = tm.counter(prefix + ".partition_holds")
        # The message/byte counters shadow the plain accounting
        # attributes one-for-one and fire on every control message of a
        # clustered run, so they are folded in bulk at registry flush
        # instead of paying two Counter.incs per send.
        self._flushed_messages = 0
        self._flushed_bytes = 0
        tm.add_flush_hook(self._flush_counters)

    def _flush_counters(self):
        """Fold the deferred message/byte totals into their counters."""
        delta = self.messages - self._flushed_messages
        if delta:
            self._t_messages.inc(delta)
            self._flushed_messages = self.messages
        delta = self.bytes_sent - self._flushed_bytes
        if delta:
            self._t_bytes.inc(delta)
            self._flushed_bytes = self.bytes_sent

    def link_queue_delay(self, src, dst):
        """Virtual time a message on ``src -> dst`` would wait to serialise."""
        return max(0.0, self._busy_until.get((src, dst), 0.0) - self.sim.now)

    def send(self, src, dst, nbytes):
        """Generator: deliver ``nbytes`` from node ``src`` to node ``dst``.

        Returns (to the caller of ``yield from``) once the message has
        arrived at ``dst``.  The caller is the process modelling the
        *message's* journey, not the sender's thread — spawn a courier
        process to model fire-and-forget sends.
        """
        self.messages += 1
        self.bytes_sent += nbytes
        if src == dst:
            if self.config.loopback_cost:
                yield self.config.loopback_cost
            return
        sim = self.sim
        if self._faults.enabled:
            heal = self._faults.net_partition_until(src, dst, sim.now)
            if heal is not None and heal > sim.now:
                # The link is cut: hold the message until the partition
                # heals, then let it contend for the link normally.
                self.partition_holds += 1
                self._t_partition_holds.inc()
                yield heal - sim.now
        link = (src, dst)
        xmit = nbytes / self.config.bandwidth_bytes_per_us
        start = max(sim.now, self._busy_until.get(link, 0.0))
        self._t_queue_delay.observe(start - sim.now)
        self._busy_until[link] = start + xmit
        latency = self._latency_dist.sample(self.rng)
        if self._faults.enabled:
            latency *= self._faults.net_latency_factor(sim.now)
        self._t_latency.observe(latency)
        yield (start + xmit + latency) - sim.now

    def send_delay(self, src, dst, nbytes):
        """The whole cost of :meth:`send` as one delay (fault-free path).

        Hot senders (the single-home coordinator hop, the replication
        ship loop) ``yield network.send_delay(...)`` instead of ``yield
        from network.send(...)`` — identical state mutations, counter
        totals and RNG draws, one generator frame fewer per message.
        Only valid when ``src != dst`` and fault injection is disabled
        (a partition hold needs the two-yield shape of :meth:`send`);
        callers must fall back to :meth:`send` otherwise.
        """
        self.messages += 1
        self.bytes_sent += nbytes
        sim = self.sim
        link = (src, dst)
        xmit = nbytes / self.config.bandwidth_bytes_per_us
        now = sim.now
        start = self._busy_until.get(link, 0.0)
        if start < now:
            start = now
        self._t_queue_delay.observe(start - now)
        self._busy_until[link] = start + xmit
        latency = self._latency_dist.sample(self.rng)
        self._t_latency.observe(latency)
        return (start + xmit + latency) - now

    def __repr__(self):
        return "<Network %s messages=%d bytes=%d>" % (
            self.name,
            self.messages,
            self.bytes_sent,
        )
