"""Latency statistics: variance, percentiles, Lp norms, covariance.

These are the quantities the paper reports: mean, variance, standard
deviation, coefficient of variation, 99th-percentile latency, and the Lp
norm that VATS provably minimises (Section 5.1, eq. 4).  Population
(ddof=0) moments are used throughout, matching the variance-tree identity
Var(sum) = sum Var + 2 sum Cov exactly on finite samples.
"""

import math

import numpy as np


def _as_sample(values, what):
    """Validate a sample: reject empty input and NaN values loudly.

    ``np.percentile``/``var`` silently propagate NaN (or emit a runtime
    warning and return NaN), which turns one corrupted latency into a
    silently wrong figure several layers up — every public helper here
    fails fast instead.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("%s of empty sample" % (what,))
    if np.isnan(arr).any():
        raise ValueError(
            "%s of sample containing NaN (%d of %d values)"
            % (what, int(np.isnan(arr).sum()), arr.size)
        )
    return arr


def lp_norm(values, p=2.0, normalized=False):
    """The Lp norm of eq. (4): ``(sum |l_i|^p)^(1/p)``.

    With ``normalized=True`` returns the *power mean* ``(mean |l_i|^p)^(1/p)``
    instead, which is comparable across samples of different sizes (used
    when comparing schedulers on runs with slightly different completion
    counts).
    """
    arr = _as_sample(values, "lp_norm")
    if p < 1.0:
        raise ValueError("Lp norm requires p >= 1, got %r" % (p,))
    if math.isinf(p):
        return float(np.max(np.abs(arr)))
    powered = np.power(np.abs(arr), p)
    total = np.mean(powered) if normalized else np.sum(powered)
    return float(np.power(total, 1.0 / p))


def covariance(xs, ys):
    """Population covariance of two equal-length samples."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape != ys.shape:
        raise ValueError(
            "covariance of mismatched samples (%r vs %r)" % (xs.shape, ys.shape)
        )
    xs = _as_sample(xs, "covariance")
    ys = _as_sample(ys, "covariance")
    return float(np.mean((xs - xs.mean()) * (ys - ys.mean())))


def correlation(xs, ys):
    """Pearson correlation; 0.0 if either sample is constant."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape != ys.shape:
        raise ValueError(
            "correlation of mismatched samples (%r vs %r)" % (xs.shape, ys.shape)
        )
    xs = _as_sample(xs, "correlation")
    ys = _as_sample(ys, "correlation")
    sx = xs.std()
    sy = ys.std()
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(covariance(xs, ys) / (sx * sy))


class RunningMoments:
    """Streaming count/mean/variance with an amortised insert path.

    ``add`` appends to a small buffer; every ``chunk`` values the buffer
    is folded into the running moments with one vectorised pass plus a
    Chan et al. parallel combine.  ``mean``/``variance`` flush first, so
    reads always reflect every inserted value.  Population (ddof=0)
    variance, matching the rest of this module.
    """

    __slots__ = ("_count", "_mean", "_m2", "_pending", "_chunk")

    def __init__(self, chunk=1024):
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._pending = []
        self._chunk = int(chunk)

    def add(self, value):
        """Insert one value (amortised O(1), vectorised on flush)."""
        value = float(value)
        if math.isnan(value):
            raise ValueError("RunningMoments cannot accept NaN")
        pending = self._pending
        pending.append(value)
        if len(pending) >= self._chunk:
            self._flush()

    def extend(self, values):
        """Insert a batch of values."""
        for value in values:
            self.add(value)

    def _flush(self):
        pending = self._pending
        if not pending:
            return
        arr = np.asarray(pending, dtype=float)
        del pending[:]
        n_b = arr.size
        mean_b = float(arr.mean())
        m2_b = float(((arr - mean_b) ** 2).sum())
        n_a = self._count
        if n_a == 0:
            self._count, self._mean, self._m2 = n_b, mean_b, m2_b
            return
        n = n_a + n_b
        delta = mean_b - self._mean
        self._mean += delta * (n_b / n)
        self._m2 += m2_b + delta * delta * (n_a * n_b / n)
        self._count = n

    @property
    def count(self):
        return self._count + len(self._pending)

    @property
    def mean(self):
        self._flush()
        if self._count == 0:
            raise ValueError("mean of empty RunningMoments")
        return self._mean

    @property
    def variance(self):
        self._flush()
        if self._count == 0:
            raise ValueError("variance of empty RunningMoments")
        return self._m2 / self._count

    @property
    def std(self):
        return math.sqrt(self.variance)

    def __repr__(self):
        return "RunningMoments(count=%d)" % (self.count,)


class LatencySummary:
    """The per-run scorecard: count, mean, variance, stdev, cv, percentiles."""

    __slots__ = ("count", "mean", "variance", "std", "cv", "p50", "p95", "p99", "max")

    def __init__(self, count, mean, variance, std, cv, p50, p95, p99, max_value):
        self.count = count
        self.mean = mean
        self.variance = variance
        self.std = std
        self.cv = cv
        self.p50 = p50
        self.p95 = p95
        self.p99 = p99
        self.max = max_value

    def ratio_to(self, other):
        """Ratios other/self for (mean, variance, p99) — the paper's
        'Orig. / Modified' columns when ``self`` is the modified system."""
        return {
            "mean": other.mean / self.mean,
            "variance": other.variance / self.variance,
            "p99": other.p99 / self.p99,
        }

    def __repr__(self):
        return (
            "LatencySummary(count=%d, mean=%.1f, std=%.1f, cv=%.2f, "
            "p99=%.1f)" % (self.count, self.mean, self.std, self.cv, self.p99)
        )


def summarize(values):
    """Compute a :class:`LatencySummary` over a latency sample."""
    arr = _as_sample(values, "summarize")
    mean = float(arr.mean())
    variance = float(arr.var())
    std = math.sqrt(variance)
    cv = std / mean if mean > 0 else 0.0
    p50, p95, p99 = (float(q) for q in np.percentile(arr, [50.0, 95.0, 99.0]))
    return LatencySummary(
        count=int(arr.size),
        mean=mean,
        variance=variance,
        std=std,
        cv=cv,
        p50=p50,
        p95=p95,
        p99=p99,
        max_value=float(arr.max()),
    )
