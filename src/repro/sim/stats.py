"""Latency statistics: variance, percentiles, Lp norms, covariance.

These are the quantities the paper reports: mean, variance, standard
deviation, coefficient of variation, 99th-percentile latency, and the Lp
norm that VATS provably minimises (Section 5.1, eq. 4).  Population
(ddof=0) moments are used throughout, matching the variance-tree identity
Var(sum) = sum Var + 2 sum Cov exactly on finite samples.
"""

import math

import numpy as np


def _as_sample(values, what):
    """Validate a sample: reject empty input and NaN values loudly.

    ``np.percentile``/``var`` silently propagate NaN (or emit a runtime
    warning and return NaN), which turns one corrupted latency into a
    silently wrong figure several layers up — every public helper here
    fails fast instead.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("%s of empty sample" % (what,))
    if np.isnan(arr).any():
        raise ValueError(
            "%s of sample containing NaN (%d of %d values)"
            % (what, int(np.isnan(arr).sum()), arr.size)
        )
    return arr


def lp_norm(values, p=2.0, normalized=False):
    """The Lp norm of eq. (4): ``(sum |l_i|^p)^(1/p)``.

    With ``normalized=True`` returns the *power mean* ``(mean |l_i|^p)^(1/p)``
    instead, which is comparable across samples of different sizes (used
    when comparing schedulers on runs with slightly different completion
    counts).
    """
    arr = _as_sample(values, "lp_norm")
    if p < 1.0:
        raise ValueError("Lp norm requires p >= 1, got %r" % (p,))
    if math.isinf(p):
        return float(np.max(np.abs(arr)))
    powered = np.power(np.abs(arr), p)
    total = np.mean(powered) if normalized else np.sum(powered)
    return float(np.power(total, 1.0 / p))


def covariance(xs, ys):
    """Population covariance of two equal-length samples."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape != ys.shape:
        raise ValueError(
            "covariance of mismatched samples (%r vs %r)" % (xs.shape, ys.shape)
        )
    xs = _as_sample(xs, "covariance")
    ys = _as_sample(ys, "covariance")
    return float(np.mean((xs - xs.mean()) * (ys - ys.mean())))


def correlation(xs, ys):
    """Pearson correlation; 0.0 if either sample is constant."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape != ys.shape:
        raise ValueError(
            "correlation of mismatched samples (%r vs %r)" % (xs.shape, ys.shape)
        )
    xs = _as_sample(xs, "correlation")
    ys = _as_sample(ys, "correlation")
    sx = xs.std()
    sy = ys.std()
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(covariance(xs, ys) / (sx * sy))


class LatencySummary:
    """The per-run scorecard: count, mean, variance, stdev, cv, percentiles."""

    __slots__ = ("count", "mean", "variance", "std", "cv", "p50", "p95", "p99", "max")

    def __init__(self, count, mean, variance, std, cv, p50, p95, p99, max_value):
        self.count = count
        self.mean = mean
        self.variance = variance
        self.std = std
        self.cv = cv
        self.p50 = p50
        self.p95 = p95
        self.p99 = p99
        self.max = max_value

    def ratio_to(self, other):
        """Ratios other/self for (mean, variance, p99) — the paper's
        'Orig. / Modified' columns when ``self`` is the modified system."""
        return {
            "mean": other.mean / self.mean,
            "variance": other.variance / self.variance,
            "p99": other.p99 / self.p99,
        }

    def __repr__(self):
        return (
            "LatencySummary(count=%d, mean=%.1f, std=%.1f, cv=%.2f, "
            "p99=%.1f)" % (self.count, self.mean, self.std, self.cv, self.p99)
        )


def summarize(values):
    """Compute a :class:`LatencySummary` over a latency sample."""
    arr = _as_sample(values, "summarize")
    mean = float(arr.mean())
    variance = float(arr.var())
    std = math.sqrt(variance)
    cv = std / mean if mean > 0 else 0.0
    p50, p95, p99 = (float(q) for q in np.percentile(arr, [50.0, 95.0, 99.0]))
    return LatencySummary(
        count=int(arr.size),
        mean=mean,
        variance=variance,
        std=std,
        cv=cv,
        p50=p50,
        p95=p95,
        p99=p99,
        max_value=float(arr.max()),
    )
