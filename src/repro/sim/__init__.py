"""Deterministic discrete-event simulation substrate.

Every latency-bearing action in the reproduced database engines (disk I/O,
mutex waits, lock waits, index traversals, queueing) is an event on a
virtual clock.  This sidesteps CPython's interpreter overhead, which would
otherwise dominate and distort latency-variance measurements (the reason a
wall-clock Python reproduction of this paper is infeasible), and makes
every experiment a pure function of ``(config, seed)``.

Public surface:

- :class:`Simulator`, :class:`Process` — the event loop and its processes
  (plain generator functions that ``yield`` commands).
- :class:`Timeout`, :class:`WaitEvent`, :class:`Event` — the commands and
  the waitable event primitive.
- :mod:`repro.sim.resources` — :class:`Mutex`, :class:`SpinLock`,
  :class:`WaitQueue` built on the kernel.
- :mod:`repro.sim.rand` — named, seeded random streams and latency
  distributions.
- :mod:`repro.sim.disk` — a single-server disk model with heavy-tailed
  flush latency.
- :mod:`repro.sim.stats` — latency statistics (variance, percentiles,
  Lp norms, covariance).
"""

from repro.sim.kernel import (
    Event,
    Process,
    SimulationError,
    Simulator,
    Timeout,
    WaitEvent,
)
from repro.sim.resources import Mutex, SpinLock, WaitQueue
from repro.sim.rand import (
    Constant,
    Exponential,
    HeavyTail,
    LogNormal,
    Pareto,
    Streams,
    Uniform,
    Zipfian,
)
from repro.sim.disk import Disk, DiskConfig
from repro.sim.stats import LatencySummary, lp_norm, summarize

__all__ = [
    "Constant",
    "Disk",
    "DiskConfig",
    "Event",
    "Exponential",
    "HeavyTail",
    "LatencySummary",
    "LogNormal",
    "Mutex",
    "Pareto",
    "Process",
    "SimulationError",
    "Simulator",
    "SpinLock",
    "Streams",
    "Timeout",
    "Uniform",
    "WaitEvent",
    "WaitQueue",
    "Zipfian",
    "lp_norm",
    "summarize",
]
