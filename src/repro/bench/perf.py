"""Wall-clock performance measurement for the simulation kernel.

Everything else in ``bench/`` measures *virtual* time; this module is
the one place that measures *wall* time — how many simulated events and
committed transactions per real second the kernel sustains.  The
numbers feed ``BENCH_PERF.json`` (written by
``scripts/run_perf_bench.py``) and the CI ``perf-smoke`` job, which
re-measures a tiny run and fails on a large regression against the
committed baseline.

Wall-clock timing is inherently noisy (machine load, CPU scaling,
allocator state), which is why :func:`measure` reports the *minimum* of
several repeats — contention only ever adds time, so the fastest sample
is the least-disturbed one (the same reasoning as ``timeit``) — and why
:func:`check_regression` applies a generous tolerance: the gate exists
to catch accidental 3×+ slowdowns of the dispatch loop, not 10% drift.
For before/after comparisons, time both kernels interleaved in one
process (``measure(..., simulator_cls=ReferenceSimulator)``) so they
see the same machine conditions.
"""

import os
import time

from repro.bench import paperconfig as pc
from repro.bench.runner import run_experiment

#: The fixed macro-workloads the perf trajectory is tracked on.  Keys
#: are stable identifiers recorded in BENCH_PERF.json.
MACROS = {
    "mysql-tpcc-vats": lambda seed, n_txns: pc.mysql_128wh_experiment(
        "VATS", seed=seed, n_txns=n_txns
    ),
    "postgres-tpcc": lambda seed, n_txns: pc.postgres_experiment(
        seed=seed, n_txns=n_txns
    ),
    "voltdb-tpcc": lambda seed, n_txns: pc.voltdb_experiment(
        seed=seed, n_txns=n_txns
    ),
}

MACRO_SEED = 7
MACRO_N_TXNS = 2000


def macro_config(name, seed=MACRO_SEED, n_txns=MACRO_N_TXNS, telemetry=True):
    """The fixed (config, seed) macro-run for one tracked workload."""
    return MACROS[name](seed, n_txns).replaced(telemetry=telemetry)


def macro_engines():
    """Mapping of macro name -> engine name (for ``--engines`` filters)."""
    return {name: MACROS[name](MACRO_SEED, 1).engine for name in MACROS}


def profile_macro(config, top=20, sort="cumulative"):
    """cProfile one ``run_experiment(config)``; return the stats text.

    Perf PRs should start from this, not guesses: the top-20 cumulative
    hotspots say which layer (kernel, engine, telemetry, workload
    generation) actually owns the wall time for a given macro.
    """
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    run_experiment(config)
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.strip_dirs().sort_stats(sort).print_stats(top)
    return stream.getvalue()


def _timed_run(config, simulator_cls=None):
    """One timed ``run_experiment``; returns (wall_seconds, result)."""
    start = time.perf_counter()
    result = run_experiment(config, simulator_cls=simulator_cls)
    return time.perf_counter() - start, result


def _measurement(config, walls, result, repeats):
    wall = min(walls)
    dispatches = result.sim.dispatch_count
    committed = len(result.traces)
    return {
        "engine": config.engine,
        "workload": config.workload,
        "seed": config.seed,
        "n_txns": config.n_txns,
        "telemetry": config.telemetry,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "wall_seconds": round(wall, 4),
        "wall_seconds_all": [round(w, 4) for w in sorted(walls)],
        "dispatches": dispatches,
        "committed_txns": committed,
        "events_per_sec": round(dispatches / wall, 1),
        "txns_per_sec": round(committed / wall, 1),
    }


def measure(config, repeats=3, simulator_cls=None):
    """Time ``run_experiment(config)``: best wall seconds over repeats.

    Returns a plain dict (JSON-ready) with the fastest repeat and the
    derived events/sec and txns/sec rates.  Virtual-time results are
    identical across repeats (same config, same seed), so only the
    clock varies.  ``simulator_cls`` times an alternative kernel (e.g.
    the reference kernel) on the identical workload.
    """
    walls = []
    result = None
    for _ in range(repeats):
        wall, result = _timed_run(config, simulator_cls=simulator_cls)
        walls.append(wall)
    return _measurement(config, walls, result, repeats)


def measure_macros(names=None, seed=MACRO_SEED, n_txns=MACRO_N_TXNS,
                   repeats=3, progress=None, simulator_cls=None):
    """Measure every tracked macro-workload, telemetry on and off.

    Each macro's telemetry-on/off pair is interleaved *within* every
    repeat round (on, off, on, off, ...) so both sides of the overhead
    ratio see the same machine conditions — a load drift between two
    back-to-back repeat blocks would otherwise bias the tax by more
    than the tax itself.  Every entry records its position in the
    measurement sequence (``interleave_order``) and the machine's
    ``cpu_count`` so a reader of ``BENCH_PERF.json`` can reconstruct
    the run conditions without the shell history.
    """
    report = {}
    order = 0
    for name in names or sorted(MACROS):
        configs = {
            telemetry: macro_config(name, seed=seed, n_txns=n_txns,
                                    telemetry=telemetry)
            for telemetry in (True, False)
        }
        keys = {
            telemetry: "%s/telemetry-%s" % (name, "on" if telemetry else "off")
            for telemetry in (True, False)
        }
        if progress:
            progress("measuring %s + %s (interleaved) ..."
                     % (keys[True], keys[False]))
        walls = {True: [], False: []}
        results = {True: None, False: None}
        for _ in range(repeats):
            for telemetry in (True, False):
                wall, results[telemetry] = _timed_run(
                    configs[telemetry], simulator_cls=simulator_cls
                )
                walls[telemetry].append(wall)
        for telemetry in (True, False):
            key = keys[telemetry]
            report[key] = _measurement(
                configs[telemetry], walls[telemetry], results[telemetry],
                repeats,
            )
            report[key]["interleave_order"] = order
            order += 1
            if progress:
                progress("  %s: %.0f events/sec, %.0f txns/sec (wall %.3fs)"
                         % (key, report[key]["events_per_sec"],
                            report[key]["txns_per_sec"],
                            report[key]["wall_seconds"]))
    return report


#: The fixed multi-config sweep the execution layer is measured on:
#: the mysql macro at consecutive seeds (independent, identical cost).
EXEC_SWEEP_N_CONFIGS = 8
EXEC_SWEEP_N_TXNS = 600


def exec_sweep_configs(n_configs=EXEC_SWEEP_N_CONFIGS,
                       n_txns=EXEC_SWEEP_N_TXNS, seed0=MACRO_SEED):
    """The configs of the tracked executor sweep (seeds ``seed0``...)."""
    return [
        macro_config("mysql-tpcc-vats", seed=seed0 + i, n_txns=n_txns)
        for i in range(n_configs)
    ]


def measure_exec_sweep(jobs_list=(1, 4), n_configs=EXEC_SWEEP_N_CONFIGS,
                       n_txns=EXEC_SWEEP_N_TXNS, repeats=3, progress=None):
    """Wall-clock the same sweep through each executor backend.

    Backends are timed interleaved within every repeat (the PR-3
    discipline: both sides see the same machine conditions), the
    fastest repeat wins, and every backend's per-config run digests
    must be byte-identical to the first backend's — the measurement
    doubles as a parallel-equals-serial check.

    ``cpu_count`` is recorded in the result because the speedup is
    meaningless without it: a process pool cannot beat serial on a
    single-core container, and near-linear scaling is only expected
    when ``cpu_count >= jobs``.
    """
    import os

    from repro.bench.digest import run_digest
    from repro.exec.executor import Executor

    configs = exec_sweep_configs(n_configs, n_txns)
    walls = {jobs: [] for jobs in jobs_list}
    digests = {}
    for repeat in range(repeats):
        for jobs in jobs_list:
            if progress:
                progress("exec sweep repeat %d/%d jobs=%d ..."
                         % (repeat + 1, repeats, jobs))
            start = time.perf_counter()
            artifacts = Executor(jobs=jobs).run(configs)
            walls[jobs].append(time.perf_counter() - start)
            measured = [run_digest(artifact) for artifact in artifacts]
            if jobs in digests and digests[jobs] != measured:
                raise AssertionError(
                    "jobs=%d produced different digests across repeats"
                    % (jobs,)
                )
            digests[jobs] = measured
    baseline_jobs = jobs_list[0]
    for jobs in jobs_list[1:]:
        if digests[jobs] != digests[baseline_jobs]:
            raise AssertionError(
                "jobs=%d artifacts are not byte-identical to jobs=%d"
                % (jobs, baseline_jobs)
            )
    result = {
        "n_configs": n_configs,
        "n_txns": n_txns,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "interleave_order": [str(jobs) for jobs in jobs_list],
        "digests_identical": True,
        "wall_seconds": {
            str(jobs): round(min(walls[jobs]), 4) for jobs in jobs_list
        },
        "wall_seconds_all": {
            str(jobs): [round(w, 4) for w in sorted(walls[jobs])]
            for jobs in jobs_list
        },
    }
    base_wall = min(walls[baseline_jobs])
    result["speedup_vs_jobs_%d" % baseline_jobs] = {
        str(jobs): round(base_wall / min(walls[jobs]), 2)
        for jobs in jobs_list[1:]
    }
    if result["cpu_count"] is not None and result["cpu_count"] < max(jobs_list):
        result["note"] = (
            "measured with cpu_count < max jobs: workers serialise on the "
            "available cores and spawn/pickling overhead dominates, so the "
            "recorded speedup is a floor; near-linear scaling expected "
            "when cores >= jobs"
        )
    return result


def check_regression(baseline_events_per_sec, measured_events_per_sec,
                     tolerance=3.0):
    """Fail-message (or None) for the CI perf-smoke comparison.

    A measured rate more than ``tolerance``× below the committed
    baseline indicates the dispatch loop lost its fast paths; anything
    within tolerance is machine noise.
    """
    if measured_events_per_sec * tolerance >= baseline_events_per_sec:
        return None
    return (
        "perf regression: measured %.0f events/sec is more than %.1fx below "
        "the committed baseline of %.0f events/sec"
        % (measured_events_per_sec, tolerance, baseline_events_per_sec)
    )
