"""Byte-exact digests of a run's observable results.

The performance work on the simulator obeys one non-negotiable rule:
**optimisations may change wall time, never virtual time**.  The proof
obligation is a digest that covers everything a run can observably
produce — the exact latency sequence (bit-for-bit, via ``float.hex``),
the final virtual clock, the full telemetry snapshot, and the
per-reason abort/failure/fault accounting.  Two runs with equal digests
produced byte-identical results; a digest recorded *before* an
optimisation therefore locks the optimised code to the old behaviour
(``tests/test_equivalence_goldens.py``).

Float serialisation uses ``float.hex`` rather than ``repr`` so the
digest is independent of any float-formatting subtleties; everything
else is canonical JSON (sorted keys, fixed separators).
"""

import hashlib
import json


def _hex_floats(value):
    """Recursively replace floats with their exact hex representation."""
    if isinstance(value, float):
        return value.hex()
    if isinstance(value, dict):
        return {key: _hex_floats(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [_hex_floats(val) for val in value]
    return value


def run_payload(result):
    """The canonical, JSON-serialisable view of one run's results.

    Accepts either a live :class:`~repro.bench.runner.RunResult` (clock
    read off the simulator) or a plain
    :class:`~repro.exec.artifact.RunArtifact` (clock carried as a
    field); both views of the same run produce the same payload, which
    is what lets the executor tests pin parallel == serial by digest.
    """
    sim = getattr(result, "sim", None)
    final_clock = sim.now if sim is not None else result.final_clock
    return {
        "latencies": [lat.hex() for lat in result.latencies],
        "final_clock": final_clock.hex(),
        "metrics": _hex_floats(result.metrics_snapshot()),
        "abort_counts": result.abort_counts,
        "failed_counts": result.failed_counts,
        "fault_counts": result.fault_counts,
        "committed": len(result.traces),
    }


def run_digest(result):
    """SHA-256 over the canonical payload of ``result``."""
    blob = json.dumps(
        run_payload(result), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()
