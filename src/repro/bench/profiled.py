"""The adapter that lets TProfiler drive full engine runs.

TProfiler's loop needs a system it can re-run with different
instrumented subsets (Section 3.1); :class:`EngineProfiledSystem` wraps
an :class:`~repro.bench.runner.ExperimentConfig` so every profiler
iteration is a fresh, deterministic simulation differing only in which
functions carry probes.
"""

from repro.core.profiler import ProfiledSystem
from repro.bench.runner import engine_callgraph, run_experiment


class EngineProfiledSystem(ProfiledSystem):
    """Profile any engine/workload combination."""

    def __init__(self, config):
        self.config = config
        self.callgraph = engine_callgraph(config.engine)
        self.runs = []

    def run(self, instrumented, probe_cost):
        result = run_experiment(
            self.config.replaced(
                instrumented=frozenset(instrumented), probe_cost=probe_cost
            )
        )
        self.runs.append(result)
        # Hand the profiler only the measurement set (committed,
        # post-warmup), packaged as a TransactionLog-alike.
        return _FilteredLog(result)


class _FilteredLog:
    """TransactionLog facade over a run's post-warmup committed traces."""

    def __init__(self, result):
        self.traces = result.traces

    def latencies(self, txn_type=None):
        return [
            t.latency
            for t in self.traces
            if txn_type is None or t.txn_type == txn_type
        ]

    def __len__(self):
        return len(self.traces)
