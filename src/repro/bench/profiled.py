"""The adapter that lets TProfiler drive full engine runs.

TProfiler's loop needs a system it can re-run with different
instrumented subsets (Section 3.1); :class:`EngineProfiledSystem` wraps
an :class:`~repro.bench.runner.ExperimentConfig` so every profiler
iteration is a fresh, deterministic simulation differing only in which
functions carry probes.

Runs go through the execution layer (:mod:`repro.exec`): each call
builds the derived config and hands it to an
:class:`~repro.exec.executor.Executor`, so independent batches — the
:class:`~repro.core.profiler.NaiveProfiler`'s budget groups — fan out
across a process pool with ``jobs > 1`` while the refinement loop's
inherently sequential iterations run inline.  The adapter keeps
:class:`~repro.exec.artifact.RunArtifact` objects (plain data), not
live ``RunResult`` graphs, so long profiling sessions stay light.
"""

from repro.core.profiler import ProfiledSystem
from repro.bench.runner import engine_callgraph
from repro.exec.executor import Executor


class EngineProfiledSystem(ProfiledSystem):
    """Profile any engine/workload combination.

    ``jobs`` (or an explicit ``executor``) controls how batched runs
    fan out; single runs always execute inline regardless.
    """

    def __init__(self, config, executor=None, jobs=1):
        self.config = config
        self.callgraph = engine_callgraph(config.engine)
        self.executor = executor if executor is not None else Executor(jobs=jobs)
        self.runs = []

    def _probed(self, instrumented, probe_cost):
        return self.config.replaced(
            instrumented=frozenset(instrumented), probe_cost=probe_cost
        )

    def run(self, instrumented, probe_cost):
        artifact = self.executor.run_one(self._probed(instrumented, probe_cost))
        self.runs.append(artifact)
        # Hand the profiler only the measurement set (committed,
        # post-warmup), packaged as a TransactionLog-alike.
        return _FilteredLog(artifact)

    def run_many(self, batches, probe_cost):
        configs = [self._probed(batch, probe_cost) for batch in batches]
        artifacts = self.executor.run(configs)
        self.runs.extend(artifacts)
        return [_FilteredLog(artifact) for artifact in artifacts]


class _FilteredLog:
    """TransactionLog facade over a run's post-warmup committed traces."""

    def __init__(self, result):
        self.traces = result.traces

    def latencies(self, txn_type=None):
        return [
            t.latency
            for t in self.traces
            if txn_type is None or t.txn_type == txn_type
        ]

    def __len__(self):
        return len(self.traces)
