"""The calibrated experiment configurations behind each paper result.

These are the single source of truth shared by ``benchmarks/``,
``examples/`` and the integration tests, so every reproduction of a
table or figure runs the same regime.

Calibration notes (see DESIGN.md for the full rationale):

- *Contended TPC-C* (the Fig. 2 / Table 4 regime): the paper's testbed
  ran MySQL at 500 tps with ~100 ms mean latency — a lock-bound regime.
  On the simulator that regime is reached with a spinning-disk redo log
  (eager flush holds every lock through an ~8 ms fsync), skewed
  warehouse activity, and popular items (hot stock rows are locked
  mid-transaction, which is what makes transaction ages diverge from
  queue arrival order — the condition under which the scheduling
  discipline matters).
- *2-WH memory-contended* (the Fig. 3-left / LLU regime): two
  warehouses, a buffer pool holding ~25% of the working set, and few
  cores, per the paper's reduced-scale machine.
- *Postgres* (Table 2 / Fig. 4): WAL on a buffered spinning disk, all
  flushes behind the global WALWriteLock.
- *VoltDB* (Fig. 7): two worker threads by default; service time chosen
  so the default runs near saturation, as the queue-wait-dominated
  profile of Appendix A requires.
"""

from repro.bench.runner import ExperimentConfig
from repro.engines.mysql import MySQLConfig
from repro.engines.postgres import PostgresConfig
from repro.engines.voltdb import VoltDBConfig
from repro.sim.disk import DiskConfig
from repro.wal.mysql_log import FlushPolicy

#: Seeds used when an experiment aggregates several independent runs.
SEEDS = (7, 21, 99)

#: Transactions per run: large enough for stable variance estimates of
#: heavy-tailed latency distributions, small enough for quick benches.
N_TXNS = 6000

#: Scheduler comparisons measure differences between heavy-tailed
#: convoy distributions and need longer runs to converge.
N_TXNS_SCHED = 12_000

RATE_TPS = 500.0


def spinning_log_disk():
    """The 128-WH machine's redo-log device: buffered spinning disk."""
    return DiskConfig(
        flush_base_mean=8000.0,
        flush_base_cv=0.5,
        flush_tail_prob=0.02,
        flush_tail_scale=16000.0,
        flush_tail_alpha=2.0,
    )


def pg_wal_disk():
    """The Postgres machine's WAL device.

    Calibrated so the single WALWriteLock stream runs just past its
    saturation knee at 500 tps — the regime in which
    ``LWLockAcquireOrWait`` dominates overall variance (Table 2) and
    parallel logging pays off (Figure 4, left).
    """
    return DiskConfig(
        write_base_mean=150.0,
        write_base_cv=0.4,
        bandwidth_bytes_per_us=100.0,
        flush_base_mean=4000.0,
        flush_base_cv=0.5,
        flush_tail_prob=0.02,
        flush_tail_scale=8800.0,
        flush_tail_alpha=2.0,
    )


def twowh_data_disk():
    """The 2-WH machine's data device.

    Reads are served by the OS page cache (the dataset fits in RAM), but
    a dirty-victim writeback is a real single-page flush — the cost the
    evicting thread pays *while holding the pool mutex* (the MySQL 5.6
    pathology LLU mitigates).
    """
    return DiskConfig(
        write_base_mean=500.0,
        write_base_cv=0.7,
        bandwidth_bytes_per_us=2000.0,
        read_base_mean=45.0,
        read_base_cv=0.35,
    )


def tpcc_contended_kwargs():
    """TPC-C 128-WH with the calibrated contention profile."""
    return {
        "warehouses": 128,
        "warehouse_zipf_theta": 0.99,
        "item_zipf_theta": 0.9,
        "remote_warehouse_prob": 0.15,
    }


def mysql_128wh(scheduler="FCFS", **overrides):
    """The contended MySQL config (Table 1 top, Fig. 2, Table 4)."""
    params = {
        "scheduler": scheduler,
        "statement_cpu": 300.0,
        "log_disk": spinning_log_disk(),
        "n_workers": 256,
    }
    params.update(overrides)
    return MySQLConfig(**params)


def mysql_128wh_experiment(scheduler="FCFS", seed=SEEDS[0], n_txns=N_TXNS, **overrides):
    return ExperimentConfig(
        engine="mysql",
        workload="tpcc",
        workload_kwargs=tpcc_contended_kwargs(),
        engine_config=mysql_128wh(scheduler, **overrides),
        seed=seed,
        n_txns=n_txns,
        rate_tps=RATE_TPS,
    )


def mysql_2wh(lazy_lru=False, buffer_fraction=0.03, **overrides):
    """The reduced-scale memory-contended config (Table 1 bottom, Fig. 3)."""
    params = {
        "scheduler": "FCFS",
        "statement_cpu": 150.0,
        "n_cores": 4,
        "buffer_pool_fraction": buffer_fraction,
        "lazy_lru": lazy_lru,
        "log_disk": DiskConfig.battery_backed(),
        "data_disk": twowh_data_disk(),
        "n_workers": 128,
    }
    params.update(overrides)
    return MySQLConfig(**params)


def tpcc_2wh_kwargs():
    return {
        "warehouses": 2,
        "warehouse_zipf_theta": None,
        "item_zipf_theta": 0.8,
        "remote_warehouse_prob": 0.05,
        "customers_per_district": 600,
    }


#: The reduced-scale machine (2 virtual CPUs) sustains half the load of
#: the big box; at 500 tps its structural 2-warehouse lock hotspots would
#: drown the buffer-pool signal the paper's 2-WH study isolates.
RATE_TPS_2WH = 250.0


def mysql_2wh_experiment(
    lazy_lru=False, buffer_fraction=0.03, seed=SEEDS[0], n_txns=N_TXNS, **overrides
):
    return ExperimentConfig(
        engine="mysql",
        workload="tpcc",
        workload_kwargs=tpcc_2wh_kwargs(),
        engine_config=mysql_2wh(lazy_lru, buffer_fraction, **overrides),
        seed=seed,
        n_txns=n_txns,
        rate_tps=RATE_TPS_2WH,
    )


def workload_kwargs_for(workload):
    """Per-benchmark generator settings for the Table 4 sweep."""
    if workload == "tpcc":
        return tpcc_contended_kwargs()
    if workload == "seats":
        return {"scale_factor": 50}
    if workload == "tatp":
        return {"scale_factor": 10}
    if workload == "epinions":
        return {"scale_factor": 500}
    if workload == "ycsb":
        return {"scale_factor": 1200}
    raise ValueError("unknown workload %r" % (workload,))


def mysql_workload_experiment(workload, scheduler="FCFS", seed=SEEDS[0], n_txns=N_TXNS):
    """One Table 4 cell: MySQL under ``workload`` with ``scheduler``."""
    return ExperimentConfig(
        engine="mysql",
        workload=workload,
        workload_kwargs=workload_kwargs_for(workload),
        engine_config=mysql_128wh(scheduler),
        seed=seed,
        n_txns=n_txns,
        rate_tps=RATE_TPS,
    )


def postgres_experiment(
    parallel_wal=False, block_size=8192, seed=SEEDS[0], n_txns=N_TXNS, **overrides
):
    """The Postgres 32-WH setup (Table 2, Fig. 4)."""
    params = {
        "wal_block_size": block_size,
        "parallel_wal": parallel_wal,
        "log_disk": pg_wal_disk(),
        "n_workers": 128,
    }
    params.update(overrides)
    return ExperimentConfig(
        engine="postgres",
        workload="tpcc",
        workload_kwargs={
            "warehouses": 32,
            "warehouse_zipf_theta": None,
            "item_zipf_theta": None,
        },
        engine_config=PostgresConfig(**params),
        seed=seed,
        n_txns=n_txns,
        rate_tps=RATE_TPS,
    )


def voltdb_experiment(n_workers=2, seed=SEEDS[0], n_txns=N_TXNS, **overrides):
    """The VoltDB setup (Fig. 7, Appendix A)."""
    params = {"n_workers": n_workers}
    params.update(overrides)
    return ExperimentConfig(
        engine="voltdb",
        workload="tpcc",
        workload_kwargs=tpcc_contended_kwargs(),
        engine_config=VoltDBConfig(**params),
        seed=seed,
        n_txns=n_txns,
        rate_tps=RATE_TPS,
    )


def flush_policy_experiment(policy, seed=SEEDS[0], n_txns=N_TXNS):
    """One Fig. 3-right cell: MySQL under a redo flush policy."""
    policies = {
        "eager": FlushPolicy.EAGER_FLUSH,
        "lazy_flush": FlushPolicy.LAZY_FLUSH,
        "lazy_write": FlushPolicy.LAZY_WRITE,
    }
    return mysql_128wh_experiment(
        scheduler="VATS", seed=seed, n_txns=n_txns, flush_policy=policies[policy]
    )
