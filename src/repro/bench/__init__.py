"""Experiment harness: run configurations, collect latencies, compare.

- :mod:`repro.bench.runner` — build an engine + workload + driver stack
  from a declarative :class:`ExperimentConfig`, run it to completion on
  the virtual clock, and return a :class:`RunResult` with latency
  summaries and engine-side counters.
- :mod:`repro.bench.profiled` — :class:`EngineProfiledSystem`, the
  adapter that lets TProfiler iterate full engine runs.
- :mod:`repro.bench.compare` — baseline/candidate ratio tables (the
  paper's 'Orig. / Modified' columns).
"""

from repro.bench.compare import ratio_row, ratios
from repro.bench.profiled import EngineProfiledSystem
from repro.bench.runner import ExperimentConfig, RunResult, run_experiment

__all__ = [
    "EngineProfiledSystem",
    "ExperimentConfig",
    "RunResult",
    "ratio_row",
    "ratios",
    "run_experiment",
]
