"""Build and run one experiment configuration.

An :class:`ExperimentConfig` names the engine, the workload (with
keyword overrides), the offered load, and any engine configuration; the
runner assembles the simulator, random streams, tracer, engine and
driver, runs the virtual clock until every transaction completes, and
returns a :class:`RunResult`.

Methodology matches Section 7.1: constant offered throughput (500 tps
default), a warmup fraction discarded from the front of the run (cold
buffer pool, empty queues), and mean / variance / p99 computed over the
remaining committed transactions.
"""

import gc

from repro.core.annotations import TransactionLog
from repro.core.tracing import Tracer
from repro.faults.injector import NO_FAULTS, FaultInjector
from repro.engines.mysql import MySQLConfig, MySQLEngine, mysql_callgraph
from repro.engines.postgres import PostgresConfig, PostgresEngine, postgres_callgraph
from repro.engines.voltdb import VoltDBConfig, VoltDBEngine, voltdb_callgraph
from repro.sim.kernel import Simulator
from repro.sim.rand import Streams
from repro.sim.stats import summarize
from repro.telemetry import NULL_REGISTRY, MetricsRegistry
from repro.workloads import make_workload
from repro.workloads.driver import LoadDriver

_ENGINES = {
    "mysql": (MySQLEngine, MySQLConfig, mysql_callgraph),
    "postgres": (PostgresEngine, PostgresConfig, postgres_callgraph),
    "voltdb": (VoltDBEngine, VoltDBConfig, voltdb_callgraph),
}


def engine_callgraph(engine_name):
    """The static call graph for an engine by name."""
    return _ENGINES[engine_name][2]()


class ExperimentConfig:
    """A declarative experiment: engine + workload + load + knobs."""

    def __init__(
        self,
        engine="mysql",
        workload="tpcc",
        workload_kwargs=None,
        engine_config=None,
        seed=42,
        n_txns=3000,
        rate_tps=500.0,
        warmup_fraction=0.1,
        instrumented=(),
        probe_cost=0.0,
        telemetry=True,
        fault_plan=None,
    ):
        if engine not in _ENGINES:
            raise ValueError("unknown engine %r" % (engine,))
        self.engine = engine
        self.workload = workload
        self.workload_kwargs = dict(workload_kwargs or {})
        self.engine_config = engine_config
        self.seed = seed
        self.n_txns = n_txns
        self.rate_tps = rate_tps
        self.warmup_fraction = warmup_fraction
        self.instrumented = frozenset(instrumented)
        self.probe_cost = probe_cost
        # Telemetry emitters consume zero virtual time, so this flag can
        # never change a run's results — only whether a metrics snapshot
        # is available afterwards.
        self.telemetry = telemetry
        # Optional repro.faults.FaultPlan; None (or a plan with nothing
        # configured) wires the NO_FAULTS null injector, which keeps the
        # run byte-identical to a build without the fault subsystem.
        self.fault_plan = fault_plan

    def replaced(self, **overrides):
        """A copy of this config with fields replaced."""
        fields = {
            "engine": self.engine,
            "workload": self.workload,
            "workload_kwargs": dict(self.workload_kwargs),
            "engine_config": self.engine_config,
            "seed": self.seed,
            "n_txns": self.n_txns,
            "rate_tps": self.rate_tps,
            "warmup_fraction": self.warmup_fraction,
            "instrumented": self.instrumented,
            "probe_cost": self.probe_cost,
            "telemetry": self.telemetry,
            "fault_plan": self.fault_plan,
        }
        fields.update(overrides)
        return ExperimentConfig(**fields)


class RunResult:
    """Everything one run produced."""

    def __init__(self, config, log, engine, sim, warmup_count):
        self.config = config
        self.log = log
        self.engine = engine
        self.sim = sim
        self.warmup_count = warmup_count

    @property
    def metrics(self):
        """The run's :class:`MetricsRegistry` (null when disabled)."""
        return self.sim.telemetry

    def metrics_snapshot(self):
        """The metrics report for this run: plain JSON-serialisable dicts.

        Empty when the run was configured with ``telemetry=False``.
        """
        return self.metrics.snapshot()

    def event_log_jsonl(self):
        """The structured event log as JSON lines (empty when disabled)."""
        return self.metrics.events.to_jsonl()

    @property
    def traces(self):
        """Committed, post-warmup traces (the measurement set)."""
        return [
            t
            for t in self.log.traces
            if t.committed and t.txn_id >= self.warmup_count
        ]

    @property
    def latencies(self):
        return [t.latency for t in self.traces]

    def latencies_of(self, txn_type):
        return [t.latency for t in self.traces if t.txn_type == txn_type]

    @property
    def summary(self):
        return summarize(self.latencies)

    # -- robustness accounting -----------------------------------------

    @property
    def abort_counts(self):
        """Per-reason per-attempt abort counts (``deadlock``/``timeout``...)."""
        return dict(self.engine.aborts_by_reason)

    @property
    def failed_counts(self):
        """Per-reason counts of transactions that never committed."""
        return dict(self.engine.failed_by_reason)

    @property
    def failed_txns(self):
        """Transactions that never committed, across all reasons."""
        return self.engine.failed_txns

    @property
    def shed_txns(self):
        """Arrivals rejected by the bounded submission queue."""
        return self.engine.failed_by_reason.get("shed", 0)

    @property
    def fault_counts(self):
        """Injected-fault totals for the run (empty dict when no plan)."""
        faults = self.sim.faults
        if not faults.enabled:
            return {}
        return {
            "io_errors": faults.io_errors,
            "worker_crashes": faults.worker_crashes,
        }

    @property
    def throughput_tps(self):
        """Completed transactions per second of virtual time."""
        traces = self.traces
        if not traces:
            return 0.0
        span = max(t.end for t in traces) - min(t.birth for t in traces)
        if span <= 0:
            return 0.0
        return len(traces) / (span / 1_000_000.0)

    def __repr__(self):
        return "<RunResult %s/%s n=%d>" % (
            self.config.engine,
            self.config.workload,
            len(self.traces),
        )


def run_experiment(config, simulator_cls=None):
    """Execute one :class:`ExperimentConfig` to completion.

    ``simulator_cls`` swaps the event-loop implementation (default: the
    production :class:`~repro.sim.kernel.Simulator`); the perf harness
    uses it to time the reference kernel on identical workloads.
    """
    registry = MetricsRegistry() if config.telemetry else NULL_REGISTRY
    streams = Streams(config.seed)
    plan = config.fault_plan
    if plan is not None and plan.enabled:
        faults = FaultInjector(plan, streams, telemetry=registry)
    else:
        faults = NO_FAULTS
    if simulator_cls is None:
        simulator_cls = Simulator
    sim = simulator_cls(telemetry=registry, faults=faults)
    registry.bind_clock(sim)
    workload = make_workload(config.workload, **config.workload_kwargs)
    log = TransactionLog()
    engine_cls, _config_cls, callgraph_factory = _ENGINES[config.engine]
    tracer = Tracer(
        sim,
        callgraph_factory(),
        instrumented=config.instrumented,
        probe_cost=config.probe_cost,
        log=log,
    )
    engine = engine_cls(sim, tracer, workload, streams, config=config.engine_config)
    driver = LoadDriver(
        sim,
        engine,
        workload,
        streams,
        rate_tps=config.rate_tps,
        n_txns=config.n_txns,
    )
    driver.start()
    # The run allocates generators and tuples at a rate that makes the
    # cyclic GC's periodic scans pure overhead (simulation state is one
    # big live object graph; almost nothing is collectable mid-run).
    # Pausing collection is invisible in virtual time.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        sim.run()
    finally:
        if gc_was_enabled:
            gc.enable()
    warmup_count = int(config.n_txns * config.warmup_fraction)
    return RunResult(config, log, engine, sim, warmup_count)
