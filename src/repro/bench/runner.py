"""Build and run one experiment configuration.

An :class:`ExperimentConfig` names the engine, the workload (with
keyword overrides), the offered load, and any engine configuration; the
runner assembles the simulator, random streams, tracer, engine and
driver, runs the virtual clock until every transaction completes, and
returns a :class:`RunResult`.

Methodology matches Section 7.1: constant offered throughput (500 tps
default), a warmup fraction discarded from the front of the run (cold
buffer pool, empty queues), and mean / variance / p99 computed over the
remaining committed transactions.

With ``num_shards > 1`` (or an explicit ``topology``) the runner builds
a :class:`~repro.cluster.Cluster` instead of a bare engine: one full
engine stack per shard (per-node seeded streams, ``node=<id>``-labeled
telemetry), a simulated network, and a 2PC coordinator for cross-shard
transactions.  ``num_shards=1`` with no topology never constructs any of
that, so single-node runs stay byte-identical to the pre-cluster tree.
"""

import gc
import inspect
from array import array

from repro.check.recorder import HistoryRecorder
from repro.cluster import Cluster, Node, Topology, make_router
from repro.core.annotations import TransactionLog
from repro.core.tracing import Tracer
from repro.faults.injector import NO_FAULTS, FaultInjector
from repro.engines.mysql import MySQLConfig, MySQLEngine, mysql_callgraph
from repro.engines.postgres import PostgresConfig, PostgresEngine, postgres_callgraph
from repro.engines.voltdb import VoltDBConfig, VoltDBEngine, voltdb_callgraph
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.rand import Streams
from repro.exec.schema import register_config
from repro.sim.stats import summarize
from repro.telemetry import (
    NULL_REGISTRY,
    MetricsRegistry,
    snapshot_node_slice,
    snapshot_rollup,
)
from repro.workloads import WORKLOADS, make_workload
from repro.workloads.driver import LoadDriver

_ENGINES = {
    "mysql": (MySQLEngine, MySQLConfig, mysql_callgraph),
    "postgres": (PostgresEngine, PostgresConfig, postgres_callgraph),
    "voltdb": (VoltDBEngine, VoltDBConfig, voltdb_callgraph),
}


def engine_callgraph(engine_name):
    """The static call graph for an engine by name."""
    return _ENGINES[engine_name][2]()


def _validate_workload(workload, workload_kwargs):
    """Reject unknown workload names / kwarg keys at construction time.

    ``make_workload`` would eventually raise for both, but only once the
    run is already assembling — mid-sweep, or inside a pool worker.
    Failing in the :class:`ExperimentConfig` constructor keeps bad
    configs from ever entering an executor batch.
    """
    try:
        workload_cls = WORKLOADS[workload.lower()]
    except (KeyError, AttributeError):
        raise ValueError(
            "unknown workload %r (known: %s)"
            % (workload, ", ".join(sorted(WORKLOADS)))
        ) from None
    params = inspect.signature(workload_cls.__init__).parameters
    if any(p.kind is p.VAR_KEYWORD for p in params.values()):
        return
    accepted = {name for name in params if name != "self"}
    unknown = sorted(set(workload_kwargs) - accepted)
    if unknown:
        raise ValueError(
            "workload %r does not accept kwarg(s) %s (accepted: %s)"
            % (workload, ", ".join(unknown), ", ".join(sorted(accepted)))
        )


@register_config
class ExperimentConfig:
    """A declarative experiment: engine + workload + load + knobs.

    Registered with :mod:`repro.exec.schema`: the field schema is the
    ``__init__`` parameter list, and ``to_dict``/``from_dict``/
    ``replaced``/``config_digest`` are schema-derived (see
    docs/execution.md).
    """

    def __init__(
        self,
        engine="mysql",
        workload="tpcc",
        workload_kwargs=None,
        engine_config=None,
        seed=42,
        n_txns=3000,
        rate_tps=500.0,
        warmup_fraction=0.1,
        instrumented=(),
        probe_cost=0.0,
        telemetry=True,
        fault_plan=None,
        num_shards=1,
        topology=None,
        replicas=0,
        replication=None,
        check=False,
    ):
        if engine not in _ENGINES:
            raise ValueError("unknown engine %r" % (engine,))
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1, got %r" % (num_shards,))
        if replicas < 0:
            raise ValueError("replicas must be >= 0, got %r" % (replicas,))
        _validate_workload(workload, workload_kwargs or {})
        self.engine = engine
        self.workload = workload
        self.workload_kwargs = dict(workload_kwargs or {})
        self.engine_config = engine_config
        self.seed = seed
        self.n_txns = n_txns
        self.rate_tps = rate_tps
        self.warmup_fraction = warmup_fraction
        self.instrumented = frozenset(instrumented)
        self.probe_cost = probe_cost
        # Telemetry emitters consume zero virtual time, so this flag can
        # never change a run's results — only whether a metrics snapshot
        # is available afterwards.
        self.telemetry = telemetry
        # Optional repro.faults.FaultPlan; None (or a plan with nothing
        # configured) wires the NO_FAULTS null injector, which keeps the
        # run byte-identical to a build without the fault subsystem.
        self.fault_plan = fault_plan
        # Cluster shape: num_shards=1 with no topology is the classic
        # single-node run (no network, no router, no coordinator).
        self.num_shards = num_shards
        self.topology = topology
        # Replication (repro.replication): replicas per shard plus an
        # optional ReplicationConfig.  replicas=0 (the default)
        # constructs zero replication objects — byte-identical to a
        # build without the subsystem (pinned by the golden digests).
        self.replicas = replicas
        self.replication = replication
        # Correctness checking (repro.check): record the run's history
        # for the offline oracles.  The recorder consumes no virtual
        # time, so — like telemetry — this flag can never change a run's
        # results, only whether a history is available afterwards.
        self.check = check

    @property
    def is_clustered(self):
        # Replicated runs always build a Cluster (even with one shard):
        # the coordinator owns the network and the read routing.
        return (
            self.num_shards > 1
            or self.topology is not None
            or self.replicas > 0
        )

class RunResult:
    """Everything one run produced."""

    def __init__(self, config, log, engine, sim, warmup_count):
        self.config = config
        self.log = log
        self.engine = engine
        self.sim = sim
        self.warmup_count = warmup_count

    @property
    def metrics(self):
        """The run's :class:`MetricsRegistry` (null when disabled)."""
        return self.sim.telemetry

    def metrics_snapshot(self):
        """The metrics report for this run: plain JSON-serialisable dicts.

        Empty when the run was configured with ``telemetry=False``.
        """
        return self.metrics.snapshot()

    def event_log_jsonl(self):
        """The structured event log as JSON lines (empty when disabled)."""
        return self.metrics.events.to_jsonl()

    def node_metrics_snapshot(self, node_id):
        """One node's slice of the metrics, with the label stripped.

        Clustered runs label every node-side instrument ``{node=<id>}``;
        this filters the full snapshot down to one node and returns it
        keyed by the bare instrument name, so per-node reports read
        exactly like a single-node ``metrics_snapshot()``.
        """
        return snapshot_node_slice(self.metrics_snapshot(), node_id)

    def metrics_rollup(self):
        """Cluster-wide totals: labeled instruments merged by base name.

        Counters and gauge values/maxima sum across nodes; histograms
        merge exactly for ``count``/``sum``/``mean``/``min``/``max``
        (quantiles do not compose across sketches, so merged histograms
        omit them).  Unlabeled instruments pass through untouched.
        """
        return snapshot_rollup(self.metrics_snapshot())

    @property
    def traces(self):
        """Committed, post-warmup traces (the measurement set)."""
        return [
            t
            for t in self.log.traces
            if t.committed and t.txn_id >= self.warmup_count
        ]

    @property
    def latencies(self):
        # Packed doubles, not a list of boxed floats: a large run's
        # latency vector is 3-4x smaller and feeds numpy zero-copy.
        return array("d", (t.latency for t in self.traces))

    def latencies_of(self, txn_type):
        return array(
            "d", (t.latency for t in self.traces if t.txn_type == txn_type)
        )

    @property
    def summary(self):
        return summarize(self.latencies)

    # -- robustness accounting -----------------------------------------

    @property
    def abort_counts(self):
        """Per-reason per-attempt abort counts (``deadlock``/``timeout``...)."""
        return dict(self.engine.aborts_by_reason)

    @property
    def failed_counts(self):
        """Per-reason counts of transactions that never committed."""
        return dict(self.engine.failed_by_reason)

    @property
    def failed_txns(self):
        """Transactions that never committed, across all reasons."""
        return self.engine.failed_txns

    @property
    def shed_txns(self):
        """Arrivals rejected by the bounded submission queue."""
        return self.engine.failed_by_reason.get("shed", 0)

    @property
    def fault_counts(self):
        """Injected-fault totals for the run (empty dict when no plan)."""
        faults = self.sim.faults
        if not faults.enabled:
            return {}
        counts = {
            "io_errors": faults.io_errors,
            "worker_crashes": faults.worker_crashes,
        }
        # Only plans that schedule node crashes report the key, so every
        # pre-recovery fault golden stays byte-identical.
        if faults.plan.node_crash_times:
            counts["node_crashes"] = faults.node_crashes
        return counts

    # -- correctness checking (repro.check) ----------------------------

    @property
    def history(self):
        """The recorded :class:`~repro.check.History` (None when off)."""
        recorder = self.sim.check
        return recorder.history if recorder.enabled else None

    def check_report(self):
        """Run every oracle over the history; ``[]`` means clean.

        ``None`` when the run was configured with ``check=False``.
        """
        history = self.history
        if history is None:
            return None
        from repro.check.oracles import check_all

        return check_all(history)

    @property
    def txn_outcomes(self):
        """Bounded per-transaction ``(txn_id, type, outcome)`` listing.

        Recorded behind the ``check`` flag; ``None`` when checking was
        off.  ``outcome`` is ``"committed"`` or the failure reason
        (``"shed"`` / ``"deadline"`` / ``"deadlock"`` ...).
        """
        recorder = self.sim.check
        return list(recorder.outcomes) if recorder.enabled else None

    @property
    def outcome_counts(self):
        """Exact per-outcome totals (unbounded; ``None`` when check off)."""
        recorder = self.sim.check
        return dict(recorder.outcome_counts) if recorder.enabled else None

    @property
    def throughput_tps(self):
        """Completed transactions per second of virtual time."""
        traces = self.traces
        if not traces:
            return 0.0
        span = max(t.end for t in traces) - min(t.birth for t in traces)
        if span <= 0:
            return 0.0
        return len(traces) / (span / 1_000_000.0)

    def artifact(self):
        """The picklable plain-data extract of this run (repro.exec)."""
        from repro.exec.artifact import RunArtifact

        return RunArtifact.from_result(self)

    def __repr__(self):
        return "<RunResult %s/%s n=%d>" % (
            self.config.engine,
            self.config.workload,
            len(self.traces),
        )


def run_experiment(config, simulator_cls=None):
    """Execute one :class:`ExperimentConfig` to completion.

    ``simulator_cls`` swaps the event-loop implementation (default: the
    production :class:`~repro.sim.kernel.Simulator`); the perf harness
    uses it to time the reference kernel on identical workloads.
    """
    registry = MetricsRegistry() if config.telemetry else NULL_REGISTRY
    streams = Streams(config.seed)
    plan = config.fault_plan
    if plan is not None and plan.enabled:
        faults = FaultInjector(plan, streams, telemetry=registry)
    else:
        faults = NO_FAULTS
    if simulator_cls is None:
        simulator_cls = Simulator
    sim = simulator_cls(telemetry=registry, faults=faults)
    registry.bind_clock(sim)
    if config.check:
        sim.check = HistoryRecorder(sim)
    workload = make_workload(config.workload, **config.workload_kwargs)
    log = TransactionLog()
    engine_cls, _config_cls, callgraph_factory = _ENGINES[config.engine]
    tracer = Tracer(
        sim,
        callgraph_factory(),
        instrumented=config.instrumented,
        probe_cost=config.probe_cost,
        log=log,
    )
    if config.is_clustered:
        engine = _build_cluster(config, sim, tracer, workload, streams, engine_cls)
    else:
        engine = engine_cls(
            sim, tracer, workload, streams, config=config.engine_config
        )
    if plan is not None and plan.node_crash_times:
        # Crash-recovery runs surface replay and in-doubt stalls as
        # variance-tree frames; crash-free plans never reach this, so
        # tracer fast paths (and goldens) are untouched.
        from repro.recovery import RECOVERY_FRAMES, crash_controller

        tracer.instrumented.update(RECOVERY_FRAMES)
        if config.is_clustered:
            controller = crash_controller(sim, plan, cluster=engine)
        else:
            controller = crash_controller(sim, plan, engine=engine)
        sim.spawn(controller, name="recovery.controller")
    driver = LoadDriver(
        sim,
        engine,
        workload,
        streams,
        rate_tps=config.rate_tps,
        n_txns=config.n_txns,
    )
    driver.start()
    # The run allocates generators and tuples at a rate that makes the
    # cyclic GC's periodic scans pure overhead (simulation state is one
    # big live object graph; almost nothing is collectable mid-run).
    # Pausing collection is invisible in virtual time.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        sim.run()
    finally:
        if gc_was_enabled:
            gc.enable()
    warmup_count = int(config.n_txns * config.warmup_fraction)
    return RunResult(config, log, engine, sim, warmup_count)


def _build_cluster(config, sim, tracer, workload, streams, engine_cls):
    """Assemble nodes + network + router + coordinator for a sharded run."""
    if not engine_cls.supports_branches:
        raise ValueError(
            "engine %r does not support 2PC participant branches; "
            "it cannot host a multi-shard or replicated cluster"
            % (config.engine,)
        )
    topology = config.topology or Topology()
    network = Network(
        sim, streams.stream("cluster.network"), config=topology.network
    )
    router = make_router(
        topology.router,
        config.num_shards,
        num_homes=getattr(workload, "warehouses", None),
    )
    nodes = [
        Node(
            node_id,
            sim,
            streams,
            lambda node_sim, node_streams: engine_cls(
                node_sim,
                tracer,
                workload,
                node_streams,
                config=config.engine_config,
            ),
        )
        for node_id in range(config.num_shards)
    ]
    groups = None
    if config.replicas > 0:
        from repro.replication import (
            REPLICATION_FRAMES,
            ReplicaGroup,
            ReplicationConfig,
        )

        repl_config = config.replication or ReplicationConfig()
        tracer.instrumented.update(REPLICATION_FRAMES)
        groups = {}
        for node in nodes:
            group = ReplicaGroup(
                sim,
                tracer,
                node.node_id,
                node.node_id,
                network,
                streams,
                repl_config,
                config.replicas,
            )
            groups[node.node_id] = group
            node.engine.replication = group
    return Cluster(
        sim, tracer, nodes, network, router, streams, topology, groups=groups
    )
