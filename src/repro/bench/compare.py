"""Baseline/candidate comparison: the paper's ratio columns.

Every improvement in the paper is reported as ``original / modified``
for mean latency, latency variance, and 99th-percentile latency, so a
ratio above 1 means the modification helped.
"""

from repro.sim.stats import summarize


def ratios(baseline_latencies, candidate_latencies):
    """``{mean, variance, p99}`` ratios of baseline over candidate."""
    base = summarize(baseline_latencies)
    cand = summarize(candidate_latencies)
    return {
        "mean": base.mean / cand.mean,
        "variance": base.variance / cand.variance,
        "p99": base.p99 / cand.p99,
    }


def ratio_row(label, baseline_result, candidate_result):
    """One labelled row for :func:`repro.core.report.render_ratio_table`."""
    return (label, ratios(baseline_result.latencies, candidate_result.latencies))


def geometric_mean(values):
    """Geometric mean, used to average ratios across workloads."""
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("geometric_mean needs positive values")
        product *= value
    return product ** (1.0 / len(values))
