"""The cluster layer: Nodes, a Router, and a 2PC coordinator.

The paper's method — build the variance tree top-down, find the dominant
factor, fix it — is engine-agnostic, but everything below this package
models *one* node.  Here "a database" becomes a :class:`Node` (one full
engine stack with per-node seeded streams and ``node=<id>``-labeled
telemetry) and an experiment runs on a :class:`Cluster` of them joined
by the simulated network (:mod:`repro.sim.network`):

- :class:`HashRouter` / :class:`RangeRouter` map each operation's
  ``home`` (a TPC-C warehouse) to a shard and split a transaction into
  per-shard branches.
- Single-home transactions take the **fast path**: one request hop, then
  the home node's engine runs them exactly as a single-node run would.
- Cross-shard transactions run **two-phase commit**: branches execute
  holding locks, force a prepare record, vote; the coordinator logs the
  decision and fans it out; participants seal and release.  The two
  coordinator waits are traced frames — ``dist_prepare_wait`` and
  ``dist_commit_wait`` — so the variance tree attributes distributed
  commit latency the same way it attributes lock waits or ``fil_flush``.

With ``num_shards=1`` and no topology the runner never constructs any of
this, so every single-node configuration is byte-identical to the
pre-cluster tree (pinned by ``tests/test_equivalence_goldens.py``).
"""

from repro.cluster.node import Node, NodeSim
from repro.cluster.router import HashRouter, RangeRouter, make_router
from repro.cluster.coordinator import Cluster, Topology

__all__ = [
    "Cluster",
    "HashRouter",
    "Node",
    "NodeSim",
    "RangeRouter",
    "Topology",
    "make_router",
]
