"""Routing: map operation homes to shards, split transactions.

An :class:`~repro.workloads.base.Operation` optionally carries a
``home`` — the partition-key value it belongs to (a TPC-C warehouse id).
A router maps homes to shard ids and splits one transaction spec into
per-shard operation groups:

- ops whose ``home`` is ``None`` (replicated read-mostly tables like
  TPC-C's ``item``) execute on the transaction's *primary* shard — the
  shard of the first homed operation — so they never force a
  cross-shard transaction;
- a spec whose ops all land on one shard is *single-home* (the fast
  path); anything else becomes a 2PC round with one branch per shard.

Both routers are pure functions of their constructor arguments — no RNG,
no simulator — so routing is deterministic and free.
"""


class HashRouter:
    """``home % num_shards`` — spreads adjacent homes across shards."""

    kind = "hash"

    def __init__(self, num_shards, num_homes=None):
        if num_shards < 1:
            raise ValueError("need at least one shard")
        self.num_shards = num_shards

    def shard_of(self, home):
        return home % self.num_shards

    def split(self, spec):
        """Split ``spec.ops`` into an ordered ``{shard: [ops]}`` map."""
        return _split(self, spec)

    def __repr__(self):
        return "<HashRouter shards=%d>" % (self.num_shards,)


class RangeRouter:
    """Contiguous home ranges per shard — preserves locality of scans."""

    kind = "range"

    def __init__(self, num_shards, num_homes):
        if num_shards < 1:
            raise ValueError("need at least one shard")
        if num_homes is None or num_homes < num_shards:
            raise ValueError(
                "range routing needs num_homes >= num_shards, got %r"
                % (num_homes,)
            )
        self.num_shards = num_shards
        self.num_homes = num_homes

    def shard_of(self, home):
        return min(self.num_shards - 1, home * self.num_shards // self.num_homes)

    def split(self, spec):
        return _split(self, spec)

    def __repr__(self):
        return "<RangeRouter shards=%d homes=%d>" % (
            self.num_shards,
            self.num_homes,
        )


def _split(router, spec):
    """Shared splitter: primary-shard placement for home-less ops.

    Ordered dict keyed by shard id (insertion order = first touch, which
    is deterministic because specs are deterministic), values are the
    op sublists in original statement order.
    """
    shard_of = router.shard_of
    primary = None
    for op in spec.ops:
        if op.home is not None:
            primary = shard_of(op.home)
            break
    if primary is None:
        primary = 0  # fully replicated / home-less spec: any shard works
    groups = {}
    for op in spec.ops:
        shard = primary if op.home is None else shard_of(op.home)
        ops = groups.get(shard)
        if ops is None:
            groups[shard] = ops = []
        ops.append(op)
    return groups


def make_router(kind, num_shards, num_homes=None):
    """Build a router by name (``"hash"`` or ``"range"``)."""
    if kind == "hash":
        return HashRouter(num_shards, num_homes)
    if kind == "range":
        return RangeRouter(num_shards, num_homes)
    raise ValueError("unknown router kind %r" % (kind,))
